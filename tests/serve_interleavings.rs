//! Deterministic interleaving coverage for [`lowbit_serve::AdmissionQueue`].
//!
//! The queue's concurrency tests elsewhere rely on sleeps and real thread
//! scheduling; this harness instead drives the queue through *explicitly
//! enumerated* event sequences — every push/close/drain interleaving up to a
//! bounded length, plus long seeded-random schedules — and checks each step
//! against a reference model (a plain `VecDeque` + closed flag). Drains are
//! only issued when the model proves they cannot block (items at target,
//! queue closed, or an expired dynamic deadline over a non-empty queue), so
//! the whole exploration is single-threaded, exact, and reproducible.
//!
//! Invariants checked at every step and at the end of every schedule:
//! conservation (delivered + still-queued == admitted, nothing lost or
//! duplicated), FIFO delivery, typed backpressure (`QueueFull` at capacity,
//! `ServerShutdown` after close), partial-batch flush on close, and `None`
//! exactly when closed-and-empty.

use lowbit::CoreError;
use lowbit_serve::{AdmissionQueue, BatchPolicy};
use std::collections::VecDeque;

/// One schedule event. Drain events carry the close rule they drain under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    /// Submit the next sequence number.
    Push,
    /// Close the queue.
    Close,
    /// `next_batch(Fixed(2))` — issued only when it provably cannot block.
    DrainFixed,
    /// `next_batch(Dynamic { max_batch: 2, deadline_ms: 0.0 })` — the
    /// deadline is already expired, so it returns as soon as the queue is
    /// non-empty (or `None`/skip otherwise).
    DrainDynamic,
}

const ALPHABET: [Event; 4] = [Event::Push, Event::Close, Event::DrainFixed, Event::DrainDynamic];

/// The reference model: the queue semantics restated in ~30 lines of
/// sequential code.
struct Model {
    cap: usize,
    items: VecDeque<u32>,
    closed: bool,
    admitted: u64,
    rejected: u64,
}

impl Model {
    fn new(cap: usize) -> Model {
        Model { cap, items: VecDeque::new(), closed: false, admitted: 0, rejected: 0 }
    }

    fn push(&mut self, item: u32) -> Result<(), CoreError> {
        if self.closed {
            return Err(CoreError::ServerShutdown);
        }
        if self.items.len() >= self.cap {
            self.rejected += 1;
            return Err(CoreError::QueueFull { capacity: self.cap });
        }
        self.items.push_back(item);
        self.admitted += 1;
        Ok(())
    }

    /// Whether `next_batch` with `target` items would return without
    /// blocking: a full batch is ready, or the queue is closed (partial
    /// flush / `None`), or an expired dynamic deadline with work queued.
    fn drain_ready(&self, target: usize, dynamic: bool) -> bool {
        self.items.len() >= target || self.closed || (dynamic && !self.items.is_empty())
    }

    fn next_batch(&mut self, target: usize) -> Option<Vec<u32>> {
        if self.items.is_empty() {
            assert!(self.closed, "harness bug: blocking drain issued");
            return None;
        }
        let b = self.items.len().min(target);
        Some(self.items.drain(..b).collect())
    }
}

/// Runs one schedule against queue and model in lockstep, asserting every
/// step agrees, then drains to exhaustion and checks conservation + FIFO.
fn run_schedule(events: &[Event], cap: usize) {
    let q: AdmissionQueue<u32> = AdmissionQueue::new(cap);
    let mut model = Model::new(cap);
    let mut next = 0u32;
    let mut delivered: Vec<u32> = Vec::new();
    let fixed = BatchPolicy::Fixed(2);
    let dynamic = BatchPolicy::Dynamic { max_batch: 2, deadline_ms: 0.0 };

    let step = |q: &AdmissionQueue<u32>,
                    model: &mut Model,
                    delivered: &mut Vec<u32>,
                    next: &mut u32,
                    e: Event| {
        match e {
            Event::Push => {
                let want = model.push(*next);
                let got = q.push(*next);
                assert_eq!(got, want, "push({next}) diverged in {events:?}");
                *next += 1;
            }
            Event::Close => {
                model.closed = true;
                q.close();
            }
            Event::DrainFixed | Event::DrainDynamic => {
                let dyn_rule = e == Event::DrainDynamic;
                // Skip drains the model cannot prove non-blocking: the
                // harness is single-threaded, so a blocking call would hang
                // the test rather than explore anything.
                if !model.drain_ready(2, dyn_rule) {
                    return;
                }
                let want = model.next_batch(2);
                let got = q.next_batch(if dyn_rule { &dynamic } else { &fixed });
                assert_eq!(got, want, "drain diverged in {events:?}");
                if let Some(batch) = got {
                    delivered.extend(batch);
                }
            }
        }
        let stats = q.stats();
        assert_eq!(stats.admitted, model.admitted, "admitted diverged in {events:?}");
        assert_eq!(stats.rejected, model.rejected, "rejected diverged in {events:?}");
        assert_eq!(stats.depth, model.items.len(), "depth diverged in {events:?}");
        assert_eq!(stats.capacity, cap);
    };

    for &e in events {
        step(&q, &mut model, &mut delivered, &mut next, e);
    }
    // Wind down: close, then drain until both sides agree on `None`.
    step(&q, &mut model, &mut delivered, &mut next, Event::Close);
    loop {
        let want = model.next_batch(2);
        let got = q.next_batch(&fixed);
        assert_eq!(got, want, "wind-down drain diverged in {events:?}");
        match got {
            Some(batch) => delivered.extend(batch),
            None => break,
        }
    }
    // Closed-and-empty stays `None`, and pushes stay rejected as shutdown.
    assert_eq!(q.next_batch(&dynamic), None);
    assert_eq!(q.push(u32::MAX), Err(CoreError::ServerShutdown));

    // Conservation + FIFO: every admitted request was delivered exactly
    // once, in admission order. (Sequence numbers are admitted in order and
    // rejected ones never enter, so delivery must be the admitted
    // subsequence of 0..next in order.)
    assert_eq!(delivered.len() as u64, model.admitted, "requests lost or duplicated");
    for w in delivered.windows(2) {
        assert!(w[0] < w[1], "FIFO order broken in {events:?}: {delivered:?}");
    }
}

/// Every schedule of length <= 6 over {push, close, drain-fixed,
/// drain-dynamic} at capacity 2 — 5461 schedules, each fully checked. The
/// small capacity forces `QueueFull` paths; early closes force
/// `ServerShutdown` and partial flushes.
#[test]
fn exhaustive_short_interleavings_match_the_model() {
    let mut count = 0usize;
    for len in 0..=6 {
        let mut idx = vec![0usize; len];
        loop {
            let events: Vec<Event> = idx.iter().map(|&i| ALPHABET[i]).collect();
            run_schedule(&events, 2);
            count += 1;
            // Odometer increment over the alphabet.
            let mut pos = len;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < ALPHABET.len() {
                    break;
                }
                idx[pos] = 0;
            }
            if idx.iter().all(|&i| i == 0) {
                break;
            }
        }
    }
    assert_eq!(count, (0..=6).map(|l| ALPHABET.len().pow(l)).sum::<usize>());
}

/// Long seeded schedules: 64 seeds x 200 events over a mix of capacities.
/// A fixed LCG keeps every run reproducible from its seed alone.
#[test]
fn seeded_long_interleavings_match_the_model() {
    for seed in 0u64..64 {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let cap = 1 + rng() % 4;
        let events: Vec<Event> = (0..200)
            .map(|_| {
                // Bias toward pushes and drains; rare closes end the
                // schedule's useful life early, which is itself a case
                // worth covering a few times per run set.
                match rng() % 16 {
                    0 => Event::Close,
                    1..=8 => Event::Push,
                    9..=12 => Event::DrainFixed,
                    _ => Event::DrainDynamic,
                }
            })
            .collect();
        run_schedule(&events, cap);
    }
}
