//! Plan/execute pipeline tests: the compiler's selection boundaries
//! (narrow-vs-wide GEMM crossover, the Winograd eligibility window, GPU
//! precision fallback) and the acceptance cross-check that
//! `Planner::compile` + `Executor::run` reproduces the legacy per-call
//! path bit for bit at every bit width.

use lowbit::prelude::*;
use lowbit::qnn::{quantize_f32, requantize, Quantizer};
use lowbit::{arm_candidates, select_arm_algo, ArmAlgo};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn float_input(dims: (usize, usize, usize, usize), seed: u64) -> Tensor<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = dims.0 * dims.1 * dims.2 * dims.3;
    Tensor::from_vec(
        dims,
        Layout::Nchw,
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// The legacy `run_arm` loop, written out against the per-call engine API:
/// quantize once, `ArmAlgo::Auto` conv per layer, fused requant, dequantize.
/// The plan/execute pipeline must reproduce this exactly.
fn legacy_run(
    net: &Network,
    engine: &ArmEngine,
    input: &Tensor<f32>,
) -> (Tensor<f32>, Vec<ArmAlgo>, f64) {
    let first = &net.layers()[0];
    let bits = first.weights.bits();
    let q_in = Quantizer::calibrate(bits, input.data());
    let mut act = quantize_f32(input, &q_in);
    let mut act_scale = q_in.scale;
    let mut algos = Vec::new();
    let mut total = 0.0;
    for layer in net.layers() {
        let out = engine.conv(&act, &layer.weights, &layer.shape, ArmAlgo::Auto);
        algos.push(out.algo);
        total += out.millis;
        let rq = if layer.relu { layer.requant.with_relu() } else { layer.requant };
        act = requantize(&out.acc, &rq);
        act_scale = act_scale * layer.weights.scale() / rq.multiplier;
    }
    let mut out_f = Tensor::zeros(act.dims(), act.layout());
    for (o, &q) in out_f.data_mut().iter_mut().zip(act.data()) {
        *o = q as f32 * act_scale;
    }
    (out_f, algos, total)
}

/// Acceptance cross-check: for `Network::demo` at every `BitWidth`, the
/// compiled plan's execution matches the legacy path bit-exactly — output
/// tensors, chosen algorithms, and the modeled totals, which must also equal
/// `estimate_arm`.
#[test]
fn plan_execute_reproduces_legacy_path_at_every_bit_width() {
    for bits in [
        BitWidth::W2,
        BitWidth::W3,
        BitWidth::W4,
        BitWidth::W5,
        BitWidth::W6,
        BitWidth::W7,
        BitWidth::W8,
    ] {
        let net = Network::demo(bits, 12, 9);
        let input = float_input((1, 3, 12, 12), 5);

        // Independent engines so prepack caches cannot cross-talk.
        let legacy_engine = ArmEngine::cortex_a53();
        let (legacy_out, legacy_algos, legacy_total) = legacy_run(&net, &legacy_engine, &input);

        let engine = ArmEngine::cortex_a53();
        let plan = Planner::for_arm(&engine).compile(&net).unwrap();
        let run = Executor::for_arm(&engine).run(&plan, &net, &input).unwrap();

        assert_eq!(run.output.dims(), legacy_out.dims(), "{bits}");
        assert_eq!(run.output.data(), legacy_out.data(), "{bits}: outputs must be bit-exact");
        let plan_algos: Vec<ArmAlgo> =
            run.reports.iter().map(|r| r.arm_algo().unwrap()).collect();
        assert_eq!(plan_algos, legacy_algos, "{bits}: algorithm choices must match");
        assert!(
            (run.total_millis - legacy_total).abs() < 1e-12,
            "{bits}: totals {} vs {legacy_total}",
            run.total_millis
        );
        let est = net.estimate_arm(&engine).unwrap();
        assert!((est - legacy_total).abs() < 1e-12, "{bits}: estimate_arm {est} vs {legacy_total}");
        assert!((plan.predicted_millis() - legacy_total).abs() < 1e-12, "{bits}");
    }
}

/// The narrow 8x4 tile and the wide 16x4 tile cross over on `c_out`: with
/// few output channels the wide tile wastes lanes and the narrow tile wins;
/// with many it's the reverse. Both candidates are always enumerated at
/// SMLAL widths and the selection follows the cold-cycle ranking.
#[test]
fn narrow_vs_wide_gemm_crossover() {
    let engine = ArmEngine::cortex_a53();
    let model = engine.model();
    let bits = BitWidth::W4;

    let narrow_friendly = ConvShape::new(1, 3, 12, 12, 8, 3, 1, 1);
    let wide_friendly = ConvShape::new(1, 64, 56, 56, 256, 1, 1, 0);

    for (shape, expect) in [
        (&narrow_friendly, ArmAlgo::GemmNarrow),
        (&wide_friendly, ArmAlgo::Gemm),
    ] {
        let cands = arm_candidates(model, bits, shape);
        let gemm = cands.iter().find(|c| c.algo == ArmAlgo::Gemm).unwrap();
        let narrow = cands.iter().find(|c| c.algo == ArmAlgo::GemmNarrow).unwrap();
        match expect {
            ArmAlgo::GemmNarrow => assert!(narrow.cold_cycles < gemm.cold_cycles),
            _ => assert!(gemm.cold_cycles <= narrow.cold_cycles),
        }
        assert_eq!(select_arm_algo(model, bits, shape), expect);
        // And the full planner commits the same choice.
        assert_eq!(engine.select_algo(bits, shape), expect);
    }

    // At MLA widths (2-3 bit) the narrow tile is not enumerated at all.
    let cands = arm_candidates(model, BitWidth::W2, &narrow_friendly);
    assert!(cands.iter().all(|c| c.algo != ArmAlgo::GemmNarrow));
}

/// The Winograd eligibility window: on the canonical big 3x3/stride-1 layer
/// the planner picks Winograd exactly at 4/5/6 bit. At 7 bit the transform
/// is categorically unsupported (not even a candidate); at 3 bit it is a
/// candidate but the MLA-scheme GEMM out-prices it.
#[test]
fn winograd_eligibility_window_is_4_to_6_bit() {
    let engine = ArmEngine::cortex_a53();
    let model = engine.model();
    let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);

    for bits in [BitWidth::W4, BitWidth::W5, BitWidth::W6] {
        assert_eq!(select_arm_algo(model, bits, &shape), ArmAlgo::Winograd, "{bits}");
        let cands = arm_candidates(model, bits, &shape);
        assert!(cands.iter().any(|c| c.algo == ArmAlgo::Winograd), "{bits}");
    }
    // 7-bit: no Winograd candidate exists at all.
    let cands7 = arm_candidates(model, BitWidth::W7, &shape);
    assert!(cands7.iter().all(|c| c.algo != ArmAlgo::Winograd));
    assert_ne!(select_arm_algo(model, BitWidth::W7, &shape), ArmAlgo::Winograd);
    // 3-bit: eligible (candidate present) but rejected on modeled cost.
    let cands3 = arm_candidates(model, BitWidth::W3, &shape);
    assert!(cands3.iter().any(|c| c.algo == ArmAlgo::Winograd));
    assert_ne!(select_arm_algo(model, BitWidth::W3, &shape), ArmAlgo::Winograd);
}

/// GPU precision fallback: a heterogeneous planner routes Tensor Core
/// widths (4/8 bit) to the faster GPU model and odd widths to ARM instead of
/// failing; a GPU-only planner surfaces the typed error.
#[test]
fn gpu_precision_fallback_for_odd_widths() {
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    let planner = Planner::for_arm(&arm).with_gpu(&gpu, Tuning::Default);

    for bits in [BitWidth::W3, BitWidth::W5, BitWidth::W7] {
        let net = Network::demo(bits, 12, 9);
        let plan = planner.compile(&net).unwrap();
        assert!(
            plan.layers().iter().all(|l| l.backend == BackendKind::Arm),
            "{bits}: odd widths must fall back to ARM"
        );
    }
    for bits in [BitWidth::W4, BitWidth::W8] {
        let net = Network::demo(bits, 12, 9);
        let plan = planner.compile(&net).unwrap();
        // The modeled 2080 Ti beats the modeled Cortex-A53 on every demo
        // layer, so the cost ranking sends them all to the GPU.
        assert!(
            plan.layers().iter().all(|l| l.backend == BackendKind::GpuModel),
            "{bits}: Tensor Core widths should win on the GPU model"
        );
        assert_eq!(plan.backends(), vec![BackendKind::GpuModel]);
    }

    let err = Planner::for_gpu(&gpu, Tuning::Default)
        .compile(&Network::demo(BitWidth::W5, 12, 9))
        .unwrap_err();
    assert!(matches!(err, CoreError::UnsupportedBitWidth { bits: BitWidth::W5, .. }));
}

/// A GPU-routed plan executes functionally (the GPU model computes exact
/// accumulators too), so the network output matches the ARM path bit for
/// bit even when every layer runs NHWC on the other backend.
#[test]
fn heterogeneous_execution_matches_arm_output() {
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    let net = Network::demo(BitWidth::W4, 12, 9);
    let input = float_input((1, 3, 12, 12), 5);

    let arm_plan = Planner::for_arm(&arm).compile(&net).unwrap();
    let arm_run = Executor::for_arm(&arm).run(&arm_plan, &net, &input).unwrap();

    let both = Planner::for_arm(&arm).with_gpu(&gpu, Tuning::Default);
    let gpu_plan = both.compile(&net).unwrap();
    assert!(gpu_plan.layers().iter().all(|l| l.backend == BackendKind::GpuModel));
    let gpu_run = Executor::for_arm(&arm)
        .with_gpu(&gpu)
        .run(&gpu_plan, &net, &input)
        .unwrap();

    assert_eq!(gpu_run.output.dims(), arm_run.output.dims());
    assert_eq!(gpu_run.output.data(), arm_run.output.data());
    for r in &gpu_run.reports {
        assert_eq!(r.backend, BackendKind::GpuModel);
        assert!(r.gpu_time.is_some(), "{}: GPU layers carry a stage breakdown", r.name);
        assert!(r.arm_algo().is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Property: whatever the network, the executor's reports agree with
    /// the plan — same algorithm, same backend, and executed modeled time
    /// equal to the plan's steady-state prediction per layer.
    #[test]
    fn executor_reports_always_match_the_plan(
        hw in 8usize..=14,
        bits in 2u8..=8,
        seed in 0u64..50,
    ) {
        let bits = BitWidth::new(bits).unwrap();
        let net = Network::demo(bits, hw, seed);
        let engine = ArmEngine::cortex_a53();
        let plan = Planner::for_arm(&engine).compile(&net).unwrap();
        let input = float_input((1, 3, hw, hw), seed + 1);
        let run = Executor::for_arm(&engine).run(&plan, &net, &input).unwrap();
        prop_assert_eq!(run.reports.len(), plan.layers().len());
        for (r, lp) in run.reports.iter().zip(plan.layers()) {
            prop_assert_eq!(&r.name, &lp.name);
            prop_assert_eq!(r.algo, lp.algo);
            prop_assert_eq!(r.backend, lp.backend);
            prop_assert!((r.millis - lp.predicted_millis).abs() < 1e-12);
        }
    }
}
