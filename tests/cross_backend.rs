//! Cross-backend integration: the ARM and GPU engines must compute the same
//! logical convolution, every ARM algorithm must agree with every other, and
//! engine policies must match the paper's.

use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_suite::{arm_tensors, gpu_tensors, smoke_shapes};

/// NHWC and NCHW accumulator tensors holding the same logical values.
fn logically_equal(a: &Tensor<i32>, b: &Tensor<i32>) -> bool {
    if a.dims() != b.dims() {
        return false;
    }
    let (n, c, h, w) = a.dims();
    for bn in 0..n {
        for cc in 0..c {
            for hh in 0..h {
                for ww in 0..w {
                    if a.get((bn, cc, hh, ww)) != b.get((bn, cc, hh, ww)) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[test]
fn arm_and_gpu_agree_at_4_and_8_bit() {
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    for shape in smoke_shapes() {
        for bits in [BitWidth::W4, BitWidth::W8] {
            let (ai, aw) = arm_tensors(&shape, bits, 1000);
            let (gi, gw) = gpu_tensors(&shape, bits, 1000);
            let arm_out = arm.conv(&ai, &aw, &shape, ArmAlgo::Gemm);
            let gpu_out = gpu.conv(&gi, &gw, &shape, Tuning::Default);
            assert!(
                logically_equal(&arm_out.acc, &gpu_out.acc),
                "{shape} at {bits}: ARM and GPU disagree"
            );
        }
    }
}

#[test]
fn all_arm_algorithms_agree_with_each_other() {
    let arm = ArmEngine::cortex_a53();
    let shape = ConvShape::new(1, 6, 10, 10, 8, 3, 1, 1);
    // 2-bit: GEMM (MLA scheme), Winograd (exact), bitserial all defined.
    let (input, weights) = arm_tensors(&shape, BitWidth::W2, 77);
    let gemm = arm.conv(&input, &weights, &shape, ArmAlgo::Gemm);
    for algo in [ArmAlgo::Winograd, ArmAlgo::BitserialBaseline] {
        let out = arm.conv(&input, &weights, &shape, algo);
        assert_eq!(out.acc.data(), gemm.acc.data(), "{algo:?} deviates");
    }
    // 8-bit: GEMM vs ncnn baseline.
    let (input, weights) = arm_tensors(&shape, BitWidth::W8, 78);
    let gemm = arm.conv(&input, &weights, &shape, ArmAlgo::Gemm);
    let ncnn = arm.conv(&input, &weights, &shape, ArmAlgo::NcnnBaseline);
    assert_eq!(gemm.acc.data(), ncnn.acc.data());
}

#[test]
fn modeled_time_orderings_match_the_paper_policy() {
    // The engine's Auto policy must embody Sec. 3.4: Winograd at 4-6 bit on
    // 3x3/s1, GEMM elsewhere; and lower bits must never model slower on the
    // GEMM path.
    let arm = ArmEngine::cortex_a53();
    let shape = ConvShape::new(1, 64, 28, 28, 64, 3, 1, 1);
    let mut last = f64::INFINITY;
    for bits in BitWidth::ALL.iter().rev() {
        let ms = arm.estimate_millis(*bits, &shape, ArmAlgo::Gemm);
        assert!(
            ms <= last * 1.0001,
            "{bits} modeled slower than the next wider width"
        );
        last = ms;
    }
}

#[test]
fn gpu_4bit_beats_8bit_on_every_resnet_layer() {
    let gpu = GpuEngine::rtx2080ti();
    for l in lowbit::models::resnet50() {
        let t8 = gpu.estimate(&l.shape, BitWidth::W8, Tuning::AutoSearch);
        let t4 = gpu.estimate(&l.shape, BitWidth::W4, Tuning::AutoSearch);
        assert!(
            t4.total_s <= t8.total_s * 1.001,
            "{}: 4-bit ({:.2}us) should not lose to 8-bit ({:.2}us)",
            l.name,
            t4.total_us(),
            t8.total_us()
        );
    }
}

#[test]
fn batched_execution_equals_stacked_single_batches() {
    // Running batch=2 must equal running the two samples separately.
    let arm = ArmEngine::cortex_a53();
    let shape2 = ConvShape::new(2, 4, 8, 8, 5, 3, 2, 1);
    let (input2, weights) = arm_tensors(&shape2, BitWidth::W5, 55);
    let out2 = arm.conv(&input2, &weights, &shape2, ArmAlgo::Gemm);

    let shape1 = shape2.with_batch(1);
    let (oh, ow) = (shape1.out_h(), shape1.out_w());
    for b in 0..2 {
        // Slice sample b out of the batched input.
        let mut single: Tensor<i8> = Tensor::zeros((1, 4, 8, 8), Layout::Nchw);
        for c in 0..4 {
            for h in 0..8 {
                for w in 0..8 {
                    single.set((0, c, h, w), input2.get((b, c, h, w)));
                }
            }
        }
        let qsingle = QTensor::new(single, BitWidth::W5, 1.0);
        let out1 = arm.conv(&qsingle, &weights, &shape1, ArmAlgo::Gemm);
        for co in 0..5 {
            for y in 0..oh {
                for x in 0..ow {
                    assert_eq!(
                        out1.acc.get((0, co, y, x)),
                        out2.acc.get((b, co, y, x)),
                        "batch slice {b} mismatch at ({co},{y},{x})"
                    );
                }
            }
        }
    }
}

#[test]
fn engines_expose_the_table1_configuration() {
    let arm = ArmEngine::cortex_a53();
    assert!((arm.model().clock_hz - 1.2e9).abs() < 1.0);
    let gpu = GpuEngine::rtx2080ti();
    assert_eq!(gpu.device().sm_count, 68);
    assert_eq!(gpu.device().mac_rate(Precision::TensorCoreInt4), 2048);
}
