//! Metrics subsystem invariants (PR 8), end to end across crates:
//!
//! 1. The Prometheus exposition rendered from an instrumented serving-sim
//!    run passes the hand-rolled text-format validator.
//! 2. Histogram percentiles agree with the sim's exact nearest-rank
//!    percentiles within one log-linear bucket width.
//! 3. Rejected requests carry a typed reason and show up in
//!    `serve_rejected_total`.
//! 4. The drift auditor stays clean on an unperturbed executor run and
//!    flags an injected 2x cost-model perturbation on exactly the
//!    perturbed (shape, bits, backend) key.
//! 5. The real threaded server records its completions through the
//!    per-worker shards (the single counter mutex is gone).

use lowbit::prelude::*;
use lowbit::{ExecKey, ExecMetrics};
use lowbit_metrics::drift::DriftBand;
use lowbit_metrics::{prom, HistSpec, Registry};
use lowbit_serve::{
    simulate_instrumented, Arrival, BatchPolicy, RejectReason, RequestClass, ServeMetrics,
    Server, ServerConfig, SimConfig,
};
use std::sync::Arc;

fn instrumented_sim(
    rate_per_s: f64,
    queue_depth: usize,
) -> (Arc<ServeMetrics>, lowbit_serve::SimResult) {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let registry = Arc::new(Registry::new());
    let metrics = ServeMetrics::new(registry, &[class.name()], 25.0);
    let cfg = SimConfig {
        policy: BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 },
        arrival: Arrival::OpenLoop { rate_per_s },
        requests: 1500,
        queue_depth,
        seed: 7,
        force_backend: None,
    };
    let result = simulate_instrumented(&class, &cfg, &metrics, 0);
    (metrics, result)
}

#[test]
fn sim_exposition_parses_with_handrolled_validator() {
    let (metrics, result) = instrumented_sim(3000.0, 64);
    assert!(result.completed > 0);
    let text = prom::render(&metrics.registry().snapshot());
    let samples = prom::validate(&text).expect("exposition must parse");
    assert!(samples > 100, "a sim run produces a substantial exposition, got {samples}");
    // Spot-check: completions flow into the counter family.
    assert_eq!(metrics.completed(0), result.completed as u64);
}

#[test]
fn histogram_percentiles_match_sim_nearest_rank_within_one_bucket() {
    let (metrics, result) = instrumented_sim(3000.0, 64);
    let spec = HistSpec::latency_ms();
    for (q, exact) in [(0.50, result.p50_ms), (0.95, result.p95_ms), (0.99, result.p99_ms)] {
        let from_hist = metrics.total_percentile(0, q);
        let width = spec.width_at(exact);
        assert!(
            (from_hist - exact).abs() <= width,
            "p{:.0}: histogram {from_hist} vs exact {exact} differ by more \
             than one bucket width ({width})",
            q * 100.0
        );
    }
}

#[test]
fn rejected_requests_are_counted_with_reason() {
    // Overload: open-loop arrivals far past capacity against a short queue.
    let (metrics, result) = instrumented_sim(20_000.0, 8);
    assert!(result.rejected > 0, "overload run must reject");
    assert_eq!(metrics.rejected(0, RejectReason::QueueFull), result.rejected as u64);
    assert_eq!(metrics.rejected(0, RejectReason::BadInput), 0);
    let text = prom::render(&metrics.registry().snapshot());
    prom::validate(&text).expect("exposition must parse");
    assert!(
        text.contains(r#"serve_rejected_total{class="demo-w4-12",reason="queue_full"}"#),
        "rejection counter must be exposed with its reason label"
    );
}

fn demo_input(hw: usize) -> Tensor<f32> {
    let data: Vec<f32> = (0..3 * hw * hw).map(|i| (i % 17) as f32 / 8.5 - 1.0).collect();
    Tensor::from_vec((1, 3, hw, hw), Layout::Nchw, data)
}

#[test]
fn drift_auditor_flags_injected_perturbation_on_exact_key() {
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let net = Network::demo(BitWidth::W4, 16, 5);
    let plan = Planner::for_arm(&engine).compile(&net).unwrap();
    let input = demo_input(16);
    // Warm the prepack cache so the audited runs see the steady state the
    // plan's predictions model.
    Executor::for_arm(&engine).run(&plan, &net, &input).unwrap();

    let clean = ExecMetrics::new(Arc::new(Registry::new()));
    let exec = Executor::for_arm(&engine).with_metrics(&clean);
    for _ in 0..4 {
        exec.run(&plan, &net, &input).unwrap();
    }
    let report = clean.audit(DriftBand::default());
    assert!(report.clean(), "unperturbed run must have zero findings:\n{}", report.render());
    assert_eq!(report.keys.len(), net.layers().len(), "every layer key is audited");

    // Halve one layer's prediction: its observed/predicted ratio becomes
    // exactly 2x, well outside the default [0.75, 1.25] band.
    let mut layers = plan.layers().to_vec();
    layers[0].predicted_millis *= 0.5;
    let perturbed_key = ExecKey::of(&layers[0]);
    let perturbed_plan = ExecutionPlan::from_layers(layers, plan.workspace_high_water_bytes());
    let metrics = ExecMetrics::new(Arc::new(Registry::new()));
    let exec = Executor::for_arm(&engine).with_metrics(&metrics);
    for _ in 0..4 {
        exec.run(&perturbed_plan, &net, &input).unwrap();
    }
    let report = metrics.audit(DriftBand::default());
    let findings = report.findings();
    assert_eq!(findings.len(), 1, "exactly the perturbed key drifts:\n{}", report.render());
    assert_eq!(findings[0].key, perturbed_key);
    assert!((findings[0].mean_ratio - 2.0).abs() < 1e-9);
    // The exposition carries the per-key observed/predicted histograms.
    let text = prom::render(&metrics.registry().snapshot());
    prom::validate(&text).expect("executor exposition must parse");
    assert!(text.contains("exec_layer_observed_ms_bucket"));
    assert!(text.contains("exec_layer_predicted_ms_bucket"));
}

#[test]
fn real_server_records_through_worker_shards() {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let config = ServerConfig {
        queue_depth: 32,
        policy: BatchPolicy::Fixed(4),
        workers: 2,
        arm_threads: 2,
        force_backend: None,
        parallel_nodes: false,
        slo_p99_ms: 10_000.0, // effectively unbounded: this test is about flow
    };
    let server = Server::start(vec![class.clone()], config, &Tracer::default());
    let metrics = server.metrics();
    let n = 16;
    let tickets: Vec<_> =
        (0..n).map(|i| server.submit(0, class.sample_input(i as u64)).unwrap()).collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, n as u64);
    // Both workers merged into the same registry families.
    assert_eq!(metrics.completed(0), n as u64);
    assert_eq!(metrics.slo_violations(0), 0);
    let text = prom::render(&metrics.registry().snapshot());
    let samples = prom::validate(&text).expect("server exposition must parse");
    assert!(samples > 0);
    assert!(metrics.total_percentile(0, 0.99) > 0.0, "stage histograms saw real samples");
}
