//! Golden-file check for the demo network's compiled plan: the planner's
//! choices (backend, algorithm, predicted millis, prepack fingerprint,
//! workspace sizing) for `Network::demo(W4, 12, 9)` must match
//! `tests/golden/plan_demo.json` byte for byte, so any planner or cost-model
//! change shows up in review as a golden diff.
//!
//! Regenerate after an intended change with:
//! `cargo run --release -p lowbit-bench --bin lowbit-plan -- --json > tests/golden/plan_demo.json`

use lowbit::prelude::*;

#[test]
fn demo_plan_matches_golden_file() {
    let net = Network::demo(BitWidth::W4, 12, 9);
    let plan = Planner::for_arm(&ArmEngine::cortex_a53())
        .compile(&net)
        .expect("ARM serves every bit width");
    let golden = include_str!("golden/plan_demo.json");
    let current = plan.to_json();
    assert_eq!(
        current, golden,
        "compiled demo plan diverged from tests/golden/plan_demo.json — \
         if intended, regenerate with: cargo run --release -p lowbit-bench \
         --bin lowbit-plan -- --json > tests/golden/plan_demo.json"
    );
}

#[test]
fn dense_block_plan_matches_golden_file() {
    let net = Network::from_graph_defs(
        &lowbit::models::densenet121_dense_block(12),
        BitWidth::W4,
        9,
    )
    .expect("dense-block graph def is valid");
    let plan = Planner::for_arm(&ArmEngine::cortex_a53())
        .compile(&net)
        .expect("ARM serves every bit width");
    let golden = include_str!("golden/plan_dense_block.json");
    let current = plan.to_json();
    assert_eq!(
        current, golden,
        "compiled dense-block plan diverged from tests/golden/plan_dense_block.json — \
         if intended, regenerate with: cargo run --release -p lowbit-bench \
         --bin lowbit-plan -- --model dense-block --json > tests/golden/plan_dense_block.json"
    );
}

#[test]
fn dense_block_golden_records_the_dag_and_arena() {
    let golden = include_str!("golden/plan_dense_block.json");
    // The DAG survives into the golden: two concat joins with fan-in from
    // earlier values, and an activation arena strictly smaller than the sum
    // of all value bytes (the liveness planner reuses freed slots).
    assert_eq!(golden.matches("\"op\":\"concat\"").count(), 2);
    assert!(golden.contains("\"inputs\":[0,2]"));
    assert!(golden.contains("\"activation_high_water_bytes\""));
}

#[test]
fn golden_json_is_well_formed() {
    let golden = include_str!("golden/plan_demo.json");
    assert!(golden.contains("\"layers\""));
    assert!(golden.contains("\"nodes\""));
    assert!(golden.contains("\"values\""));
    assert!(golden.contains("\"predicted_total_millis\""));
    assert!(golden.contains("\"activation_high_water_bytes\""));
    assert_eq!(
        golden.matches("\"prepack_fingerprint\"").count(),
        3,
        "three demo layers"
    );
    assert_eq!(golden.matches("\"name\"").count(), 6, "three layers + three nodes");
}
