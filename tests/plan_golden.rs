//! Golden-file check for the demo network's compiled plan: the planner's
//! choices (backend, algorithm, predicted millis, prepack fingerprint,
//! workspace sizing) for `Network::demo(W4, 12, 9)` must match
//! `tests/golden/plan_demo.json` byte for byte, so any planner or cost-model
//! change shows up in review as a golden diff.
//!
//! Regenerate after an intended change with:
//! `cargo run --release -p lowbit-bench --bin lowbit-plan -- --json > tests/golden/plan_demo.json`

use lowbit::prelude::*;

#[test]
fn demo_plan_matches_golden_file() {
    let net = Network::demo(BitWidth::W4, 12, 9);
    let plan = Planner::for_arm(&ArmEngine::cortex_a53())
        .compile(&net)
        .expect("ARM serves every bit width");
    let golden = include_str!("golden/plan_demo.json");
    let current = plan.to_json();
    assert_eq!(
        current, golden,
        "compiled demo plan diverged from tests/golden/plan_demo.json — \
         if intended, regenerate with: cargo run --release -p lowbit-bench \
         --bin lowbit-plan -- --json > tests/golden/plan_demo.json"
    );
}

#[test]
fn golden_json_is_well_formed() {
    let golden = include_str!("golden/plan_demo.json");
    assert!(golden.contains("\"layers\""));
    assert!(golden.contains("\"predicted_total_millis\""));
    assert_eq!(golden.matches("\"name\"").count(), 3, "three demo layers");
}
