//! Property-based tests of the DESIGN.md invariants, driven through the
//! public API over randomized shapes, bit widths and data.

use lowbit::prelude::*;
use lowbit::qgemm::{gemm, pack_a, pack_b, Scheme};
use lowbit::qnn::{Quantizer, RequantParams};
use lowbit::ArmAlgo;
use proptest::prelude::*;

/// Strategy for a small but structurally diverse convolution shape.
fn conv_shape() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=2,  // batch
        1usize..=6,  // c_in
        4usize..=9,  // h
        4usize..=9,  // w
        1usize..=6,  // c_out
        prop_oneof![Just(1usize), Just(3usize)],
        1usize..=2,  // stride
        0usize..=1,  // pad
    )
        .prop_filter_map("kernel must fit", |(b, ci, h, w, co, k, s, p)| {
            let shape = ConvShape { batch: b, c_in: ci, h, w, c_out: co, kh: k, kw: k, stride: s, pad: p };
            (h + 2 * p >= k && w + 2 * p >= k).then_some(shape)
        })
}

fn any_bits() -> impl Strategy<Value = BitWidth> {
    (2u8..=8).prop_map(|b| BitWidth::new(b).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Invariant 1: the optimized GEMM conv path equals direct convolution
    /// for every shape and bit width.
    #[test]
    fn gemm_conv_equals_direct(shape in conv_shape(), bits in any_bits(), seed in 0u64..1000) {
        let (input, weights) = lowbit_suite::arm_tensors(&shape, bits, seed);
        let engine = ArmEngine::cortex_a53();
        let out = engine.conv(&input, &weights, &shape, ArmAlgo::Gemm);
        let oracle = lowbit::conv_arm::direct_conv(&input, &weights, &shape);
        prop_assert_eq!(out.acc.data(), oracle.data());
    }

    /// Invariant 3 (half): Winograd is bit-exact at <= 4 bit.
    #[test]
    fn winograd_exact_at_low_bits(
        c in 1usize..=5,
        co in 1usize..=5,
        hw in 6usize..=10,
        bits in 2u8..=4,
        seed in 0u64..1000,
    ) {
        let bits = BitWidth::new(bits).unwrap();
        let shape = ConvShape::new(1, c, hw, hw, co, 3, 1, 1);
        let (input, weights) = lowbit_suite::arm_tensors(&shape, bits, seed);
        let engine = ArmEngine::cortex_a53();
        let out = engine.conv(&input, &weights, &shape, ArmAlgo::Winograd);
        let oracle = lowbit::conv_arm::direct_conv(&input, &weights, &shape);
        prop_assert_eq!(out.acc.data(), oracle.data());
    }

    /// Invariant 4: pad+pack round-trips the logical matrix, and padded
    /// GEMM results equal plain i32 matrix multiplication.
    #[test]
    fn packing_preserves_gemm_results(
        m in 1usize..=20,
        k in 1usize..=24,
        n in 1usize..=12,
        bits in any_bits(),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        // Round trip.
        let pa = pack_a(&a, m, k);
        let pb = pack_b(&b, k, n);
        for r in 0..m {
            for c in 0..k {
                prop_assert_eq!(pa.get(r, c), a[r * k + c]);
            }
        }
        for r in 0..k {
            for c in 0..n {
                prop_assert_eq!(pb.get(r, c), b[r * n + c]);
            }
        }
        // GEMM equivalence.
        let got = gemm(&Scheme::for_bits(bits), &a, &b, m, k, n);
        let want = lowbit::qgemm::gemm::reference_gemm(&a, &b, m, k, n);
        prop_assert_eq!(got.c, want);
    }

    /// Invariant 2 (safety direction): with operands in the declared range,
    /// the drain ratios guarantee the i16 partial never exceeds its bound at
    /// the moment of draining — checked indirectly: the full GEMM result is
    /// exact even with adversarial all-extreme operands.
    #[test]
    fn extreme_operands_never_overflow(bits in any_bits(), k in 1usize..=600) {
        let (m, n) = (16, 4);
        let a = vec![bits.qmin(); m * k];
        let b = vec![bits.qmin(); k * n]; // qmin*qmin is the worst product
        let got = gemm(&Scheme::for_bits(bits), &a, &b, m, k, n);
        let expected = (bits.qmin() as i32) * (bits.qmin() as i32) * k as i32;
        prop_assert!(got.c.iter().all(|&v| v == expected));
    }

    /// GPU invariant: the implicit-GEMM Tensor Core path equals direct
    /// convolution at both supported precisions.
    #[test]
    fn gpu_conv_equals_direct(shape in conv_shape(), four_bit in any::<bool>(), seed in 0u64..1000) {
        let bits = if four_bit { BitWidth::W4 } else { BitWidth::W8 };
        let (input, weights) = lowbit_suite::gpu_tensors(&shape, bits, seed);
        let gpu = GpuEngine::rtx2080ti();
        let out = gpu.conv(&input, &weights, &shape, Tuning::Default);
        // Oracle via the ARM direct conv on the NCHW copies.
        let (i_nchw, w_nchw) = lowbit_suite::arm_tensors(&shape, bits, seed);
        let oracle = lowbit::conv_arm::direct_conv(&i_nchw, &w_nchw, &shape);
        let (n, c, h, w) = oracle.dims();
        for bn in 0..n {
            for cc in 0..c {
                for hh in 0..h {
                    for ww in 0..w {
                        prop_assert_eq!(
                            out.acc.get((bn, cc, hh, ww)),
                            oracle.get((bn, cc, hh, ww))
                        );
                    }
                }
            }
        }
    }

    /// Quantizer round trip stays within half a step; requantize+ReLU
    /// equals requantize-then-ReLU for arbitrary accumulators.
    #[test]
    fn quantization_properties(
        vals in proptest::collection::vec(-1000f32..1000f32, 1..64),
        accs in proptest::collection::vec(-1_000_000i32..1_000_000, 1..64),
        mult in 0.0001f32..0.1,
        bits in any_bits(),
    ) {
        let q = Quantizer::calibrate(bits, &vals);
        for &v in &vals {
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            prop_assert!(err <= q.scale / 2.0 + 1e-3);
        }
        let p = RequantParams::new(bits, mult);
        let pr = p.with_relu();
        for &acc in &accs {
            prop_assert_eq!(pr.apply(acc), p.apply(acc).max(0));
        }
    }

    /// Every *valid* tiling configuration computes the exact convolution —
    /// tile sizes are a pure performance choice (invariant 5, second half).
    #[test]
    fn any_valid_tile_config_computes_exactly(
        shape in conv_shape(),
        idx in any::<prop::sample::Index>(),
        four_bit in any::<bool>(),
        seed in 0u64..500,
    ) {
        use lowbit::conv_gpu::{search_space, ConvGpuPlan};
        let bits = if four_bit { BitWidth::W4 } else { BitWidth::W8 };
        let precision = GpuEngine::precision_for(bits).unwrap();
        let small: Vec<_> = search_space(precision)
            .into_iter()
            .filter(|c| c.m_tile <= 64 && c.n_tile <= 64 && c.k_tile <= 64)
            .collect();
        let cfg = small[idx.index(small.len())];
        let (input, weights) = lowbit_suite::gpu_tensors(&shape, bits, seed);
        let plan = ConvGpuPlan::new(shape, cfg, precision);
        let got = plan.execute(&input, &weights);
        let (i_nchw, w_nchw) = lowbit_suite::arm_tensors(&shape, bits, seed);
        let oracle = lowbit::conv_arm::direct_conv(&i_nchw, &w_nchw, &shape);
        let (n, c, h, w) = oracle.dims();
        for bn in 0..n {
            for cc in 0..c {
                for hh in 0..h {
                    for ww in 0..w {
                        prop_assert_eq!(
                            got.get((bn, cc, hh, ww)),
                            oracle.get((bn, cc, hh, ww)),
                            "cfg {:?}", cfg
                        );
                    }
                }
            }
        }
    }

    /// Parallel-engine invariant: the scoped-thread, cache-blocked GEMM
    /// driver is bit-exact versus the serial driver for every shape, bit
    /// width, thread count and block geometry.
    #[test]
    fn parallel_gemm_is_bit_exact(
        m in 1usize..=40,
        k in 1usize..=80,
        n in 1usize..=40,
        bits in any_bits(),
        threads in 1usize..=4,
        kc in 1usize..=96,
        nc_tiles in 1usize..=4,
        seed in 0u64..1000,
    ) {
        use lowbit::qgemm::{gemm_parallel, ParallelConfig, NB};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        let scheme = Scheme::for_bits(bits);
        let cfg = ParallelConfig { threads, kc, nc: nc_tiles * NB };
        let par = gemm_parallel(&scheme, &a, &b, m, k, n, &cfg);
        let serial = gemm(&scheme, &a, &b, m, k, n);
        prop_assert_eq!(par.c, serial.c);
    }

    /// Parallel-engine invariant: reusing one workspace arena across calls
    /// of varying shapes never changes results (stale capacity is invisible).
    #[test]
    fn workspace_reuse_is_bit_exact(
        shapes in proptest::collection::vec(
            (1usize..=24, 1usize..=48, 1usize..=24), 1..5),
        bits in any_bits(),
        threads in 1usize..=4,
        seed in 0u64..1000,
    ) {
        use lowbit::qgemm::parallel::gemm_parallel_cm;
        use lowbit::qgemm::{GemmWorkspace, ParallelConfig, SharedWeights};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scheme = Scheme::for_bits(bits);
        let cfg = ParallelConfig::with_threads(threads);
        let mut ws = GemmWorkspace::new();
        for (m, k, n) in shapes {
            let a: Vec<i8> =
                (0..m * k).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
            let b: Vec<i8> =
                (0..k * n).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
            let pa = pack_a(&a, m, k);
            let c_cm =
                gemm_parallel_cm(&scheme, SharedWeights::Wide(&pa), &b, k, n, &cfg, &mut ws)
                    .to_vec();
            let want = gemm(&scheme, &a, &b, m, k, n).c;
            for j in 0..n {
                for i in 0..m {
                    prop_assert_eq!(c_cm[j * m + i], want[i * n + j]);
                }
            }
        }
    }

    /// Auto-search dominance (invariant 5) over random shapes.
    #[test]
    fn auto_search_dominates_default(shape in conv_shape(), four_bit in any::<bool>()) {
        let bits = if four_bit { BitWidth::W4 } else { BitWidth::W8 };
        let gpu = GpuEngine::rtx2080ti();
        let tuned = gpu.estimate(&shape, bits, Tuning::AutoSearch);
        let default = gpu.estimate(&shape, bits, Tuning::Default);
        prop_assert!(tuned.total_s <= default.total_s + 1e-12);
    }
}
