//! Concurrent-execution guarantees behind the serving layer: shared-engine
//! `Executor::run` stays bit-exact under threads, the plan cache compiles
//! each key exactly once under races, and the threaded server round-trips
//! requests correctly with typed backpressure and a valid trace.

use lowbit::prelude::*;
use lowbit_serve::{
    BatchPolicy, PlanCache, PlanKey, RequestClass, Server, ServerConfig,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn demo_input(net: &Network, seed: u64) -> Tensor<f32> {
    let s = &net.layers()[0].shape;
    let dims = (s.batch, s.c_in, s.h, s.w);
    let len = dims.0 * dims.1 * dims.2 * dims.3;
    Tensor::from_vec(
        dims,
        Layout::Nchw,
        (0..len).map(|i| ((i as u64 * 31 + seed * 17) % 23) as f32 / 11.5 - 1.0).collect(),
    )
}

#[test]
fn concurrent_executor_runs_stay_bit_exact() {
    let net = Arc::new(Network::demo(BitWidth::W4, 12, 9));
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let plan = Arc::new(Planner::for_arm(&engine).compile(&net).unwrap());
    let executor = Executor::for_arm(&engine);
    let input = demo_input(&net, 3);

    let serial = executor.run(&plan, &net, &input).unwrap().output;

    // 4 threads x 5 runs against the SAME engine (shared prepack cache and
    // workspace arena) must all reproduce the serial result bit for bit.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (executor, plan, net, input, serial) =
                (&executor, &plan, &net, &input, &serial);
            scope.spawn(move || {
                for _ in 0..5 {
                    let run = executor.run(plan, net, input).unwrap();
                    assert_eq!(run.output.data(), serial.data(), "racy divergence");
                }
            });
        }
    });
}

#[test]
fn plan_cache_compiles_exactly_once_under_racing_lookups() {
    let cache = Arc::new(PlanCache::new());
    let net = Arc::new(Network::demo(BitWidth::W4, 12, 9));
    let engine = ArmEngine::cortex_a53();
    let compiles = Arc::new(AtomicUsize::new(0));
    let key = PlanKey {
        fingerprint: net.fingerprint(),
        batch: 4,
        backend: BackendKind::Arm,
        parallel: false,
    };

    let plans: Vec<Arc<ExecutionPlan>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (cache, net, engine, compiles) = (&cache, &net, &engine, &compiles);
                scope.spawn(move || {
                    let (plan, _hit) = cache
                        .get_or_compile(key, || {
                            compiles.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window: every thread reaches the
                            // lookup before the winner finishes compiling.
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            Planner::for_arm(engine).compile(net)
                        })
                        .unwrap();
                    plan
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(compiles.load(Ordering::SeqCst), 1, "one compile per key");
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "all lookups share one plan");
    }
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (7, 1, 1));
}

#[test]
fn server_round_trip_matches_direct_batch1_execution() {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let config = ServerConfig {
        queue_depth: 16,
        policy: BatchPolicy::Fixed(4),
        workers: 1,
        arm_threads: 2,
        force_backend: Some(BackendKind::Arm),
        parallel_nodes: false,
        slo_p99_ms: 50.0,
    };
    let server = Server::start(vec![class.clone()], config, &Tracer::default());

    let input = class.sample_input(5);
    let tickets: Vec<_> = (0..4)
        .map(|_| server.submit(0, input.clone()).expect("queue has room"))
        .collect();
    let responses: Vec<_> =
        tickets.into_iter().map(|t| t.wait().expect("request served")).collect();
    let stats = server.shutdown();

    // One Fixed(4) batch, attributed as such on every response.
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_histogram, vec![(4, 1)]);
    for r in &responses {
        assert_eq!(r.timing.batch_formed, 4);
        assert_eq!(r.timing.batch_bucket, 4);
        assert_eq!(r.timing.backend, BackendKind::Arm);
        assert_eq!(r.output.data(), responses[0].output.data(), "same input, same output");
        assert!(r.timing.total_ms() >= 0.0);
    }

    // Identical inputs batched together must equal the batch-1 run.
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let plan = Planner::for_arm(&engine).compile(class.template()).unwrap();
    let direct = Executor::for_arm(&engine)
        .run(&plan, class.template(), &input)
        .unwrap();
    assert_eq!(responses[0].output.data(), direct.output.data(), "batching changed results");
}

#[test]
fn parallel_node_serving_matches_serial_serving_bit_for_bit() {
    // A genuinely wide DAG (the ResNet-50 projection block) served twice:
    // once serially, once with the certified parallel node scheduler. The
    // parallel server must produce bit-identical outputs.
    let def = lowbit::models::resnet50_projection_block(8);
    let net = Network::from_graph_defs(&def, BitWidth::W4, 11).unwrap();
    let class = RequestClass::from_network("projection-w4", net);
    let serve = |parallel_nodes: bool| {
        let config = ServerConfig {
            queue_depth: 16,
            policy: BatchPolicy::Fixed(2),
            workers: 1,
            arm_threads: 2,
            force_backend: Some(BackendKind::Arm),
            parallel_nodes,
            slo_p99_ms: 50.0,
        };
        let server = Server::start(vec![class.clone()], config, &Tracer::default());
        let tickets: Vec<_> = (0..2)
            .map(|i| server.submit(0, class.sample_input(i)).expect("queue has room"))
            .collect();
        let outputs: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("request served").output)
            .collect();
        server.shutdown();
        outputs
    };
    let serial = serve(false);
    let parallel = serve(true);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.data(), p.data(), "parallel serving diverged from serial");
    }
}

#[test]
fn full_queue_rejects_submissions_with_typed_backpressure() {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let config = ServerConfig {
        queue_depth: 2,
        // A Fixed(64) batch can never fill: requests sit in the queue until
        // shutdown flushes them, so submissions 3.. see a full queue.
        policy: BatchPolicy::Fixed(64),
        workers: 1,
        arm_threads: 1,
        force_backend: Some(BackendKind::Arm),
        parallel_nodes: false,
        slo_p99_ms: 50.0,
    };
    let server = Server::start(vec![class.clone()], config, &Tracer::default());

    let mut tickets = Vec::new();
    let mut rejected = 0;
    for i in 0..10 {
        match server.submit(0, class.sample_input(i)) {
            Ok(t) => tickets.push(t),
            Err(CoreError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(rejected >= 8 - tickets.len(), "most submissions must bounce");
    assert!(!tickets.is_empty(), "the first submissions were admitted");

    // Wrong input shape is rejected before touching the queue.
    let bad = Tensor::zeros((1, 3, 5, 5), Layout::Nchw);
    assert!(matches!(
        server.submit(0, bad),
        Err(CoreError::InputShapeMismatch { .. })
    ));

    // Shutdown flushes the partial Fixed(64) batch: admitted requests still
    // complete. (Shut down first — the batch only closes on queue close, so
    // waiting on tickets before shutdown would block forever.)
    let admitted = tickets.len();
    let stats = server.shutdown();
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    for r in &results {
        assert!(r.is_ok(), "admitted request failed: {r:?}");
    }
    assert_eq!(stats.completed, admitted as u64);
    assert_eq!(stats.queues[0].rejected, rejected as u64);
}

#[test]
fn dynamic_deadline_serves_partial_batches_without_shutdown() {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let config = ServerConfig {
        queue_depth: 16,
        policy: BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 20.0 },
        workers: 2,
        arm_threads: 1,
        force_backend: Some(BackendKind::Arm),
        parallel_nodes: false,
        slo_p99_ms: 50.0,
    };
    let server = Server::start(vec![class.clone()], config, &Tracer::default());
    let tickets: Vec<_> =
        (0..3).map(|i| server.submit(0, class.sample_input(i)).unwrap()).collect();
    // The deadline — not shutdown — closes this 3-request batch.
    for t in tickets {
        let r = t.wait().expect("deadline flushes the partial batch");
        assert_eq!(r.timing.batch_formed, 3);
        assert_eq!(r.timing.batch_bucket, 4, "3 requests pad up to the 4-bucket");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
}

#[test]
fn traced_server_run_produces_a_valid_chrome_trace() {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let (tracer, sink) = Tracer::recording();
    let config = ServerConfig {
        queue_depth: 32,
        policy: BatchPolicy::Dynamic { max_batch: 4, deadline_ms: 2.0 },
        workers: 1, // single worker: executor wall spans cannot interleave
        arm_threads: 2,
        force_backend: None,
        parallel_nodes: false,
        slo_p99_ms: 50.0,
    };
    let server = Server::start(vec![class.clone()], config, &tracer);
    let tickets: Vec<_> =
        (0..12).map(|i| server.submit(0, class.sample_input(i)).unwrap()).collect();
    for t in tickets {
        t.wait().expect("request served");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 12);
    assert!(stats.plan_cache.hits + stats.plan_cache.misses >= stats.batches);

    let chrome = lowbit_trace::chrome::chrome_trace_json(&sink.capture());
    let v = lowbit_trace::chrome::validate_chrome_trace(&chrome)
        .expect("server trace must pass nesting and monotonicity validation");
    assert!(v.spans > 0, "trace captured spans");
    assert!(v.counters > 0, "trace captured server counters");
    // Per-request attribution tracks made it into the trace.
    assert!(
        chrome.contains("req/demo-w4-12/0"),
        "per-request track missing from chrome trace"
    );
    for counter in ["serve_admitted_total", "serve_completed_total", "plan_cache_hits_total"] {
        assert!(chrome.contains(counter), "missing counter {counter}");
    }
}
