//! Integration-level checks of the paper's headline claims, driven through
//! the public `lowbit` API and the figure-regeneration experiments.

use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::arm_experiments::{lowbit_vs_ncnn, space_figure, tvm_figure, winograd_figure};
use lowbit_bench::gpu_experiments::{fusion, gpu_vs_baselines, profile_runs};
use lowbit_bench::harness::{geomean, mean, winning_summary};
use lowbit_models::{densenet121, resnet50, scr_resnet50};

#[test]
fn headline_arm_claim_2bit_and_4bit_beat_ncnn_8bit() {
    // Abstract: "our 2-bit and 4-bit convolution kernels achieve 1.60x and
    // 1.38x speedup on average, respectively, compared to 8-bit convolution
    // in ncnn" — shape check: both well above 1, 2-bit above 4-bit.
    let fig = lowbit_vs_ncnn(&resnet50());
    let (avg2, wins2) = fig.summary(0);
    let (avg4, wins4) = fig.summary(2);
    assert!(wins2 >= 17 && wins4 >= 17);
    assert!(avg2 > avg4 && avg4 > 1.2, "2-bit {avg2}, 4-bit {avg4}");
}

#[test]
fn headline_gpu_claim_4bit_and_8bit_beat_cudnn() {
    // Abstract: "4-bit and 8-bit convolution kernels achieve 5.26x and 4.31x
    // speedup on average, respectively, compared to cuDNN" (batch 1).
    let fig = gpu_vs_baselines(&resnet50(), 1);
    let s8 = geomean(&fig.speedup_vs_cudnn(&fig.ours8_us));
    let s4 = geomean(&fig.speedup_vs_cudnn(&fig.ours4_us));
    assert!((3.0..=6.5).contains(&s8), "8-bit geomean {s8} (paper 4.31)");
    assert!((4.0..=8.5).contains(&s4), "4-bit geomean {s4} (paper 5.26)");
    assert!(s4 > s8);
}

#[test]
fn scr_resnet_shows_larger_gains_than_resnet() {
    // Sec. 5.5: SCR-ResNet-50 speedups vs TensorRT exceed ResNet-50's
    // because its shapes are outside TensorRT's tuning radar.
    let resnet = gpu_vs_baselines(&resnet50(), 1);
    let scr = gpu_vs_baselines(&scr_resnet50(), 1);
    let g_resnet = geomean(&resnet.speedup_vs_tensorrt(&resnet.ours8_us));
    let g_scr = geomean(&scr.speedup_vs_tensorrt(&scr.ours8_us));
    assert!(
        g_scr > g_resnet,
        "SCR ({g_scr:.2}) should beat ResNet ({g_resnet:.2}) vs TRT"
    );
}

#[test]
fn densenet_arm_summary_shape() {
    // Fig. 14: 2-7 bit all beat ncnn on most layers; 8-bit roughly at parity.
    let fig = lowbit_vs_ncnn(&densenet121());
    for b in 0..6 {
        let (_, wins) = fig.summary(b);
        assert!(wins >= 12, "{} wins only {wins}/16", fig.bits[b]);
    }
    let g8 = geomean(&fig.speedups[6]);
    assert!((0.8..=1.15).contains(&g8), "8-bit geomean {g8}");
}

#[test]
fn winograd_figure_has_the_published_ordering() {
    // Fig. 8: winograd > gemm at 4-6 bit on the 56x56/28x28/14x14 3x3
    // layers; gains shrink as bits rise (drain ratio tightens).
    let fig = winograd_figure(&resnet50());
    let avg4 = mean(&fig.winograd[0]);
    let avg6 = mean(&fig.winograd[2]);
    assert!(avg4 > avg6, "winograd gain must shrink with bit width");
}

#[test]
fn tvm_figure_summary() {
    let fig = tvm_figure(&resnet50());
    let (avg, wins) = winning_summary(&fig.speedups);
    assert!(wins >= 15 && avg > 1.3);
}

#[test]
fn profile_runs_and_fusion_are_always_wins() {
    let pr = profile_runs(&resnet50());
    assert!(pr.gain4.iter().chain(&pr.gain8).all(|&g| g >= 1.0 - 1e-9));
    let fu = fusion(&resnet50());
    assert!(fu.dequant.iter().all(|&s| s > 1.0));
    assert!(fu.relu.iter().all(|&s| s > 1.0));
}

#[test]
fn space_overhead_total_stays_in_the_paper_band() {
    // Sec. 5.4: total overhead 1.0232x..8.6034x, avg 1.9455x. Our stem
    // reconstruction exceeds the top (documented); everything else is in
    // band and padding adds at most fractions of a percent.
    let fig = space_figure(&resnet50());
    for (i, &t) in fig.total.iter().enumerate() {
        assert!(t >= 1.0, "{}: total {t}", fig.layers[i]);
        if fig.layers[i] != "conv1" {
            assert!(t <= 8.7, "{}: total {t}", fig.layers[i]);
        }
    }
}

#[test]
fn quantization_does_not_change_kernel_results() {
    // Sec. 5.1's no-accuracy-loss argument, part 2: the optimized kernels
    // produce the same i32 results as 32-bit computation. Drive the claim
    // through the public engines against a f64 reference.
    let shape = ConvShape::new(1, 5, 7, 7, 4, 3, 1, 1);
    let (input, weights) = lowbit_suite::arm_tensors(&shape, BitWidth::W6, 4242);
    let engine = ArmEngine::cortex_a53();
    let out = engine.conv(&input, &weights, &shape, ArmAlgo::Gemm);
    // f64 reference accumulation.
    let (oh, ow) = (shape.out_h(), shape.out_w());
    for co in 0..shape.c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0f64;
                for ci in 0..shape.c_in {
                    for kr in 0..3 {
                        for kc in 0..3 {
                            let iy = oy as isize + kr - 1;
                            let ix = ox as isize + kc - 1;
                            if !(0..7).contains(&iy) || !(0..7).contains(&ix) {
                                continue;
                            }
                            acc += input.get((0, ci, iy as usize, ix as usize)) as f64
                                * weights.get((co, ci, kr as usize, kc as usize)) as f64;
                        }
                    }
                }
                assert_eq!(out.acc.get((0, co, oy, ox)) as f64, acc);
            }
        }
    }
}
