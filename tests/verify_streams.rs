//! Static verification sweep: `lowbit-verify` must prove every emitted
//! kernel stream safe — and must reject deliberately broken variants.
//!
//! The positive half runs the full standard catalog (all bit widths 2–8,
//! SMLAL and MLA schemes, Winograd-inflated operand ranges, the SDOT and
//! ncnn baselines, whole multi-tile GEMMs). The negative half re-emits
//! kernels with an unsound drain ratio (`ratio + 1`), a clobbered live
//! accumulator and an overlapping thread partition, and checks each is
//! rejected with the right violation.

use lowbit_qgemm::{tile_stream_narrow, tile_stream_wide, ColumnSpan, Scheme};
use lowbit_tensor::BitWidth;
use lowbit_verify::{
    check_spans, standard_cases, verify_case, verify_stream, OperandBounds, Violation,
};
use neon_sim::inst::Inst;
use neon_sim::meta::ElemWidth;

#[test]
fn every_standard_stream_is_proven_safe() {
    let cases = standard_cases();
    assert!(cases.len() >= 70, "catalog shrank to {} cases", cases.len());
    for case in &cases {
        let proof = verify_case(case)
            .unwrap_or_else(|v| panic!("{}: {v}", case.stream.name));
        assert!(proof.macs > 0, "{}: no MACs analyzed", proof.name);
    }
}

#[test]
fn paper_ratios_sit_at_the_saturation_edge() {
    // Fig. 3's ratios are maximal: at ratio r the i16 peak must land within
    // one worst-case product of 32767 (otherwise a larger ratio would fit).
    for bits in BitWidth::ALL {
        if bits.uses_mla_scheme() {
            continue;
        }
        let scheme = Scheme::for_bits(bits);
        let stream = tile_stream_wide(&scheme, scheme.ratio());
        let proof = verify_stream(&stream, &OperandBounds::for_bits(bits)).unwrap();
        let product = bits.max_abs_product() as i64;
        assert!(
            proof.peak_i16 + product > i16::MAX as i64,
            "{}-bit ratio {} is not tight: peak {} + product {product}",
            bits.bits(),
            scheme.ratio(),
            proof.peak_i16
        );
    }
}

#[test]
fn ratio_plus_one_overflows_at_every_bit_width() {
    // The central negative test: bump each published drain ratio by one and
    // the verifier must find the i16 (or i8, for MLA) wrap that Fig. 3 says
    // is there.
    for bits in BitWidth::ALL {
        let scheme = Scheme::for_bits(bits);
        let broken = scheme.with_ratio_unchecked(scheme.ratio() + 1);
        // One unsound drain group is enough to wrap the intermediate.
        let stream = tile_stream_wide(&broken, broken.ratio());
        let expect = if bits.uses_mla_scheme() { ElemWidth::B } else { ElemWidth::H };
        match verify_stream(&stream, &OperandBounds::for_bits(bits)) {
            Err(Violation::SaturationOverflow { width, .. }) => assert_eq!(
                width,
                expect,
                "{}-bit overflow reported at the wrong width",
                bits.bits()
            ),
            other => panic!(
                "{}-bit ratio {} must be rejected, got {other:?}",
                bits.bits(),
                broken.ratio()
            ),
        }
    }
}

#[test]
fn mla_second_level_ratio_plus_one_overflows_i16() {
    // The MLA scheme's second drain level (i16 -> i32) has its own ratio;
    // exceeding it must be caught even though every i8 group is safe.
    for bits in [BitWidth::W2, BitWidth::W3] {
        let scheme = Scheme::for_bits(bits);
        let broken = scheme.with_ratio2_unchecked(scheme.ratio2() + 1);
        let k = broken.ratio() * (broken.ratio2() + 1);
        let stream = tile_stream_wide(&broken, k);
        match verify_stream(&stream, &OperandBounds::for_bits(bits)) {
            Err(Violation::SaturationOverflow { width: ElemWidth::H, .. }) => {}
            other => panic!("{}-bit ratio2 bump must wrap i16, got {other:?}", bits.bits()),
        }
    }
}

#[test]
fn winograd_inflated_ranges_break_the_direct_ratio() {
    // Feeding Winograd-domain operand ranges (Sec. 3.4) into a kernel
    // scheduled for the *natural* 4-bit ranges must fail: the inflated
    // products overrun the direct scheme's drain ratio.
    let direct = Scheme::for_bits(BitWidth::W4);
    let stream = tile_stream_narrow(&direct, direct.ratio());
    match verify_stream(&stream, &OperandBounds::winograd(BitWidth::W4)) {
        Err(Violation::SaturationOverflow { width: ElemWidth::H, .. }) => {}
        other => panic!("inflated ranges must be rejected, got {other:?}"),
    }
}

#[test]
fn clobbered_accumulator_is_rejected() {
    // Destroy a live i32 accumulator with a load before its store: the lint
    // pass must name the clobbered register and the producing instruction.
    let scheme = Scheme::for_bits(BitWidth::W8);
    let mut stream = tile_stream_narrow(&scheme, 2);
    let store_at = stream
        .prog
        .iter()
        .position(|i| matches!(i, Inst::St1 { .. }))
        .expect("stream has stores");
    let Inst::St1 { vt, .. } = stream.prog[store_at] else { unreachable!() };
    stream.prog.insert(store_at, Inst::Ld1 { vt, addr: stream.a.span.start });
    match verify_stream(&stream, &OperandBounds::for_bits(BitWidth::W8)) {
        Err(Violation::Clobbered { reg, .. }) => assert_eq!(reg, format!("v{vt}")),
        other => panic!("clobber must be rejected, got {other:?}"),
    }
}

#[test]
fn dropped_drain_is_rejected_as_unconsumed() {
    // Truncate the stream before its stores: the computed accumulators are
    // never consumed, which the lint pass must flag as dead work.
    let scheme = Scheme::for_bits(BitWidth::W8);
    let mut stream = tile_stream_narrow(&scheme, 2);
    let first_store = stream
        .prog
        .iter()
        .position(|i| matches!(i, Inst::St1 { .. }))
        .unwrap();
    stream.prog.truncate(first_store);
    match verify_stream(&stream, &OperandBounds::for_bits(BitWidth::W8)) {
        Err(Violation::Unconsumed { .. }) => {}
        other => panic!("dropped stores must be rejected, got {other:?}"),
    }
}

#[test]
fn uninitialized_accumulator_is_rejected() {
    // Drop the prologue's accumulator zeroing: the first MAC then reads an
    // undefined register.
    let scheme = Scheme::for_bits(BitWidth::W4);
    let mut stream = tile_stream_wide(&scheme, 1);
    let zero_at = stream
        .prog
        .iter()
        .position(|i| matches!(i, Inst::MoviZero { vd } if *vd >= 18))
        .expect("prologue zeroes the i32 accumulators");
    stream.prog.remove(zero_at);
    match verify_stream(&stream, &OperandBounds::for_bits(BitWidth::W4)) {
        Err(Violation::UninitRead { .. }) => {}
        other => panic!("missing prologue zero must be rejected, got {other:?}"),
    }
}

#[test]
fn overlapping_and_gappy_partitions_are_rejected() {
    let overlap = [
        ColumnSpan { col0: 0, cols: 8 },
        ColumnSpan { col0: 4, cols: 8 },
    ];
    assert!(matches!(
        check_spans(&overlap, 12),
        Err(Violation::GeometryOverlap { .. })
    ));
    let gap = [
        ColumnSpan { col0: 0, cols: 4 },
        ColumnSpan { col0: 8, cols: 4 },
    ];
    assert!(matches!(check_spans(&gap, 12), Err(Violation::GeometryGap { .. })));
}
