//! End-to-end DAG execution: the residual and dense blocks compile to DAG
//! plans and run bit-exactly against the naive unfused reference.
//!
//! The reference is the same planner with graph fusion disabled
//! (`Planner::with_graph_fusion(false)`): every add runs as a standalone
//! node and no layout round-trips are elided. Fusion is only a legal
//! rewrite if the fused plan's dequantized output is *identical* — the
//! residual add folded into the conv epilogue uses the same
//! `add_clamped` arithmetic as the standalone node, so the comparison is
//! on exact f32 bits, not a tolerance.

use lowbit::models::{densenet121_dense_block_n, resnet50_residual_block};
use lowbit::prelude::*;
use lowbit::PlanOp;

fn float_input(dims: (usize, usize, usize, usize), seed: usize) -> Tensor<f32> {
    let len = dims.0 * dims.1 * dims.2 * dims.3;
    Tensor::from_vec(
        dims,
        Layout::Nchw,
        (0..len)
            .map(|i| ((i * 31 + seed * 17) % 23) as f32 / 11.0 - 1.0)
            .collect(),
    )
}

fn fused_equals_unfused(def: &lowbit::models::GraphDef, bits: BitWidth, seed: u64) {
    let net = Network::from_graph_defs(def, bits, seed).unwrap();
    let engine = ArmEngine::cortex_a53();
    let fused = Planner::for_arm(&engine).compile(&net).unwrap();
    let unfused = Planner::for_arm(&engine)
        .with_graph_fusion(false)
        .compile(&net)
        .unwrap();

    let (c, h, w) = def.input;
    let input = float_input((1, c, h, w), 5);
    let exec = Executor::for_arm(&engine);
    let a = exec.run(&fused, &net, &input).unwrap();
    let b = exec.run(&unfused, &net, &input).unwrap();
    assert_eq!(a.output.dims(), b.output.dims());
    assert_eq!(
        a.output.data(),
        b.output.data(),
        "graph fusion changed the numerics at {bits}"
    );
}

#[test]
fn residual_block_runs_bit_exactly_under_fusion() {
    let def = resnet50_residual_block(8);
    for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
        fused_equals_unfused(&def, bits, 11);
    }

    // And the fusion actually happened: the fused plan has no standalone
    // add node, the unfused reference does.
    let net = Network::from_graph_defs(&def, BitWidth::W4, 11).unwrap();
    let engine = ArmEngine::cortex_a53();
    let fused = Planner::for_arm(&engine).compile(&net).unwrap();
    let unfused = Planner::for_arm(&engine)
        .with_graph_fusion(false)
        .compile(&net)
        .unwrap();
    assert_eq!(fused.nodes().len(), 3);
    assert_eq!(unfused.nodes().len(), 4);
    assert!(fused
        .nodes()
        .iter()
        .any(|n| matches!(n.op, PlanOp::Conv { fused_add: Some(_), .. })));
    assert!(unfused.nodes().iter().any(|n| matches!(n.op, PlanOp::Add)));
    // Folding the add can only shrink the arena: one fewer live value.
    assert!(fused.activation_high_water_bytes() <= unfused.activation_high_water_bytes());
}

#[test]
fn dense_block_runs_bit_exactly_under_fusion() {
    // Both the two-step golden block and DenseNet-121's real six-step
    // first block (the BENCH_graph.json subject).
    fused_equals_unfused(&densenet121_dense_block_n(8, 2), BitWidth::W4, 11);
    fused_equals_unfused(&densenet121_dense_block_n(8, 6), BitWidth::W4, 11);
}

#[test]
fn deep_dense_block_report_and_trace_cover_every_conv() {
    let def = densenet121_dense_block_n(8, 3);
    let net = Network::from_graph_defs(&def, BitWidth::W4, 11).unwrap();
    let engine = ArmEngine::cortex_a53();
    let plan = Planner::for_arm(&engine).compile(&net).unwrap();
    let (tracer, sink) = Tracer::recording();
    let run = Executor::for_arm(&engine)
        .run_traced(&plan, &net, &float_input((1, 64, 8, 8), 5), &tracer)
        .unwrap();
    assert_eq!(run.reports.len(), 6, "one report per conv layer");
    // Spans carry node ids: every node of the nine-node DAG (six convs,
    // three concats) labels its `layer` span `n<step> <name>: ...`.
    let trace = sink.capture();
    for step in 0..plan.nodes().len() {
        let tag = format!("n{step} ");
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.label.as_deref().is_some_and(|l| l.starts_with(&tag))),
            "no span labelled for node {step}"
        );
    }
}
