//! Observability invariants: modeled-cost conservation between the trace
//! spans and the engine's own estimates, Chrome-trace export round-trips,
//! and the disabled (`NullSink`) path staying allocation-free at steady
//! state.

use lowbit::prelude::*;
use lowbit::trace::chrome::{chrome_trace_json, validate_chrome_trace};
use lowbit::trace::SpanKind;
use lowbit::{stage_attribution, ArmAlgo, Network};
use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting wrapper around the system allocator: lets the steady-state test
/// prove a code path performs literally zero heap allocations.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn demo_input(hw: usize) -> Tensor<f32> {
    let data: Vec<f32> = (0..3 * hw * hw).map(|i| (i % 17) as f32 / 8.5 - 1.0).collect();
    Tensor::from_vec((1, 3, hw, hw), Layout::Nchw, data)
}

/// The conservation invariant from DESIGN.md: summing the per-stage
/// `modeled_cycles` attribution of the spans on a layer's modeled track and
/// converting through the engine's cost model must reproduce the layer's
/// reported modeled milliseconds (which is also what `estimate_millis`
/// returns for the same shape/algo once the weights are prepacked).
#[test]
fn modeled_span_attribution_conserves_layer_millis() {
    for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
        let engine = ArmEngine::cortex_a53();
        let net = Network::demo(bits, 16, 5);
        let input = demo_input(16);
        let (tracer, sink) = Tracer::recording();
        // Warm run fills the prepack cache so the traced run's estimate
        // matches `estimate_millis` (which models the steady state).
        net.run_arm(&engine, &input);
        let (_, reports, total) = net.run_arm_traced(&engine, &input, &tracer);
        let cap = sink.capture();

        let mut sum_of_layers = 0.0f64;
        for (report, layer) in reports.iter().zip(net.layers()) {
            let track = cap
                .track_id(&format!("modeled/{}", report.name))
                .unwrap_or_else(|| panic!("{bits}: no modeled track for {}", report.name));
            let cycles: f64 = cap
                .spans_on(track)
                .filter_map(|s| s.attr.as_ref())
                .map(|a| a.modeled_cycles)
                .sum();
            let rebuilt = engine.model().millis(cycles);
            assert!(
                (rebuilt - report.millis).abs() < 1e-9,
                "{bits} {}: span attribution {rebuilt} ms != report {} ms",
                report.name,
                report.millis
            );
            let estimate = engine.estimate_millis(
                bits,
                &layer.shape,
                report.arm_algo().expect("demo layers run on the ARM backend"),
            );
            assert!(
                (rebuilt - estimate).abs() < 1e-9,
                "{bits} {}: span attribution {rebuilt} ms != estimate {estimate} ms",
                report.name
            );
            sum_of_layers += report.millis;
        }
        assert!(
            (sum_of_layers - total).abs() < 1e-9,
            "{bits}: layer sum {sum_of_layers} != network total {total}"
        );
    }
}

/// Per-stage attribution recomputed from the schedule must match what the
/// modeled spans carry, stage for stage, and total instruction counts must
/// agree with the schedule's own accounting.
#[test]
fn modeled_spans_mirror_schedule_stages() {
    let engine = ArmEngine::cortex_a53();
    let shape = ConvShape::new(1, 6, 12, 12, 8, 3, 1, 1);
    let (input, weights) = lowbit_suite::arm_tensors(&shape, BitWidth::W4, 42);
    let (tracer, sink) = Tracer::recording();
    let result = engine.conv_traced(&input, &weights, &shape, ArmAlgo::Gemm, &tracer, "probe");
    let cap = sink.capture();

    let track = cap.track_id("modeled/probe").expect("modeled track registered");
    let spans: Vec<_> = cap.spans_on(track).filter(|s| s.attr.is_some()).collect();
    assert_eq!(spans.len(), result.schedule.stages.len(), "one span per stage");
    for (span, stage) in spans.iter().zip(&result.schedule.stages) {
        assert_eq!(span.name, stage.name);
        assert_eq!(span.kind, SpanKind::Modeled);
        let expect = stage_attribution(stage, engine.model());
        let got = span.attr.as_ref().unwrap();
        assert_eq!(got.modeled_cycles, expect.modeled_cycles, "{}", stage.name);
        assert_eq!(got.loads, expect.loads);
        assert_eq!(got.stores, expect.stores);
        assert_eq!(got.neon_mac, expect.neon_mac);
    }
    let span_cycles: f64 = spans.iter().map(|s| s.attr.as_ref().unwrap().modeled_cycles).sum();
    let sched_cycles = result.schedule.cycles(engine.model());
    assert!((span_cycles - sched_cycles).abs() < 1e-9);
    assert!((engine.model().millis(sched_cycles) - result.millis).abs() < 1e-9);
}

/// GPU modeled tracks lay the five pipeline stages back-to-back under one
/// parent span whose extent is exactly the sum of its children.
#[test]
fn gpu_modeled_stages_tile_the_parent_span() {
    let gpu = GpuEngine::rtx2080ti();
    let net = Network::demo(BitWidth::W4, 16, 5);
    let (tracer, sink) = Tracer::recording();
    let layers = net
        .estimate_gpu_layers_traced(&gpu, Tuning::Default, &tracer)
        .expect("demo network is GPU-estimable");
    let cap = sink.capture();
    assert_eq!(layers.len(), 3);
    for layer in &layers {
        let track = cap
            .track_id(&format!("gpu modeled/{}", layer.name))
            .unwrap_or_else(|| panic!("no gpu modeled track for {}", layer.name));
        let spans: Vec<_> = cap.spans_on(track).collect();
        let parent = spans.iter().find(|s| s.name == "gpu conv modeled").expect("parent span");
        let children: Vec<_> = spans.iter().filter(|s| s.name != "gpu conv modeled").collect();
        assert_eq!(children.len(), 5, "{}: launch/load/reorder/mma/epilogue", layer.name);
        let mut cursor = parent.start_ns;
        for child in &children {
            assert_eq!(child.start_ns, cursor, "{}: {} stage is contiguous", layer.name, child.name);
            cursor += child.dur_ns;
        }
        assert_eq!(cursor, parent.end_ns(), "{}: children tile the parent", layer.name);
    }
}

/// The Chrome-trace exporter's output must round-trip through the validator:
/// parseable JSON, properly nested spans on every track, monotone counters.
#[test]
fn chrome_trace_export_round_trips() {
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let net = Network::demo(BitWidth::W4, 16, 5);
    let input = demo_input(16);
    let (tracer, sink) = Tracer::recording();
    net.run_arm_traced(&engine, &input, &tracer);
    net.run_arm_traced(&engine, &input, &tracer);
    net.estimate_gpu_layers_traced(&GpuEngine::rtx2080ti(), Tuning::Default, &tracer)
        .expect("demo network is GPU-estimable");
    let json = chrome_trace_json(&sink.capture());
    let v = validate_chrome_trace(&json).expect("export must satisfy its own validator");
    assert!(v.spans > 0 && v.counters > 0 && v.tracks > 1, "non-trivial capture: {v:?}");
}

/// Satellite 6: with the default (null) tracer, repeated inference on a
/// warmed engine performs zero new workspace allocations and no prepacking —
/// observability off must mean observability free.
#[test]
fn null_tracer_steady_state_allocates_nothing() {
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let net = Network::demo(BitWidth::W4, 16, 5);
    let input = demo_input(16);
    // Warm up: fill the prepack cache and grow the workspace arena.
    net.run_arm(&engine, &input);
    net.run_arm(&engine, &input);
    let ws = engine.workspace_stats();
    let pack = engine.prepack_stats();
    for _ in 0..5 {
        net.run_arm(&engine, &input);
    }
    let after_ws = engine.workspace_stats();
    let after_pack = engine.prepack_stats();
    assert_eq!(after_ws.alloc_events, ws.alloc_events, "steady state grew a buffer");
    assert_eq!(after_ws.high_water_bytes, ws.high_water_bytes);
    assert_eq!(after_pack.misses, pack.misses, "steady state re-packed weights");
    assert_eq!(after_pack.bytes, pack.bytes);
    assert!(after_pack.hits > pack.hits, "cache should be serving hits");
}

/// PR 8 extension of the steady-state claim: per-worker metric shard
/// recording — the serving hot path — performs zero heap allocations once
/// the instruments are registered. Proven with a counting global allocator
/// rather than arena stats, because shards live on the heap, not in the
/// workspace.
#[test]
fn metric_shard_recording_allocates_nothing_at_steady_state() {
    use lowbit_metrics::Registry;
    let registry = Registry::new();
    let completed =
        registry.counter("steady_completed_total", "test counter", &[("class", "demo")]);
    let burn = registry.gauge("steady_burn", "test gauge", &[("class", "demo")]);
    let hist = registry.histogram(
        "steady_total_ms",
        "test histogram",
        &[("class", "demo")],
        lowbit_metrics::HistSpec::latency_ms(),
    );
    let shard = hist.shard();
    // Warm every path once: lazy init (e.g. a mutex poisoning flag or a
    // first-touch branch) must not count against the steady state.
    completed.inc();
    burn.set(0.5);
    shard.record(1.25);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..10_000u64 {
        completed.inc();
        burn.set(i as f64 / 100.0);
        shard.record(0.5 + (i % 64) as f64);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "shard recording must be allocation-free on the hot path"
    );
}
