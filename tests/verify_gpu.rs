//! Integration tests for the GPU static verifier: the tuner's whole search
//! space proves out, negative witnesses are rejected, and the demo proof
//! report matches the golden file CI gates on.

use lowbit_conv_gpu::{search_space, ConvGpuPlan, TileConfig};
use lowbit_verify::gpu::gpu_demo_report;
use lowbit_verify::{check_staging, verify_gpu_plan, GpuViolation};
use turing_sim::{BufOp, Device, Precision, StagingSchedule};

#[test]
fn demo_report_matches_the_golden_file() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/verify_gpu_demo.txt"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden file exists");
    let report = gpu_demo_report(&Device::rtx2080ti()).expect("demo layers prove out");
    assert_eq!(
        report, golden,
        "GPU verifier report drifted; regenerate with \
         `cargo run --release -p lowbit-verify-cli -- --gpu --report > tests/golden/verify_gpu_demo.txt`"
    );
}

#[test]
fn every_searchable_config_proves_out_on_the_demo_shapes() {
    let device = Device::rtx2080ti();
    for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
        let space = search_space(precision);
        assert!(space.len() > 400, "search space unexpectedly small");
        for layer in lowbit_models::demo(12) {
            for cfg in &space {
                let plan = ConvGpuPlan::try_new(layer.shape, *cfg, precision)
                    .expect("search space only emits valid configs");
                verify_gpu_plan(&plan, &device).unwrap_or_else(|v| {
                    panic!("{} {precision:?} {cfg:?}: {v}", layer.name)
                });
            }
        }
    }
}

#[test]
fn unreordered_smem_layout_is_rejected_with_a_bank_conflict() {
    let shape = lowbit_tensor::ConvShape::new(1, 32, 14, 14, 48, 3, 1, 1);
    let cfg = TileConfig {
        m_tile: 64, n_tile: 32, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
    };
    let mut plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8);
    plan.opts.smem_reordered = false;
    match verify_gpu_plan(&plan, &Device::rtx2080ti()) {
        Err(GpuViolation::BankConflict { degree, .. }) => {
            assert_eq!(degree, 4, "the Fig. 5(a) strided pattern serializes 4-way")
        }
        other => panic!("expected a bank-conflict rejection, got {other:?}"),
    }
}

#[test]
fn overlapping_single_buffer_schedule_is_rejected() {
    // The Fig. 6 issue-ahead write order on a single slot: step 1's write
    // lands before step 0 is consumed.
    let s = StagingSchedule {
        buffers: 1,
        steps: 2,
        ops: vec![
            BufOp::Write { buf: 0, step: 0 },
            BufOp::Write { buf: 0, step: 1 },
            BufOp::Read { buf: 0, step: 0 },
            BufOp::Read { buf: 0, step: 1 },
        ],
    };
    assert!(matches!(
        check_staging(&s),
        Err(GpuViolation::OverwriteBeforeRead { buf: 0, lost_step: 0, .. })
    ));
}

#[test]
fn degenerate_single_buffered_plans_still_prove_out() {
    let shape = lowbit_tensor::ConvShape::new(1, 32, 14, 14, 48, 3, 1, 1);
    let cfg = TileConfig {
        m_tile: 64, n_tile: 32, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
    };
    let mut plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8);
    plan.opts.double_buffered = false;
    let proof = verify_gpu_plan(&plan, &Device::rtx2080ti()).unwrap();
    assert!(!proof.double_buffered);
    // One slot, strictly alternating: 2 events per step.
    assert_eq!(proof.staging_ops, 2 * 2);
}
