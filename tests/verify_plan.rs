//! Whole-plan verifier integration: every plan the planner emits for the
//! demo and ResNet-50 bottleneck networks must prove end to end at every
//! supported bit width, the golden proof report must not drift, seeded plan
//! mutants must be rejected with their expected typed witnesses, and the
//! certified arena high-water must dominate what executing the plan really
//! allocates.

use lowbit::prelude::*;
use lowbit::verify::{fingerprint_audit, lower_plan, verify_compiled};
use lowbit_verify::{verify_plan, PlanViolation};

#[test]
fn demo_and_bottleneck_prove_at_every_width() {
    let engine = ArmEngine::cortex_a53();
    for bits in BitWidth::ALL {
        for defs in [lowbit_models::demo(12), lowbit_models::resnet50_bottleneck()] {
            let net = Network::from_layer_defs(&defs, bits, 9).unwrap();
            let plan = Planner::for_arm(&engine).compile(&net).unwrap();
            let proof = verify_compiled(&plan, &net).unwrap();
            assert_eq!(proof.layers.len(), net.layers().len());
            assert!(proof.certified_high_water <= plan.workspace_high_water_bytes());
            // Every layer's proven output interval sits inside its requant
            // width — the invariant the next layer's stream proofs need.
            for (lp, l) in proof.layers.iter().zip(net.layers()) {
                let (qmin, qmax) = (l.requant.bits.qmin() as i64, l.requant.bits.qmax() as i64);
                assert!(lp.output.lo >= qmin && lp.output.hi <= qmax, "{bits} {}", lp.name);
            }
        }
    }
}

#[test]
fn heterogeneous_plans_prove_at_tensor_core_widths() {
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    for bits in [BitWidth::W4, BitWidth::W8] {
        let net = Network::demo(bits, 12, 9);
        let plan = Planner::new()
            .with_arm(&arm)
            .with_gpu(&gpu, Tuning::Default)
            .compile(&net)
            .unwrap();
        verify_compiled(&plan, &net).unwrap();
    }
}

#[test]
fn proof_report_matches_the_golden_file() {
    let net = Network::demo(BitWidth::W4, 12, 9);
    let plan = Planner::for_arm(&ArmEngine::cortex_a53()).compile(&net).unwrap();
    let report = verify_compiled(&plan, &net).unwrap().report();
    let golden = include_str!("golden/verify_plan_demo.txt");
    assert_eq!(
        report, golden,
        "plan proof report diverged from tests/golden/verify_plan_demo.txt — \
         if the change is intentional, regenerate with: cargo run --release \
         -p lowbit-verify-cli -- --plan --report > tests/golden/verify_plan_demo.txt"
    );
}

#[test]
fn seeded_mutants_are_rejected_with_their_witnesses() {
    let engine = ArmEngine::cortex_a53();
    let net = Network::demo(BitWidth::W4, 12, 9);
    let plan = Planner::for_arm(&engine).compile(&net).unwrap();
    let base = lower_plan(&plan, &net).unwrap();
    // Corrupted requant on the last (ReLU-free) layer.
    let mut spec = base.clone();
    spec.layers[2].requant.clamp_min = -100;
    assert!(matches!(
        verify_plan(&spec),
        Err(PlanViolation::ClampRangeBreak { clamp_min: -100, .. })
    ));
    // Understated high-water.
    let mut spec = base.clone();
    spec.declared_high_water_bytes -= 1;
    assert!(matches!(
        verify_plan(&spec),
        Err(PlanViolation::HighWaterUnderstated { .. })
    ));
    // A broken layer chain.
    let mut spec = base.clone();
    spec.layers[1].shape.c_in += 1;
    assert!(matches!(verify_plan(&spec), Err(PlanViolation::ShapeBreak { .. })));
    // Plan-level mutants through the core lowering: an understated per-layer
    // declaration must also be typed at the CoreError surface.
    let mut layers = plan.layers().to_vec();
    layers[0].workspace_bytes = 0;
    let lying = ExecutionPlan::from_layers(layers, plan.workspace_high_water_bytes());
    assert!(matches!(
        verify_compiled(&lying, &net),
        Err(CoreError::PlanRejected {
            violation: PlanViolation::WorkspaceUnderstated { .. }
        })
    ));
}

#[test]
fn fingerprint_audit_holds_for_both_model_classes() {
    for defs in [lowbit_models::demo(12), lowbit_models::resnet50_bottleneck()] {
        let net = Network::from_layer_defs(&defs, BitWidth::W4, 9).unwrap();
        fingerprint_audit(&net).unwrap();
    }
}

#[test]
fn certified_high_water_dominates_real_execution() {
    // Execute each demo plan repeatedly on a fresh engine: the engine's
    // observed arena high-water must stay under the plan's certified figure
    // (the declared bound is what capacity planning reads).
    for bits in [BitWidth::W4, BitWidth::W8] {
        let engine = ArmEngine::cortex_a53();
        let net = Network::demo(bits, 12, 9);
        let plan = Planner::for_arm(&engine).compile(&net).unwrap();
        let input = Tensor::zeros((1, 3, 12, 12), Layout::Nchw);
        let executor = Executor::for_arm(&engine);
        for _ in 0..3 {
            executor.run(&plan, &net, &input).unwrap();
        }
        let observed = engine.workspace_stats().high_water_bytes;
        assert!(
            observed <= plan.workspace_high_water_bytes(),
            "{bits}: observed {observed} > declared {}",
            plan.workspace_high_water_bytes()
        );
    }
}
