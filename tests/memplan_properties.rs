//! Property tests for the liveness arena allocator as a pure function
//! (`lowbit::memplan`), plus pinned facts about the compiled block plans.
//!
//! The allocator's contract, checked over randomized value sets:
//!
//! * soundness — two values that are ever live at the same step never
//!   overlap in the arena;
//! * bounds — `max_cut_bytes` (the largest topological cut, a lower bound
//!   for *any* allocator) <= `high_water_bytes` <= `sum_bytes` (the
//!   no-reuse baseline);
//! * the recorded high-water is exactly `max(offset + bytes)`;
//! * purity — identical inputs produce identical assignments;
//! * optimality on uniform sizes — with all values the same size the
//!   greedy first-fit is left-endpoint interval coloring, which is optimal,
//!   so the high-water *equals* the max cut.

use lowbit::prelude::*;
use lowbit::{assign_arena, max_cut_bytes, sum_bytes, ValueSpec};
use proptest::prelude::*;

/// Strategy for one value: a small size and a live window inside a
/// 12-step plan.
fn value_spec() -> impl Strategy<Value = ValueSpec> {
    (0usize..=64, 0usize..12, 0usize..=6).prop_map(|(bytes, def, len)| ValueSpec {
        bytes,
        def,
        last_use: def + len,
    })
}

fn value_set() -> impl Strategy<Value = Vec<ValueSpec>> {
    proptest::collection::vec(value_spec(), 0..24)
}

/// Asserts the pairwise-disjointness contract on an assignment.
fn assert_sound(values: &[ValueSpec], offsets: &[usize]) {
    for i in 0..values.len() {
        for j in i + 1..values.len() {
            if values[i].bytes == 0 || values[j].bytes == 0 {
                continue;
            }
            if values[i].lives_with(&values[j]) {
                let (ai, bi) = (offsets[i], offsets[i] + values[i].bytes);
                let (aj, bj) = (offsets[j], offsets[j] + values[j].bytes);
                assert!(
                    bi <= aj || bj <= ai,
                    "values {i} [{ai},{bi}) and {j} [{aj},{bj}) are live together and overlap"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn arena_is_sound_and_bounded(values in value_set()) {
        let a = assign_arena(&values);
        prop_assert_eq!(a.offsets.len(), values.len());
        assert_sound(&values, &a.offsets);
        // high-water is exactly the furthest-reaching placement ...
        let reach = values
            .iter()
            .zip(&a.offsets)
            .filter(|(v, _)| v.bytes > 0)
            .map(|(v, &o)| o + v.bytes)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(a.high_water_bytes, reach);
        // ... between the universal lower bound and the no-reuse baseline.
        prop_assert!(a.high_water_bytes >= max_cut_bytes(&values));
        prop_assert!(a.high_water_bytes <= sum_bytes(&values));
    }

    #[test]
    fn arena_assignment_is_pure(values in value_set()) {
        prop_assert_eq!(assign_arena(&values), assign_arena(&values));
    }

    #[test]
    fn uniform_sizes_meet_the_max_cut(
        specs in proptest::collection::vec((0usize..12, 0usize..=6), 1..24),
        size in 1usize..=32,
    ) {
        let values: Vec<ValueSpec> = specs
            .iter()
            .map(|&(def, len)| ValueSpec { bytes: size, def, last_use: def + len })
            .collect();
        let a = assign_arena(&values);
        assert_sound(&values, &a.offsets);
        prop_assert_eq!(a.high_water_bytes, max_cut_bytes(&values));
    }
}

/// On the compiled demo chain and residual block the arena meets the max
/// cut exactly; dense-block fan-in fragments it slightly above the cut but
/// never above the no-reuse sum. These are the concrete shapes behind the
/// BENCH_graph.json figures, pinned so an allocator change that regresses
/// them shows up here and not only as a golden diff.
#[test]
fn compiled_plans_sit_between_cut_and_sum() {
    let arm = ArmEngine::cortex_a53();
    let cases: Vec<(&str, Network, bool)> = vec![
        ("demo-chain", Network::demo(BitWidth::W4, 12, 9), true),
        (
            "residual-block",
            Network::from_graph_defs(&lowbit::models::resnet50_residual_block(12), BitWidth::W4, 9)
                .unwrap(),
            true,
        ),
        (
            "dense-block",
            Network::from_graph_defs(&lowbit::models::densenet121_dense_block(12), BitWidth::W4, 9)
                .unwrap(),
            false,
        ),
    ];
    for (name, net, meets_cut) in cases {
        let plan = Planner::for_arm(&arm).compile(&net).unwrap();
        let values: Vec<ValueSpec> = plan
            .values()
            .iter()
            .map(|v| ValueSpec { bytes: v.bytes, def: v.def, last_use: v.last_use })
            .collect();
        let hw = plan.activation_high_water_bytes();
        let cut = max_cut_bytes(&values);
        assert!(hw >= cut, "{name}: high-water {hw} below the cut {cut}");
        assert!(hw <= sum_bytes(&values), "{name}: worse than no reuse");
        if meets_cut {
            assert_eq!(hw, cut, "{name}: expected the arena to meet the max cut");
        }
    }
}
