//! Workspace umbrella for the ICPP'20 extremely-low-bit convolution
//! reproduction: shared fixtures for the runnable examples and the
//! cross-crate integration tests.
//!
//! The library surface users consume is the [`lowbit`] crate; this crate
//! only adds deterministic tensor factories so examples and tests stay
//! short.

use lowbit::prelude::*;

/// Deterministic activation/weight pair for a conv layer on the ARM (NCHW)
/// path.
pub fn arm_tensors(shape: &ConvShape, bits: BitWidth, seed: u64) -> (QTensor, QTensor) {
    (
        QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            bits,
            seed,
        ),
        QTensor::random(
            (shape.c_out, shape.c_in, shape.kh, shape.kw),
            Layout::Nchw,
            bits,
            seed ^ 0x9e37_79b9,
        ),
    )
}

/// Deterministic activation/weight pair for the GPU (NHWC/OHWI) path.
///
/// Generated in NCHW with the same seeds as [`arm_tensors`] and re-laid out,
/// so the *logical* tensors are identical across platforms and results can
/// be compared element for element.
pub fn gpu_tensors(shape: &ConvShape, bits: BitWidth, seed: u64) -> (QTensor, QTensor) {
    let (a, w) = arm_tensors(shape, bits, seed);
    (a.to_layout(Layout::Nhwc), w.to_layout(Layout::Nhwc))
}

/// A small layer set that exercises stride, padding, batch and pointwise
/// cases while staying cheap to execute functionally.
pub fn smoke_shapes() -> Vec<ConvShape> {
    vec![
        ConvShape::new(1, 8, 10, 10, 12, 3, 1, 1),
        ConvShape::new(2, 5, 9, 7, 6, 3, 2, 1),
        ConvShape::new(1, 16, 6, 6, 8, 1, 1, 0),
        ConvShape::new(1, 3, 12, 12, 4, 5, 2, 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_layout_correct() {
        let shape = ConvShape::new(1, 4, 6, 6, 8, 3, 1, 1);
        let (a1, w1) = arm_tensors(&shape, BitWidth::W4, 7);
        let (a2, w2) = arm_tensors(&shape, BitWidth::W4, 7);
        assert_eq!(a1.data(), a2.data());
        assert_eq!(w1.data(), w2.data());
        assert_eq!(a1.layout(), Layout::Nchw);
        let (g, gw) = gpu_tensors(&shape, BitWidth::W8, 7);
        assert_eq!(g.layout(), Layout::Nhwc);
        assert_eq!(gw.dims(), (8, 4, 3, 3));
    }
}
