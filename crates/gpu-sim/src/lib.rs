//! A Turing-like GPU substrate (the paper's RTX 2080 Ti target).
//!
//! The paper's GPU claims are about (a) Tensor Core vs `dp4a` arithmetic
//! throughput, (b) how tiling interacts with the thread hierarchy and SM
//! occupancy (Sec. 4.2, Fig. 11), and (c) memory-level behaviour: global
//! coalescing, shared-memory access width, compute/copy overlap and fusion
//! (Sec. 4.3–4.4). This crate provides exactly those pieces:
//!
//! * [`device`] — the resource model of a Turing TU102 (SMs, clocks, DRAM
//!   bandwidth, shared memory, register file, per-precision MAC rates),
//! * [`mma`] — functional fragment semantics for `mma.m8n8k16.s8` and
//!   `mma.m8n8k32.s4`, the two Tensor Core shapes the paper uses,
//! * [`memory`] — coalescing analysis for global loads and instruction-count
//!   analysis for shared-memory access (the Fig. 5 LDS.128 vs 4x LDS.32
//!   reordering),
//! * [`kernel`] — a wave-quantized analytic timing model for a kernel launch
//!   ([`kernel::KernelDesc`]), which is what makes batch-1 tail effects (and
//!   therefore tiling auto-search) visible.

#![forbid(unsafe_code)]

pub mod device;
pub mod kernel;
pub mod memory;
pub mod mma;

pub use device::{Device, Precision};
pub use kernel::{
    KernelDesc, KernelTime, ResourceViolation, MAX_REGS_PER_THREAD, MAX_THREADS_PER_BLOCK,
    REGS_PER_SM,
};
pub use memory::{
    bank_conflict_degree, global_coalescing_factor, smem_load_insts, BufOp, MemSpace,
    SmemWidth, StagingSchedule, WarpAccess,
};
