//! Functional Tensor Core fragment semantics.
//!
//! The paper drives Tensor Cores through PTX `mma` instructions rather than
//! the WMMA API (Sec. 2.3) because `mma` exposes the fragment registers.
//! The two shapes used are `mma.m8n8k16.s8` (8-bit) and `mma.m8n8k32.s4`
//! (4-bit), both accumulating into 32-bit. These functions compute exactly
//! what one warp-wide instruction computes: `D = A x B + C` with A `8 x K`
//! row-major and B `K x 8` column-major.

/// `mma.m8n8k16.s8`: 8x16 i8 by 16x8 i8 into 8x8 i32.
///
/// `a` is row-major `8 x 16`, `b` is **column-major** `16 x 8` (i.e.
/// `b[col * 16 + k]`), `c` is row-major `8 x 8`, updated in place.
pub fn mma_m8n8k16_s8(a: &[i8; 128], b: &[i8; 128], c: &mut [i32; 64]) {
    for row in 0..8 {
        for col in 0..8 {
            let mut acc = 0i32;
            for k in 0..16 {
                acc += a[row * 16 + k] as i32 * b[col * 16 + k] as i32;
            }
            c[row * 8 + col] += acc;
        }
    }
}

/// `mma.m8n8k32.s4`: 8x32 i4 by 32x8 i4 into 8x8 i32.
///
/// 4-bit operands are represented as `i8` values in `[-8, 7]` (checked in
/// debug builds); the memory layout packs two per byte, which only the cost
/// model observes.
pub fn mma_m8n8k32_s4(a: &[i8; 256], b: &[i8; 256], c: &mut [i32; 64]) {
    #[cfg(debug_assertions)]
    {
        for &v in a.iter().chain(b.iter()) {
            debug_assert!((-8..=7).contains(&v), "4-bit operand out of range: {v}");
        }
    }
    for row in 0..8 {
        for col in 0..8 {
            let mut acc = 0i32;
            for k in 0..32 {
                acc += a[row * 32 + k] as i32 * b[col * 32 + k] as i32;
            }
            c[row * 8 + col] += acc;
        }
    }
}

/// `mma.m8n8k128.b1` with XOR+POPC semantics: 8x128 bits by 128x8 bits into
/// 8x8 i32 *mismatch counts*.
///
/// Turing's binary Tensor Core op computes `popcount(a XOR b)` per output —
/// callers convert to the bipolar dot product via `k - 2*xor_count`
/// ([`b1_dot_from_xor`]). The paper notes the 1-bit capability (Sec. 2.3)
/// without building on it; this is the future-work hook.
pub fn mma_m8n8k128_b1(a: &[u128; 8], b: &[u128; 8], c: &mut [i32; 64]) {
    for row in 0..8 {
        for col in 0..8 {
            c[row * 8 + col] += (a[row] ^ b[col]).count_ones() as i32;
        }
    }
}

/// Converts an XOR-popcount into the +/-1 (bipolar) dot product over `k`
/// bits: equal bits contribute +1, differing bits -1.
#[inline]
pub fn b1_dot_from_xor(xor_count: i32, k: i32) -> i32 {
    k - 2 * xor_count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix_is_matrix() {
        // A = [I8 | 0] (8x16), B column-major with arbitrary top 8x8.
        let mut a = [0i8; 128];
        for i in 0..8 {
            a[i * 16 + i] = 1;
        }
        let mut b = [0i8; 128];
        for col in 0..8 {
            for k in 0..8 {
                b[col * 16 + k] = (col as i8) - (k as i8);
            }
        }
        let mut c = [0i32; 64];
        mma_m8n8k16_s8(&a, &b, &mut c);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(c[row * 8 + col], (col as i32) - (row as i32));
            }
        }
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1i8; 128];
        let b = [1i8; 128];
        let mut c = [5i32; 64];
        mma_m8n8k16_s8(&a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 5 + 16));
        mma_m8n8k16_s8(&a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 5 + 32));
    }

    #[test]
    fn int4_shape_reduces_over_32() {
        let a = [-8i8; 256];
        let b = [7i8; 256];
        let mut c = [0i32; 64];
        mma_m8n8k32_s4(&a, &b, &mut c);
        assert!(c.iter().all(|&v| v == -8 * 7 * 32));
    }

    #[test]
    #[should_panic(expected = "4-bit operand out of range")]
    #[cfg(debug_assertions)]
    fn int4_rejects_out_of_range() {
        let a = [8i8; 256];
        let b = [0i8; 256];
        let mut c = [0i32; 64];
        mma_m8n8k32_s4(&a, &b, &mut c);
    }

    #[test]
    fn binary_mma_counts_mismatches_and_converts_to_bipolar() {
        // All-equal rows -> zero mismatches -> dot = +k.
        let a = [u128::MAX; 8];
        let b = [u128::MAX; 8];
        let mut c = [0i32; 64];
        mma_m8n8k128_b1(&a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 0));
        assert_eq!(b1_dot_from_xor(0, 128), 128);
        // All-different -> 128 mismatches -> dot = -k.
        let b = [0u128; 8];
        let mut c = [0i32; 64];
        mma_m8n8k128_b1(&a, &b, &mut c);
        assert!(c.iter().all(|&v| v == 128));
        assert_eq!(b1_dot_from_xor(128, 128), -128);
    }

    #[test]
    fn binary_mma_matches_scalar_bipolar_dot() {
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state as u128) << 64 | state.wrapping_mul(31) as u128
        };
        let a: [u128; 8] = core::array::from_fn(|_| next());
        let b: [u128; 8] = core::array::from_fn(|_| next());
        let mut c = [0i32; 64];
        mma_m8n8k128_b1(&a, &b, &mut c);
        for row in 0..8 {
            for col in 0..8 {
                let mut dot = 0i32;
                for bit in 0..128 {
                    let av = if (a[row] >> bit) & 1 == 1 { 1 } else { -1 };
                    let bv = if (b[col] >> bit) & 1 == 1 { 1 } else { -1 };
                    dot += av * bv;
                }
                assert_eq!(b1_dot_from_xor(c[row * 8 + col], 128), dot);
            }
        }
    }

    #[test]
    fn matches_scalar_reference_on_random_fragments() {
        // Simple LCG-driven fill to avoid a dev-dependency here.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 256 - 128) as i8
        };
        let mut a = [0i8; 128];
        let mut b = [0i8; 128];
        a.iter_mut().for_each(|v| *v = next());
        b.iter_mut().for_each(|v| *v = next());
        let mut c = [0i32; 64];
        mma_m8n8k16_s8(&a, &b, &mut c);
        for row in 0..8 {
            for col in 0..8 {
                let want: i32 = (0..16)
                    .map(|k| a[row * 16 + k] as i32 * b[col * 16 + k] as i32)
                    .sum();
                assert_eq!(c[row * 8 + col], want);
            }
        }
    }
}
