//! The GPU resource model.

/// Arithmetic path of a convolution kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Precision {
    /// Tensor Core `mma.m8n8k32.s4` (4-bit operands).
    TensorCoreInt4,
    /// Tensor Core `mma.m8n8k16.s8` (8-bit operands).
    TensorCoreInt8,
    /// CUDA-core `dp4a` (8-bit operands, 4-way dot product) — the cuDNN
    /// baseline path.
    Dp4aInt8,
}

impl Precision {
    /// Bytes per operand element (4-bit operands pack two per byte).
    pub fn operand_bytes(self, elements: u64) -> u64 {
        match self {
            Precision::TensorCoreInt4 => elements.div_ceil(2),
            _ => elements,
        }
    }
}

/// A Turing-like device description.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Device {
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// DRAM bandwidth in bytes/second.
    pub dram_bytes_per_sec: f64,
    /// Shared memory per SM in bytes.
    pub smem_per_sm: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Tensor-Core int8 MACs per SM per cycle.
    pub tc_int8_macs_per_sm: u32,
    /// Tensor-Core int4 MACs per SM per cycle.
    pub tc_int4_macs_per_sm: u32,
    /// dp4a int8 MACs per SM per cycle (CUDA cores).
    pub dp4a_macs_per_sm: u32,
    /// Shared-memory instructions retired per SM per cycle.
    pub smem_insts_per_sm_per_cycle: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// L2 cache size in bytes (gates whether an operand re-read hits DRAM).
    pub l2_bytes: u64,
}

impl Device {
    /// The RTX 2080 Ti of Tab. 1 (TU102: 68 SMs, 8 Tensor Cores each).
    pub fn rtx2080ti() -> Device {
        Device {
            sm_count: 68,
            clock_hz: 1.545e9,
            dram_bytes_per_sec: 616e9,
            smem_per_sm: 64 * 1024,
            regs_per_sm: crate::kernel::REGS_PER_SM,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 16,
            // 8 TCs x 64 FP16 FMA, x2 for int8, x4 for int4.
            tc_int8_macs_per_sm: 1024,
            tc_int4_macs_per_sm: 2048,
            // 64 CUDA cores x 4-way dp4a.
            dp4a_macs_per_sm: 256,
            smem_insts_per_sm_per_cycle: 4.0,
            launch_overhead_s: 0.8e-6,
            l2_bytes: 5_632 * 1024,
        }
    }

    /// MAC rate per SM per cycle for a precision path.
    pub fn mac_rate(&self, precision: Precision) -> u32 {
        match precision {
            Precision::TensorCoreInt4 => self.tc_int4_macs_per_sm,
            Precision::TensorCoreInt8 => self.tc_int8_macs_per_sm,
            Precision::Dp4aInt8 => self.dp4a_macs_per_sm,
        }
    }

    /// Resident blocks per SM for a kernel's resource footprint.
    pub fn blocks_per_sm(
        &self,
        threads_per_block: u32,
        smem_per_block: u32,
        regs_per_thread: u32,
    ) -> u32 {
        let by_threads = self.max_threads_per_sm / threads_per_block.max(1);
        let by_smem = self
            .smem_per_sm
            .checked_div(smem_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        let regs_per_block = regs_per_thread * threads_per_block;
        let by_regs = self
            .regs_per_sm
            .checked_div(regs_per_block)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads
            .min(by_smem)
            .min(by_regs)
            .min(self.max_blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_ordering_matches_turing() {
        let d = Device::rtx2080ti();
        // int4 = 2x int8 TC = 8x dp4a — the paper's headroom hierarchy.
        assert_eq!(d.mac_rate(Precision::TensorCoreInt4), 2 * d.mac_rate(Precision::TensorCoreInt8));
        assert_eq!(d.mac_rate(Precision::TensorCoreInt8), 4 * d.mac_rate(Precision::Dp4aInt8));
    }

    #[test]
    fn occupancy_limited_by_each_resource() {
        let d = Device::rtx2080ti();
        // Thread-limited: 512-thread blocks -> 2 per SM.
        assert_eq!(d.blocks_per_sm(512, 0, 0), 2);
        // Smem-limited: 40 KB blocks -> 1 per SM.
        assert_eq!(d.blocks_per_sm(128, 40 * 1024, 32), 1);
        // Register-limited: 256 regs x 256 threads = 64K -> 1 per SM.
        assert_eq!(d.blocks_per_sm(256, 0, 256), 1);
        // Cap at max_blocks_per_sm.
        assert_eq!(d.blocks_per_sm(32, 0, 8), 16);
    }

    #[test]
    fn int4_packs_two_per_byte() {
        assert_eq!(Precision::TensorCoreInt4.operand_bytes(1000), 500);
        assert_eq!(Precision::TensorCoreInt4.operand_bytes(1001), 501);
        assert_eq!(Precision::TensorCoreInt8.operand_bytes(1000), 1000);
        assert_eq!(Precision::Dp4aInt8.operand_bytes(7), 7);
    }
}
