//! Wave-quantized analytic kernel timing.
//!
//! The model explains the two effects the paper's evaluation hinges on:
//!
//! 1. **Occupancy / tail quantization** — a kernel's blocks are placed on SMs
//!    in waves of `sm_count x blocks_per_sm`; at batch 1 the grid is small,
//!    so tile-size choice decides how many SMs do useful work (this is why
//!    profile-run auto-search gains 2–3x in Fig. 11).
//! 2. **Compute/memory overlap** — the Fig. 6 register double-buffer lets
//!    DRAM time hide under `mma` time; without it they serialize.

use crate::device::{Device, Precision};

/// Analytic description of one kernel launch.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelDesc {
    /// Blocks in the grid.
    pub grid_blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Shared memory per block in bytes.
    pub smem_per_block: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Multiply-accumulates per block.
    pub macs_per_block: u64,
    /// Arithmetic path.
    pub precision: Precision,
    /// Issue efficiency of the MAC pipeline in `(0, 1]` (SASS quality,
    /// scheduling; calibrated per implementation).
    pub compute_efficiency: f64,
    /// Effective DRAM traffic in bytes (after any L2 reuse assumption).
    pub dram_bytes: u64,
    /// Coalescing efficiency of the global access pattern in `(0, 1]`.
    pub coalescing_factor: f64,
    /// Shared-memory instructions per block (LDS + STS).
    pub smem_insts_per_block: u64,
    /// Fixed prologue/epilogue/sync cycles per block.
    pub per_block_overhead_cycles: u64,
    /// Whether the Fig. 6 register double-buffer overlaps DRAM with compute.
    pub double_buffered: bool,
}

/// Timing breakdown of one kernel launch.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct KernelTime {
    /// Total modeled time in seconds (including launch overhead).
    pub total_s: f64,
    /// Compute-pipeline time in seconds (wave-summed).
    pub compute_s: f64,
    /// DRAM time in seconds.
    pub dram_s: f64,
    /// Kernel launch overhead in seconds.
    pub launch_s: f64,
    /// MMA (Tensor Core / dp4a) share of `compute_s`, wave-summed. Blocks
    /// serialize on `max(mma, smem) + overhead`, so
    /// `max(mma_s, smem_s) + epilogue_s == compute_s` exactly.
    pub mma_s: f64,
    /// Shared-memory reorder (LDS/STS issue) share of `compute_s`.
    pub smem_s: f64,
    /// Fixed per-block prologue/epilogue/sync share of `compute_s`.
    pub epilogue_s: f64,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Number of waves.
    pub waves: u64,
}

impl KernelTime {
    /// Total time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_s * 1e6
    }
}

/// A launch descriptor that cannot run on the device: which hardware limit
/// it exceeds. Returned by [`KernelDesc::check_resources`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResourceViolation {
    /// More threads per block than the hardware block limit (1024).
    ThreadsPerBlock {
        /// Requested threads.
        threads: u32,
        /// The hardware limit.
        limit: u32,
    },
    /// Static shared memory request exceeds the per-SM capacity.
    SmemPerBlock {
        /// Requested bytes.
        bytes: u32,
        /// The device's shared memory per SM.
        limit: u32,
    },
    /// Per-thread register count exceeds the ISA encoding limit (255).
    RegsPerThread {
        /// Requested registers.
        regs: u32,
        /// The architectural limit.
        limit: u32,
    },
    /// The block's total register footprint exceeds the SM register file.
    RegsPerBlock {
        /// `regs_per_thread x threads_per_block`.
        regs: u32,
        /// The device's register file size.
        limit: u32,
    },
}

impl std::fmt::Display for ResourceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceViolation::ThreadsPerBlock { threads, limit } => {
                write!(f, "{threads} threads per block exceeds the {limit}-thread limit")
            }
            ResourceViolation::SmemPerBlock { bytes, limit } => {
                write!(f, "{bytes} B of shared memory exceeds the {limit} B per-SM capacity")
            }
            ResourceViolation::RegsPerThread { regs, limit } => {
                write!(f, "{regs} registers per thread exceeds the ISA limit of {limit}")
            }
            ResourceViolation::RegsPerBlock { regs, limit } => {
                write!(f, "{regs} registers per block exceeds the {limit}-register file")
            }
        }
    }
}

impl std::error::Error for ResourceViolation {}

/// The ISA register-index encoding limit (SASS encodes 8-bit register
/// indices; R255 is reserved as RZ).
pub const MAX_REGS_PER_THREAD: u32 = 255;

/// The hardware threads-per-block launch limit.
pub const MAX_THREADS_PER_BLOCK: u32 = 1024;

/// 32-bit registers per SM (the Volta/Turing/Ampere register-file size;
/// [`Device::rtx2080ti`] uses the same value, and the tile-config gate in
/// `lowbit-conv-gpu` rejects blocks that cannot fit it).
pub const REGS_PER_SM: u32 = 65536;

impl KernelDesc {
    /// Checks the descriptor against the device's hard launch limits: a
    /// kernel over any of these would fail to launch (or fail to compile)
    /// rather than run slowly — which is why the occupancy model in
    /// [`KernelDesc::time`] must never see such a descriptor.
    pub fn check_resources(&self, device: &Device) -> Result<(), ResourceViolation> {
        let thread_limit = MAX_THREADS_PER_BLOCK.min(device.max_threads_per_sm);
        if self.threads_per_block > thread_limit {
            return Err(ResourceViolation::ThreadsPerBlock {
                threads: self.threads_per_block,
                limit: thread_limit,
            });
        }
        if self.smem_per_block > device.smem_per_sm {
            return Err(ResourceViolation::SmemPerBlock {
                bytes: self.smem_per_block,
                limit: device.smem_per_sm,
            });
        }
        if self.regs_per_thread > MAX_REGS_PER_THREAD {
            return Err(ResourceViolation::RegsPerThread {
                regs: self.regs_per_thread,
                limit: MAX_REGS_PER_THREAD,
            });
        }
        let block_regs = self.regs_per_thread * self.threads_per_block;
        if block_regs > device.regs_per_sm {
            return Err(ResourceViolation::RegsPerBlock {
                regs: block_regs,
                limit: device.regs_per_sm,
            });
        }
        Ok(())
    }

    /// Models the launch on `device`.
    pub fn time(&self, device: &Device) -> KernelTime {
        assert!(self.grid_blocks > 0, "empty grid");
        assert!(self.compute_efficiency > 0.0 && self.compute_efficiency <= 1.0);
        assert!(self.coalescing_factor > 0.0 && self.coalescing_factor <= 1.0);
        let blocks_per_sm = device
            .blocks_per_sm(
                self.threads_per_block,
                self.smem_per_block,
                self.regs_per_thread,
            )
            .max(1);
        let wave_capacity = device.sm_count as u64 * blocks_per_sm as u64;
        let waves = self.grid_blocks.div_ceil(wave_capacity);

        // Per-block busy cycles on its SM's pipelines: Tensor Core (or dp4a)
        // MACs at the calibrated efficiency, shared-memory instruction issue,
        // and fixed overhead. Blocks co-resident on one SM serialize on
        // these throughput resources.
        let mac_rate = device.mac_rate(self.precision) as f64;
        let mac_cycles = self.macs_per_block as f64 / (mac_rate * self.compute_efficiency);
        let smem_cycles =
            self.smem_insts_per_block as f64 / device.smem_insts_per_sm_per_cycle;
        let block_cycles =
            mac_cycles.max(smem_cycles) + self.per_block_overhead_cycles as f64;

        // Wave-by-wave: the busiest SM in each wave sets its duration. The
        // serialized block count is accumulated as an integer so the stage
        // split below ties back to compute_s exactly (not just to rounding).
        let mut serialized_blocks = 0u64;
        let mut remaining = self.grid_blocks;
        for _ in 0..waves {
            let in_wave = remaining.min(wave_capacity);
            serialized_blocks += in_wave.div_ceil(device.sm_count as u64);
            remaining -= in_wave;
        }
        let cycles_to_s = |cycles: f64| serialized_blocks as f64 * cycles / device.clock_hz;
        let compute_s = cycles_to_s(block_cycles);
        let mma_s = cycles_to_s(mac_cycles);
        let smem_s = cycles_to_s(smem_cycles);
        let epilogue_s = cycles_to_s(self.per_block_overhead_cycles as f64);
        let dram_s = self.dram_bytes as f64
            / (device.dram_bytes_per_sec * self.coalescing_factor);
        let body_s = if self.double_buffered {
            compute_s.max(dram_s) + 0.2 * compute_s.min(dram_s)
        } else {
            compute_s + dram_s
        };
        KernelTime {
            total_s: device.launch_overhead_s + body_s,
            compute_s,
            dram_s,
            launch_s: device.launch_overhead_s,
            mma_s,
            smem_s,
            epilogue_s,
            blocks_per_sm,
            waves,
        }
    }
}

/// A purely memory-bound elementwise kernel (quantize / dequantize / ReLU):
/// launch overhead plus streaming traffic.
pub fn elementwise_time(device: &Device, bytes_read: u64, bytes_written: u64) -> f64 {
    device.launch_overhead_s + (bytes_read + bytes_written) as f64 / device.dram_bytes_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_desc() -> KernelDesc {
        KernelDesc {
            grid_blocks: 68,
            threads_per_block: 128,
            smem_per_block: 16 * 1024,
            regs_per_thread: 64,
            macs_per_block: 1 << 20,
            precision: Precision::TensorCoreInt8,
            compute_efficiency: 0.5,
            dram_bytes: 1 << 20,
            coalescing_factor: 1.0,
            smem_insts_per_block: 1 << 10,
            per_block_overhead_cycles: 1000,
            double_buffered: true,
        }
    }

    #[test]
    fn more_blocks_than_capacity_adds_waves() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        let t1 = k.time(&d);
        assert_eq!(t1.waves, 1);
        k.grid_blocks = 68 * t1.blocks_per_sm as u64 * 3;
        let t3 = k.time(&d);
        assert_eq!(t3.waves, 3);
        assert!(t3.compute_s > 2.5 * t1.compute_s);
    }

    #[test]
    fn wave_boundary_is_exact() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        let t1 = k.time(&d);
        let capacity = d.sm_count as u64 * t1.blocks_per_sm as u64;
        // Exactly one full wave...
        k.grid_blocks = capacity;
        let full = k.time(&d);
        assert_eq!(full.waves, 1);
        // ...and one block more costs a whole extra wave (tail
        // quantization, the Fig. 11 mechanism).
        k.grid_blocks = capacity + 1;
        let spill = k.time(&d);
        assert_eq!(spill.waves, 2);
        assert!(spill.compute_s > full.compute_s * 1.2);
    }

    #[test]
    fn tiny_grids_underutilize_the_gpu() {
        // 1 block vs 68 blocks of the same shape: same wall time per wave
        // (the 67 idle SMs do not help), so 68x the work for free.
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        k.grid_blocks = 1;
        let t1 = k.time(&d);
        k.grid_blocks = 68;
        let t68 = k.time(&d);
        assert!((t1.compute_s - t68.compute_s).abs() / t68.compute_s < 1e-9);
    }

    #[test]
    fn double_buffering_hides_memory_time() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        // base_desc's 1 MiB of traffic is comparable to its compute time,
        // which is where overlap matters most.
        let overlapped = k.time(&d);
        k.double_buffered = false;
        let serial = k.time(&d);
        assert!(serial.total_s > overlapped.total_s * 1.2);
    }

    #[test]
    fn int4_halves_compute_time_at_same_macs() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        k.dram_bytes = 0x1000; // compute-bound
        k.per_block_overhead_cycles = 100;
        let t8 = k.time(&d);
        k.precision = Precision::TensorCoreInt4;
        let t4 = k.time(&d);
        // Fixed per-block overhead keeps it just under exactly 2x.
        let ratio = t8.compute_s / t4.compute_s;
        assert!((1.6..=2.0).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dp4a_is_four_times_slower_than_tensor_core() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        k.per_block_overhead_cycles = 0;
        k.dram_bytes = 1;
        let t8 = k.time(&d);
        k.precision = Precision::Dp4aInt8;
        let dp = k.time(&d);
        assert!((dp.compute_s / t8.compute_s - 4.0).abs() < 1e-6);
    }

    #[test]
    fn poor_coalescing_inflates_memory_time() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        k.dram_bytes = 1 << 28;
        k.double_buffered = false;
        let good = k.time(&d);
        k.coalescing_factor = 0.25;
        let bad = k.time(&d);
        assert!((bad.dram_s / good.dram_s - 4.0).abs() < 1e-6);
    }

    #[test]
    fn smem_pressure_can_dominate_blocks() {
        let d = Device::rtx2080ti();
        let mut k = base_desc();
        k.macs_per_block = 1; // no MAC work
        k.smem_insts_per_block = 1 << 20;
        let t = k.time(&d);
        let expected = (1u64 << 20) as f64 / 4.0 / d.clock_hz;
        assert!(t.compute_s >= expected);
    }

    #[test]
    fn stage_split_reconstructs_compute_time() {
        let d = Device::rtx2080ti();
        for grid in [1u64, 68, 68 * 4 + 1] {
            for smem_insts in [1u64 << 10, 1 << 20] {
                let mut k = base_desc();
                k.grid_blocks = grid;
                k.smem_insts_per_block = smem_insts;
                let t = k.time(&d);
                assert!(t.mma_s > 0.0 && t.smem_s > 0.0 && t.epilogue_s > 0.0);
                // Blocks serialize on max(mma, smem) + fixed overhead, so the
                // stage split reproduces compute_s (same wave quantization).
                let rebuilt = t.mma_s.max(t.smem_s) + t.epilogue_s;
                assert!(
                    (rebuilt - t.compute_s).abs() <= 1e-12 * t.compute_s,
                    "grid={grid} smem={smem_insts}: {} vs {}",
                    rebuilt,
                    t.compute_s
                );
            }
        }
    }

    #[test]
    fn elementwise_kernels_are_launch_plus_streaming() {
        let d = Device::rtx2080ti();
        let t = elementwise_time(&d, 1 << 20, 1 << 20);
        assert!(t > d.launch_overhead_s);
        assert!(t < d.launch_overhead_s + 1e-4);
    }
}
