//! Memory-behaviour analysis: global-load coalescing and shared-memory
//! access width (the Sec. 4.3 optimizations).

/// Width of each thread's shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmemWidth {
    /// Four separate `LDS.32` per 16 bytes — the strided pattern of
    /// Fig. 5(a).
    Lds32,
    /// One `LDS.128` per 16 bytes — the reordered pattern of Fig. 5(b).
    Lds128,
}

impl SmemWidth {
    /// Bytes moved per shared-memory instruction.
    pub fn bytes_per_inst(self) -> u64 {
        match self {
            SmemWidth::Lds32 => 4,
            SmemWidth::Lds128 => 16,
        }
    }
}

/// Number of shared-memory load instructions needed to move `bytes` at this
/// access width (the Fig. 5 reordering cuts this by 4x).
pub fn smem_load_insts(bytes: u64, width: SmemWidth) -> u64 {
    bytes.div_ceil(width.bytes_per_inst())
}

/// Efficiency of a warp's global access pattern in `[0, 1]`.
///
/// A warp requests `32 x per_thread_bytes`; the hardware services it in
/// 32-byte sectors. With fully contiguous per-thread runs of
/// `contiguous_run_bytes` (e.g. 16 for the paper's `int4` vector loads) the
/// request compacts into the minimum number of sectors; shorter runs waste
/// sector bandwidth proportionally.
pub fn global_coalescing_factor(per_thread_bytes: u64, contiguous_run_bytes: u64) -> f64 {
    assert!(per_thread_bytes > 0);
    let run = contiguous_run_bytes.min(per_thread_bytes).max(1);
    // Each contiguous run occupies ceil(run/32) sectors; useful bytes = run.
    let sectors_per_run = run.div_ceil(32);
    let useful = run as f64;
    let fetched = (sectors_per_run * 32) as f64;
    // Runs from consecutive threads coalesce further when the run is a
    // multiple of the sector size; model the sub-sector case directly:
    if run >= 32 {
        useful / fetched
    } else {
        // Sub-sector runs from different rows each burn a full sector unless
        // they happen to be adjacent; assume the pessimistic distinct-row
        // case softened by 2x for cache-line reuse.
        (useful / 32.0 * 2.0).min(1.0)
    }
}

/// Bank-conflict degree of a warp's shared-memory access where consecutive
/// threads touch addresses `stride_bytes` apart (32 banks x 4 bytes).
///
/// The classic result: threads hit bank `(t * stride_words) mod 32`, so the
/// number of threads serialized on one bank is `gcd(stride_words, 32)`.
/// Word-contiguous access (stride 4 B) is conflict-free; the Fig. 5(a)
/// strided pattern (16-byte stride between consecutive threads' LDS.32
/// accesses) serializes 4-way.
pub fn bank_conflict_degree(stride_bytes: u64) -> u64 {
    let words = (stride_bytes / 4).max(1);
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 { a } else { gcd(b, a % b) }
    }
    gcd(words, 32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lds128_cuts_instructions_by_four() {
        // The Fig. 5 claim: 16-byte warps of data per thread need one
        // LDS.128 instead of four LDS.32.
        assert_eq!(smem_load_insts(16, SmemWidth::Lds32), 4);
        assert_eq!(smem_load_insts(16, SmemWidth::Lds128), 1);
        let bytes = 4096;
        assert_eq!(
            smem_load_insts(bytes, SmemWidth::Lds32),
            4 * smem_load_insts(bytes, SmemWidth::Lds128)
        );
    }

    #[test]
    fn coalescing_is_perfect_for_aligned_vector_loads() {
        // 16B per thread, 16B contiguous (the paper's int4 loads): two
        // threads fill each 32B sector exactly.
        assert!(global_coalescing_factor(16, 16) >= 0.99);
    }

    #[test]
    fn short_runs_hurt() {
        // 3-channel stem convolution: 3-byte runs scattered across rows.
        let f = global_coalescing_factor(16, 3);
        assert!(f < 0.25, "short runs must waste sector bandwidth, got {f}");
        assert!(f > 0.0);
    }

    #[test]
    fn bank_conflicts_follow_the_gcd_rule() {
        assert_eq!(bank_conflict_degree(4), 1, "word-contiguous is free");
        assert_eq!(bank_conflict_degree(8), 2);
        assert_eq!(bank_conflict_degree(16), 4, "the Fig. 5(a) stride");
        assert_eq!(bank_conflict_degree(128), 32, "same-bank worst case");
        assert_eq!(bank_conflict_degree(12), 1, "odd word strides spread out");
    }

    #[test]
    fn factor_is_monotone_in_run_length() {
        let mut last = 0.0;
        for run in [1, 2, 4, 8, 16, 32, 64] {
            let f = global_coalescing_factor(64, run);
            assert!(f >= last, "coalescing must not degrade with longer runs");
            last = f;
        }
        assert!(last >= 0.99);
    }
}
