//! Memory-behaviour analysis: global-load coalescing, shared-memory access
//! width (the Sec. 4.3 optimizations), and the typed warp-access metadata
//! the static verifier reasons over.

/// Width of each thread's shared-memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SmemWidth {
    /// Four separate `LDS.32` per 16 bytes — the strided pattern of
    /// Fig. 5(a).
    Lds32,
    /// One `LDS.128` per 16 bytes — the reordered pattern of Fig. 5(b).
    Lds128,
}

impl SmemWidth {
    /// Bytes moved per shared-memory instruction.
    pub fn bytes_per_inst(self) -> u64 {
        match self {
            SmemWidth::Lds32 => 4,
            SmemWidth::Lds128 => 16,
        }
    }
}

/// Number of shared-memory load instructions needed to move `bytes` at this
/// access width (the Fig. 5 reordering cuts this by 4x).
pub fn smem_load_insts(bytes: u64, width: SmemWidth) -> u64 {
    bytes.div_ceil(width.bytes_per_inst())
}

/// Efficiency of a warp's global access pattern in `[0, 1]`.
///
/// A warp requests `32 x per_thread_bytes`; the hardware services it in
/// 32-byte sectors. With fully contiguous per-thread runs of
/// `contiguous_run_bytes` (e.g. 16 for the paper's `int4` vector loads) the
/// request compacts into the minimum number of sectors; shorter runs waste
/// sector bandwidth proportionally.
pub fn global_coalescing_factor(per_thread_bytes: u64, contiguous_run_bytes: u64) -> f64 {
    assert!(per_thread_bytes > 0);
    let run = contiguous_run_bytes.min(per_thread_bytes).max(1);
    // Each contiguous run occupies ceil(run/32) sectors; useful bytes = run.
    let sectors_per_run = run.div_ceil(32);
    let useful = run as f64;
    let fetched = (sectors_per_run * 32) as f64;
    // Runs from consecutive threads coalesce further when the run is a
    // multiple of the sector size; model the sub-sector case directly:
    if run >= 32 {
        useful / fetched
    } else {
        // Sub-sector runs from different rows each burn a full sector unless
        // they happen to be adjacent; assume the pessimistic distinct-row
        // case softened by 2x for cache-line reuse.
        (useful / 32.0 * 2.0).min(1.0)
    }
}

/// Bank-conflict degree of a warp's shared-memory access where consecutive
/// threads touch addresses `stride_bytes` apart (32 banks x 4 bytes).
///
/// The classic result: threads hit bank `(t * stride_words) mod 32`, so the
/// number of threads serialized on one bank is `gcd(stride_words, 32)`.
/// Word-contiguous access (stride 4 B) is conflict-free; the Fig. 5(a)
/// strided pattern (16-byte stride between consecutive threads' LDS.32
/// accesses) serializes 4-way.
pub fn bank_conflict_degree(stride_bytes: u64) -> u64 {
    let words = (stride_bytes / 4).max(1);
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 { a } else { gcd(b, a % b) }
    }
    gcd(words, 32)
}

/// Which memory a warp access touches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemSpace {
    /// Device DRAM through the L2 (coalescing applies).
    Global,
    /// Per-SM shared memory (bank conflicts apply).
    Shared,
}

/// One warp-level access pattern, described per thread lane — the typed
/// metadata the GPU static verifier lifts kernels into. `lane_stride_bytes`
/// is the address delta between consecutive lanes of the warp; a stride of
/// zero is a broadcast (every lane reads the same address).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpAccess {
    /// What the access stages (for reports and violations).
    pub desc: &'static str,
    /// Which memory it touches.
    pub space: MemSpace,
    /// Bytes moved per lane per instruction (4 for `LDS.32`/scalar loads,
    /// 16 for `LDS.128`/vector loads).
    pub bytes_per_lane: u64,
    /// Address delta between consecutive lanes, in bytes.
    pub lane_stride_bytes: u64,
    /// Guaranteed alignment of every lane's address, in bytes.
    pub align_bytes: u64,
    /// Longest contiguous run each lane's bytes sit in (global accesses
    /// only; feeds the sector model of [`global_coalescing_factor`]).
    pub contiguous_run_bytes: u64,
    /// Warp instructions of this pattern per block per k-iteration
    /// (informational; the cost model counts them separately).
    pub count: u64,
}

impl WarpAccess {
    /// Bank-conflict degree of this access (shared memory only): the worst
    /// per-phase serialization over the warp. Generalizes the gcd rule of
    /// [`bank_conflict_degree`] to wide accesses and broadcasts by direct
    /// simulation: `LDS.128` is serviced in quarter-warp phases of 8 lanes,
    /// `LDS.32` in one phase of 32, and distinct 32-bit words mapping to the
    /// same bank within a phase serialize (same-word access is a broadcast
    /// and free).
    pub fn bank_conflict_degree(&self) -> u64 {
        debug_assert_eq!(self.space, MemSpace::Shared);
        let lanes_per_phase: u64 = match self.bytes_per_lane {
            16 => 8,
            _ => 32,
        };
        let words_per_lane = (self.bytes_per_lane / 4).max(1);
        let mut worst = 1u64;
        for phase in 0..(32 / lanes_per_phase) {
            // Distinct words touched in this phase, bucketed by bank.
            let mut words: Vec<u64> = Vec::with_capacity(32);
            for lane in 0..lanes_per_phase {
                let base = (phase * lanes_per_phase + lane) * self.lane_stride_bytes;
                for w in 0..words_per_lane {
                    words.push(base / 4 + w);
                }
            }
            words.sort_unstable();
            words.dedup();
            let mut per_bank = [0u64; 32];
            for w in words {
                per_bank[(w % 32) as usize] += 1;
            }
            worst = worst.max(*per_bank.iter().max().unwrap());
        }
        worst
    }

    /// `true` when every lane's address is provably aligned to the access
    /// width (a misaligned `LDS.128`/`LD.128` faults on real hardware).
    pub fn width_aligned(&self) -> bool {
        self.align_bytes.is_multiple_of(self.bytes_per_lane)
            && self.lane_stride_bytes.is_multiple_of(self.bytes_per_lane)
    }

    /// Coalescing efficiency of a global access (delegates to the sector
    /// model of [`global_coalescing_factor`]).
    pub fn coalescing_factor(&self) -> f64 {
        debug_assert_eq!(self.space, MemSpace::Global);
        global_coalescing_factor(self.bytes_per_lane, self.contiguous_run_bytes)
    }
}

/// One event in a register staging-buffer schedule (the Fig. 6 double
/// buffer): the fragment for reduction step `step` is written into (or read
/// out of) staging slot `buf`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufOp {
    /// The global/shared load for `step` retires into staging slot `buf`.
    Write {
        /// Staging slot index.
        buf: usize,
        /// Reduction step whose operands the slot now holds.
        step: usize,
    },
    /// The `mma` for `step` consumes staging slot `buf`.
    Read {
        /// Staging slot index.
        buf: usize,
        /// Reduction step being computed.
        step: usize,
    },
}

/// A register staging schedule: the per-k-step order of buffer writes and
/// reads one warp executes inside a k-tile iteration. Emitted by the kernel
/// plan ([`crate::kernel::KernelDesc`] carries only the aggregate toggle);
/// checked for read-before-write and overwrite-before-read hazards by the
/// static verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StagingSchedule {
    /// Number of staging slots (1 = single buffered, 2 = Fig. 6).
    pub buffers: usize,
    /// Reduction steps per k-tile iteration (`k_tile / k_step`).
    pub steps: usize,
    /// The issue-ordered events.
    pub ops: Vec<BufOp>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lds128_cuts_instructions_by_four() {
        // The Fig. 5 claim: 16-byte warps of data per thread need one
        // LDS.128 instead of four LDS.32.
        assert_eq!(smem_load_insts(16, SmemWidth::Lds32), 4);
        assert_eq!(smem_load_insts(16, SmemWidth::Lds128), 1);
        let bytes = 4096;
        assert_eq!(
            smem_load_insts(bytes, SmemWidth::Lds32),
            4 * smem_load_insts(bytes, SmemWidth::Lds128)
        );
    }

    #[test]
    fn coalescing_is_perfect_for_aligned_vector_loads() {
        // 16B per thread, 16B contiguous (the paper's int4 loads): two
        // threads fill each 32B sector exactly.
        assert!(global_coalescing_factor(16, 16) >= 0.99);
    }

    #[test]
    fn short_runs_hurt() {
        // 3-channel stem convolution: 3-byte runs scattered across rows.
        let f = global_coalescing_factor(16, 3);
        assert!(f < 0.25, "short runs must waste sector bandwidth, got {f}");
        assert!(f > 0.0);
    }

    #[test]
    fn bank_conflicts_follow_the_gcd_rule() {
        assert_eq!(bank_conflict_degree(4), 1, "word-contiguous is free");
        assert_eq!(bank_conflict_degree(8), 2);
        assert_eq!(bank_conflict_degree(16), 4, "the Fig. 5(a) stride");
        assert_eq!(bank_conflict_degree(128), 32, "same-bank worst case");
        assert_eq!(bank_conflict_degree(12), 1, "odd word strides spread out");
    }

    fn smem_access(bytes_per_lane: u64, lane_stride_bytes: u64) -> WarpAccess {
        WarpAccess {
            desc: "test",
            space: MemSpace::Shared,
            bytes_per_lane,
            lane_stride_bytes,
            align_bytes: bytes_per_lane,
            contiguous_run_bytes: bytes_per_lane,
            count: 1,
        }
    }

    #[test]
    fn broadcast_and_stride_edge_cases() {
        // Stride 0: every lane reads the same word — a broadcast, free.
        assert_eq!(smem_access(4, 0).bank_conflict_degree(), 1);
        // Word-contiguous LDS.32 spreads across banks.
        assert_eq!(smem_access(4, 4).bank_conflict_degree(), 1);
        // The Fig. 5(a) pattern: scalar loads striding 16 B across lanes.
        assert_eq!(smem_access(4, 16).bank_conflict_degree(), 4);
        // Contiguous LDS.128: quarter-warp phases keep it conflict-free.
        assert_eq!(smem_access(16, 16).bank_conflict_degree(), 1);
        // All 32 lanes on one bank.
        assert_eq!(smem_access(4, 128).bank_conflict_degree(), 32);
    }

    #[test]
    fn non_power_of_two_strides_match_the_gcd_rule() {
        // For LDS.32 the simulation must agree with gcd(stride_words, 32).
        for stride_words in [1u64, 2, 3, 5, 6, 7, 9, 12, 15, 24, 33] {
            let sim = smem_access(4, stride_words * 4).bank_conflict_degree();
            assert_eq!(
                sim,
                bank_conflict_degree(stride_words * 4),
                "stride {stride_words} words"
            );
        }
    }

    #[test]
    fn wide_access_alignment_is_checked_per_lane() {
        assert!(smem_access(16, 16).width_aligned());
        // A 16-byte access whose lanes sit 4 bytes apart cannot all be
        // 16-aligned.
        let mut a = smem_access(16, 4);
        assert!(!a.width_aligned());
        // Nor one whose base alignment is only 4.
        a = smem_access(16, 16);
        a.align_bytes = 4;
        assert!(!a.width_aligned());
    }

    #[test]
    fn per_thread_bytes_beyond_the_run_cap_at_the_run() {
        // A 16-byte request over 4-byte rows coalesces no better than the
        // 4-byte run allows; asking for more per thread must not help.
        let short = global_coalescing_factor(16, 4);
        let wide = global_coalescing_factor(64, 4);
        assert_eq!(short, wide, "run length caps the useful bytes");
        assert!(short < global_coalescing_factor(16, 16));
        // Degenerate zero-length run is clamped to one byte, not a panic.
        assert!(global_coalescing_factor(4, 0) > 0.0);
    }

    #[test]
    fn factor_is_monotone_in_run_length() {
        let mut last = 0.0;
        for run in [1, 2, 4, 8, 16, 32, 64] {
            let f = global_coalescing_factor(64, run);
            assert!(f >= last, "coalescing must not degrade with longer runs");
            last = f;
        }
        assert!(last >= 0.99);
    }
}
