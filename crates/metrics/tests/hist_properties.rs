//! Property tests for the log-linear histogram: shard merge associativity
//! and agreement between merged and single-shard views.

use lowbit_metrics::{HistSnapshot, HistSpec, Histogram};
use proptest::prelude::*;

const SPEC: HistSpec = HistSpec { min_value_micros: 1, octaves: 24, sub: 4 };

fn snapshot_of(values: &[f64]) -> HistSnapshot {
    let h = Histogram::new(SPEC);
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn sample_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.00001f64..20_000.0, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) agree exactly on bucket counts, count,
    /// min, max, and every percentile; sums agree to float tolerance.
    #[test]
    fn merge_is_associative(
        a in sample_values(),
        b in sample_values(),
        c in sample_values(),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left.counts, &right.counts);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.min, right.min);
        prop_assert_eq!(left.max, right.max);
        let tol = 1e-9 * (1.0 + left.sum.abs());
        prop_assert!((left.sum - right.sum).abs() <= tol);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(left.percentile(q), right.percentile(q));
        }
    }

    /// Splitting one stream across shards yields the same merged view as
    /// recording everything through a single shard.
    #[test]
    fn sharded_recording_equals_single_stream(
        values in sample_values(),
        splits in prop::collection::vec(0usize..4, 0..40),
    ) {
        let h = Histogram::new(SPEC);
        let shards = [h.shard(), h.shard(), h.shard(), h.shard()];
        for (i, &v) in values.iter().enumerate() {
            let which = splits.get(i).copied().unwrap_or(0);
            shards[which].record(v);
        }
        let merged = h.snapshot();
        let single = snapshot_of(&values);
        prop_assert_eq!(&merged.counts, &single.counts);
        prop_assert_eq!(merged.count, single.count);
        prop_assert_eq!(merged.min, single.min);
        prop_assert_eq!(merged.max, single.max);
        for q in [0.5, 0.99] {
            prop_assert_eq!(merged.percentile(q), single.percentile(q));
        }
    }

    /// A percentile read off the histogram lands within one bucket width of
    /// the exact nearest-rank sample (in-range values only).
    #[test]
    fn percentile_is_within_one_bucket_of_exact(
        mut values in prop::collection::vec(0.01f64..10_000.0, 1..50),
        q in 0.01f64..=1.0,
    ) {
        let snap = snapshot_of(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let approx = snap.percentile(q);
        prop_assert!(
            (approx - exact).abs() <= SPEC.width_at(exact) + 1e-12,
            "q={} exact={} approx={} width={}", q, exact, approx, SPEC.width_at(exact)
        );
    }
}
