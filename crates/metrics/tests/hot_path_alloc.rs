//! Proof that steady-state recording is allocation-free: counters, gauges,
//! and histogram shards must not touch the heap once registered.
//!
//! Uses a counting global allocator; the lib crate itself stays
//! `forbid(unsafe_code)` — the unsafe lives only in this test binary.

use lowbit_metrics::{HistSpec, Registry};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recording_is_allocation_free_after_registration() {
    let registry = Registry::new();
    // Registration may allocate freely: families, label vectors, cells.
    let counter = registry.counter("serve_completed_total", "done", &[("class", "demo-w4")]);
    let gauge = registry.gauge("queue_depth", "depth", &[]);
    let hist = registry.histogram(
        "serve_total_ms",
        "latency",
        &[("class", "demo-w4")],
        HistSpec::latency_ms(),
    );
    let shard = hist.shard();

    // Touch every path once so lazy effects (if any) settle.
    counter.inc();
    gauge.set(1.0);
    shard.record(2.5);
    hist.record(3.5);

    let before = allocations();
    for i in 0..10_000u64 {
        counter.add(i % 3);
        gauge.set(i as f64);
        shard.record(0.5 + (i % 100) as f64);
        hist.record(0.25 + (i % 50) as f64);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "hot-path recording must not allocate (saw {} allocations)",
        after - before
    );
}
