//! **lowbit-metrics** — dependency-free production metrics for the lowbit
//! serving stack.
//!
//! The tracing layer (`lowbit-trace`) answers "what did this one run do?";
//! this crate answers "what is the fleet doing right now?" — online
//! aggregation cheap enough to leave on in production:
//!
//! * [`Counter`] — monotone `u64`, one atomic add per increment.
//! * [`Gauge`] — last-write-wins `f64` behind an atomic bit store.
//! * [`hist::Histogram`] — log-linear (HDR-style) histograms with
//!   **mergeable per-worker shards**: each worker records into its own
//!   cells, snapshots merge bucket-wise, so the hot path never contends on
//!   one mutex and never allocates.
//! * [`Registry`] — a named, labelled family store with a deterministic
//!   [`Snapshot`] (name- and label-sorted), a Prometheus text-format 0.0.4
//!   writer ([`prom::render`]) plus a hand-rolled validator
//!   ([`prom::validate`]), and a stable JSON dump ([`Snapshot::to_json`]).
//! * [`drift::DriftTracker`] — the cost-model drift auditor: per-key
//!   observed/modeled ratio statistics and typed [`drift::DriftReport`]s
//!   flagging keys whose ratio leaves a configured band.
//!
//! The registry is registration-locked only: acquiring an instrument takes
//! the registry mutex once; recording through the returned handle touches
//! only that instrument's own state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod hist;
pub mod prom;

pub use hist::{HistShard, HistSnapshot, HistSpec, Histogram};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64`. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A free-standing gauge initialized to 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sorted label pairs identifying one family member.
pub type Labels = Vec<(String, String)>;

/// What kind of instrument a family holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log-linear histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prom_type(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Histogram),
}

struct Family {
    help: String,
    kind: MetricKind,
    children: BTreeMap<Labels, Instrument>,
}

/// The named instrument store. Registration is idempotent: asking for an
/// existing `(name, labels)` returns a handle to the same instrument, so
/// workers can resolve their handles independently.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn canonical_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label_name(k), "invalid label name {k:?} on {name}");
        }
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} re-registered as {kind:?}, was {:?}",
            family.kind
        );
        family.children.entry(canonical_labels(labels)).or_insert_with(make).clone()
    }

    /// Registers (or fetches) a counter.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, MetricKind::Counter, || {
            Instrument::Counter(Counter::new())
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a gauge.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, MetricKind::Gauge, || {
            Instrument::Gauge(Gauge::new())
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a histogram under `spec`. The spec of an
    /// existing member wins; callers share geometry by construction.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        spec: HistSpec,
    ) -> Histogram {
        match self.instrument(name, help, labels, MetricKind::Histogram, || {
            Instrument::Hist(Histogram::new(spec))
        }) {
            Instrument::Hist(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// A deterministic point-in-time view: families sorted by name, members
    /// by their sorted label sets.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().expect("registry poisoned");
        Snapshot {
            families: families
                .iter()
                .map(|(name, fam)| FamilySnapshot {
                    name: name.clone(),
                    help: fam.help.clone(),
                    kind: fam.kind,
                    children: fam
                        .children
                        .iter()
                        .map(|(labels, inst)| ChildSnapshot {
                            labels: labels.clone(),
                            value: match inst {
                                Instrument::Counter(c) => ChildValue::Counter(c.value()),
                                Instrument::Gauge(g) => ChildValue::Gauge(g.value()),
                                Instrument::Hist(h) => ChildValue::Hist(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Every gauge in the registry as `(exposition name, value)` rows —
    /// the compact form trace summaries embed.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.snapshot()
            .families
            .iter()
            .filter(|f| f.kind == MetricKind::Gauge)
            .flat_map(|f| {
                f.children.iter().map(|c| {
                    (prom::sample_name(&f.name, &c.labels), match c.value {
                        ChildValue::Gauge(v) => v,
                        _ => unreachable!("gauge family"),
                    })
                })
            })
            .collect()
    }
}

/// One family member's captured value.
#[derive(Clone, Debug)]
pub enum ChildValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Merged histogram.
    Hist(HistSnapshot),
}

/// One family member: its labels plus captured value.
#[derive(Clone, Debug)]
pub struct ChildSnapshot {
    /// Sorted label pairs.
    pub labels: Labels,
    /// The captured value.
    pub value: ChildValue,
}

/// One family: name, help, kind, members.
#[derive(Clone, Debug)]
pub struct FamilySnapshot {
    /// Family name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Members, sorted by label set.
    pub children: Vec<ChildSnapshot>,
}

/// A deterministic registry capture.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// Formats an `f64` for deterministic output: fixed 6-decimal notation with
/// `inf`/`-inf`/`NaN` spelled out (Prometheus accepts `+Inf` spellings; the
/// JSON writer substitutes `null`).
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf".to_string() } else { "-Inf".to_string() };
    }
    format!("{v:.6}")
}

impl Snapshot {
    /// Deterministic JSON: families in name order, members in label order,
    /// numbers in fixed notation. Non-finite gauge/histogram bounds render
    /// as `null`.
    pub fn to_json(&self) -> String {
        fn js_num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.6}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n  \"families\": [\n");
        let fams: Vec<String> = self
            .families
            .iter()
            .map(|f| {
                let children: Vec<String> = f
                    .children
                    .iter()
                    .map(|c| {
                        let labels: Vec<String> = c
                            .labels
                            .iter()
                            .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                            .collect();
                        let value = match &c.value {
                            ChildValue::Counter(n) => format!("{{\"counter\":{n}}}"),
                            ChildValue::Gauge(v) => format!("{{\"gauge\":{}}}", js_num(*v)),
                            ChildValue::Hist(h) => {
                                let counts: Vec<String> =
                                    h.counts.iter().map(|c| c.to_string()).collect();
                                format!(
                                    "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"counts\":[{}]}}",
                                    h.count,
                                    js_num(h.sum),
                                    js_num(h.min),
                                    js_num(h.max),
                                    counts.join(",")
                                )
                            }
                        };
                        format!("      {{\"labels\":{{{}}},\"value\":{value}}}", labels.join(","))
                    })
                    .collect();
                format!(
                    "    {{\n      \"name\": \"{}\",\n      \"kind\": \"{}\",\n      \"children\": [\n{}\n      ]\n    }}",
                    escape_json(&f.name),
                    f.kind.prom_type(),
                    children.join(",\n")
                )
            })
            .collect();
        out.push_str(&fams.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Whether `name` is a legal Prometheus metric name.
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a legal Prometheus label name.
pub fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_cells_across_clones() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests", &[("class", "demo")]);
        let b = r.counter("requests_total", "requests", &[("class", "demo")]);
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        let g = r.gauge("depth", "queue depth", &[]);
        g.set(2.5);
        assert_eq!(r.gauge("depth", "", &[]).value(), 2.5);
        assert_eq!(r.gauge_values(), vec![("depth".to_string(), 2.5)]);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("z_total", "z", &[]).inc();
        r.counter("a_total", "a", &[("k", "2")]).inc();
        r.counter("a_total", "a", &[("k", "1")]).add(5);
        let s = r.snapshot();
        assert_eq!(s.families[0].name, "a_total");
        assert_eq!(s.families[0].children[0].labels, vec![("k".into(), "1".into())]);
        assert_eq!(s.to_json(), r.snapshot().to_json());
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflicts_are_rejected() {
        let r = Registry::new();
        r.counter("x_total", "", &[]);
        r.gauge("x_total", "", &[]);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("serve_rejected_total"));
        assert!(valid_metric_name(":ns:x_1"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(!valid_metric_name(""));
        assert!(valid_label_name("reason"));
        assert!(!valid_label_name("le:"));
    }
}
