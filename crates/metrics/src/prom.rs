//! Prometheus text-format (0.0.4) exposition: a renderer over [`Snapshot`]
//! and a hand-rolled validator used by tests and the `--check` golden gate.
//!
//! The renderer is deterministic: families in name order, members in label
//! order, values in fixed notation ([`crate::format_value`]). Histograms
//! expand to cumulative `_bucket{le="..."}` samples ending at `le="+Inf"`,
//! plus `_sum` and `_count`.

use crate::{format_value, ChildValue, Labels, MetricKind, Snapshot};

/// Escapes a label value per the exposition format.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// The sample name a member renders as, e.g. `depth` or
/// `requests_total{class="demo"}` — used by trace summaries for compact rows.
pub fn sample_name(name: &str, labels: &Labels) -> String {
    format!("{name}{}", label_block(labels, None))
}

/// Renders `snapshot` as Prometheus text format 0.0.4.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snapshot.families {
        out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.prom_type()));
        for child in &fam.children {
            match &child.value {
                ChildValue::Counter(n) => {
                    out.push_str(&format!(
                        "{}{} {n}\n",
                        fam.name,
                        label_block(&child.labels, None)
                    ));
                }
                ChildValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        fam.name,
                        label_block(&child.labels, None),
                        format_value(*v)
                    ));
                }
                ChildValue::Hist(h) => {
                    let mut cumulative = 0u64;
                    for (idx, count) in h.counts.iter().enumerate() {
                        cumulative += count;
                        let edge = h.spec.upper_edge(idx);
                        let le = if edge.is_finite() {
                            format_value(edge)
                        } else {
                            "+Inf".to_string()
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cumulative}\n",
                            fam.name,
                            label_block(&child.labels, Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        fam.name,
                        label_block(&child.labels, None),
                        format_value(h.sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        fam.name,
                        label_block(&child.labels, None),
                        h.count
                    ));
                }
            }
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Validates `text` against the exposition format rules this stack relies
/// on. Checks, per family: `# HELP` then `# TYPE` precede all samples; the
/// TYPE keyword is known; sample names match the family (modulo `_bucket`/
/// `_sum`/`_count` suffixes for histograms); names and label names are
/// legal; label values are properly quoted; values parse; histogram bucket
/// series are cumulative, end at `le="+Inf"`, and agree with `_count`.
/// Returns the number of samples validated.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut current: Option<FamilyCheck> = None;
    let mut seen_help = false;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !crate::valid_metric_name(name) {
                return Err(format!("line {n}: bad metric name in HELP: {name:?}"));
            }
            if let Some(fam) = current.take() {
                fam.finish()?;
            }
            current = Some(FamilyCheck::new(name));
            seen_help = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            let fam = current
                .as_mut()
                .ok_or_else(|| format!("line {n}: TYPE before HELP for {name}"))?;
            if name != fam.name {
                return Err(format!("line {n}: TYPE name {name} != HELP name {}", fam.name));
            }
            fam.kind = Some(match kind {
                "counter" => MetricKind::Counter,
                "gauge" => MetricKind::Gauge,
                "histogram" => MetricKind::Histogram,
                other => return Err(format!("line {n}: unknown TYPE {other:?}")),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        if !seen_help {
            return Err(format!("line {n}: sample before any HELP/TYPE header"));
        }
        let fam = current
            .as_mut()
            .ok_or_else(|| format!("line {n}: sample outside a family block"))?;
        fam.check_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;
    }
    if let Some(fam) = current.take() {
        fam.finish()?;
    }
    Ok(samples)
}

struct FamilyCheck {
    name: String,
    kind: Option<MetricKind>,
    // histogram bookkeeping, keyed by the non-`le` label block
    hist_last_cumulative: std::collections::BTreeMap<String, (u64, bool)>, // (last, saw_inf)
    hist_counts: std::collections::BTreeMap<String, u64>,
}

impl FamilyCheck {
    fn new(name: &str) -> FamilyCheck {
        FamilyCheck {
            name: name.to_string(),
            kind: None,
            hist_last_cumulative: Default::default(),
            hist_counts: Default::default(),
        }
    }

    fn check_sample(&mut self, line: &str) -> Result<(), String> {
        let kind = self.kind.ok_or("sample before TYPE")?;
        let (name, rest) = split_name(line)?;
        let (labels, value_str) = split_labels(rest)?;
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s.parse().map_err(|_| format!("unparseable value {s:?}"))?,
        };
        let mut le = None;
        for (k, v) in &labels {
            if !crate::valid_label_name(k) {
                return Err(format!("bad label name {k:?}"));
            }
            if k == "le" {
                le = Some(v.clone());
            }
        }
        match kind {
            MetricKind::Counter | MetricKind::Gauge => {
                if name != self.name {
                    return Err(format!("sample name {name} != family {}", self.name));
                }
                if kind == MetricKind::Counter && value < 0.0 {
                    return Err("negative counter".to_string());
                }
            }
            MetricKind::Histogram => {
                let base = &self.name;
                if name == format!("{base}_bucket") {
                    let le = le.ok_or("histogram bucket without le label")?;
                    let key = labels_key_without_le(&labels);
                    let cum = value as u64;
                    let entry = self.hist_last_cumulative.entry(key).or_insert((0, false));
                    if entry.1 {
                        return Err("bucket after le=\"+Inf\"".to_string());
                    }
                    if cum < entry.0 {
                        return Err(format!(
                            "bucket series not cumulative: {cum} < {}",
                            entry.0
                        ));
                    }
                    entry.0 = cum;
                    if le == "+Inf" {
                        entry.1 = true;
                    }
                } else if name == format!("{base}_count") {
                    let key = labels_key_without_le(&labels);
                    self.hist_counts.insert(key, value as u64);
                } else if name != format!("{base}_sum") {
                    return Err(format!("sample name {name} not part of histogram {base}"));
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<(), String> {
        if self.kind == Some(MetricKind::Histogram) {
            for (key, (last, saw_inf)) in &self.hist_last_cumulative {
                if !saw_inf {
                    return Err(format!("{}: histogram {key:?} missing le=\"+Inf\"", self.name));
                }
                match self.hist_counts.get(key) {
                    Some(count) if *count == *last => {}
                    Some(count) => {
                        return Err(format!(
                            "{}: +Inf bucket {last} != _count {count} for {key:?}",
                            self.name
                        ))
                    }
                    None => {
                        return Err(format!("{}: missing _count for {key:?}", self.name));
                    }
                }
            }
        }
        Ok(())
    }
}

fn split_name(line: &str) -> Result<(&str, &str), String> {
    let end = line.find(['{', ' ']).ok_or("no value on sample line")?;
    let name = &line[..end];
    if !crate::valid_metric_name(name) {
        return Err(format!("bad sample name {name:?}"));
    }
    Ok((name, &line[end..]))
}

/// A parsed label block plus the remainder of the sample line after it.
type LabelSplit<'a> = (Vec<(String, String)>, &'a str);

fn split_labels(rest: &str) -> Result<LabelSplit<'_>, String> {
    if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_close(body).ok_or("unterminated label block")?;
        let labels = parse_labels(&body[..close])?;
        let after = body[close + 1..].trim_start();
        Ok((labels, after))
    } else {
        Ok((Vec::new(), rest.trim_start()))
    }
}

fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = rest[..eq].trim().to_string();
        let after_eq = &rest[eq + 1..];
        let quoted = after_eq.strip_prefix('"').ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut escaped = false;
        let mut consumed = None;
        for (i, c) in quoted.char_indices() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    c => c,
                });
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    consumed = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let close = consumed.ok_or("unterminated label value")?;
        out.push((key, value));
        rest = quoted[close + 1..].trim_start_matches(',').trim_start();
    }
    Ok(out)
}

fn labels_key_without_le(labels: &[(String, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    parts.sort();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistSpec, Registry};

    fn demo_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("serve_completed_total", "completed requests", &[("class", "demo-w4")])
            .add(7);
        r.gauge("plan_cache_hit_ratio", "cache hit ratio", &[]).set(0.875);
        let h = r.histogram(
            "serve_total_ms",
            "end-to-end latency",
            &[("class", "demo-w4")],
            HistSpec::latency_ms(),
        );
        for v in [0.5, 1.5, 3.0, 250.0] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn rendered_exposition_validates() {
        let text = render(&demo_snapshot());
        let samples = validate(&text).expect("exposition should be valid");
        assert!(samples > 3, "expected bucket samples, got {samples}");
        assert!(text.contains("# TYPE serve_total_ms histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("serve_total_ms_count{class=\"demo-w4\"} 4"));
    }

    #[test]
    fn validator_rejects_broken_expositions() {
        // sample before headers
        assert!(validate("x_total 1\n").is_err());
        // TYPE mismatch
        assert!(validate("# HELP a_total h\n# TYPE b_total counter\na_total 1\n").is_err());
        // non-cumulative buckets
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1.000000\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate(bad).is_err());
        // +Inf disagrees with _count
        let bad2 = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n";
        assert!(validate(bad2).is_err());
        // missing +Inf
        let bad3 = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"1.000000\"} 3\nh_sum 1\nh_count 3\n";
        assert!(validate(bad3).is_err());
        // good minimal family passes
        let ok = "# HELP c_total x\n# TYPE c_total counter\nc_total{k=\"v\"} 2\n";
        assert_eq!(validate(ok), Ok(1));
    }

    #[test]
    fn label_values_are_escaped_and_reparsed() {
        let r = Registry::new();
        r.counter("c_total", "help", &[("k", "a\"b\\c\nd")]).inc();
        let text = render(&r.snapshot());
        assert!(validate(&text).is_ok());
        assert!(text.contains("a\\\"b\\\\c\\nd"));
    }
}
