//! Log-linear (HDR-style) histograms with mergeable per-worker shards.
//!
//! A [`HistSpec`] carves the value axis into octaves (powers of two above
//! `min`), each split into `sub` linear sub-buckets, plus one underflow and
//! one overflow bucket. Bucket geometry is a pure function of the spec, so
//! two shards recorded on different threads merge by adding counts — no
//! rebinning, no information loss beyond the bucket width itself.
//!
//! Recording is designed for hot paths: a shard owns its cells behind its
//! own mutex (uncontended when each worker holds its own shard) and a record
//! is an index computation plus a handful of in-place adds — zero heap
//! allocations in the steady state.

use std::sync::{Arc, Mutex};

/// Bucket geometry: `octaves` powers of two above `min`, each split into
/// `sub` linear sub-buckets. Values below `min` land in the underflow
/// bucket, values at or above `min * 2^octaves` in the overflow bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistSpec {
    /// Lower edge of the first regular bucket, in the recorded unit.
    pub min_value_micros: u64,
    /// Number of powers of two covered above the minimum.
    pub octaves: u32,
    /// Linear sub-buckets per octave.
    pub sub: u32,
}

impl HistSpec {
    /// The default latency spec: 1 µs to ~17 s in quarter-octave buckets
    /// (relative bucket width 19–25%), recorded in milliseconds.
    pub const fn latency_ms() -> HistSpec {
        HistSpec { min_value_micros: 1, octaves: 24, sub: 4 }
    }

    /// Lower edge of the first regular bucket (the recorded unit is
    /// milliseconds for the stock specs).
    pub fn min_value(&self) -> f64 {
        self.min_value_micros as f64 / 1e3
    }

    /// Total bucket count including underflow (index 0) and overflow (last).
    pub fn buckets(&self) -> usize {
        (self.octaves * self.sub) as usize + 2
    }

    /// The bucket index `v` falls into. NaN and anything below `min` count
    /// as underflow; anything at or past the top edge as overflow.
    pub fn index(&self, v: f64) -> usize {
        let min = self.min_value();
        if v.is_nan() || v < min {
            return 0;
        }
        let r = v / min;
        let octave = r.log2().floor();
        if octave >= self.octaves as f64 {
            return self.buckets() - 1;
        }
        let octave = octave as u32;
        let within = r / f64::powi(2.0, octave as i32); // in [1, 2)
        let s = (((within - 1.0) * self.sub as f64) as u32).min(self.sub - 1);
        1 + (octave * self.sub + s) as usize
    }

    /// Upper edge of bucket `idx`: `min` for underflow, `+inf` for overflow.
    pub fn upper_edge(&self, idx: usize) -> f64 {
        if idx == 0 {
            return self.min_value();
        }
        if idx >= self.buckets() - 1 {
            return f64::INFINITY;
        }
        let i = (idx - 1) as u32;
        let (octave, s) = (i / self.sub, i % self.sub);
        self.min_value() * f64::powi(2.0, octave as i32) * (1.0 + (s + 1) as f64 / self.sub as f64)
    }

    /// Width of the bucket holding `v` — the histogram's resolution there.
    /// Percentiles read off a merged histogram are exact to within this.
    pub fn width_at(&self, v: f64) -> f64 {
        let idx = self.index(v);
        if idx == 0 {
            return self.min_value();
        }
        if idx >= self.buckets() - 1 {
            return f64::INFINITY;
        }
        let octave = ((idx - 1) as u32) / self.sub;
        self.min_value() * f64::powi(2.0, octave as i32) / self.sub as f64
    }
}

/// The cells one shard accumulates into. Fixed-size once constructed.
#[derive(Clone, Debug)]
struct Cells {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Cells {
    fn new(spec: &HistSpec) -> Cells {
        Cells {
            counts: vec![0; spec.buckets()],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, spec: &HistSpec, v: f64) {
        self.counts[spec.index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// A merged, point-in-time view of a histogram (or of one shard).
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// The bucket geometry counts were recorded under.
    pub spec: HistSpec,
    /// Per-bucket counts, underflow first, overflow last.
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`+inf` when empty).
    pub min: f64,
    /// Largest recorded value (`-inf` when empty).
    pub max: f64,
}

impl HistSnapshot {
    /// An empty snapshot under `spec`.
    pub fn empty(spec: HistSpec) -> HistSnapshot {
        let c = Cells::new(&spec);
        HistSnapshot { spec, counts: c.counts, count: 0, sum: 0.0, min: c.min, max: c.max }
    }

    /// Adds `other` into `self` bucket-wise. Panics if the specs differ —
    /// merging across geometries would silently rebin.
    pub fn merge(&mut self, other: &HistSnapshot) {
        assert_eq!(self.spec, other.spec, "cannot merge histograms with different specs");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank `q`-th percentile read off the buckets: the upper edge
    /// of the bucket holding the rank-`ceil(q·n)` sample — within one bucket
    /// width of the exact nearest-rank value (see [`HistSpec::width_at`]).
    /// Underflow reports the first bucket edge, overflow the observed max.
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if idx == self.counts.len() - 1 {
                    return self.max; // overflow: the edge is +inf, max is exact
                }
                return self.spec.upper_edge(idx);
            }
        }
        self.max
    }
}

struct Inner {
    spec: HistSpec,
    shards: Mutex<Vec<Arc<Mutex<Cells>>>>,
}

/// A histogram family member: cheap to clone, records through shards.
///
/// [`Histogram::record`] goes through a built-in shard (fine for
/// low-contention callers); worker threads call [`Histogram::shard`] once at
/// startup and record through their own [`HistShard`] so the hot path never
/// contends on a shared mutex.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
    default_shard: HistShard,
}

impl Histogram {
    /// A new histogram under `spec` with one built-in shard.
    pub fn new(spec: HistSpec) -> Histogram {
        let inner = Arc::new(Inner { spec, shards: Mutex::new(Vec::new()) });
        let default_shard = new_shard(&inner);
        Histogram { inner, default_shard }
    }

    /// The bucket geometry.
    pub fn spec(&self) -> HistSpec {
        self.inner.spec
    }

    /// Creates a dedicated shard for one worker thread. Allocation happens
    /// here, at registration time — recording through the shard is
    /// allocation-free.
    pub fn shard(&self) -> HistShard {
        new_shard(&self.inner)
    }

    /// Records through the built-in shard.
    pub fn record(&self, v: f64) {
        self.default_shard.record(v);
    }

    /// Merges every shard into one snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot::empty(self.inner.spec);
        let shards = self.inner.shards.lock().expect("histogram shards poisoned");
        for shard in shards.iter() {
            let cells = shard.lock().expect("histogram shard poisoned");
            for (a, b) in snap.counts.iter_mut().zip(&cells.counts) {
                *a += b;
            }
            snap.count += cells.count;
            snap.sum += cells.sum;
            snap.min = snap.min.min(cells.min);
            snap.max = snap.max.max(cells.max);
        }
        snap
    }
}

fn new_shard(inner: &Arc<Inner>) -> HistShard {
    let cells = Arc::new(Mutex::new(Cells::new(&inner.spec)));
    inner.shards.lock().expect("histogram shards poisoned").push(cells.clone());
    HistShard { spec: inner.spec, cells }
}

/// One worker's private accumulation cells. Records lock only this shard's
/// own mutex, so per-worker shards never contend with each other.
#[derive(Clone)]
pub struct HistShard {
    spec: HistSpec,
    cells: Arc<Mutex<Cells>>,
}

impl HistShard {
    /// Records one value: bucket index + in-place adds, no allocation.
    pub fn record(&self, v: f64) {
        self.cells.lock().expect("histogram shard poisoned").record(&self.spec, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: HistSpec = HistSpec { min_value_micros: 1000, octaves: 4, sub: 4 }; // 1..16 ms

    #[test]
    fn bucket_geometry_is_consistent() {
        assert_eq!(SPEC.buckets(), 18);
        // Every upper edge maps back to a strictly later bucket.
        for idx in 1..SPEC.buckets() - 2 {
            let edge = SPEC.upper_edge(idx);
            assert!(SPEC.index(edge) > idx, "edge {edge} of bucket {idx} must be exclusive");
            assert!(SPEC.index(edge * 0.999) <= idx);
        }
        assert_eq!(SPEC.index(0.5), 0, "below min is underflow");
        assert_eq!(SPEC.index(-3.0), 0, "negative is underflow");
        assert_eq!(SPEC.index(f64::NAN), 0, "NaN is underflow");
        assert_eq!(SPEC.index(16.0), SPEC.buckets() - 1, "top edge is overflow");
        assert_eq!(SPEC.index(1e9), SPEC.buckets() - 1);
        assert_eq!(SPEC.index(1.0), 1, "min lands in the first regular bucket");
    }

    #[test]
    fn zero_samples_snapshot_is_inert() {
        let h = Histogram::new(SPEC);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.99), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.min.is_infinite() && s.max.is_infinite());
    }

    #[test]
    fn single_sample_percentiles_hit_its_bucket_edge() {
        let h = Histogram::new(SPEC);
        h.record(3.1);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let p = s.percentile(q);
            assert!((p - 3.1).abs() <= SPEC.width_at(3.1), "q={q}: {p}");
        }
        assert_eq!(s.min, 3.1);
        assert_eq!(s.max, 3.1);
    }

    #[test]
    fn underflow_and_overflow_are_counted_and_bounded() {
        let h = Histogram::new(SPEC);
        h.record(0.0001); // below the 1 ms floor
        h.record(1e6); // far above the 16 ms ceiling
        let s = h.snapshot();
        assert_eq!(s.counts[0], 1);
        assert_eq!(*s.counts.last().unwrap(), 1);
        assert_eq!(s.count, 2);
        // p50 is the underflow sample: reported at the first bucket edge.
        assert_eq!(s.percentile(0.5), SPEC.min_value());
        // p100 is the overflow sample: reported at the tracked max, exactly.
        assert_eq!(s.percentile(1.0), 1e6);
    }

    #[test]
    fn shards_merge_into_one_view() {
        let h = Histogram::new(SPEC);
        let a = h.shard();
        let b = h.shard();
        a.record(2.0);
        b.record(4.0);
        b.record(8.0);
        h.record(1.5);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.5);
        assert_eq!(s.max, 8.0);
        assert!((s.sum - 15.5).abs() < 1e-12);
    }
}
