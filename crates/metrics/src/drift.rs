//! Cost-model drift auditing.
//!
//! The planner's whole backend-selection story rests on `predicted_millis`
//! staying honest (paper Fig. 10: the batch/backend crossover moves when the
//! model drifts). A [`DriftTracker`] accumulates per-key
//! `observed / predicted` ratio statistics — keys are typically
//! `(layer shape, bits, backend)` tuples, but the tracker is generic so this
//! crate stays dependency-free — and [`DriftTracker::audit`] emits a typed
//! [`DriftReport`] flagging every key whose mean ratio leaves the configured
//! band. The report is the warm-start signal ROADMAP item 5's tuning
//! database consumes: a flagged key means "re-measure this shape before
//! trusting the plan".

use std::collections::HashMap;
use std::fmt::Display;
use std::sync::Mutex;

/// The acceptance band for mean observed/predicted ratios, plus the minimum
/// evidence required before a key may be flagged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftBand {
    /// Flag keys whose mean ratio falls below this.
    pub lo: f64,
    /// Flag keys whose mean ratio rises above this.
    pub hi: f64,
    /// Keys with fewer samples than this are reported but never flagged.
    pub min_samples: u64,
}

impl Default for DriftBand {
    fn default() -> DriftBand {
        // ±25% around the model with at least 3 observations: wide enough to
        // absorb prepack-cold first runs if one slips in, tight enough to
        // catch a mis-modeled kernel (the injected 2x test perturbation sits
        // far outside).
        DriftBand { lo: 0.75, hi: 1.25, min_samples: 3 }
    }
}

#[derive(Clone, Copy, Default)]
struct DriftCell {
    samples: u64,
    sum_ratio: f64,
    min_ratio: f64,
    max_ratio: f64,
}

/// Accumulates observed-vs-predicted ratio statistics per key.
#[derive(Default)]
pub struct DriftTracker<K> {
    cells: Mutex<HashMap<K, DriftCell>>,
}

impl<K: Eq + std::hash::Hash + Clone + Ord> DriftTracker<K> {
    /// An empty tracker.
    pub fn new() -> DriftTracker<K> {
        DriftTracker { cells: Mutex::new(HashMap::new()) }
    }

    /// Records one execution: `predicted` and `observed` in the same unit
    /// (the stack uses milliseconds). Non-positive predictions are skipped —
    /// a zero-cost model row can never produce a meaningful ratio.
    pub fn record(&self, key: K, predicted: f64, observed: f64) {
        if !predicted.is_finite() || predicted <= 0.0 || !observed.is_finite() {
            return;
        }
        let ratio = observed / predicted;
        let mut cells = self.cells.lock().expect("drift tracker poisoned");
        let cell = cells.entry(key).or_default();
        if cell.samples == 0 {
            cell.min_ratio = ratio;
            cell.max_ratio = ratio;
        } else {
            cell.min_ratio = cell.min_ratio.min(ratio);
            cell.max_ratio = cell.max_ratio.max(ratio);
        }
        cell.samples += 1;
        cell.sum_ratio += ratio;
    }

    /// Audits every key against `band` and returns a deterministic report
    /// (keys in `Ord` order).
    pub fn audit(&self, band: DriftBand) -> DriftReport<K> {
        let cells = self.cells.lock().expect("drift tracker poisoned");
        let mut keys: Vec<DriftKeyStats<K>> = cells
            .iter()
            .map(|(key, cell)| {
                let mean = cell.sum_ratio / cell.samples as f64;
                DriftKeyStats {
                    key: key.clone(),
                    samples: cell.samples,
                    mean_ratio: mean,
                    min_ratio: cell.min_ratio,
                    max_ratio: cell.max_ratio,
                    flagged: cell.samples >= band.min_samples
                        && (mean < band.lo || mean > band.hi),
                }
            })
            .collect();
        keys.sort_by(|a, b| a.key.cmp(&b.key));
        DriftReport { band, keys }
    }
}

/// Per-key ratio statistics inside a [`DriftReport`].
#[derive(Clone, Debug)]
pub struct DriftKeyStats<K> {
    /// The audited key.
    pub key: K,
    /// Number of recorded executions.
    pub samples: u64,
    /// Mean observed/predicted ratio.
    pub mean_ratio: f64,
    /// Smallest observed ratio.
    pub min_ratio: f64,
    /// Largest observed ratio.
    pub max_ratio: f64,
    /// Whether this key's mean ratio left the band (with enough samples).
    pub flagged: bool,
}

/// The audit result: the band used plus every key's statistics, sorted.
#[derive(Clone, Debug)]
pub struct DriftReport<K> {
    /// The band the audit ran with.
    pub band: DriftBand,
    /// Per-key statistics in key order.
    pub keys: Vec<DriftKeyStats<K>>,
}

impl<K> DriftReport<K> {
    /// The flagged subset, in key order.
    pub fn findings(&self) -> Vec<&DriftKeyStats<K>> {
        self.keys.iter().filter(|k| k.flagged).collect()
    }

    /// True when no key left the band.
    pub fn clean(&self) -> bool {
        self.keys.iter().all(|k| !k.flagged)
    }
}

impl<K: Display> DriftReport<K> {
    /// A deterministic, golden-file-friendly rendering: one line per key
    /// with fixed-precision ratios, findings marked `DRIFT`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "drift audit: band [{:.2}, {:.2}], min_samples {}\n",
            self.band.lo, self.band.hi, self.band.min_samples
        );
        for k in &self.keys {
            out.push_str(&format!(
                "{} {} samples={} mean={:.4} min={:.4} max={:.4}\n",
                if k.flagged { "DRIFT" } else { "ok   " },
                k.key,
                k.samples,
                k.mean_ratio,
                k.min_ratio,
                k.max_ratio,
            ));
        }
        out.push_str(&format!(
            "findings: {} of {} keys\n",
            self.keys.iter().filter(|k| k.flagged).count(),
            self.keys.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_band_keys_are_clean() {
        let t: DriftTracker<&'static str> = DriftTracker::new();
        for _ in 0..5 {
            t.record("conv3x3-w4-arm", 2.0, 2.1); // ratio 1.05
        }
        let report = t.audit(DriftBand::default());
        assert!(report.clean());
        assert_eq!(report.keys.len(), 1);
        assert!((report.keys[0].mean_ratio - 1.05).abs() < 1e-12);
    }

    #[test]
    fn out_of_band_key_is_flagged_and_only_that_key() {
        let t: DriftTracker<&'static str> = DriftTracker::new();
        for _ in 0..4 {
            t.record("good", 1.0, 1.0);
            t.record("slow2x", 1.0, 2.0);
        }
        let report = t.audit(DriftBand::default());
        let findings = report.findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "slow2x");
        assert!(!report.clean());
    }

    #[test]
    fn under_sampled_keys_are_never_flagged() {
        let t: DriftTracker<&'static str> = DriftTracker::new();
        t.record("one-shot", 1.0, 10.0);
        let report = t.audit(DriftBand::default());
        assert!(report.clean());
        assert_eq!(report.keys[0].samples, 1);
        assert!((report.keys[0].mean_ratio - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_or_negative_predictions_are_skipped() {
        let t: DriftTracker<&'static str> = DriftTracker::new();
        t.record("bad", 0.0, 5.0);
        t.record("bad", -1.0, 5.0);
        t.record("bad", 1.0, f64::NAN);
        assert!(t.audit(DriftBand::default()).keys.is_empty());
    }

    #[test]
    fn report_renders_deterministically_in_key_order() {
        let t: DriftTracker<&'static str> = DriftTracker::new();
        for _ in 0..3 {
            t.record("zeta", 1.0, 3.0);
            t.record("alpha", 1.0, 1.0);
        }
        let text = t.audit(DriftBand::default()).render();
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta, "keys must render in Ord order:\n{text}");
        assert!(text.contains("DRIFT zeta"));
        assert!(text.contains("ok    alpha"));
        assert!(text.ends_with("findings: 1 of 2 keys\n"));
    }
}
