//! Elementwise layers surrounding the convolutions.

use lowbit_tensor::{QTensor, Tensor};

/// ReLU on a float tensor.
pub fn relu_f32(t: &Tensor<f32>) -> Tensor<f32> {
    let data: Vec<f32> = t.data().iter().map(|&v| v.max(0.0)).collect();
    Tensor::from_vec(t.dims(), t.layout(), data)
}

/// ReLU on a quantized tensor (zero point 0 makes it a max with 0).
pub fn relu_q(t: &QTensor) -> QTensor {
    let data: Vec<i8> = t.data().iter().map(|&v| v.max(0)).collect();
    QTensor::new(
        Tensor::from_vec(t.dims(), t.layout(), data),
        t.bits(),
        t.scale(),
    )
}

/// Adds a per-output-channel bias to an i32 accumulator tensor (the paper's
/// in-place epilogue applies this before re-quantization).
pub fn add_bias(acc: &mut Tensor<i32>, bias: &[i32], channel_dim_is_minor: bool) {
    let (n, c, h, w) = acc.dims();
    let channels = if channel_dim_is_minor { w } else { c };
    assert_eq!(bias.len(), channels, "bias length must match channels");
    for b in 0..n {
        for cc in 0..c {
            for hh in 0..h {
                for ww in 0..w {
                    let ch = if channel_dim_is_minor { ww } else { cc };
                    let v = acc.get((b, cc, hh, ww)) + bias[ch];
                    acc.set((b, cc, hh, ww), v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::{BitWidth, Layout};

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor::from_vec((1, 1, 1, 4), Layout::Nchw, vec![-1.5f32, 0.0, 2.5, -0.1]);
        assert_eq!(relu_f32(&t).data(), &[0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn relu_q_matches_dequantized_relu() {
        let q = QTensor::random((1, 2, 3, 3), Layout::Nchw, BitWidth::W5, 4);
        let direct = relu_q(&q).dequantize();
        let via_float = relu_f32(&q.dequantize());
        assert_eq!(direct.data(), via_float.data());
    }

    #[test]
    fn bias_broadcasts_over_channels_nchw_style() {
        let mut acc = Tensor::from_vec((1, 2, 1, 2), Layout::Nchw, vec![1i32, 2, 3, 4]);
        add_bias(&mut acc, &[10, 20], false);
        assert_eq!(acc.get((0, 0, 0, 0)), 11);
        assert_eq!(acc.get((0, 0, 0, 1)), 12);
        assert_eq!(acc.get((0, 1, 0, 0)), 23);
    }
}
