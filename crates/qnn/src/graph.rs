//! A node/edge layer graph with the Sec. 4.4 quantization-fusion rewrites.
//!
//! The paper's canonical quantized block is
//!
//! ```text
//! quantize → conv(+requantize) → dequantize → quantize → ReLU → dequantize
//! ```
//!
//! but real workloads are not chains: ResNet-50 branches into residual adds
//! and DenseNet-121 into concats. The graph here is a small DAG IR — each
//! node consumes value ids and produces exactly one value — over which the
//! fusion rewrites run as *edge* rewrites:
//!
//! 1. fold `dequantize` into the conv epilogue (conv+dequant fusion),
//! 2. fold the `dequantize → quantize → ReLU` sandwich into the conv's
//!    re-quantization truncation range (conv+ReLU fusion),
//! 3. fold a residual `add` into the producing conv's epilogue (conv+add
//!    fusion) when the conv output has no other consumer.
//!
//! Value id `0` ([`Graph::INPUT`]) is the external graph input; the node at
//! index `i` produces value `i + 1`.

/// A value in the graph: `Graph::INPUT` or the output of one node.
pub type ValueId = usize;

/// The operation a node performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// f32 → int quantization.
    Quantize,
    /// Low-bit convolution with integer re-quantized output.
    Conv,
    /// Conv that writes f32 directly (conv+dequant fused).
    ConvDequant,
    /// Conv whose re-quantization truncates at 0 (conv+ReLU fused).
    ConvRelu,
    /// Conv whose epilogue adds a residual value (conv+add fused).
    ConvAdd,
    /// int → f32 dequantization.
    Dequantize,
    /// ReLU (on either representation).
    Relu,
    /// Elementwise residual addition of two values.
    Add,
    /// Channel concatenation of two or more values.
    Concat,
    /// Channel slice of one value (one branch of a split).
    Split,
}

/// One node: an op applied to input values, producing one output value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// The value ids this node consumes.
    pub inputs: Vec<ValueId>,
}

/// A DAG of quantized-network ops in topological order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Graph {
    /// Nodes in topological order; node `i` produces value `i + 1`.
    pub nodes: Vec<Node>,
    /// The value the graph returns.
    pub output: ValueId,
}

impl Graph {
    /// The external input value id.
    pub const INPUT: ValueId = 0;

    /// An empty graph returning its own input.
    pub fn new() -> Graph {
        Graph { nodes: Vec::new(), output: Graph::INPUT }
    }

    /// Appends a node; inputs must name already-defined values. Returns the
    /// new node's output value id.
    pub fn push(&mut self, op: Op, inputs: Vec<ValueId>) -> ValueId {
        for &v in &inputs {
            assert!(v <= self.nodes.len(), "input value {v} not yet defined");
        }
        self.nodes.push(Node { op, inputs });
        let out = self.nodes.len();
        self.output = out;
        out
    }

    /// A linear chain of ops starting from the graph input (the shape every
    /// pre-DAG graph had).
    pub fn chain(ops: &[Op]) -> Graph {
        let mut g = Graph::new();
        let mut v = Graph::INPUT;
        for &op in ops {
            v = g.push(op, vec![v]);
        }
        g
    }

    /// The paper's unfused reference block.
    pub fn reference_block() -> Graph {
        Graph::chain(&[
            Op::Quantize,
            Op::Conv,
            Op::Dequantize,
            Op::Quantize,
            Op::Relu,
            Op::Dequantize,
        ])
    }

    /// An unfused residual block: two convs, an add with the quantized
    /// input, and a final dequantize (ResNet's basic shape).
    pub fn residual_block() -> Graph {
        let mut g = Graph::new();
        let q = g.push(Op::Quantize, vec![Graph::INPUT]);
        let c1 = g.push(Op::Conv, vec![q]);
        let c2 = g.push(Op::Conv, vec![c1]);
        let a = g.push(Op::Add, vec![c2, q]);
        g.push(Op::Dequantize, vec![a]);
        g
    }

    /// An unfused two-layer dense block: each conv's output is concatenated
    /// onto the running feature map (DenseNet's shape).
    pub fn dense_block() -> Graph {
        let mut g = Graph::new();
        let q = g.push(Op::Quantize, vec![Graph::INPUT]);
        let c1 = g.push(Op::Conv, vec![q]);
        let cat1 = g.push(Op::Concat, vec![q, c1]);
        let c2 = g.push(Op::Conv, vec![cat1]);
        let cat2 = g.push(Op::Concat, vec![cat1, c2]);
        g.push(Op::Dequantize, vec![cat2]);
        g
    }

    /// Number of kernel launches this graph costs (each node is one kernel).
    pub fn kernel_count(&self) -> usize {
        self.nodes.len()
    }

    /// The ops in topological order.
    pub fn ops(&self) -> Vec<Op> {
        self.nodes.iter().map(|n| n.op).collect()
    }

    /// Node indices that consume value `v`.
    fn consumers(&self, v: ValueId) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].inputs.contains(&v)).collect()
    }

    /// True when value `v`'s only use is node `consumer` (and it is not the
    /// graph output).
    fn sole_consumer(&self, v: ValueId, consumer: usize) -> bool {
        self.output != v && self.consumers(v) == [consumer]
    }

    /// Index of the node producing value `v`, if any (`None` for the input).
    fn producer(&self, v: ValueId) -> Option<usize> {
        v.checked_sub(1)
    }

    /// Rewires every use of value `from` (including the graph output) to
    /// value `to`, then removes the given nodes and compacts value ids.
    fn replace_value_and_remove(&mut self, from: ValueId, to: ValueId, dead: &[usize]) {
        for node in &mut self.nodes {
            for input in &mut node.inputs {
                if *input == from {
                    *input = to;
                }
            }
        }
        if self.output == from {
            self.output = to;
        }
        // Compact: dropping node i removes value i + 1; later values shift.
        let mut keep = vec![true; self.nodes.len()];
        for &d in dead {
            keep[d] = false;
        }
        let mut remap = vec![0usize; self.nodes.len() + 1];
        let mut next = 0;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                next += 1;
            }
            remap[i + 1] = next;
        }
        let mut nodes = Vec::with_capacity(next);
        for (i, node) in self.nodes.drain(..).enumerate() {
            if keep[i] {
                let mut node = node;
                for input in &mut node.inputs {
                    *input = remap[*input];
                }
                nodes.push(node);
            }
        }
        self.nodes = nodes;
        self.output = remap[self.output];
    }
}

/// Applies the Sec. 4.4 rewrites (plus conv+add for residual edges) until
/// fixpoint. Each rewrite only fires when every intermediate value has a
/// single consumer, so fan-out edges (true DAG branches) are preserved.
pub fn fuse(graph: &Graph) -> Graph {
    let mut g = graph.clone();
    let mut changed = true;
    while changed {
        changed = false;
        // Rewrite 1 (most specific first): Relu(Quantize(Dequantize(Conv x)))
        // along sole-consumer edges -> ConvRelu.
        for relu in 0..g.nodes.len() {
            if g.nodes[relu].op != Op::Relu {
                continue;
            }
            let Some(quant) = g.producer(g.nodes[relu].inputs[0]) else { continue };
            if g.nodes[quant].op != Op::Quantize
                || !g.sole_consumer(quant + 1, relu)
            {
                continue;
            }
            let Some(deq) = g.producer(g.nodes[quant].inputs[0]) else { continue };
            if g.nodes[deq].op != Op::Dequantize || !g.sole_consumer(deq + 1, quant) {
                continue;
            }
            let Some(conv) = g.producer(g.nodes[deq].inputs[0]) else { continue };
            if g.nodes[conv].op != Op::Conv || !g.sole_consumer(conv + 1, deq) {
                continue;
            }
            g.nodes[conv].op = Op::ConvRelu;
            g.replace_value_and_remove(relu + 1, conv + 1, &[deq, quant, relu]);
            changed = true;
            break;
        }
        if changed {
            continue;
        }
        // Rewrite 2: Dequantize(Conv x) or Dequantize(ConvRelu x) along a
        // sole-consumer edge -> ConvDequant.
        for deq in 0..g.nodes.len() {
            if g.nodes[deq].op != Op::Dequantize {
                continue;
            }
            let Some(conv) = g.producer(g.nodes[deq].inputs[0]) else { continue };
            if !matches!(g.nodes[conv].op, Op::Conv | Op::ConvRelu)
                || !g.sole_consumer(conv + 1, deq)
            {
                continue;
            }
            g.nodes[conv].op = Op::ConvDequant;
            g.replace_value_and_remove(deq + 1, conv + 1, &[deq]);
            changed = true;
            break;
        }
        if changed {
            continue;
        }
        // Rewrite 3: Add(Conv x, r) where the conv feeds only the add ->
        // ConvAdd with the residual as a second input.
        for add in 0..g.nodes.len() {
            if g.nodes[add].op != Op::Add || g.nodes[add].inputs.len() != 2 {
                continue;
            }
            let (a, r) = (g.nodes[add].inputs[0], g.nodes[add].inputs[1]);
            let Some(conv) = g.producer(a) else { continue };
            if g.nodes[conv].op != Op::Conv || !g.sole_consumer(a, add) {
                continue;
            }
            g.nodes[conv].op = Op::ConvAdd;
            g.nodes[conv].inputs.push(r);
            g.replace_value_and_remove(add + 1, conv + 1, &[add]);
            changed = true;
            break;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_block_fuses_to_two_kernels() {
        let fused = fuse(&Graph::reference_block());
        // After both rewrites: [Quantize, ConvDequant].
        assert_eq!(fused.ops(), vec![Op::Quantize, Op::ConvDequant]);
        assert!(fused.kernel_count() < Graph::reference_block().kernel_count());
    }

    #[test]
    fn conv_dequant_pair_fuses() {
        let g = Graph::chain(&[Op::Conv, Op::Dequantize]);
        assert_eq!(fuse(&g).ops(), vec![Op::ConvDequant]);
    }

    #[test]
    fn lone_conv_is_untouched() {
        let g = Graph::chain(&[Op::Quantize, Op::Conv]);
        assert_eq!(fuse(&g), g);
    }

    #[test]
    fn fusion_is_idempotent() {
        let once = fuse(&Graph::reference_block());
        assert_eq!(fuse(&once), once);
    }

    #[test]
    fn residual_block_fuses_add_into_conv() {
        let fused = fuse(&Graph::residual_block());
        // conv2 absorbs the add (5 kernels -> 4); the residual edge (the
        // quantized input) becomes the fused conv's second input.
        assert_eq!(fused.ops(), vec![Op::Quantize, Op::Conv, Op::ConvAdd, Op::Dequantize]);
        assert_eq!(fused.nodes[2].inputs, vec![2, 1]);
    }

    #[test]
    fn fanout_edge_blocks_epilogue_fusion() {
        // The conv output feeds both a dequantize AND an add, so the
        // dequantize cannot be folded into the conv.
        let mut g = Graph::new();
        let q = g.push(Op::Quantize, vec![Graph::INPUT]);
        let c = g.push(Op::Conv, vec![q]);
        let d = g.push(Op::Dequantize, vec![c]);
        let a = g.push(Op::Add, vec![c, q]);
        let _ = d;
        let _ = a;
        let fused = fuse(&g);
        assert!(fused.ops().contains(&Op::Dequantize));
        assert!(fused.ops().contains(&Op::Conv));
    }

    #[test]
    fn dense_block_concats_are_preserved() {
        let fused = fuse(&Graph::dense_block());
        // Concats fan out (cat1 feeds conv2 and cat2), so only the final
        // dequantize has a fusible producer — and that producer is a
        // Concat, not a conv, so it stays too.
        assert_eq!(fused.ops().iter().filter(|&&o| o == Op::Concat).count(), 2);
    }

    #[test]
    fn chain_matches_legacy_shape() {
        let g = Graph::chain(&[Op::Quantize, Op::Conv, Op::Dequantize]);
        assert_eq!(g.kernel_count(), 3);
        assert_eq!(g.output, 3);
        assert_eq!(g.nodes[2].inputs, vec![2]);
    }

    #[test]
    fn split_nodes_survive_fusion() {
        let mut g = Graph::new();
        let q = g.push(Op::Quantize, vec![Graph::INPUT]);
        let s1 = g.push(Op::Split, vec![q]);
        let s2 = g.push(Op::Split, vec![q]);
        let c = g.push(Op::Conv, vec![s1]);
        let a = g.push(Op::Add, vec![c, s2]);
        g.push(Op::Dequantize, vec![a]);
        let fused = fuse(&g);
        assert_eq!(fused.ops().iter().filter(|&&o| o == Op::Split).count(), 2);
        // The add still folds into its conv producer, the dequant into that.
        assert!(fused.ops().contains(&Op::ConvDequant) || fused.ops().contains(&Op::ConvAdd));
    }
}
