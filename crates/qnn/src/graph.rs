//! A minimal layer graph with the Sec. 4.4 quantization-fusion rewrites.
//!
//! The paper's canonical quantized block is
//!
//! ```text
//! quantize → conv(+requantize) → dequantize → quantize → ReLU → dequantize
//! ```
//!
//! and the two rewrites are: (1) fold `dequantize` into the conv epilogue
//! (conv+dequant fusion), and (2) fold the `dequantize → quantize → ReLU`
//! sandwich into the conv's re-quantization truncation range (conv+ReLU
//! fusion).

/// A layer in the (linear) graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// f32 → int quantization.
    Quantize,
    /// Low-bit convolution with integer re-quantized output.
    Conv,
    /// Conv that writes f32 directly (conv+dequant fused).
    ConvDequant,
    /// Conv whose re-quantization truncates at 0 (conv+ReLU fused).
    ConvRelu,
    /// int → f32 dequantization.
    Dequantize,
    /// ReLU (on either representation).
    Relu,
}

/// A linear sequence of layers.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Graph {
    /// Ordered ops.
    pub ops: Vec<Op>,
}

impl Graph {
    /// The paper's unfused reference block.
    pub fn reference_block() -> Graph {
        Graph {
            ops: vec![
                Op::Quantize,
                Op::Conv,
                Op::Dequantize,
                Op::Quantize,
                Op::Relu,
                Op::Dequantize,
            ],
        }
    }

    /// Number of kernel launches this graph costs (each op is one kernel).
    pub fn kernel_count(&self) -> usize {
        self.ops.len()
    }
}

/// Applies both Sec. 4.4 rewrites until fixpoint.
pub fn fuse(graph: &Graph) -> Graph {
    let mut ops = graph.ops.clone();
    let mut changed = true;
    while changed {
        changed = false;
        // Rewrite 1 (more specific first): Conv, Dequantize, Quantize, Relu
        // -> ConvRelu (the trailing representation change disappears because
        // the clamp happens inside the conv's requantization).
        for i in 0..ops.len() {
            if ops[i..].starts_with(&[Op::Conv, Op::Dequantize, Op::Quantize, Op::Relu]) {
                ops.splice(i..i + 4, [Op::ConvRelu]);
                changed = true;
                break;
            }
        }
        if changed {
            continue;
        }
        // Rewrite 2: Conv, Dequantize -> ConvDequant.
        for i in 0..ops.len() {
            if ops[i..].starts_with(&[Op::Conv, Op::Dequantize]) {
                ops.splice(i..i + 2, [Op::ConvDequant]);
                changed = true;
                break;
            }
            if ops[i..].starts_with(&[Op::ConvRelu, Op::Dequantize]) {
                // The fused-ReLU conv can still absorb a following dequant.
                ops.splice(i..i + 2, [Op::ConvDequant]);
                changed = true;
                break;
            }
        }
    }
    Graph { ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_block_fuses_to_three_kernels() {
        let fused = fuse(&Graph::reference_block());
        // quantize, conv(+relu fused, + final dequant fused), = 2 kernels
        // after both rewrites: [Quantize, ConvDequant].
        assert_eq!(fused.ops, vec![Op::Quantize, Op::ConvDequant]);
        assert!(fused.kernel_count() < Graph::reference_block().kernel_count());
    }

    #[test]
    fn conv_dequant_pair_fuses() {
        let g = Graph { ops: vec![Op::Conv, Op::Dequantize] };
        assert_eq!(fuse(&g).ops, vec![Op::ConvDequant]);
    }

    #[test]
    fn lone_conv_is_untouched() {
        let g = Graph { ops: vec![Op::Quantize, Op::Conv] };
        assert_eq!(fuse(&g), g);
    }

    #[test]
    fn fusion_is_idempotent() {
        let once = fuse(&Graph::reference_block());
        assert_eq!(fuse(&once), once);
    }
}
