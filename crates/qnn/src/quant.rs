//! Linear symmetric quantization (zero point 0), the scheme the paper adopts
//! from DSQ/LSQ-style training work — performance kernels see only the
//! integer values and the scales.

use lowbit_tensor::{BitWidth, Layout, QTensor, Tensor};

/// A per-tensor symmetric quantizer: `real ≈ scale * q` with
/// `q ∈ [qmin(bits), qmax(bits)]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Quantizer {
    /// Target bit width.
    pub bits: BitWidth,
    /// Scale (real units per quantization step).
    pub scale: f32,
}

impl Quantizer {
    /// Calibrates a quantizer from the maximum absolute value of the data.
    pub fn calibrate(bits: BitWidth, data: &[f32]) -> Quantizer {
        let max_abs = data.iter().fold(0f32, |m, v| m.max(v.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / bits.qmax() as f32
        };
        Quantizer { bits, scale }
    }

    /// Quantizes one value.
    #[inline]
    pub fn quantize(&self, v: f32) -> i8 {
        let q = (v / self.scale).round() as i32;
        self.bits.clamp_i32(q)
    }

    /// Dequantizes one value.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// Quantizes an `f32` tensor into a [`QTensor`].
pub fn quantize_f32(t: &Tensor<f32>, quantizer: &Quantizer) -> QTensor {
    let data: Vec<i8> = t.data().iter().map(|&v| quantizer.quantize(v)).collect();
    QTensor::new(
        Tensor::from_vec(t.dims(), t.layout(), data),
        quantizer.bits,
        quantizer.scale,
    )
}

/// Dequantizes an i32 accumulator tensor with the combined scale
/// `scale_in * scale_w` (the conv+dequantization fusion writes this
/// directly).
pub fn dequantize_i32(acc: &Tensor<i32>, combined_scale: f32) -> Tensor<f32> {
    let data: Vec<f32> = acc
        .data()
        .iter()
        .map(|&v| v as f32 * combined_scale)
        .collect();
    Tensor::from_vec(acc.dims(), acc.layout(), data)
}

/// Re-quantization parameters: i32 accumulators back to `bits`-wide integers.
///
/// `clamp_min` is adjustable: the conv+ReLU fusion of Sec. 4.4 sets it to 0,
/// which folds the ReLU into the truncation for free.
///
/// ```
/// use lowbit_qnn::RequantParams;
/// use lowbit_tensor::BitWidth;
///
/// let rq = RequantParams::new(BitWidth::W8, 0.5);
/// assert_eq!(rq.apply(-10), -5);
/// assert_eq!(rq.with_relu().apply(-10), 0); // fused ReLU truncation
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RequantParams {
    /// Output bit width.
    pub bits: BitWidth,
    /// Combined multiplier `scale_in * scale_w / scale_out`.
    pub multiplier: f32,
    /// Lower truncation bound (defaults to `bits.qmin()`).
    pub clamp_min: i8,
}

impl RequantParams {
    /// Standard re-quantization into the adjusted range of `bits`.
    pub fn new(bits: BitWidth, multiplier: f32) -> RequantParams {
        RequantParams {
            bits,
            multiplier,
            clamp_min: bits.qmin(),
        }
    }

    /// The conv+ReLU-fused variant: truncation range starts at 0.
    pub fn with_relu(mut self) -> RequantParams {
        self.clamp_min = 0;
        self
    }

    /// Applies to one accumulator.
    #[inline]
    pub fn apply(&self, acc: i32) -> i8 {
        let v = (acc as f32 * self.multiplier).round() as i32;
        v.clamp(self.clamp_min as i32, self.bits.qmax() as i32) as i8
    }
}

/// Re-quantizes an accumulator tensor.
pub fn requantize(acc: &Tensor<i32>, params: &RequantParams) -> QTensor {
    let data: Vec<i8> = acc.data().iter().map(|&v| params.apply(v)).collect();
    QTensor::new(
        Tensor::from_vec(acc.dims(), acc.layout(), data),
        params.bits,
        1.0, // output scale is carried by the enclosing graph
    )
}

/// Convenience: an all-zeros f32 tensor quantized at `bits` (used by tests).
pub fn zeros_q(dims: (usize, usize, usize, usize), layout: Layout, bits: BitWidth) -> QTensor {
    QTensor::new(Tensor::zeros(dims, layout), bits, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_maps_max_to_qmax() {
        let data = vec![0.5f32, -2.0, 1.0];
        let q = Quantizer::calibrate(BitWidth::W4, &data);
        assert_eq!(q.quantize(2.0), 7);
        assert_eq!(q.quantize(-2.0), -7); // symmetric clamp at -qmax... -2.0/s = -7
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn quantize_clamps_to_adjusted_range() {
        let q = Quantizer { bits: BitWidth::W8, scale: 1.0 };
        assert_eq!(q.quantize(1000.0), 127);
        assert_eq!(q.quantize(-1000.0), -127); // adjusted range, not -128
    }

    #[test]
    fn round_trip_error_is_at_most_half_step() {
        let q = Quantizer::calibrate(BitWidth::W6, &[1.0]);
        for i in -30..=30 {
            let v = i as f32 / 30.0;
            let err = (q.dequantize(q.quantize(v)) - v).abs();
            assert!(err <= q.scale / 2.0 + 1e-6, "v={v} err={err}");
        }
    }

    #[test]
    fn requant_standard_vs_relu_clamp() {
        let p = RequantParams::new(BitWidth::W8, 0.5);
        assert_eq!(p.apply(-10), -5);
        assert_eq!(p.apply(10), 5);
        let pr = p.with_relu();
        assert_eq!(pr.apply(-10), 0, "fused ReLU truncates negatives");
        assert_eq!(pr.apply(10), 5);
    }

    #[test]
    fn requant_relu_equals_relu_then_requant() {
        // The Sec. 4.4 fusion argument: clamping at 0 during requantization
        // is exactly ReLU on the dequantized value (zero point 0).
        let p = RequantParams::new(BitWidth::W6, 0.037);
        let pr = p.with_relu();
        for acc in [-100_000, -37, -1, 0, 1, 12345, 100_000] {
            let fused = pr.apply(acc);
            let unfused = p.apply(acc).max(0);
            assert_eq!(fused, unfused, "acc={acc}");
        }
    }

    #[test]
    fn dequantize_i32_scales() {
        let t = Tensor::from_vec((1, 1, 1, 3), Layout::Nchw, vec![2i32, -4, 0]);
        let f = dequantize_i32(&t, 0.25);
        assert_eq!(f.data(), &[0.5, -1.0, 0.0]);
    }

    #[test]
    fn tensor_quantization_respects_layout() {
        let t = Tensor::from_vec((1, 2, 1, 2), Layout::Nhwc, vec![0.9f32, -0.9, 0.1, 0.4]);
        let q = quantize_f32(&t, &Quantizer { bits: BitWidth::W4, scale: 0.15 });
        assert_eq!(q.layout(), Layout::Nhwc);
        assert_eq!(q.data()[0], 6);
        assert_eq!(q.data()[1], -6);
    }
}
