//! Quantized-network plumbing around the convolution kernels.
//!
//! The paper's layer sequence (Sec. 4.4) is
//! `quantize → conv(+re-quantize) → dequantize → quantize → ReLU → dequantize`;
//! this crate provides the linear symmetric quantizer, the i32→i8
//! re-quantization (with the adjustable truncation range that makes
//! conv+ReLU fusion possible), the elementwise ops, and a small layer graph
//! with the two fusion rewrites of Sec. 4.4.

#![forbid(unsafe_code)]

pub mod graph;
pub mod per_channel;
pub mod ops;
pub mod quant;

pub use graph::{fuse, Graph, Node, Op, ValueId};
pub use ops::{add_bias, relu_f32, relu_q};
pub use per_channel::{per_tensor_mse, PerChannelQuantizer};
pub use quant::{dequantize_i32, quantize_f32, requantize, Quantizer, RequantParams};
