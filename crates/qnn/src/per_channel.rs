//! Per-output-channel weight quantization (extension).
//!
//! The paper uses per-tensor linear quantization; deployed int8/int4 stacks
//! almost universally quantize *weights* per output channel, which costs
//! nothing in the kernels (the scale is folded into each channel's
//! re-quantization multiplier) and reduces quantization error when channel
//! magnitudes are heterogeneous. This module provides the calibration, the
//! folded multipliers, and a measurable error comparison against per-tensor.

use crate::quant::{Quantizer, RequantParams};
use lowbit_tensor::{BitWidth, Layout, QTensor, Tensor};

/// Per-output-channel weight quantizer.
#[derive(Clone, Debug)]
pub struct PerChannelQuantizer {
    /// Bit width.
    pub bits: BitWidth,
    /// One scale per output channel.
    pub scales: Vec<f32>,
}

impl PerChannelQuantizer {
    /// Calibrates one scale per output channel of an NCHW weight tensor
    /// (`c_out x c_in x kh x kw`).
    pub fn calibrate(bits: BitWidth, weights: &Tensor<f32>) -> PerChannelQuantizer {
        let (c_out, c_in, kh, kw) = weights.dims();
        let per_ch = c_in * kh * kw;
        let scales = (0..c_out)
            .map(|co| {
                let chunk = &weights.data()[co * per_ch..(co + 1) * per_ch];
                let max_abs = chunk.iter().fold(0f32, |m, v| m.max(v.abs()));
                if max_abs == 0.0 {
                    1.0
                } else {
                    max_abs / bits.qmax() as f32
                }
            })
            .collect();
        PerChannelQuantizer { bits, scales }
    }

    /// Quantizes the weight tensor channel by channel.
    pub fn quantize(&self, weights: &Tensor<f32>) -> QTensor {
        let (c_out, c_in, kh, kw) = weights.dims();
        assert_eq!(c_out, self.scales.len());
        assert_eq!(weights.layout(), Layout::Nchw);
        let per_ch = c_in * kh * kw;
        let mut data = Vec::with_capacity(weights.data().len());
        for co in 0..c_out {
            let q = Quantizer { bits: self.bits, scale: self.scales[co] };
            data.extend(
                weights.data()[co * per_ch..(co + 1) * per_ch]
                    .iter()
                    .map(|&v| q.quantize(v)),
            );
        }
        QTensor::new(
            Tensor::from_vec(weights.dims(), Layout::Nchw, data),
            self.bits,
            // The per-tensor scale slot is meaningless here; kernels use the
            // per-channel requant multipliers instead.
            1.0,
        )
    }

    /// The folded per-channel re-quantization parameters
    /// (`input_scale * weight_scale[c] / output_scale`).
    pub fn requant_params(
        &self,
        input_scale: f32,
        output_scale: f32,
        out_bits: BitWidth,
    ) -> Vec<RequantParams> {
        self.scales
            .iter()
            .map(|&s| RequantParams::new(out_bits, input_scale * s / output_scale))
            .collect()
    }

    /// Mean squared dequantization error of this quantizer on `weights`.
    pub fn mse(&self, weights: &Tensor<f32>) -> f64 {
        let q = self.quantize(weights);
        let (c_out, c_in, kh, kw) = weights.dims();
        let per_ch = c_in * kh * kw;
        let mut err = 0f64;
        for co in 0..c_out {
            for i in 0..per_ch {
                let w = weights.data()[co * per_ch + i];
                let d = q.data()[co * per_ch + i] as f32 * self.scales[co];
                err += ((w - d) as f64).powi(2);
            }
        }
        err / weights.data().len() as f64
    }
}

/// MSE of plain per-tensor quantization (for comparison).
pub fn per_tensor_mse(bits: BitWidth, weights: &Tensor<f32>) -> f64 {
    let q = Quantizer::calibrate(bits, weights.data());
    weights
        .data()
        .iter()
        .map(|&w| {
            let d = q.dequantize(q.quantize(w));
            ((w - d) as f64).powi(2)
        })
        .sum::<f64>()
        / weights.data().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Weights with strongly heterogeneous channel magnitudes.
    fn heterogeneous_weights(seed: u64) -> Tensor<f32> {
        let (c_out, c_in, kh, kw) = (8, 4, 3, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for co in 0..c_out {
            let magnitude = 0.01 * 4f32.powi(co as i32 % 4);
            for _ in 0..c_in * kh * kw {
                data.push(rng.gen_range(-magnitude..magnitude));
            }
        }
        Tensor::from_vec((c_out, c_in, kh, kw), Layout::Nchw, data)
    }

    #[test]
    fn per_channel_beats_per_tensor_on_heterogeneous_channels() {
        let w = heterogeneous_weights(5);
        for bits in [BitWidth::W4, BitWidth::W8] {
            let pc = PerChannelQuantizer::calibrate(bits, &w);
            let e_pc = pc.mse(&w);
            let e_pt = per_tensor_mse(bits, &w);
            assert!(
                e_pc < e_pt / 2.0,
                "{bits}: per-channel MSE {e_pc:.3e} should be well below per-tensor {e_pt:.3e}"
            );
        }
    }

    #[test]
    fn per_channel_values_stay_in_range() {
        let w = heterogeneous_weights(6);
        let pc = PerChannelQuantizer::calibrate(BitWidth::W4, &w);
        let q = pc.quantize(&w);
        assert!(q
            .data()
            .iter()
            .all(|&v| v >= BitWidth::W4.qmin() && v <= BitWidth::W4.qmax()));
    }

    #[test]
    fn folded_multipliers_track_channel_scales() {
        let w = heterogeneous_weights(7);
        let pc = PerChannelQuantizer::calibrate(BitWidth::W8, &w);
        let rq = pc.requant_params(0.1, 0.05, BitWidth::W8);
        assert_eq!(rq.len(), 8);
        for (p, &s) in rq.iter().zip(&pc.scales) {
            assert!((p.multiplier - 0.1 * s / 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_channels_make_both_schemes_equal() {
        // When every channel has the same range, per-channel degenerates to
        // per-tensor.
        let (c_out, c_in, kh, kw) = (4, 2, 3, 3);
        let mut rng = StdRng::seed_from_u64(8);
        let mut data: Vec<f32> = (0..c_out * c_in * kh * kw)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        // Pin the max of every channel to exactly 1.0.
        let per_ch = c_in * kh * kw;
        for co in 0..c_out {
            data[co * per_ch] = 1.0;
        }
        let w = Tensor::from_vec((c_out, c_in, kh, kw), Layout::Nchw, data);
        let pc = PerChannelQuantizer::calibrate(BitWidth::W6, &w);
        let ratio = pc.mse(&w) / per_tensor_mse(BitWidth::W6, &w);
        assert!((0.9..=1.1).contains(&ratio), "got {ratio}");
    }
}
