//! Offline stand-in for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors this shim under the same crate name.
//!
//! It is a real (if simple) benchmark harness: every registered closure is
//! warmed up once and then timed for `sample_size` samples with
//! `std::time::Instant`; mean/min wall time and derived throughput are
//! printed per benchmark. There is no statistical regression machinery and
//! no HTML report — just honest timings so `cargo bench` keeps working.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of the compiler fence criterion users reach for.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Per-iteration work declaration used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Parameter-only id (the group supplies the name).
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Duration,
    last_min: Duration,
}

impl Bencher {
    /// Times `routine` for the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        hint::black_box(routine()); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            hint::black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total / self.samples as u32;
        self.last_min = min;
    }
}

/// A named group of benchmarks sharing sample/throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's default is 100; keep it modest).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn report(&self, id: &str, mean: Duration, min: Duration) {
        let rate = self.throughput.map(|t| {
            let (count, unit) = match t {
                Throughput::Elements(e) => (e as f64, "elem/s"),
                Throughput::Bytes(b) => (b as f64, "B/s"),
            };
            format!(" thrpt: {:.3e} {unit}", count / mean.as_secs_f64())
        });
        println!(
            "{}/{id}: mean {:?}  min {:?}{}",
            self.name,
            mean,
            min,
            rate.unwrap_or_default()
        );
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, last_mean: Duration::ZERO, last_min: Duration::ZERO };
        f(&mut b);
        self.report(&id.to_string(), b.last_mean, b.last_min);
        self
    }

    /// Runs one parameterized benchmark closure.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, last_mean: Duration::ZERO, last_min: Duration::ZERO };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_mean, b.last_min);
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry object handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, throughput: None, _criterion: self }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            let _ = ::std::env::args();
            $($group();)+
        }
    };
}
