//! Dense tensors and their quantized counterpart.

use crate::{BitWidth, Layout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense 4-D tensor of `T` in a fixed [`Layout`].
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor<T> {
    dims: (usize, usize, usize, usize),
    layout: Layout,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Allocates a zero-initialized tensor.
    pub fn zeros(dims: (usize, usize, usize, usize), layout: Layout) -> Tensor<T> {
        let len = dims.0 * dims.1 * dims.2 * dims.3;
        Tensor {
            dims,
            layout,
            data: vec![T::default(); len],
        }
    }

    /// Wraps existing data; `data.len()` must match the dimensions.
    pub fn from_vec(
        dims: (usize, usize, usize, usize),
        layout: Layout,
        data: Vec<T>,
    ) -> Tensor<T> {
        assert_eq!(
            data.len(),
            dims.0 * dims.1 * dims.2 * dims.3,
            "data length does not match dims {dims:?}"
        );
        Tensor { dims, layout, data }
    }

    /// `(n, c, h, w)` logical dimensions.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        self.dims
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Flat immutable view of the storage.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable view of the storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Logical element accessor.
    #[inline]
    pub fn get(&self, idx: (usize, usize, usize, usize)) -> T {
        self.data[self.layout.offset(idx, self.dims)]
    }

    /// Logical element mutator.
    #[inline]
    pub fn set(&mut self, idx: (usize, usize, usize, usize), v: T) {
        let off = self.layout.offset(idx, self.dims);
        self.data[off] = v;
    }

    /// Re-lays the tensor out in `layout`, copying elementwise.
    pub fn to_layout(&self, layout: Layout) -> Tensor<T> {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor::zeros(self.dims, layout);
        let (nn, cc, hh, ww) = self.dims;
        for n in 0..nn {
            for c in 0..cc {
                for h in 0..hh {
                    for w in 0..ww {
                        out.set((n, c, h, w), self.get((n, c, h, w)));
                    }
                }
            }
        }
        out
    }
}

/// A quantized activation/weight tensor: `i8` storage constrained to a
/// [`BitWidth`] range, with a per-tensor symmetric scale
/// (`real = scale * quantized`, zero point fixed at 0 as in the paper's
/// linear quantization scheme).
#[derive(Clone, PartialEq, Debug)]
pub struct QTensor {
    tensor: Tensor<i8>,
    bits: BitWidth,
    scale: f32,
}

impl QTensor {
    /// Wraps a tensor, checking every element is within the adjusted range of
    /// `bits`.
    pub fn new(tensor: Tensor<i8>, bits: BitWidth, scale: f32) -> QTensor {
        for &v in tensor.data() {
            assert!(
                v >= bits.qmin() && v <= bits.qmax(),
                "value {v} outside {bits} adjusted range [{}, {}]",
                bits.qmin(),
                bits.qmax()
            );
        }
        QTensor {
            tensor,
            bits,
            scale,
        }
    }

    /// Deterministic synthetic tensor with values uniform in the adjusted
    /// range — stands in for Caffe Model Zoo weights / ImageNet activations,
    /// whose *values* do not affect kernel timing.
    pub fn random(
        dims: (usize, usize, usize, usize),
        layout: Layout,
        bits: BitWidth,
        seed: u64,
    ) -> QTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = dims.0 * dims.1 * dims.2 * dims.3;
        let lo = bits.qmin() as i32;
        let hi = bits.qmax() as i32;
        let data: Vec<i8> = (0..len).map(|_| rng.gen_range(lo..=hi) as i8).collect();
        QTensor {
            tensor: Tensor::from_vec(dims, layout, data),
            bits,
            scale: 1.0 / bits.qmax() as f32,
        }
    }

    /// The underlying integer tensor.
    #[inline]
    pub fn tensor(&self) -> &Tensor<i8> {
        &self.tensor
    }

    /// Quantized bit width.
    #[inline]
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Per-tensor scale.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Logical dimensions.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        self.tensor.dims()
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.tensor.layout()
    }

    /// Flat data view.
    #[inline]
    pub fn data(&self) -> &[i8] {
        self.tensor.data()
    }

    /// Logical element accessor.
    #[inline]
    pub fn get(&self, idx: (usize, usize, usize, usize)) -> i8 {
        self.tensor.get(idx)
    }

    /// Dequantizes into an `f32` tensor.
    pub fn dequantize(&self) -> Tensor<f32> {
        let mut out = Tensor::zeros(self.dims(), self.layout());
        for (o, &q) in out.data_mut().iter_mut().zip(self.tensor.data()) {
            *o = q as f32 * self.scale;
        }
        out
    }

    /// Re-lays the tensor out in `layout`.
    pub fn to_layout(&self, layout: Layout) -> QTensor {
        QTensor {
            tensor: self.tensor.to_layout(layout),
            bits: self.bits,
            scale: self.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_len_and_values() {
        let t: Tensor<i32> = Tensor::zeros((1, 2, 3, 4), Layout::Nchw);
        assert_eq!(t.data().len(), 24);
        assert!(t.data().iter().all(|&v| v == 0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec((1, 1, 2, 2), Layout::Nchw, vec![0i8; 3]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t: Tensor<i8> = Tensor::zeros((2, 3, 4, 5), Layout::Nhwc);
        t.set((1, 2, 3, 4), 42);
        assert_eq!(t.get((1, 2, 3, 4)), 42);
    }

    #[test]
    fn layout_conversion_preserves_logical_values() {
        let q = QTensor::random((2, 3, 5, 4), Layout::Nchw, BitWidth::W5, 7);
        let converted = q.to_layout(Layout::Nhwc);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..5 {
                    for w in 0..4 {
                        assert_eq!(q.get((n, c, h, w)), converted.get((n, c, h, w)));
                    }
                }
            }
        }
    }

    #[test]
    fn random_respects_adjusted_range() {
        for bits in BitWidth::ALL {
            let q = QTensor::random((1, 4, 8, 8), Layout::Nchw, bits, 3);
            assert!(q
                .data()
                .iter()
                .all(|&v| v >= bits.qmin() && v <= bits.qmax()));
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = QTensor::random((1, 2, 4, 4), Layout::Nchw, BitWidth::W4, 11);
        let b = QTensor::random((1, 2, 4, 4), Layout::Nchw, BitWidth::W4, 11);
        assert_eq!(a.data(), b.data());
        let c = QTensor::random((1, 2, 4, 4), Layout::Nchw, BitWidth::W4, 12);
        assert_ne!(a.data(), c.data());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn qtensor_rejects_out_of_range_values() {
        let t = Tensor::from_vec((1, 1, 1, 1), Layout::Nchw, vec![5i8]);
        let _ = QTensor::new(t, BitWidth::W3, 1.0);
    }

    #[test]
    fn dequantize_scales_values() {
        let t = Tensor::from_vec((1, 1, 1, 2), Layout::Nchw, vec![2i8, -4]);
        let q = QTensor::new(t, BitWidth::W4, 0.5);
        assert_eq!(q.dequantize().data(), &[1.0, -2.0]);
    }
}
