//! Explicit im2col lowering (ARM path) and its space-overhead accounting.
//!
//! The ARM kernels use the *explicit GEMM* method (Sec. 2.2): the input
//! activation is expanded into a `K x N` matrix (`K = c_in*kh*kw`,
//! `N = batch*out_h*out_w`) whose column `j` stacks the receptive field of
//! output pixel `j`, channel-major to match the NCHW weight matrix
//! `A[c_out x K]`. Fig. 13 of the paper reports the extra space this costs per
//! ResNet-50 layer; [`SpaceOverhead`] reproduces that accounting.

use crate::{ConvShape, Layout, QTensor};

/// An im2col-expanded activation matrix (`K x N`, row-major).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Im2colMatrix {
    /// `K = c_in * kh * kw` rows.
    pub k: usize,
    /// `N = batch * out_h * out_w` columns.
    pub n: usize,
    /// Row-major storage, `k * n` elements.
    pub data: Vec<i8>,
}

impl Im2colMatrix {
    /// Element at row `r` (kernel position) and column `c` (output pixel).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> i8 {
        self.data[r * self.n + c]
    }
}

/// Expands an NCHW activation into the im2col matrix for `shape`.
///
/// Out-of-bounds taps (zero padding) contribute literal zeros, which is
/// exactly how the zero-point-0 symmetric quantization of the paper treats
/// padding.
pub fn im2col_nchw(input: &QTensor, shape: &ConvShape) -> Im2colMatrix {
    let mut out = Im2colMatrix { k: 0, n: 0, data: Vec::new() };
    im2col_nchw_into(input, shape, &mut out);
    out
}

/// [`im2col_nchw`] into a caller-owned matrix, reusing its buffer.
///
/// Steady-state expansion of a fixed layer set performs no heap allocation
/// once `out.data`'s capacity has grown to the largest `k * n` seen.
pub fn im2col_nchw_into(input: &QTensor, shape: &ConvShape, out: &mut Im2colMatrix) {
    assert_eq!(input.layout(), Layout::Nchw, "ARM path expects NCHW");
    assert_eq!(
        input.dims(),
        (shape.batch, shape.c_in, shape.h, shape.w),
        "input dims do not match conv shape"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let k = shape.gemm_k();
    let n = shape.gemm_n();
    out.k = k;
    out.n = n;
    out.data.clear();
    out.data.resize(k * n, 0);
    let data = &mut out.data;
    for b in 0..shape.batch {
        for c in 0..shape.c_in {
            for kr in 0..shape.kh {
                for kc in 0..shape.kw {
                    let row = (c * shape.kh + kr) * shape.kw + kc;
                    for oy in 0..oh {
                        let iy = (oy * shape.stride + kr) as isize - shape.pad as isize;
                        if iy < 0 || iy >= shape.h as isize {
                            continue; // whole output row taps padding for this (kr, iy)
                        }
                        for ox in 0..ow {
                            let ix = (ox * shape.stride + kc) as isize - shape.pad as isize;
                            if ix < 0 || ix >= shape.w as isize {
                                continue;
                            }
                            let col = (b * oh + oy) * ow + ox;
                            data[row * n + col] =
                                input.get((b, c, iy as usize, ix as usize));
                        }
                    }
                }
            }
        }
    }
}

/// Space accounting for the explicit ARM pipeline (reproduces Fig. 13).
///
/// The baseline is the space occupied by the layer's activation and weight;
/// the overhead factors compare post-transformation footprints against it.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SpaceOverhead {
    /// Activation + weight bytes (1 byte per quantized element) — the Fig. 13
    /// baseline.
    pub baseline_bytes: usize,
    /// Bytes after im2col: original activation (still live) + expanded
    /// matrix + weight.
    pub im2col_bytes: usize,
    /// Bytes after zero-padding both GEMM operands to multiples of the packing
    /// granules `(n_a, n_b)` on top of im2col.
    pub packed_bytes: usize,
}

impl SpaceOverhead {
    /// Computes the accounting for one layer with packing granules `n_a`
    /// (rows of `A`, i.e. output channels) and `n_b` (columns of `B`).
    pub fn for_shape(shape: &ConvShape, n_a: usize, n_b: usize) -> SpaceOverhead {
        let baseline = shape.input_len() + shape.weight_len();
        let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
        // The original activation stays live while the K x N matrix is
        // built (this is what makes the paper's conv2 factor 8.6034: the
        // expanded matrix comes on top of the activation); the weight matrix
        // is the original tensor reshaped.
        let im2col = shape.input_len() + k * n + m * k;
        let m_pad = m.div_ceil(n_a) * n_a;
        let n_pad = n.div_ceil(n_b) * n_b;
        let packed = shape.input_len() + k * n_pad + m_pad * k;
        SpaceOverhead {
            baseline_bytes: baseline,
            im2col_bytes: im2col,
            packed_bytes: packed,
        }
    }

    /// Fig. 13 "im2col" factor.
    pub fn im2col_factor(&self) -> f64 {
        self.im2col_bytes as f64 / self.baseline_bytes as f64
    }

    /// Fig. 13 "data padding and packing" factor (relative to im2col).
    pub fn packing_factor(&self) -> f64 {
        self.packed_bytes as f64 / self.im2col_bytes as f64
    }

    /// Total factor relative to the baseline.
    pub fn total_factor(&self) -> f64 {
        self.packed_bytes as f64 / self.baseline_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWidth;

    fn reference_im2col(input: &QTensor, shape: &ConvShape) -> Vec<i8> {
        // Naive per-element gather used as an oracle.
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let (k, n) = (shape.gemm_k(), shape.gemm_n());
        let mut out = vec![0i8; k * n];
        for col in 0..n {
            let b = col / (oh * ow);
            let oy = (col / ow) % oh;
            let ox = col % ow;
            for row in 0..k {
                let c = row / (shape.kh * shape.kw);
                let kr = (row / shape.kw) % shape.kh;
                let kc = row % shape.kw;
                let iy = (oy * shape.stride + kr) as isize - shape.pad as isize;
                let ix = (ox * shape.stride + kc) as isize - shape.pad as isize;
                if iy >= 0 && iy < shape.h as isize && ix >= 0 && ix < shape.w as isize {
                    out[row * n + col] = input.get((b, c, iy as usize, ix as usize));
                }
            }
        }
        out
    }

    #[test]
    fn matches_reference_on_padded_strided_conv() {
        let shape = ConvShape::new(2, 3, 7, 6, 4, 3, 2, 1);
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            BitWidth::W6,
            42,
        );
        let m = im2col_nchw(&input, &shape);
        assert_eq!(m.k, shape.gemm_k());
        assert_eq!(m.n, shape.gemm_n());
        assert_eq!(m.data, reference_im2col(&input, &shape));
    }

    #[test]
    fn pointwise_conv_is_a_pure_reshape() {
        // 1x1 s1 p0: im2col row r, col j must equal input channel r, pixel j.
        let shape = ConvShape::new(1, 5, 4, 4, 2, 1, 1, 0);
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            BitWidth::W8,
            3,
        );
        let m = im2col_nchw(&input, &shape);
        assert_eq!(m.data, input.data());
    }

    #[test]
    fn weight_heavy_pointwise_layer_approaches_the_paper_minimum() {
        // Paper Fig. 13 minimum: 1.0218 on the weight-dominated late 1x1
        // layer (the duplicate activation is tiny next to the weights).
        let shape = ConvShape::new(1, 512, 7, 7, 2048, 1, 1, 0);
        let so = SpaceOverhead::for_shape(&shape, 16, 4);
        let f = so.im2col_factor();
        assert!((1.0..1.05).contains(&f), "got {f}");
    }

    #[test]
    fn early_3x3_layer_reproduces_the_paper_maximum() {
        // Paper Fig. 13 maximum: 8.6034 on the 64-channel 3x3 layer.
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let so = SpaceOverhead::for_shape(&shape, 16, 4);
        assert!((so.im2col_factor() - 8.6034).abs() < 5e-4, "got {}", so.im2col_factor());
    }

    #[test]
    fn im2col_factor_is_never_below_one() {
        for shape in [
            ConvShape::new(1, 3, 224, 224, 64, 7, 2, 3),
            ConvShape::new(1, 256, 56, 56, 128, 1, 2, 0), // strided pointwise
            ConvShape::new(1, 512, 28, 28, 1024, 1, 2, 0),
        ] {
            let so = SpaceOverhead::for_shape(&shape, 16, 4);
            assert!(so.im2col_factor() >= 1.0, "{shape}: {}", so.im2col_factor());
        }
    }

    #[test]
    fn packing_overhead_is_small_and_bounded() {
        for shape in [
            ConvShape::new(1, 64, 56, 56, 64, 1, 1, 0),
            ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1),
            ConvShape::new(1, 512, 7, 7, 512, 3, 1, 1),
        ] {
            let so = SpaceOverhead::for_shape(&shape, 16, 4);
            let f = so.packing_factor();
            assert!(f >= 1.0, "padding can only add space");
            assert!(f < 1.05, "padding should be marginal, got {f}");
        }
    }

    #[test]
    fn zero_padding_regions_are_zero() {
        let shape = ConvShape::new(1, 1, 3, 3, 1, 3, 1, 1);
        let input = QTensor::random((1, 1, 3, 3), Layout::Nchw, BitWidth::W4, 9);
        let m = im2col_nchw(&input, &shape);
        // Column 0 = output pixel (0,0); kernel tap (0,0) reads input (-1,-1),
        // which is padding.
        assert_eq!(m.get(0, 0), 0);
        // Center tap of the kernel at output (1,1) reads input (1,1).
        let center_row = 3 + 1; // kr=1, kc=1 within the single channel
        assert_eq!(m.get(center_row, 4), input.get((0, 0, 1, 1)));
    }
}
