//! Sub-byte packed storage for low-bit tensors.
//!
//! The kernels compute on sign-extended `i8` lanes (as the hardware does),
//! but *storage and traffic* for 2–4-bit data is packed — this is what makes
//! the GPU's int4 operands half the bytes of int8 (Sec. 4.3's `int4` vector
//! loads) and what a deployment writes to disk. [`PackedBits`] provides the
//! bijective pack/unpack between `i8` values in a [`BitWidth`] range and a
//! dense little-endian bit stream.

use crate::BitWidth;

/// A dense bit-packed buffer of signed `bits`-wide values.
///
/// ```
/// use lowbit_tensor::{BitWidth, PackedBits};
///
/// let packed = PackedBits::pack(BitWidth::W4, &[-8, 7, 0, -1]);
/// assert_eq!(packed.bytes(), 2); // two values per byte
/// assert_eq!(packed.unpack(), vec![-8, 7, 0, -1]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PackedBits {
    bits: BitWidth,
    len: usize,
    data: Vec<u8>,
}

impl PackedBits {
    /// Packs `values` (each within the *natural* range of `bits`) into
    /// `ceil(len * bits / 8)` bytes, little-endian within and across bytes.
    pub fn pack(bits: BitWidth, values: &[i8]) -> PackedBits {
        let b = bits.bits() as usize;
        let mask = (1u16 << b) - 1;
        let mut data = vec![0u8; (values.len() * b).div_ceil(8)];
        for (i, &v) in values.iter().enumerate() {
            assert!(
                v >= bits.natural_min() && v <= bits.natural_max(),
                "value {v} outside {bits} natural range"
            );
            let code = (v as u16) & mask; // two's complement truncation
            let bit = i * b;
            let (byte, off) = (bit / 8, bit % 8);
            data[byte] |= (code << off) as u8;
            if off + b > 8 {
                data[byte + 1] |= (code >> (8 - off)) as u8;
            }
        }
        PackedBits { bits, len: values.len(), data }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Bit width of the stored values.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Raw packed bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Decodes value `i` (sign-extended back to `i8`).
    pub fn get(&self, i: usize) -> i8 {
        assert!(i < self.len, "index {i} out of range {}", self.len);
        let b = self.bits.bits() as usize;
        let bit = i * b;
        let (byte, off) = (bit / 8, bit % 8);
        let mut code = (self.data[byte] as u16) >> off;
        if off + b > 8 {
            code |= (self.data[byte + 1] as u16) << (8 - off);
        }
        code &= (1 << b) - 1;
        // Sign extend from b bits.
        let sign = 1u16 << (b - 1);
        ((code ^ sign).wrapping_sub(sign)) as i16 as i8
    }

    /// Decodes the whole buffer.
    pub fn unpack(&self) -> Vec<i8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trips_every_bit_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in BitWidth::ALL {
            let values: Vec<i8> = (0..101)
                .map(|_| rng.gen_range(bits.natural_min()..=bits.natural_max()))
                .collect();
            let packed = PackedBits::pack(bits, &values);
            assert_eq!(packed.unpack(), values, "{bits}");
        }
    }

    #[test]
    fn packing_density_matches_bit_width() {
        let values = vec![0i8; 160];
        assert_eq!(PackedBits::pack(BitWidth::W2, &values).bytes(), 40);
        assert_eq!(PackedBits::pack(BitWidth::W4, &values).bytes(), 80);
        assert_eq!(PackedBits::pack(BitWidth::W8, &values).bytes(), 160);
        // 3-bit: 480 bits = 60 bytes, values straddle byte boundaries.
        assert_eq!(PackedBits::pack(BitWidth::W3, &values).bytes(), 60);
    }

    #[test]
    fn extremes_survive_sign_extension() {
        for bits in BitWidth::ALL {
            let values = vec![bits.natural_min(), bits.natural_max(), 0, -1];
            let packed = PackedBits::pack(bits, &values);
            assert_eq!(packed.unpack(), values, "{bits}");
        }
    }

    #[test]
    fn odd_lengths_round_trip_across_byte_straddles() {
        // 5- and 7-bit values constantly straddle byte boundaries.
        for bits in [BitWidth::W5, BitWidth::W7] {
            let values: Vec<i8> = (0..13)
                .map(|i| if i % 2 == 0 { bits.natural_min() + i } else { bits.natural_max() - i })
                .collect();
            let packed = PackedBits::pack(bits, &values);
            assert_eq!(packed.unpack(), values, "{bits}");
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_values() {
        let _ = PackedBits::pack(BitWidth::W3, &[4]);
    }

    #[test]
    fn int4_halves_int8_traffic() {
        // The claim behind the GPU 4-bit advantage: same element count, half
        // the bytes on the wire.
        let values = vec![3i8; 4096];
        let p4 = PackedBits::pack(BitWidth::W4, &values);
        let p8 = PackedBits::pack(BitWidth::W8, &values);
        assert_eq!(p4.bytes() * 2, p8.bytes());
    }
}
