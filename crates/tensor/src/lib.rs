//! Quantized tensor substrate for the extremely low-bit convolution library.
//!
//! This crate hosts everything the kernel crates share:
//!
//! * [`BitWidth`] — the 2..=8-bit signed quantized types of the paper, with the
//!   *adjusted* value ranges of Sec. 3.3 (e.g. 8-bit is clamped to `[-127, 127]`
//!   so that two `SMLAL`s fit in a 16-bit accumulator),
//! * [`Tensor`] / [`QTensor`] — dense tensors in NCHW (ARM) or NHWC (GPU) layout,
//! * [`ConvShape`] — convolution problem geometry plus derived quantities
//!   (output size, MAC count, GEMM dimensions),
//! * [`im2col`] — the explicit GEMM lowering used on the ARM path, including the
//!   space-overhead accounting behind Fig. 13 of the paper.

#![forbid(unsafe_code)]

pub mod bits;
pub mod im2col;
pub mod layout;
pub mod packed_bits;
pub mod shape;
pub mod tensor;

pub use bits::BitWidth;
pub use im2col::{im2col_nchw, im2col_nchw_into, Im2colMatrix, SpaceOverhead};
pub use layout::Layout;
pub use packed_bits::PackedBits;
pub use shape::ConvShape;
pub use tensor::{QTensor, Tensor};
