//! Memory layouts for 4-D activation tensors.
//!
//! The paper uses NCHW on the ARM CPU (explicit im2col GEMM) and NHWC on the
//! GPU (implicit GEMM mapping channels to the GEMM K dimension contiguously).

use std::fmt;

/// 4-D tensor memory layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Layout {
    /// Batch, channel, height, width — ARM CPU path.
    Nchw,
    /// Batch, height, width, channel — NVIDIA GPU path.
    Nhwc,
}

impl Layout {
    /// Linear offset of logical element `(n, c, h, w)` in a tensor with
    /// dimensions `(nn, cc, hh, ww)` stored in this layout.
    #[inline]
    pub fn offset(
        self,
        (n, c, h, w): (usize, usize, usize, usize),
        (nn, cc, hh, ww): (usize, usize, usize, usize),
    ) -> usize {
        debug_assert!(n < nn && c < cc && h < hh && w < ww);
        match self {
            Layout::Nchw => ((n * cc + c) * hh + h) * ww + w,
            Layout::Nhwc => ((n * hh + h) * ww + w) * cc + c,
        }
    }

    /// Stride (in elements) between consecutive channels at a fixed spatial
    /// position.
    #[inline]
    pub fn channel_stride(self, (_, _cc, hh, ww): (usize, usize, usize, usize)) -> usize {
        match self {
            Layout::Nchw => hh * ww,
            Layout::Nhwc => 1,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Layout::Nchw => "NCHW",
            Layout::Nhwc => "NHWC",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: (usize, usize, usize, usize) = (2, 3, 4, 5);

    #[test]
    fn nchw_offsets_are_row_major_in_w() {
        let a = Layout::Nchw.offset((0, 0, 0, 0), DIMS);
        let b = Layout::Nchw.offset((0, 0, 0, 1), DIMS);
        assert_eq!(b - a, 1);
        let c = Layout::Nchw.offset((0, 1, 0, 0), DIMS);
        assert_eq!(c, 4 * 5);
    }

    #[test]
    fn nhwc_offsets_are_channel_minor() {
        let a = Layout::Nhwc.offset((0, 0, 0, 0), DIMS);
        let b = Layout::Nhwc.offset((0, 1, 0, 0), DIMS);
        assert_eq!(b - a, 1);
        let c = Layout::Nhwc.offset((0, 0, 0, 1), DIMS);
        assert_eq!(c, 3);
    }

    #[test]
    fn both_layouts_are_bijections() {
        for layout in [Layout::Nchw, Layout::Nhwc] {
            let mut seen = [false; 2 * 3 * 4 * 5];
            for n in 0..2 {
                for c in 0..3 {
                    for h in 0..4 {
                        for w in 0..5 {
                            let off = layout.offset((n, c, h, w), DIMS);
                            assert!(!seen[off], "{layout} maps two elements to {off}");
                            seen[off] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn channel_stride_matches_offset_delta() {
        for layout in [Layout::Nchw, Layout::Nhwc] {
            let d = layout.offset((0, 1, 1, 1), DIMS) - layout.offset((0, 0, 1, 1), DIMS);
            assert_eq!(d, layout.channel_stride(DIMS));
        }
    }
}
