//! Signed low-bit quantized value ranges.
//!
//! The paper optimizes convolutions whose operands are signed `b`-bit integers
//! for `b ∈ 2..=8`. Two details matter for the instruction schemes of Sec. 3.3:
//!
//! 1. The **natural range** of a signed b-bit value is `[-2^(b-1), 2^(b-1)-1]`.
//! 2. For 7- and 8-bit operands the paper **adjusts** the range to the symmetric
//!    `[-(2^(b-1)-1), 2^(b-1)-1]` so that one extra multiply-accumulate fits in
//!    the 16-bit intermediate register (e.g. 8-bit uses `[-127, 127]`, allowing
//!    exactly two `SMLAL`s per `SADDW`).
//!
//! The `MLA` scheme (2–3 bit) keeps the natural asymmetric range; its published
//! ratios (31:1 and 7:1) follow from `(-2^(b-1))^2` as the worst-case product.

use std::fmt;

/// A signed quantized bit width in `2..=8`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BitWidth(u8);

/// Error returned by [`BitWidth::new`] for widths outside `2..=8`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BitWidthError(pub u8);

impl fmt::Display for BitWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bit width {} outside the supported range 2..=8", self.0)
    }
}

impl std::error::Error for BitWidthError {}

impl BitWidth {
    /// 2-bit signed (`MLA` scheme).
    pub const W2: BitWidth = BitWidth(2);
    /// 3-bit signed (`MLA` scheme).
    pub const W3: BitWidth = BitWidth(3);
    /// 4-bit signed (`SMLAL` scheme).
    pub const W4: BitWidth = BitWidth(4);
    /// 5-bit signed (`SMLAL` scheme).
    pub const W5: BitWidth = BitWidth(5);
    /// 6-bit signed (`SMLAL` scheme).
    pub const W6: BitWidth = BitWidth(6);
    /// 7-bit signed (`SMLAL` scheme, adjusted range).
    pub const W7: BitWidth = BitWidth(7);
    /// 8-bit signed (`SMLAL` scheme, adjusted range `[-127, 127]`).
    pub const W8: BitWidth = BitWidth(8);

    /// All widths the ARM path supports, ascending.
    pub const ALL: [BitWidth; 7] = [
        Self::W2,
        Self::W3,
        Self::W4,
        Self::W5,
        Self::W6,
        Self::W7,
        Self::W8,
    ];

    /// Creates a bit width, validating `2 <= bits <= 8`.
    pub fn new(bits: u8) -> Result<BitWidth, BitWidthError> {
        if (2..=8).contains(&bits) {
            Ok(BitWidth(bits))
        } else {
            Err(BitWidthError(bits))
        }
    }

    /// The raw number of bits.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `true` when this width uses the `MLA`+`SADDW` scheme (2–3 bit).
    #[inline]
    pub fn uses_mla_scheme(self) -> bool {
        self.0 <= 3
    }

    /// Natural minimum of a signed b-bit value (`-2^(b-1)`).
    #[inline]
    pub fn natural_min(self) -> i8 {
        -(1i16 << (self.0 - 1)) as i8
    }

    /// Natural maximum of a signed b-bit value (`2^(b-1)-1`).
    #[inline]
    pub fn natural_max(self) -> i8 {
        ((1i16 << (self.0 - 1)) - 1) as i8
    }

    /// Minimum of the *adjusted* range used by the instruction schemes.
    ///
    /// 7- and 8-bit are clamped symmetric (Sec. 3.3); 2–6 bit keep the natural
    /// asymmetric range because the published ratios already account for the
    /// `(-2^(b-1))^2` worst case.
    #[inline]
    pub fn qmin(self) -> i8 {
        if self.0 >= 7 {
            -self.natural_max()
        } else {
            self.natural_min()
        }
    }

    /// Maximum of the adjusted range (always the natural maximum).
    #[inline]
    pub fn qmax(self) -> i8 {
        self.natural_max()
    }

    /// Largest absolute value of a product of two in-range operands.
    #[inline]
    pub fn max_abs_product(self) -> i32 {
        let lo = self.qmin() as i32;
        let hi = self.qmax() as i32;
        (lo * lo).max(hi * hi)
    }

    /// Number of quantization levels in the adjusted range.
    #[inline]
    pub fn levels(self) -> u32 {
        (self.qmax() as i32 - self.qmin() as i32 + 1) as u32
    }

    /// Clamps a wider integer into the adjusted range.
    #[inline]
    pub fn clamp_i32(self, v: i32) -> i8 {
        v.clamp(self.qmin() as i32, self.qmax() as i32) as i8
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl TryFrom<u8> for BitWidth {
    type Error = BitWidthError;

    fn try_from(bits: u8) -> Result<Self, Self::Error> {
        BitWidth::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(BitWidth::new(1).is_err());
        assert!(BitWidth::new(9).is_err());
        for b in 2..=8 {
            assert_eq!(BitWidth::new(b).unwrap().bits(), b);
        }
    }

    #[test]
    fn natural_ranges() {
        assert_eq!(BitWidth::W2.natural_min(), -2);
        assert_eq!(BitWidth::W2.natural_max(), 1);
        assert_eq!(BitWidth::W8.natural_min(), -128);
        assert_eq!(BitWidth::W8.natural_max(), 127);
    }

    #[test]
    fn adjusted_ranges_match_paper() {
        // 8-bit adjusted to [-127, 127] (Sec. 3.3).
        assert_eq!(BitWidth::W8.qmin(), -127);
        assert_eq!(BitWidth::W8.qmax(), 127);
        // 7-bit adjusted to [-63, 63] so that 8 SMLALs fit.
        assert_eq!(BitWidth::W7.qmin(), -63);
        assert_eq!(BitWidth::W7.qmax(), 63);
        // Lower widths keep the asymmetric natural range.
        assert_eq!(BitWidth::W4.qmin(), -8);
        assert_eq!(BitWidth::W4.qmax(), 7);
        assert_eq!(BitWidth::W2.qmin(), -2);
        assert_eq!(BitWidth::W2.qmax(), 1);
    }

    #[test]
    fn max_abs_product_uses_worst_case_operand() {
        // 4-bit: (-8)^2 = 64 dominates 7^2 = 49.
        assert_eq!(BitWidth::W4.max_abs_product(), 64);
        // 8-bit adjusted: 127^2.
        assert_eq!(BitWidth::W8.max_abs_product(), 127 * 127);
        // 2-bit: (-2)^2 = 4.
        assert_eq!(BitWidth::W2.max_abs_product(), 4);
    }

    #[test]
    fn clamp_saturates_into_adjusted_range() {
        assert_eq!(BitWidth::W8.clamp_i32(-128), -127);
        assert_eq!(BitWidth::W8.clamp_i32(300), 127);
        assert_eq!(BitWidth::W3.clamp_i32(-100), -4);
        assert_eq!(BitWidth::W3.clamp_i32(100), 3);
    }

    #[test]
    fn scheme_split_at_three_bits() {
        assert!(BitWidth::W2.uses_mla_scheme());
        assert!(BitWidth::W3.uses_mla_scheme());
        assert!(!BitWidth::W4.uses_mla_scheme());
        assert!(!BitWidth::W8.uses_mla_scheme());
    }

    #[test]
    fn display_formats() {
        assert_eq!(BitWidth::W4.to_string(), "4-bit");
        assert_eq!(
            BitWidthError(9).to_string(),
            "bit width 9 outside the supported range 2..=8"
        );
    }
}
