//! Convolution problem geometry.

use std::fmt;

/// Geometry of a 2-D convolution layer.
///
/// Matches the layers evaluated in the paper: square stride/padding, no
/// dilation, no groups (ResNet-50 / SCR-ResNet-50 / DenseNet-121 only use
/// plain convolutions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub pad: usize,
}

impl ConvShape {
    /// Convenience constructor for a square-kernel layer.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: usize,
        c_in: usize,
        h: usize,
        w: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> ConvShape {
        ConvShape {
            batch,
            c_in,
            h,
            w,
            c_out,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Returns a copy with a different batch size.
    pub fn with_batch(mut self, batch: usize) -> ConvShape {
        self.batch = batch;
        self
    }

    /// Output height.
    #[inline]
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    #[inline]
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Number of multiply-accumulates in a direct convolution.
    #[inline]
    pub fn macs(&self) -> u64 {
        self.batch as u64
            * self.c_out as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.c_in as u64
            * self.kh as u64
            * self.kw as u64
    }

    /// GEMM `M` dimension after im2col lowering (output channels).
    #[inline]
    pub fn gemm_m(&self) -> usize {
        self.c_out
    }

    /// GEMM `K` dimension after im2col lowering (`c_in * kh * kw`).
    #[inline]
    pub fn gemm_k(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// GEMM `N` dimension after im2col lowering (`batch * out_h * out_w`).
    #[inline]
    pub fn gemm_n(&self) -> usize {
        self.batch * self.out_h() * self.out_w()
    }

    /// Number of input elements (`batch * c_in * h * w`).
    #[inline]
    pub fn input_len(&self) -> usize {
        self.batch * self.c_in * self.h * self.w
    }

    /// Number of weight elements (`c_out * c_in * kh * kw`).
    #[inline]
    pub fn weight_len(&self) -> usize {
        self.c_out * self.c_in * self.kh * self.kw
    }

    /// Number of output elements (`batch * c_out * out_h * out_w`).
    #[inline]
    pub fn output_len(&self) -> usize {
        self.batch * self.c_out * self.out_h() * self.out_w()
    }

    /// `true` when the Winograd `F(2x2, 3x3)` fast path applies: 3x3 kernel,
    /// stride 1 (the per-bit range restriction is checked by the kernel).
    #[inline]
    pub fn winograd_applicable(&self) -> bool {
        self.kh == 3 && self.kw == 3 && self.stride == 1
    }

    /// A cropped copy used by tests to validate big layers cheaply: clamps the
    /// spatial extent while keeping kernel/stride/padding structure intact.
    pub fn cropped(&self, max_hw: usize) -> ConvShape {
        let mut s = *self;
        s.h = s.h.min(max_hw.max(s.kh));
        s.w = s.w.min(max_hw.max(s.kw));
        s
    }
}

impl fmt::Display for ConvShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{} -> {} ({}x{} s{} p{})",
            self.batch, self.c_in, self.h, self.w, self.c_out, self.kh, self.kw, self.stride,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_stem_output_size() {
        // 7x7 s2 p3 over 224x224 -> 112x112.
        let s = ConvShape::new(1, 3, 224, 224, 64, 7, 2, 3);
        assert_eq!((s.out_h(), s.out_w()), (112, 112));
    }

    #[test]
    fn pointwise_preserves_spatial_size() {
        let s = ConvShape::new(1, 64, 56, 56, 256, 1, 1, 0);
        assert_eq!((s.out_h(), s.out_w()), (56, 56));
        assert_eq!(s.gemm_k(), 64);
        assert_eq!(s.gemm_n(), 56 * 56);
    }

    #[test]
    fn mac_count_matches_gemm_volume() {
        let s = ConvShape::new(2, 64, 56, 56, 64, 3, 1, 1);
        assert_eq!(
            s.macs(),
            (s.gemm_m() * s.gemm_n() * s.gemm_k()) as u64
        );
    }

    #[test]
    fn winograd_applicability() {
        assert!(ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1).winograd_applicable());
        assert!(!ConvShape::new(1, 64, 56, 56, 64, 3, 2, 1).winograd_applicable());
        assert!(!ConvShape::new(1, 64, 56, 56, 64, 1, 1, 0).winograd_applicable());
    }

    #[test]
    fn cropping_keeps_kernel_viable() {
        let s = ConvShape::new(1, 256, 56, 56, 64, 3, 1, 1).cropped(8);
        assert_eq!((s.h, s.w), (8, 8));
        let tiny = ConvShape::new(1, 3, 224, 224, 64, 7, 2, 3).cropped(4);
        assert!(tiny.h >= tiny.kh);
    }
}
