//! Batch-closing policies: how the batcher decides a batch is ready.

/// When the batcher closes a batch.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum BatchPolicy {
    /// Close only when exactly `n` requests are waiting (a partial batch is
    /// flushed at shutdown). `Fixed(1)` is the no-batching baseline.
    Fixed(usize),
    /// Close when `max_batch` requests are waiting **or** `deadline_ms` has
    /// elapsed since the batch opened, whichever comes first — the
    /// latency-bounded policy real-time serving needs.
    Dynamic {
        /// Upper bound on batch size.
        max_batch: usize,
        /// Maximum formation wait in milliseconds.
        deadline_ms: f64,
    },
}

impl BatchPolicy {
    /// The most requests a batch may carry (at least 1).
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Dynamic { max_batch, .. } => max_batch.max(1),
        }
    }

    /// Stable label used by reports (`fixed-1`, `fixed-8`,
    /// `dynamic-16@2ms`).
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Fixed(n) => format!("fixed-{}", n.max(1)),
            BatchPolicy::Dynamic { max_batch, deadline_ms } => {
                format!("dynamic-{}@{}ms", max_batch.max(1), deadline_ms)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_bounds() {
        assert_eq!(BatchPolicy::Fixed(1).label(), "fixed-1");
        assert_eq!(BatchPolicy::Fixed(0).max_batch(), 1);
        let d = BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 };
        assert_eq!(d.label(), "dynamic-16@2ms");
        assert_eq!(d.max_batch(), 16);
    }
}
