//! Request classes: the models a server offers, each wrapped with the
//! identity the plan cache keys on.
//!
//! A class holds a batch-1 *template* [`Network`] plus its content
//! [`Network::fingerprint`]. Batched variants ([`RequestClass::batched`])
//! share the template's weights and fingerprint, so every `(class, bucket,
//! backend)` plan-cache key traces back to one fingerprint per model — the
//! same identity scheme the prepack cache uses per weight tensor.

use lowbit::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One servable model: a named batch-1 template network plus its cached
/// content fingerprint.
#[derive(Clone, Debug)]
pub struct RequestClass {
    name: String,
    template: Network,
    fingerprint: u64,
}

impl RequestClass {
    /// Wraps an arbitrary batch-1 network as a request class.
    pub fn from_network(name: impl Into<String>, template: Network) -> RequestClass {
        // Cache-key soundness gate: the fingerprint this class hands to the
        // plan cache must cover every field the plan verifier's verdict
        // depends on, or two cache-equal networks could verify differently.
        debug_assert!(
            lowbit::verify::fingerprint_audit(&template).is_ok(),
            "Network::fingerprint is blind to a verdict-relevant field: {:?}",
            lowbit::verify::fingerprint_audit(&template)
        );
        let fingerprint = template.fingerprint();
        RequestClass { name: name.into(), template, fingerprint }
    }

    /// The three-layer demo network at `bits` and resolution `hw` — the
    /// lightweight request class (executable in tests and the smoke run).
    pub fn demo(bits: BitWidth, hw: usize, seed: u64) -> RequestClass {
        RequestClass::from_network(
            format!("demo-w{}-{hw}", bits.bits()),
            Network::demo(bits, hw, seed),
        )
    }

    /// A ResNet-50 stage-2 bottleneck block (conv6 → conv7 → conv8) at
    /// `bits` — the heavyweight class with real ResNet geometry, used by the
    /// modeled benchmarks.
    pub fn resnet50_bottleneck(bits: BitWidth, seed: u64) -> RequestClass {
        let net = Network::from_layer_defs(&lowbit_models::resnet50_bottleneck(), bits, seed)
            .expect("bottleneck defs chain");
        RequestClass::from_network(format!("resnet50-bottleneck-w{}", bits.bits()), net)
    }

    /// Class name (used in report rows and trace track names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The batch-1 template network.
    pub fn template(&self) -> &Network {
        &self.template
    }

    /// The template's content fingerprint (batch-invariant — see
    /// [`Network::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The template re-batched to `batch` (shares weights; same
    /// fingerprint).
    pub fn batched(&self, batch: usize) -> Network {
        self.template.with_batch(batch).expect("template validated at construction")
    }

    /// Input dims one request must supply: `(1, c_in, h, w)` of the first
    /// layer.
    pub fn input_dims(&self) -> (usize, usize, usize, usize) {
        let s = &self.template.layers()[0].shape;
        (1, s.c_in, s.h, s.w)
    }

    /// A deterministic random input for this class (floats in `[-1, 1)`).
    pub fn sample_input(&self, seed: u64) -> Tensor<f32> {
        let dims = self.input_dims();
        let len = dims.0 * dims.1 * dims.2 * dims.3;
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(dims, Layout::Nchw, (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_carry_batch_invariant_fingerprints() {
        let c = RequestClass::demo(BitWidth::W4, 12, 9);
        assert_eq!(c.name(), "demo-w4-12");
        assert_eq!(c.input_dims(), (1, 3, 12, 12));
        assert_eq!(c.fingerprint(), c.template().fingerprint());
        let b8 = c.batched(8);
        assert_eq!(b8.layers()[0].shape.batch, 8);
        assert_eq!(b8.fingerprint(), c.fingerprint());
        // Distinct seeds are distinct models.
        assert_ne!(RequestClass::demo(BitWidth::W4, 12, 10).fingerprint(), c.fingerprint());
    }

    #[test]
    fn bottleneck_class_builds_and_samples() {
        let c = RequestClass::resnet50_bottleneck(BitWidth::W4, 7);
        assert_eq!(c.input_dims(), (1, 256, 56, 56));
        let input = c.sample_input(1);
        assert_eq!(input.dims(), (1, 256, 56, 56));
        assert_eq!(input.data(), c.sample_input(1).data(), "seeded inputs are deterministic");
    }
}
