//! The bounded admission queue with typed backpressure.
//!
//! [`AdmissionQueue::push`] never blocks: a full queue rejects with
//! [`CoreError::QueueFull`] and a closed queue with
//! [`CoreError::ServerShutdown`] — the submitter decides whether to retry or
//! shed load. The batcher side ([`AdmissionQueue::next_batch`]) blocks on a
//! condvar and implements the [`BatchPolicy`] close rule: a `Fixed(n)`
//! batch waits for `n` requests (partial batches flush only at close), a
//! `Dynamic` batch closes at its size target or its formation deadline,
//! whichever comes first.

use crate::policy::BatchPolicy;
use lowbit::CoreError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Admission counters and current occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests rejected with `QueueFull`.
    pub rejected: u64,
    /// Requests currently waiting.
    pub depth: usize,
    /// Configured depth bound.
    pub capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    admitted: u64,
    rejected: u64,
}

/// A bounded MPSC queue: many submitters, one batcher.
pub struct AdmissionQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    cv: Condvar,
}

impl<T> AdmissionQueue<T> {
    /// Creates a queue holding at most `capacity` requests (min 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                admitted: 0,
                rejected: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Non-blocking admission: `QueueFull` at capacity, `ServerShutdown`
    /// after [`AdmissionQueue::close`].
    pub fn push(&self, item: T) -> Result<(), CoreError> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed {
            return Err(CoreError::ServerShutdown);
        }
        if g.items.len() >= self.capacity {
            g.rejected += 1;
            return Err(CoreError::QueueFull { capacity: self.capacity });
        }
        g.items.push_back(item);
        g.admitted += 1;
        self.cv.notify_all();
        Ok(())
    }

    /// Closes the queue: subsequent pushes fail, the batcher drains what is
    /// left (flushing partial batches) and then sees `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.cv.notify_all();
    }

    /// Blocks until a batch closes per `policy`; `None` once the queue is
    /// closed **and** empty. The dynamic deadline is measured from the
    /// moment the batcher sees the batch's first request.
    pub fn next_batch(&self, policy: &BatchPolicy) -> Option<Vec<T>> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if !g.items.is_empty() {
                break;
            }
            if g.closed {
                return None;
            }
            g = self.cv.wait(g).expect("queue poisoned");
        }
        let target = policy.max_batch();
        match *policy {
            BatchPolicy::Fixed(_) => {
                while g.items.len() < target && !g.closed {
                    g = self.cv.wait(g).expect("queue poisoned");
                }
            }
            BatchPolicy::Dynamic { deadline_ms, .. } => {
                let deadline =
                    Instant::now() + Duration::from_secs_f64(deadline_ms.max(0.0) / 1e3);
                while g.items.len() < target && !g.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (g2, _) =
                        self.cv.wait_timeout(g, deadline - now).expect("queue poisoned");
                    g = g2;
                }
            }
        }
        let b = g.items.len().min(target);
        Some(g.items.drain(..b).collect())
    }

    /// Admission counters and occupancy.
    pub fn stats(&self) -> QueueStats {
        let g = self.inner.lock().expect("queue poisoned");
        QueueStats {
            admitted: g.admitted,
            rejected: g.rejected,
            depth: g.items.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_with_typed_backpressure() {
        let q = AdmissionQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(CoreError::QueueFull { capacity: 2 }));
        let stats = q.stats();
        assert_eq!((stats.admitted, stats.rejected, stats.depth), (2, 1, 2));
        q.close();
        assert_eq!(q.push(4), Err(CoreError::ServerShutdown));
    }

    #[test]
    fn fixed_batches_close_at_exactly_n_and_flush_on_close() {
        let q = Arc::new(AdmissionQueue::new(16));
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let policy = BatchPolicy::Fixed(4);
        assert_eq!(q.next_batch(&policy), Some(vec![0, 1, 2, 3]));
        // One item left: a Fixed(4) batch waits — close flushes it partial.
        let qc = q.clone();
        let h = std::thread::spawn(move || qc.next_batch(&BatchPolicy::Fixed(4)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Some(vec![4]));
        assert_eq!(q.next_batch(&policy), None);
    }

    #[test]
    fn dynamic_batches_close_on_the_deadline() {
        let q = AdmissionQueue::new(16);
        q.push(7).unwrap();
        let t0 = Instant::now();
        let batch = q.next_batch(&BatchPolicy::Dynamic { max_batch: 8, deadline_ms: 10.0 });
        assert_eq!(batch, Some(vec![7]));
        assert!(t0.elapsed() >= Duration::from_millis(9), "waited out the deadline");
        // A full batch closes immediately.
        for i in 0..8 {
            q.push(i).unwrap();
        }
        let t0 = Instant::now();
        let batch = q.next_batch(&BatchPolicy::Dynamic { max_batch: 8, deadline_ms: 500.0 });
        assert_eq!(batch.map(|b| b.len()), Some(8));
        assert!(t0.elapsed() < Duration::from_millis(400), "did not wait for the deadline");
    }
}
