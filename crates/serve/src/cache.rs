//! The keyed plan cache: compile a batched [`ExecutionPlan`] once per
//! `(network fingerprint, batch, backend)` and share it.
//!
//! Per-key slot mutexes serialize compilation without blocking unrelated
//! keys: racing lookups for the same key agree on one slot under the outer
//! map lock, then exactly one of them compiles while the others wait on the
//! slot and return the shared `Arc` — the cache never compiles the same key
//! twice.

use lowbit::{BackendKind, CoreError, ExecutionPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a compiled plan is memoized by. The fingerprint is
/// [`lowbit::Network::fingerprint`] — batch-invariant, so re-batched
/// variants of one model share it and differ only in `batch`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PlanKey {
    /// The model's content fingerprint.
    pub fingerprint: u64,
    /// Batch bucket the plan was compiled for.
    pub batch: usize,
    /// Backend the plan targets.
    pub backend: BackendKind,
    /// Whether the plan was compiled with the certified parallel node
    /// scheduler. Parallel and serial compilations of one model differ in
    /// arena placement and carried certificates, so they must never share
    /// a cache slot.
    pub parallel: bool,
}

/// Lookup counters; `entries` counts distinct keys ever requested
/// (including any whose compilation is in flight).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanCacheStats {
    /// Lookups served an already-compiled plan.
    pub hits: u64,
    /// Lookups that compiled.
    pub misses: u64,
    /// Distinct keys.
    pub entries: usize,
}

impl PlanCacheStats {
    /// Hits over all lookups (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type Slot = Arc<Mutex<Option<Arc<ExecutionPlan>>>>;

/// The concurrent plan cache.
#[derive(Default)]
pub struct PlanCache {
    slots: Mutex<HashMap<PlanKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Returns the memoized plan for `key`, compiling it via `compile` on
    /// first sight. The `bool` is `true` on a cache hit. Concurrent calls
    /// for the same key compile exactly once — the losers block on the
    /// key's slot and share the winner's plan. A failed compile leaves the
    /// slot empty (the next lookup retries) and counts as neither hit nor
    /// miss.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<ExecutionPlan, CoreError>,
    ) -> Result<(Arc<ExecutionPlan>, bool), CoreError> {
        let slot: Slot = {
            let mut slots = self.slots.lock().expect("plan cache poisoned");
            slots.entry(key).or_default().clone()
        };
        let mut g = slot.lock().expect("plan slot poisoned");
        if let Some(plan) = &*g {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan.clone(), true));
        }
        let plan = Arc::new(compile()?);
        *g = Some(plan.clone());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((plan, false))
    }

    /// Lookup counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("plan cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit::prelude::*;

    fn key(batch: usize) -> PlanKey {
        PlanKey { fingerprint: 42, batch, backend: BackendKind::Arm, parallel: false }
    }

    fn compile_demo() -> Result<ExecutionPlan, CoreError> {
        let net = Network::demo(BitWidth::W4, 12, 9);
        Planner::for_arm(&ArmEngine::cortex_a53()).compile(&net)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_arc() {
        let cache = PlanCache::new();
        let (a, hit_a) = cache.get_or_compile(key(1), compile_demo).unwrap();
        let (b, hit_b) = cache
            .get_or_compile(key(1), || panic!("must not recompile"))
            .unwrap();
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        // A different batch is a different key.
        let (_, hit_c) = cache.get_or_compile(key(2), compile_demo).unwrap();
        assert!(!hit_c);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dag_topology_is_part_of_the_cache_key() {
        // Same three conv layers, same weights — but one graph carries the
        // residual add and one is the plain chain. The fingerprint covers
        // topology, so the cache must treat them as distinct models.
        let with_add = lowbit::models::resnet50_residual_block(8);
        let mut chain = with_add.clone();
        chain.nodes.pop();
        let a = Network::from_graph_defs(&with_add, BitWidth::W4, 9).unwrap();
        let b = Network::from_graph_defs(&chain, BitWidth::W4, 9).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint(), "fingerprint must cover the DAG");

        let engine = ArmEngine::cortex_a53();
        let cache = PlanCache::new();
        let k = |net: &Network| PlanKey {
            fingerprint: net.fingerprint(),
            batch: 1,
            backend: BackendKind::Arm,
            parallel: false,
        };
        let (plan_a, hit_a) = cache
            .get_or_compile(k(&a), || Planner::for_arm(&engine).compile(&a))
            .unwrap();
        let (plan_b, hit_b) = cache
            .get_or_compile(k(&b), || Planner::for_arm(&engine).compile(&b))
            .unwrap();
        assert!(!hit_a && !hit_b, "different DAGs never share a plan");
        assert_eq!(cache.stats().entries, 2);
        // And the cached plans really differ: only the residual graph's
        // plan carries a fused add in a conv epilogue.
        let has_fused = |p: &ExecutionPlan| {
            p.nodes()
                .iter()
                .any(|n| matches!(n.op, lowbit::PlanOp::Conv { fused_add: Some(_), .. }))
        };
        assert!(has_fused(&plan_a));
        assert!(!has_fused(&plan_b));
    }

    #[test]
    fn parallel_flag_is_part_of_the_cache_key() {
        let cache = PlanCache::new();
        let serial = key(1);
        let parallel = PlanKey { parallel: true, ..serial };
        let (plain, _) = cache.get_or_compile(serial, compile_demo).unwrap();
        assert!(plain.parallel_schedule().is_none());
        let (certified, hit) = cache
            .get_or_compile(parallel, || {
                let net = Network::demo(BitWidth::W4, 12, 9);
                Planner::for_arm(&ArmEngine::cortex_a53())
                    .with_parallel_nodes(true)
                    .compile(&net)
            })
            .unwrap();
        assert!(!hit, "serial and parallel compilations never share a slot");
        assert!(certified.parallel_schedule().is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn failed_compiles_are_retried() {
        let cache = PlanCache::new();
        let err = cache.get_or_compile(key(1), || Err(CoreError::EmptyNetwork));
        assert!(err.is_err());
        let (_, hit) = cache.get_or_compile(key(1), compile_demo).unwrap();
        assert!(!hit, "slot stayed empty after the failure");
    }
}
