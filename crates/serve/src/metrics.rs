//! Serving-side production metrics and SLO tracking.
//!
//! [`ServeMetrics`] owns every instrument the server and the virtual-time
//! sim record into: per-class stage histograms (queue-wait / batch-form /
//! compile / execute / total), completion and rejection counters (the
//! latter labelled by [`RejectReason`] — satellite: rejected requests get
//! stage attribution too), per-class SLO violation counters with an
//! error-budget burn gauge, and the plan-cache hit-ratio gauge.
//!
//! Worker threads record through [`WorkerShards`] — one private shard set
//! per worker per class — so the hot path never contends on a shared mutex
//! and performs zero steady-state allocations (the old single counter
//! mutex in `server.rs` is gone).

use crate::cache::PlanCacheStats;
use crate::server::RequestTiming;
use lowbit_metrics::{Counter, Gauge, HistShard, HistSpec, Histogram, Registry};
use std::sync::Arc;

/// Why a request left the server without a completed response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// Typed backpressure at admission: the class queue was at depth.
    QueueFull,
    /// The submitted tensor had the wrong dimensions.
    BadInput,
    /// Plan compilation failed for the batch.
    CompileError,
    /// Batched execution failed.
    ExecError,
}

impl RejectReason {
    /// The `reason` label value.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::BadInput => "bad_input",
            RejectReason::CompileError => "compile_error",
            RejectReason::ExecError => "exec_error",
        }
    }

    const ALL: [RejectReason; 4] = [
        RejectReason::QueueFull,
        RejectReason::BadInput,
        RejectReason::CompileError,
        RejectReason::ExecError,
    ];
}

/// The stage histograms for one class. Shared family handles — workers get
/// private shards of these via [`ServeMetrics::worker_shards`].
struct ClassInstruments {
    queue_wait: Histogram,
    batch_form: Histogram,
    compile: Histogram,
    execute: Histogram,
    total: Histogram,
    rejected_wait: Histogram,
    completed: Counter,
    slo_violations: Counter,
    budget_burn: Gauge,
    rejected: [Counter; 4],
}

/// One worker's private recording shards for one class.
pub struct ClassShards {
    queue_wait: HistShard,
    batch_form: HistShard,
    compile: HistShard,
    execute: HistShard,
    total: HistShard,
}

/// One worker's shard set across every class. Created once per worker
/// thread; recording through it locks only this worker's own cells.
pub struct WorkerShards {
    classes: Vec<ClassShards>,
}

/// The serving metrics surface: registered once at server start, recorded
/// into by workers (via shards) and admission (via counters).
pub struct ServeMetrics {
    registry: Arc<Registry>,
    slo_p99_ms: f64,
    classes: Vec<ClassInstruments>,
    batches: Counter,
    cache_hit_ratio: Gauge,
}

impl ServeMetrics {
    /// Registers the full instrument set for `class_names` into `registry`.
    /// `slo_p99_ms` is the per-class p99 latency objective: completions
    /// slower than it count as SLO violations, and the error-budget burn
    /// gauge reports the violation rate against the 1% budget a p99
    /// objective implies.
    pub fn new(registry: Arc<Registry>, class_names: &[&str], slo_p99_ms: f64) -> Arc<ServeMetrics> {
        let spec = HistSpec::latency_ms();
        let classes = class_names
            .iter()
            .map(|name| {
                let labels: [(&str, &str); 1] = [("class", name)];
                ClassInstruments {
                    queue_wait: registry.histogram(
                        "serve_queue_wait_ms",
                        "Admission to batch close, per request",
                        &labels,
                        spec,
                    ),
                    batch_form: registry.histogram(
                        "serve_batch_form_ms",
                        "Batch close to worker pickup, per request",
                        &labels,
                        spec,
                    ),
                    compile: registry.histogram(
                        "serve_compile_ms",
                        "Plan lookup (compile on miss) duration, per request",
                        &labels,
                        spec,
                    ),
                    execute: registry.histogram(
                        "serve_execute_ms",
                        "Batched execution duration, per request",
                        &labels,
                        spec,
                    ),
                    total: registry.histogram(
                        "serve_total_ms",
                        "End-to-end request latency",
                        &labels,
                        spec,
                    ),
                    rejected_wait: registry.histogram(
                        "serve_rejected_wait_ms",
                        "Queue wait accumulated by requests that were rejected",
                        &labels,
                        spec,
                    ),
                    completed: registry.counter(
                        "serve_completed_total",
                        "Requests answered successfully",
                        &labels,
                    ),
                    slo_violations: registry.counter(
                        "serve_slo_violations_total",
                        "Completions slower than the p99 objective",
                        &labels,
                    ),
                    budget_burn: registry.gauge(
                        "serve_error_budget_burn",
                        "Violation rate over the 1% budget a p99 objective implies (>1 = burning)",
                        &labels,
                    ),
                    rejected: RejectReason::ALL.map(|reason| {
                        registry.counter(
                            "serve_rejected_total",
                            "Requests rejected, by reason",
                            &[("class", name), ("reason", reason.label())],
                        )
                    }),
                }
            })
            .collect();
        let batches = registry.counter("serve_batches_total", "Batches executed", &[]);
        let cache_hit_ratio = registry.gauge(
            "plan_cache_hit_ratio",
            "Plan-cache hits over all lookups",
            &[],
        );
        Arc::new(ServeMetrics { registry, slo_p99_ms, classes, batches, cache_hit_ratio })
    }

    /// The registry everything lands in (for exposition / snapshots).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The configured p99 objective in milliseconds.
    pub fn slo_p99_ms(&self) -> f64 {
        self.slo_p99_ms
    }

    /// A private shard set for one worker thread (allocates here, never on
    /// the record path).
    pub fn worker_shards(&self) -> WorkerShards {
        WorkerShards {
            classes: self
                .classes
                .iter()
                .map(|c| ClassShards {
                    queue_wait: c.queue_wait.shard(),
                    batch_form: c.batch_form.shard(),
                    compile: c.compile.shard(),
                    execute: c.execute.shard(),
                    total: c.total.shard(),
                })
                .collect(),
        }
    }

    /// Records one completed request's stage attribution through `shards`,
    /// bumps the class completion counter, and updates SLO accounting.
    pub fn record_completion(&self, shards: &WorkerShards, class: usize, timing: &RequestTiming) {
        let s = &shards.classes[class];
        s.queue_wait.record(timing.queue_wait_ms);
        s.batch_form.record(timing.batch_form_ms);
        s.compile.record(timing.compile_ms);
        s.execute.record(timing.execute_ms);
        let total = timing.total_ms();
        s.total.record(total);
        let c = &self.classes[class];
        c.completed.inc();
        if total > self.slo_p99_ms {
            c.slo_violations.inc();
        }
        let completed = c.completed.value();
        let violations = c.slo_violations.value();
        // A p99 objective allows 1% of completions over it; burn is the
        // observed violation rate against that budget.
        let burn = if completed == 0 {
            0.0
        } else {
            (violations as f64 / completed as f64) / 0.01
        };
        c.budget_burn.set(burn);
    }

    /// Records a rejected request: the `reason`-labelled counter plus the
    /// queue wait it accumulated before rejection (satellite: backpressured
    /// requests get stage attribution too). Partial stage times measured
    /// before the failure go through `stages` when a worker had already
    /// picked the batch up.
    pub fn record_rejection(
        &self,
        stages: Option<(&WorkerShards, &RequestTiming)>,
        class: usize,
        reason: RejectReason,
        wait_ms: f64,
    ) {
        let c = &self.classes[class];
        c.rejected[RejectReason::ALL.iter().position(|r| *r == reason).unwrap()].inc();
        c.rejected_wait.record(wait_ms);
        if let Some((shards, timing)) = stages {
            let s = &shards.classes[class];
            s.queue_wait.record(timing.queue_wait_ms);
            s.batch_form.record(timing.batch_form_ms);
            s.compile.record(timing.compile_ms);
        }
    }

    /// Records one executed batch and refreshes the cache hit-ratio gauge.
    pub fn record_batch(&self, cache: &PlanCacheStats) {
        self.batches.inc();
        let total = cache.hits + cache.misses;
        if total > 0 {
            self.cache_hit_ratio.set(cache.hits as f64 / total as f64);
        }
    }

    /// Completions recorded for `class`.
    pub fn completed(&self, class: usize) -> u64 {
        self.classes[class].completed.value()
    }

    /// Rejections recorded for `class` with `reason`.
    pub fn rejected(&self, class: usize, reason: RejectReason) -> u64 {
        self.classes[class].rejected
            [RejectReason::ALL.iter().position(|r| *r == reason).unwrap()]
        .value()
    }

    /// SLO violations recorded for `class`.
    pub fn slo_violations(&self, class: usize) -> u64 {
        self.classes[class].slo_violations.value()
    }

    /// Nearest-rank `q`-th percentile of `class`'s end-to-end latency,
    /// read off the merged histogram (within one bucket width of exact).
    pub fn total_percentile(&self, class: usize, q: f64) -> f64 {
        self.classes[class].total.snapshot().percentile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit::prelude::BackendKind;

    fn timing(total_split: [f64; 4]) -> RequestTiming {
        RequestTiming {
            queue_wait_ms: total_split[0],
            batch_form_ms: total_split[1],
            compile_ms: total_split[2],
            execute_ms: total_split[3],
            plan_cache_hit: true,
            batch_formed: 4,
            batch_bucket: 4,
            backend: BackendKind::Arm,
        }
    }

    #[test]
    fn completions_drive_slo_and_budget_burn() {
        let registry = Arc::new(Registry::new());
        let m = ServeMetrics::new(registry, &["demo"], 10.0);
        let shards = m.worker_shards();
        // 9 fast, 1 slow: 10% violation rate = 10x the 1% budget.
        for _ in 0..9 {
            m.record_completion(&shards, 0, &timing([1.0, 0.5, 0.1, 2.0]));
        }
        m.record_completion(&shards, 0, &timing([30.0, 1.0, 0.1, 5.0]));
        assert_eq!(m.completed(0), 10);
        assert_eq!(m.slo_violations(0), 1);
        let snap = m.registry().snapshot();
        let burn = snap
            .families
            .iter()
            .find(|f| f.name == "serve_error_budget_burn")
            .and_then(|f| match f.children[0].value {
                lowbit_metrics::ChildValue::Gauge(v) => Some(v),
                _ => None,
            })
            .unwrap();
        assert!((burn - 10.0).abs() < 1e-9, "burn {burn}");
        assert!(m.total_percentile(0, 0.5) > 0.0);
    }

    #[test]
    fn rejections_are_counted_by_reason_with_wait_attribution() {
        let registry = Arc::new(Registry::new());
        let m = ServeMetrics::new(registry, &["a", "b"], 10.0);
        let shards = m.worker_shards();
        m.record_rejection(None, 0, RejectReason::QueueFull, 0.02);
        m.record_rejection(None, 0, RejectReason::QueueFull, 0.03);
        let t = timing([4.0, 1.0, 0.5, 0.0]);
        m.record_rejection(Some((&shards, &t)), 1, RejectReason::ExecError, 4.0);
        assert_eq!(m.rejected(0, RejectReason::QueueFull), 2);
        assert_eq!(m.rejected(1, RejectReason::ExecError), 1);
        assert_eq!(m.rejected(1, RejectReason::QueueFull), 0);
        // The exec-error rejection recorded its partial stages too.
        let snap = m.registry().snapshot();
        let fam = snap.families.iter().find(|f| f.name == "serve_queue_wait_ms").unwrap();
        let b_child = fam
            .children
            .iter()
            .find(|c| c.labels.iter().any(|(_, v)| v == "b"))
            .unwrap();
        match &b_child.value {
            lowbit_metrics::ChildValue::Hist(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn batches_refresh_the_cache_ratio_gauge() {
        let registry = Arc::new(Registry::new());
        let m = ServeMetrics::new(registry, &["demo"], 10.0);
        m.record_batch(&PlanCacheStats { hits: 3, misses: 1, entries: 1 });
        let snap = m.registry().snapshot();
        let ratio = snap
            .families
            .iter()
            .find(|f| f.name == "plan_cache_hit_ratio")
            .and_then(|f| match f.children[0].value {
                lowbit_metrics::ChildValue::Gauge(v) => Some(v),
                _ => None,
            })
            .unwrap();
        assert!((ratio - 0.75).abs() < 1e-12);
    }
}
