//! Batched asynchronous inference serving for the low-bit stack.
//!
//! The paper's Fig. 10 shows a batch-size crossover between the GPU (launch
//! overhead amortizes with batch) and multi-thread ARM (thread imbalance
//! amortizes with batch) backends. This crate makes that crossover
//! *executable*: a server that admits single requests through a bounded
//! queue, forms batches under a close policy, picks the batch's backend
//! from the planner's cost model, memoizes batched [`ExecutionPlan`]s in a
//! keyed cache, and drives [`Executor::run`] from a worker pool — with
//! per-request latency attribution throughout.
//!
//! [`ExecutionPlan`]: lowbit::ExecutionPlan
//! [`Executor::run`]: lowbit::Executor::run
//!
//! Layers, bottom-up:
//!
//! - [`class`]: the models a server offers, keyed by content fingerprint.
//! - [`policy`]: batch close rules (`Fixed(n)`, `Dynamic{max,deadline}`).
//! - [`queue`]: the bounded admission queue with typed backpressure.
//! - [`cost`]: the batch-size/backend decision rule (the Fig. 10 curves).
//! - [`cache`]: the `(fingerprint, bucket, backend)`-keyed plan cache.
//! - [`metrics`]: production metrics — stage histograms, SLO accounting,
//!   rejection counters — recorded through per-worker shards.
//! - [`server`]: the threaded server tying it all together.
//! - [`sim`]: deterministic virtual-time traffic simulation.
//! - [`report`]: the `BENCH_serving.json` builder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod class;
pub mod cost;
pub mod metrics;
pub mod policy;
pub mod queue;
pub mod report;
pub mod server;
pub mod sim;

pub use cache::{PlanCache, PlanCacheStats, PlanKey};
pub use class::RequestClass;
pub use cost::{bucket_for, choose_point, crossover_table, CostPoint, BATCH_BUCKETS};
pub use metrics::{RejectReason, ServeMetrics, WorkerShards};
pub use policy::BatchPolicy;
pub use queue::{AdmissionQueue, QueueStats};
pub use report::{save_serving_json, serving_report};
pub use server::{Response, Server, ServerConfig, ServerStats, Ticket};
pub use sim::{simulate, simulate_instrumented, Arrival, SimConfig, SimResult};
