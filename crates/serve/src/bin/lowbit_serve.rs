//! The serving benchmark / smoke driver.
//!
//! Default run writes `BENCH_serving.json` (the deterministic virtual-time
//! serving benchmark over three request classes and three batch policies).
//!
//! `--smoke` additionally drives the *real* threaded [`Server`] end to end:
//! a recording tracer, one worker (so executor wall spans cannot
//! interleave), a bounded number of seeded requests, chrome-trace export for
//! `validate_trace`, and a stats printout. This is the CI path.
//!
//! ```text
//! lowbit-serve [--smoke] [--out BENCH_serving.json] [--trace trace.json]
//!              [--requests N]
//! ```

use lowbit::prelude::*;
use lowbit_serve::{BatchPolicy, RequestClass, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    smoke: bool,
    out: PathBuf,
    trace: Option<PathBuf>,
    requests: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_serving.json"),
        trace: None,
        requests: 48,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = PathBuf::from(it.next().ok_or("--out needs a path")?);
            }
            "--trace" => {
                args.trace = Some(PathBuf::from(it.next().ok_or("--trace needs a path")?));
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Drives the real server: submit `n` seeded demo requests, wait for every
/// ticket, shut down, report. Returns an error message on any failed
/// request.
fn smoke(n: usize, trace_out: Option<&PathBuf>) -> Result<(), String> {
    let class = RequestClass::demo(BitWidth::W4, 12, 9);
    let (tracer, sink) = Tracer::recording();
    let config = ServerConfig {
        queue_depth: 64,
        policy: BatchPolicy::Dynamic { max_batch: 4, deadline_ms: 2.0 },
        workers: 1, // keeps executor wall spans on one track non-overlapping
        arm_threads: 2,
        force_backend: None,
        parallel_nodes: false,
        slo_p99_ms: 50.0,
    };
    let server = Server::start(vec![class.clone()], config, &tracer);
    let metrics = server.metrics();

    let mut tickets = Vec::new();
    for i in 0..n {
        match server.submit(0, class.sample_input(i as u64)) {
            Ok(t) => tickets.push(t),
            Err(e) => return Err(format!("submit {i} failed: {e}")),
        }
    }
    let mut hits = 0usize;
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t.wait().map_err(|e| format!("request {i} failed: {e}"))?;
        if resp.timing.plan_cache_hit {
            hits += 1;
        }
    }
    let stats = server.shutdown();

    println!("smoke: {n} requests on {}", class.name());
    println!(
        "  admitted {} rejected {} batches {} completed {}",
        stats.queues[0].admitted, stats.queues[0].rejected, stats.batches, stats.completed
    );
    println!(
        "  plan cache: {} hits {} misses ({} entries); per-request hits {hits}/{n}",
        stats.plan_cache.hits, stats.plan_cache.misses, stats.plan_cache.entries
    );
    println!("  batch histogram: {:?}", stats.batch_histogram);
    if stats.completed != n as u64 {
        return Err(format!("completed {} of {n}", stats.completed));
    }

    println!(
        "  p99 {:.3} ms (objective {:.1} ms, {} violations)",
        metrics.total_percentile(0, 0.99),
        metrics.slo_p99_ms(),
        metrics.slo_violations(0)
    );

    let capture = sink.capture();
    let chrome = lowbit_trace::chrome::chrome_trace_json(&capture);
    lowbit_trace::chrome::validate_chrome_trace(&chrome)
        .map_err(|e| format!("smoke trace invalid: {e}"))?;
    // The summary exposition carries the registry's gauge snapshot alongside
    // the trace counters; parse it back as a smoke-level round trip.
    let gauges = metrics.registry().gauge_values();
    let summary = lowbit_trace::summary::summary_json_with_gauges(&capture, &gauges);
    lowbit_trace::json::parse(&summary).map_err(|e| format!("smoke summary invalid: {e}"))?;
    if let Some(path) = trace_out {
        std::fs::write(path, &chrome).map_err(|e| format!("write {path:?}: {e}"))?;
        let summary_path = path.with_extension("summary.json");
        std::fs::write(&summary_path, &summary)
            .map_err(|e| format!("write {summary_path:?}: {e}"))?;
        println!("  trace -> {}", path.display());
        println!("  summary -> {}", summary_path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lowbit-serve: {e}");
            return ExitCode::from(2);
        }
    };

    if args.smoke {
        if let Err(e) = smoke(args.requests, args.trace.as_ref()) {
            eprintln!("lowbit-serve: {e}");
            return ExitCode::FAILURE;
        }
    }

    let dir = args.out.parent().map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let dir = if dir.as_os_str().is_empty() { PathBuf::from(".") } else { dir };
    match lowbit_serve::save_serving_json(&dir) {
        Ok(path) => {
            // save_serving_json names the file; honor a custom --out name.
            if path != args.out {
                if let Err(e) = std::fs::rename(&path, &args.out) {
                    eprintln!("lowbit-serve: rename to {:?}: {e}", args.out);
                    return ExitCode::FAILURE;
                }
            }
            println!("serving benchmark -> {}", args.out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lowbit-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
