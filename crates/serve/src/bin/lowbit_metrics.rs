//! The metrics smoke driver and CI perf gate.
//!
//! ```text
//! lowbit-metrics --smoke [--check] [--out-dir DIR] [--golden-dir DIR]
//! lowbit-metrics bench-diff OLD.json NEW.json [--tolerance 0.10]
//! ```
//!
//! `--smoke` drives the deterministic virtual-time serving sim with
//! production metrics attached, renders the registry as Prometheus text
//! format (validated in-process) plus a JSON snapshot, and runs the
//! cost-model drift demo: a warmed executor whose observed-vs-predicted
//! ratios audit clean, then an injected 2x perturbation on exactly one
//! (shape, bits, backend) key that the auditor must flag — and nothing
//! else. `--check` additionally compares the exposition and the clean
//! drift report against the golden files.
//!
//! `bench-diff` compares two benchmark JSON files leaf-by-leaf and exits
//! nonzero when any tracked figure regressed past the tolerance — CI's
//! first performance gate.

use lowbit::prelude::*;
use lowbit_metrics::drift::DriftBand;
use lowbit_metrics::{prom, Registry};
use lowbit_serve::{
    simulate_instrumented, Arrival, BatchPolicy, RequestClass, ServeMetrics, SimConfig,
};
use lowbit_trace::json::{parse, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("bench-diff") => bench_diff_cmd(&argv[1..]),
        _ => smoke_cmd(&argv),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lowbit-metrics: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- smoke --

struct SmokeArgs {
    check: bool,
    out_dir: PathBuf,
    golden_dir: PathBuf,
}

fn smoke_cmd(argv: &[String]) -> Result<(), String> {
    let mut args = SmokeArgs {
        check: false,
        out_dir: PathBuf::from("."),
        golden_dir: PathBuf::from("tests/golden"),
    };
    let mut smoke = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--check" => args.check = true,
            "--out-dir" => {
                args.out_dir = PathBuf::from(it.next().ok_or("--out-dir needs a path")?)
            }
            "--golden-dir" => {
                args.golden_dir = PathBuf::from(it.next().ok_or("--golden-dir needs a path")?)
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !smoke {
        return Err("usage: lowbit-metrics --smoke [--check] | bench-diff OLD NEW".to_string());
    }

    let exposition = sim_exposition()?;
    let drift_report = drift_demo()?;

    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| format!("create {:?}: {e}", args.out_dir))?;
    let prom_path = args.out_dir.join("metrics_exposition.prom");
    std::fs::write(&prom_path, &exposition.text)
        .map_err(|e| format!("write {prom_path:?}: {e}"))?;
    let snap_path = args.out_dir.join("metrics_snapshot.json");
    std::fs::write(&snap_path, &exposition.snapshot_json)
        .map_err(|e| format!("write {snap_path:?}: {e}"))?;
    let drift_path = args.out_dir.join("drift_report.txt");
    std::fs::write(&drift_path, &drift_report)
        .map_err(|e| format!("write {drift_path:?}: {e}"))?;
    println!("smoke: exposition -> {} ({} samples validated)", prom_path.display(), exposition.samples);
    println!("smoke: snapshot   -> {}", snap_path.display());
    println!("smoke: drift      -> {}", drift_path.display());

    if args.check {
        check_golden(&args.golden_dir.join("metrics_exposition.prom"), &exposition.text)?;
        check_golden(&args.golden_dir.join("drift_report.txt"), &drift_report)?;
        println!("smoke: goldens match");
    }
    Ok(())
}

fn check_golden(path: &Path, actual: &str) -> Result<(), String> {
    let golden = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    if golden != actual {
        let mismatch = golden
            .lines()
            .zip(actual.lines())
            .position(|(g, a)| g != a)
            .map(|i| format!("first differing line {}", i + 1))
            .unwrap_or_else(|| "line counts differ".to_string());
        return Err(format!(
            "{} does not match the current output ({mismatch}); \
             regenerate with `lowbit-metrics --smoke --out-dir tests/golden`",
            path.display()
        ));
    }
    Ok(())
}

struct Exposition {
    text: String,
    snapshot_json: String,
    samples: usize,
}

/// Drives the virtual-time sim for two classes with metrics attached and
/// renders the registry. Everything is seeded and virtual-time, so the
/// exposition is bit-identical on every host.
fn sim_exposition() -> Result<Exposition, String> {
    let classes = [RequestClass::demo(BitWidth::W4, 12, 9), RequestClass::demo(BitWidth::W6, 12, 9)];
    let names: Vec<&str> = classes.iter().map(|c| c.name()).collect();
    let registry = Arc::new(Registry::new());
    // A 4 ms p99 objective: tight enough that the overloaded class burns
    // error budget while the in-capacity class stays clean.
    let metrics = ServeMetrics::new(registry.clone(), &names, 4.0);
    for (idx, class) in classes.iter().enumerate() {
        // Class 0 is driven over capacity (exercising rejections and SLO
        // burn); class 1 runs comfortably inside it.
        let cfg = SimConfig {
            policy: BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 },
            arrival: Arrival::OpenLoop { rate_per_s: if idx == 0 { 20_000.0 } else { 400.0 } },
            requests: 2000,
            queue_depth: if idx == 0 { 16 } else { 64 },
            seed: 42,
            force_backend: None,
        };
        let r = simulate_instrumented(class, &cfg, &metrics, idx);
        println!(
            "sim[{}]: completed {} rejected {} p99 {:.3} ms (hist p99 {:.3} ms)",
            class.name(),
            r.completed,
            r.rejected,
            r.p99_ms,
            metrics.total_percentile(idx, 0.99),
        );
    }
    let snapshot = registry.snapshot();
    let text = prom::render(&snapshot);
    let samples = prom::validate(&text).map_err(|e| format!("exposition invalid: {e}"))?;
    Ok(Exposition { text, snapshot_json: snapshot.to_json(), samples })
}

// ---------------------------------------------------------------- drift --

fn demo_input(hw: usize) -> Tensor<f32> {
    let data: Vec<f32> = (0..3 * hw * hw).map(|i| (i % 17) as f32 / 8.5 - 1.0).collect();
    Tensor::from_vec((1, 3, hw, hw), Layout::Nchw, data)
}

/// The drift demo: a warmed executor audits clean under the default band
/// (warm modeled millis reproduce the plan's predictions exactly), then a
/// 2x perturbation injected into one layer's prediction must be flagged on
/// exactly that (shape, bits, backend) key. Returns the rendered *clean*
/// report (the golden).
fn drift_demo() -> Result<String, String> {
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let net = Network::demo(BitWidth::W4, 16, 5);
    let plan = Planner::for_arm(&engine)
        .compile(&net)
        .map_err(|e| format!("compile: {e}"))?;
    let input = demo_input(16);
    // Warm the prepack cache: cold first runs carry pack cost the steady
    // state never sees, and the auditor models the steady state.
    Executor::for_arm(&engine)
        .run(&plan, &net, &input)
        .map_err(|e| format!("warm run: {e}"))?;

    let clean = lowbit::ExecMetrics::new(Arc::new(Registry::new()));
    let exec = Executor::for_arm(&engine).with_metrics(&clean);
    for _ in 0..4 {
        exec.run(&plan, &net, &input).map_err(|e| format!("clean run: {e}"))?;
    }
    let band = DriftBand::default();
    let clean_report = clean.audit(band);
    if !clean_report.clean() {
        return Err(format!(
            "unperturbed run must audit clean:\n{}",
            clean_report.render()
        ));
    }

    // Inject the perturbation: halve one layer's predicted millis so its
    // observed/predicted ratio becomes exactly 2x, outside the band.
    let mut layers = plan.layers().to_vec();
    layers[0].predicted_millis *= 0.5;
    let perturbed_key = lowbit::ExecKey::of(&layers[0]);
    let perturbed_plan =
        ExecutionPlan::from_layers(layers, plan.workspace_high_water_bytes());
    let perturbed = lowbit::ExecMetrics::new(Arc::new(Registry::new()));
    let exec = Executor::for_arm(&engine).with_metrics(&perturbed);
    for _ in 0..4 {
        exec.run(&perturbed_plan, &net, &input)
            .map_err(|e| format!("perturbed run: {e}"))?;
    }
    let perturbed_report = perturbed.audit(band);
    let findings = perturbed_report.findings();
    if findings.len() != 1 || findings[0].key != perturbed_key {
        return Err(format!(
            "2x perturbation must flag exactly {perturbed_key}:\n{}",
            perturbed_report.render()
        ));
    }
    println!(
        "drift: clean audit over {} keys; perturbation flagged {} (mean ratio {:.4})",
        clean_report.keys.len(),
        findings[0].key,
        findings[0].mean_ratio
    );
    Ok(clean_report.render())
}

// ----------------------------------------------------------- bench-diff --

fn bench_diff_cmd(argv: &[String]) -> Result<(), String> {
    let mut tolerance = 0.10f64;
    let mut files: Vec<&String> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance needs a fraction")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            _ => files.push(a),
        }
    }
    let [old_path, new_path] = files[..] else {
        return Err("usage: lowbit-metrics bench-diff OLD.json NEW.json [--tolerance 0.10]"
            .to_string());
    };
    let old = load_leaves(old_path)?;
    let new = load_leaves(new_path)?;
    let (compared, regressions) = diff_figures(&old, &new, tolerance);
    if compared == 0 {
        return Err("no comparable benchmark figures found in both files".to_string());
    }
    println!(
        "bench-diff: {compared} figures compared at ±{:.0}% tolerance, {} regressions",
        tolerance * 100.0,
        regressions.len()
    );
    if regressions.is_empty() {
        Ok(())
    } else {
        for r in &regressions {
            eprintln!("  REGRESSION {r}");
        }
        Err(format!("{} benchmark figures regressed past tolerance", regressions.len()))
    }
}

enum Direction {
    HigherBetter,
    LowerBetter,
}

/// Compares every tracked figure present in both leaf sets; returns the
/// number compared and one line per regression past `tolerance`.
fn diff_figures(
    old: &[(String, f64)],
    new: &[(String, f64)],
    tolerance: f64,
) -> (usize, Vec<String>) {
    let mut compared = 0usize;
    let mut regressions = Vec::new();
    for (path, old_v) in old {
        let Some(direction) = direction_of(path) else { continue };
        let Some(new_v) = new.iter().find(|(p, _)| p == path).map(|(_, v)| *v) else {
            continue;
        };
        compared += 1;
        let regressed = match direction {
            Direction::HigherBetter => new_v < old_v * (1.0 - tolerance),
            Direction::LowerBetter => new_v > old_v * (1.0 + tolerance),
        };
        if regressed {
            let pct = (new_v / old_v - 1.0) * 100.0;
            regressions.push(format!("{path}: {old_v:.4} -> {new_v:.4} ({pct:+.1}%)"));
        }
    }
    (compared, regressions)
}

/// Which figures gate the diff. Wall-clock fields (`wall_ms` etc.) are
/// deliberately skipped — they are host-noisy; modeled and virtual-time
/// figures are deterministic.
fn direction_of(path: &str) -> Option<Direction> {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    let leaf = leaf.split('[').next().unwrap_or(leaf);
    match leaf {
        "throughput_rps" | "speedup" | "avg_speedup" | "amdahl_speedup" | "cache_hit_rate"
        | "reduction_factor" => Some(Direction::HigherBetter),
        "p50_ms" | "p95_ms" | "p99_ms" | "mean_ms" | "makespan_ms"
        | "activation_high_water_bytes" => Some(Direction::LowerBetter),
        _ => None,
    }
}

fn load_leaves(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let value = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut leaves = Vec::new();
    collect_leaves(&value, String::new(), &mut leaves);
    Ok(leaves)
}

fn collect_leaves(v: &Value, path: String, out: &mut Vec<(String, f64)>) {
    match v {
        Value::Num(n) => out.push((path, *n)),
        Value::Obj(fields) => {
            for (k, child) in fields {
                let next = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                collect_leaves(child, next, out);
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                collect_leaves(child, format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(text: &str) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        collect_leaves(&parse(text).unwrap(), String::new(), &mut out);
        out
    }

    const BENCH: &str = r#"{"classes":[{"open_loop":{"throughput_rps":1000.0,
        "p99_ms":5.0,"wall_ms":123.0}}],"cache_hit_rate":0.9}"#;

    #[test]
    fn self_comparison_is_clean() {
        let l = leaves(BENCH);
        let (compared, regressions) = diff_figures(&l, &l, 0.10);
        assert_eq!(compared, 3, "throughput + p99 + hit rate; wall_ms skipped");
        assert!(regressions.is_empty());
    }

    #[test]
    fn twenty_percent_throughput_regression_is_flagged_at_ten_percent_tolerance() {
        let old = leaves(BENCH);
        let new = leaves(&BENCH.replace("1000.0", "800.0"));
        let (_, regressions) = diff_figures(&old, &new, 0.10);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("throughput_rps"), "{}", regressions[0]);
    }

    #[test]
    fn latency_regressions_use_the_lower_better_direction() {
        let old = leaves(BENCH);
        // p99 doubling regresses; throughput doubling improves.
        let new = leaves(&BENCH.replace("5.0", "10.0").replace("1000.0", "2000.0"));
        let (_, regressions) = diff_figures(&old, &new, 0.10);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("p99_ms"));
        // Wall-clock noise never gates.
        let noisy = leaves(&BENCH.replace("123.0", "999.0"));
        let (_, r2) = diff_figures(&old, &noisy, 0.10);
        assert!(r2.is_empty());
    }
}
