//! The batch-size/backend decision rule — the paper's Fig. 10 crossover
//! made executable.
//!
//! Two modeled latency curves per request class and batch size:
//!
//! - **GPU**: [`GpuEngine::estimate`] per layer. The fixed launch overhead
//!   is paid per layer-launch regardless of batch, so batching amortizes it
//!   — per-request GPU cost falls steeply with batch size (and tiny
//!   networks at batch 1 are launch-bound).
//! - **ARM (T threads)**: the engine's warm analytic schedule split by
//!   [`parallel_cycle_split`] into serial (im2col, requant) and
//!   parallelizable (pack-B, GEMM) cycles. The parallel part is divided by
//!   the *actual* worst-thread share from [`partition_columns`] — at small
//!   or misaligned GEMM widths the NB-tile round-robin leaves threads
//!   imbalanced (share > 1/T), and batching grows `gemm_n` toward the
//!   balanced 1/T limit. That imbalance amortization is the ARM side's
//!   batching win.
//!
//! [`choose_point`] picks the lower curve; [`crossover_table`] evaluates
//! every bucket so reports (and the planner-driven batcher) can see where
//! the curves cross.

use crate::class::RequestClass;
use lowbit::conv_arm::{parallel_cycle_split, schedule_gemm_conv_prepacked};
use lowbit::prelude::*;
use lowbit::qgemm::{partition_columns, Scheme};
use lowbit::select_arm_algo;

/// The batch buckets requests are padded up to. Bounding the bucket set
/// bounds the plan-cache key space, which is what makes a ≥90% steady-state
/// hit rate structural rather than lucky.
pub const BATCH_BUCKETS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The smallest bucket holding `n` requests (the largest bucket for any
/// overflow — the batcher never forms batches past its policy bound).
pub fn bucket_for(n: usize) -> usize {
    for &b in &BATCH_BUCKETS {
        if n <= b {
            return b;
        }
    }
    *BATCH_BUCKETS.last().expect("buckets non-empty")
}

/// Modeled ARM milliseconds for one batched run of `class` at `batch` on
/// `threads` workers (warm prepack cache). GEMM-family layers split into
/// serial + parallel cycles with the worst thread's column share; other
/// algorithms (Winograd, baselines) run serial. The wide-GEMM schedule's
/// serial/parallel split is used for all three GEMM variants — the stage
/// structure (im2col/pack/gemm/requant) is shared, only tile widths differ.
pub fn arm_batch_millis(class: &RequestClass, batch: usize, engine: &ArmEngine) -> f64 {
    let model = engine.model();
    let threads = engine.threads();
    let mut total = 0.0;
    for l in class.template().layers() {
        let bits = l.weights.bits();
        let shape = l.shape.with_batch(batch);
        let algo = select_arm_algo(model, bits, &shape);
        let warm = engine.estimate_millis(bits, &shape, algo);
        total += match algo {
            ArmAlgo::Gemm | ArmAlgo::GemmNarrow | ArmAlgo::GemmSdot => {
                let sched = schedule_gemm_conv_prepacked(&Scheme::for_bits(bits), &shape);
                let (s, p) = parallel_cycle_split(&sched, model);
                let n = shape.gemm_n();
                let worst = partition_columns(n, threads)
                    .iter()
                    .map(|sp| sp.cols)
                    .max()
                    .unwrap_or(n);
                let share = worst as f64 / n as f64;
                warm * (s + p * share) / (s + p)
            }
            _ => warm,
        };
    }
    total
}

/// Modeled GPU milliseconds for one batched run of `class` at `batch`
/// (`None` when any layer's bit width has no Tensor Core path).
pub fn gpu_batch_millis(class: &RequestClass, batch: usize, engine: &GpuEngine) -> Option<f64> {
    let mut total = 0.0;
    for l in class.template().layers() {
        let bits = l.weights.bits();
        GpuEngine::precision_for(bits)?;
        let t = engine.estimate(&l.shape.with_batch(batch), bits, Tuning::Default);
        total += t.total_s * 1e3;
    }
    Some(total)
}

/// One evaluated point of the crossover: both curves plus the winner.
#[derive(Clone, Copy, Debug)]
pub struct CostPoint {
    /// Batch size evaluated.
    pub batch: usize,
    /// The chosen backend (lower modeled batch latency).
    pub backend: BackendKind,
    /// The chosen curve's batch latency in milliseconds.
    pub batch_millis: f64,
    /// The ARM curve.
    pub arm_millis: f64,
    /// The GPU curve (`None` when the class's width is unsupported).
    pub gpu_millis: Option<f64>,
}

impl CostPoint {
    /// Modeled per-request latency at this point.
    pub fn per_request_millis(&self) -> f64 {
        self.batch_millis / self.batch as f64
    }
}

/// Evaluates both curves at `batch` and picks the winner (ties go to ARM —
/// no reason to pay a device transfer for a wash).
pub fn choose_point(
    class: &RequestClass,
    batch: usize,
    arm: &ArmEngine,
    gpu: &GpuEngine,
) -> CostPoint {
    let arm_millis = arm_batch_millis(class, batch, arm);
    let gpu_millis = gpu_batch_millis(class, batch, gpu);
    let (backend, batch_millis) = match gpu_millis {
        Some(g) if g < arm_millis => (BackendKind::GpuModel, g),
        _ => (BackendKind::Arm, arm_millis),
    };
    CostPoint { batch, backend, batch_millis, arm_millis, gpu_millis }
}

/// The full crossover table over [`BATCH_BUCKETS`].
pub fn crossover_table(
    class: &RequestClass,
    arm: &ArmEngine,
    gpu: &GpuEngine,
) -> Vec<CostPoint> {
    BATCH_BUCKETS.iter().map(|&b| choose_point(class, b, arm, gpu)).collect()
}

/// Modeled plan-compilation cost charged on a cache miss (per layer): the
/// ARM planner ranks a handful of analytic schedules, the GPU planner runs
/// its tile auto-search plus the static verifier — orders of magnitude
/// apart, which is exactly why the plan cache exists.
pub fn modeled_compile_millis(backend: BackendKind, layers: usize) -> f64 {
    match backend {
        BackendKind::Arm => 0.2 * layers as f64,
        BackendKind::GpuModel => 2.0 * layers as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit::turing_sim::Device;

    #[test]
    fn buckets_round_up() {
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(3), 4);
        assert_eq!(bucket_for(8), 8);
        assert_eq!(bucket_for(17), 32);
        assert_eq!(bucket_for(99), 32);
    }

    #[test]
    fn arm_batching_amortizes_thread_imbalance_on_demo_w6() {
        // demo(12) at W6: conv2/conv3 have gemm_n = 36 (5 NB-tiles over 4
        // threads -> worst share 16/36 ≈ 0.444 vs the balanced 0.25).
        // Batching grows n and the worst share converges to 1/T.
        let class = RequestClass::demo(BitWidth::W6, 12, 9);
        let arm = ArmEngine::cortex_a53().with_threads(4);
        let per1 = arm_batch_millis(&class, 1, &arm);
        let per8 = arm_batch_millis(&class, 8, &arm) / 8.0;
        assert!(
            per8 < per1 * 0.97,
            "batching must amortize imbalance: per-request {per8:.6} vs {per1:.6}"
        );
        // W6 has no Tensor Core path: the chooser must fall to ARM.
        let gpu = GpuEngine::rtx2080ti();
        let pt = choose_point(&class, 1, &arm, &gpu);
        assert_eq!(pt.backend, BackendKind::Arm);
        assert_eq!(pt.gpu_millis, None);
    }

    #[test]
    fn gpu_batching_amortizes_launch_overhead_on_demo_w4() {
        let class = RequestClass::demo(BitWidth::W4, 12, 9);
        let gpu = GpuEngine::rtx2080ti();
        let per1 = gpu_batch_millis(&class, 1, &gpu).unwrap();
        let per8 = gpu_batch_millis(&class, 8, &gpu).unwrap() / 8.0;
        assert!(per8 < per1, "per-request GPU cost must fall with batch");
    }

    #[test]
    fn weak_gpu_crosses_over_from_arm_to_gpu_as_batch_grows() {
        // A device with a huge launch overhead loses at batch 1 (launch
        // dominates the tiny demo layers) but wins once batching amortizes
        // it — the Fig. 10 shape, demonstrated end-to-end through the
        // chooser.
        let class = RequestClass::demo(BitWidth::W4, 12, 9);
        let arm = ArmEngine::cortex_a53().with_threads(4);
        let weak = GpuEngine::with_device(Device {
            launch_overhead_s: 120e-6,
            ..Device::rtx2080ti()
        });
        let table = crossover_table(&class, &arm, &weak);
        assert_eq!(table[0].backend, BackendKind::Arm, "launch-bound at batch 1");
        assert_eq!(
            table.last().unwrap().backend,
            BackendKind::GpuModel,
            "amortized at batch 32"
        );
        // The winner switches exactly once along the table.
        let flips = table
            .windows(2)
            .filter(|w| w[0].backend != w[1].backend)
            .count();
        assert_eq!(flips, 1, "one crossover point");
    }

    #[test]
    fn compile_cost_is_much_higher_on_gpu() {
        assert!(
            modeled_compile_millis(BackendKind::GpuModel, 3)
                > 5.0 * modeled_compile_millis(BackendKind::Arm, 3)
        );
    }
}
