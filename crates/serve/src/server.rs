//! The threaded inference server: per-class admission queues and batcher
//! threads feeding a shared worker pool.
//!
//! ```text
//!  submit ──► AdmissionQueue (bounded, typed backpressure)
//!                │  batcher thread per class: BatchPolicy close rule
//!                ▼
//!             BatchJob ──► mpsc ──► worker pool (N threads)
//!                                     │ bucket · backend (cost model)
//!                                     │ PlanCache (fingerprint, bucket, backend)
//!                                     │ Executor::run on the batched network
//!                                     ▼
//!                                  Ticket::wait ◄── per-request Response
//! ```
//!
//! Every request gets full latency attribution (queue-wait / batch-form /
//! compile-or-hit / execute) in its [`Response`]; with a recording tracer
//! the same intervals land as modeled spans on a per-request trace track
//! and the server emits cumulative counters (`serve_admitted_total`,
//! `serve_rejected_total`, `serve_completed_total`, `serve_batches_total`,
//! `plan_cache_hits_total`, `plan_cache_misses_total`).
//!
//! Production aggregation lives in [`ServeMetrics`] (always on): workers
//! record stage histograms through private per-worker shards, rejections
//! are counted by reason with their accumulated queue wait, and the
//! executor feeds the cost-model drift auditor. The concurrency-safe
//! source of truth is the metrics registry's atomics — the old mutex that
//! serialized trace-counter read+emit pairs is gone, so trace counter
//! series are guaranteed monotone only for single-worker,
//! single-submitter traced runs (the same restriction traced runs already
//! have so wall spans on the executor's main track cannot interleave).

use crate::cache::{PlanCache, PlanCacheStats, PlanKey};
use crate::class::RequestClass;
use crate::cost;
use crate::metrics::{RejectReason, ServeMetrics, WorkerShards};
use crate::policy::BatchPolicy;
use crate::queue::{AdmissionQueue, QueueStats};
use lowbit::prelude::*;
use lowbit::ExecMetrics;
use lowbit_metrics::Registry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Admission-queue depth per class.
    pub queue_depth: usize,
    /// Batch close rule (shared by every class's batcher).
    pub policy: BatchPolicy,
    /// Worker threads draining batches. Use 1 for traced runs.
    pub workers: usize,
    /// ARM engine worker threads (the multi-thread side of the crossover).
    pub arm_threads: usize,
    /// Pin every batch to one backend instead of asking the cost model.
    pub force_backend: Option<BackendKind>,
    /// Compile plans with the certified parallel node scheduler and run
    /// independent DAG nodes concurrently. Only plans carrying an intact
    /// concurrency certificate run parallel — the executor re-proves the
    /// schedule before the first node and falls back to rejection (never a
    /// race) on any mismatch. Serial and parallel plans are cached under
    /// distinct keys.
    pub parallel_nodes: bool,
    /// Per-class p99 latency objective in milliseconds: completions slower
    /// than this count as SLO violations in [`ServeMetrics`].
    pub slo_p99_ms: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_depth: 64,
            policy: BatchPolicy::Dynamic { max_batch: 8, deadline_ms: 2.0 },
            workers: 1,
            arm_threads: 4,
            force_backend: None,
            parallel_nodes: false,
            slo_p99_ms: 50.0,
        }
    }
}

/// Per-request latency attribution, in wall milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct RequestTiming {
    /// Admission to batch close.
    pub queue_wait_ms: f64,
    /// Batch close to worker pickup.
    pub batch_form_ms: f64,
    /// Plan lookup (compile on miss) duration.
    pub compile_ms: f64,
    /// Batched execution duration.
    pub execute_ms: f64,
    /// Whether the plan came from the cache.
    pub plan_cache_hit: bool,
    /// Requests in the batch as formed.
    pub batch_formed: usize,
    /// The bucket the batch was padded to.
    pub batch_bucket: usize,
    /// Backend that served the batch.
    pub backend: BackendKind,
}

impl RequestTiming {
    /// Total request latency (sum of the four phases).
    pub fn total_ms(&self) -> f64 {
        self.queue_wait_ms + self.batch_form_ms + self.compile_ms + self.execute_ms
    }
}

/// One completed request: its output slice plus attribution.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's own output (batch dim 1).
    pub output: Tensor<f32>,
    /// Latency attribution.
    pub timing: RequestTiming,
}

/// Handle returned by [`Server::submit`]; resolves when the worker finishes
/// the request's batch.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, CoreError>>,
}

impl Ticket {
    /// Blocks until the response (or the typed failure) arrives. A worker
    /// that died without answering resolves to
    /// [`CoreError::ServerShutdown`].
    pub fn wait(self) -> Result<Response, CoreError> {
        self.rx.recv().map_err(|_| CoreError::ServerShutdown)?
    }
}

/// Aggregate server statistics returned by [`Server::shutdown`].
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Admission stats per class, in class order.
    pub queues: Vec<QueueStats>,
    /// Plan-cache lookup counters.
    pub plan_cache: PlanCacheStats,
    /// Requests answered successfully.
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// `(batch_formed, count)` sorted ascending.
    pub batch_histogram: Vec<(usize, u64)>,
}

struct QueuedRequest {
    input: Tensor<f32>,
    enq_ns: u64,
    id: u64,
    resp: mpsc::Sender<Result<Response, CoreError>>,
}

struct BatchJob {
    class: usize,
    close_ns: u64,
    requests: Vec<QueuedRequest>,
}

struct ClassRuntime {
    class: RequestClass,
    queue: Arc<AdmissionQueue<QueuedRequest>>,
    /// Batched template networks per bucket (compiled lazily, shared).
    batched: Mutex<HashMap<usize, Arc<Network>>>,
}

struct Shared {
    classes: Vec<ClassRuntime>,
    plan_cache: PlanCache,
    arm: ArmEngine,
    gpu: GpuEngine,
    executor: Executor,
    config: ServerConfig,
    origin: Instant,
    tracer: Tracer,
    metrics: Arc<ServeMetrics>,
    exec_metrics: Arc<ExecMetrics>,
    completed: AtomicU64,
    batches: AtomicU64,
    batch_hist: Mutex<HashMap<usize, u64>>,
    next_id: AtomicU64,
}

impl Shared {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn batched_net(&self, class: usize, bucket: usize) -> Arc<Network> {
        let rt = &self.classes[class];
        let mut g = rt.batched.lock().expect("batched nets poisoned");
        g.entry(bucket).or_insert_with(|| Arc::new(rt.class.batched(bucket))).clone()
    }

    fn emit_admission_counters(&self) {
        if !self.tracer.enabled() {
            return;
        }
        let (mut admitted, mut rejected) = (0u64, 0u64);
        for c in &self.classes {
            let s = c.queue.stats();
            admitted += s.admitted;
            rejected += s.rejected;
        }
        self.tracer.counter("serve_admitted_total", admitted as f64);
        self.tracer.counter("serve_rejected_total", rejected as f64);
    }

    fn emit_completion_counters(&self) {
        if !self.tracer.enabled() {
            return;
        }
        let cache = self.plan_cache.stats();
        self.tracer
            .counter("serve_completed_total", self.completed.load(Ordering::Relaxed) as f64);
        self.tracer.counter("serve_batches_total", self.batches.load(Ordering::Relaxed) as f64);
        self.tracer.counter("plan_cache_hits_total", cache.hits as f64);
        self.tracer.counter("plan_cache_misses_total", cache.misses as f64);
    }
}

/// The running server. Dropping without [`Server::shutdown`] aborts the
/// threads ungracefully; call `shutdown` to drain and join.
pub struct Server {
    shared: Arc<Shared>,
    batchers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    job_tx: Option<mpsc::Sender<BatchJob>>,
}

impl Server {
    /// Starts batcher and worker threads over `classes`. The tracer is
    /// cloned into the workers: pass a recording tracer (with
    /// `workers == 1`) to capture per-request spans and server counters.
    pub fn start(classes: Vec<RequestClass>, config: ServerConfig, tracer: &Tracer) -> Server {
        assert!(!classes.is_empty(), "server needs at least one class");
        let arm = ArmEngine::cortex_a53().with_threads(config.arm_threads);
        let gpu = GpuEngine::rtx2080ti();
        let registry = Arc::new(Registry::new());
        let class_names: Vec<String> = classes.iter().map(|c| c.name().to_string()).collect();
        let name_refs: Vec<&str> = class_names.iter().map(String::as_str).collect();
        let metrics = ServeMetrics::new(registry.clone(), &name_refs, config.slo_p99_ms);
        let exec_metrics = ExecMetrics::new(registry);
        let executor =
            Executor::new().with_arm(&arm).with_gpu(&gpu).with_metrics(&exec_metrics);
        let shared = Arc::new(Shared {
            classes: classes
                .into_iter()
                .map(|class| ClassRuntime {
                    class,
                    queue: Arc::new(AdmissionQueue::new(config.queue_depth)),
                    batched: Mutex::new(HashMap::new()),
                })
                .collect(),
            plan_cache: PlanCache::new(),
            arm,
            gpu,
            executor,
            config,
            origin: Instant::now(),
            tracer: tracer.clone(),
            metrics,
            exec_metrics,
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_hist: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        });

        let (job_tx, job_rx) = mpsc::channel::<BatchJob>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let batchers = (0..shared.classes.len())
            .map(|ci| {
                let shared = shared.clone();
                let tx = job_tx.clone();
                std::thread::spawn(move || {
                    let queue = shared.classes[ci].queue.clone();
                    while let Some(requests) = queue.next_batch(&shared.config.policy) {
                        if requests.is_empty() {
                            continue;
                        }
                        let job =
                            BatchJob { class: ci, close_ns: shared.now_ns(), requests };
                        if tx.send(job).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                let rx = job_rx.clone();
                std::thread::spawn(move || {
                    // Private histogram shards: this worker records stage
                    // times without contending with any other thread.
                    let shards = shared.metrics.worker_shards();
                    loop {
                        let job = {
                            let guard = rx.lock().expect("job receiver poisoned");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => run_batch(&shared, &shards, job),
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();

        Server { shared, batchers, workers, job_tx: Some(job_tx) }
    }

    /// Submits one batch-1 input to `class`. Non-blocking: typed
    /// backpressure ([`CoreError::QueueFull`]) when the class queue is at
    /// depth, [`CoreError::InputShapeMismatch`] on wrong dims.
    pub fn submit(&self, class: usize, input: Tensor<f32>) -> Result<Ticket, CoreError> {
        let rt = &self.shared.classes[class];
        let expected = rt.class.input_dims();
        if input.dims() != expected {
            self.shared.metrics.record_rejection(None, class, RejectReason::BadInput, 0.0);
            return Err(CoreError::InputShapeMismatch { expected, got: input.dims() });
        }
        let (tx, rx) = mpsc::channel();
        let enq_ns = self.shared.now_ns();
        let req = QueuedRequest {
            input,
            enq_ns,
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            resp: tx,
        };
        let pushed = rt.queue.push(req);
        if matches!(pushed, Err(CoreError::QueueFull { .. })) {
            // Backpressured requests get attribution too: the wait they
            // accumulated is admission-to-rejection (effectively zero for
            // an at-depth queue, but recorded rather than dropped).
            let wait_ms = ns_ms(self.shared.now_ns().saturating_sub(enq_ns));
            self.shared
                .metrics
                .record_rejection(None, class, RejectReason::QueueFull, wait_ms);
        }
        self.shared.emit_admission_counters();
        pushed.map(|()| Ticket { rx })
    }

    /// The production metrics surface: per-class stage histograms, SLO
    /// accounting, rejection counters, cache hit ratio. Live while the
    /// server runs — snapshot any time.
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        self.shared.metrics.clone()
    }

    /// The executor-side metrics handle feeding the cost-model drift
    /// auditor.
    pub fn exec_metrics(&self) -> Arc<ExecMetrics> {
        self.shared.exec_metrics.clone()
    }

    /// The classes being served (index order matches `submit`).
    pub fn classes(&self) -> Vec<String> {
        self.shared.classes.iter().map(|c| c.class.name().to_string()).collect()
    }

    /// Closes every queue, drains remaining batches (flushing partial
    /// fixed-size batches), joins all threads and returns the final
    /// statistics.
    pub fn shutdown(mut self) -> ServerStats {
        for c in &self.shared.classes {
            c.queue.close();
        }
        for h in self.batchers.drain(..) {
            h.join().expect("batcher panicked");
        }
        drop(self.job_tx.take());
        for h in self.workers.drain(..) {
            h.join().expect("worker panicked");
        }
        let shared = &self.shared;
        let mut batch_histogram: Vec<(usize, u64)> = shared
            .batch_hist
            .lock()
            .expect("histogram poisoned")
            .iter()
            .map(|(&b, &n)| (b, n))
            .collect();
        batch_histogram.sort_unstable();
        ServerStats {
            queues: shared.classes.iter().map(|c| c.queue.stats()).collect(),
            plan_cache: shared.plan_cache.stats(),
            completed: shared.completed.load(Ordering::Relaxed),
            batches: shared.batches.load(Ordering::Relaxed),
            batch_histogram,
        }
    }
}

fn ns_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn run_batch(shared: &Shared, shards: &WorkerShards, job: BatchJob) {
    let worker_start_ns = shared.now_ns();
    let rt = &shared.classes[job.class];
    let b = job.requests.len();
    let bucket = cost::bucket_for(b);
    let backend = match shared.config.force_backend {
        Some(k) => k,
        None => cost::choose_point(&rt.class, bucket, &shared.arm, &shared.gpu).backend,
    };
    // Partial attribution for requests that fail after pickup: the stage
    // times measured so far still get recorded (satellite: rejected
    // requests carry their queue-wait instead of vanishing).
    let fail_batch = |reason: RejectReason, now_ns: u64, compile_ms: f64, e: CoreError| {
        for r in job.requests.iter() {
            let timing = RequestTiming {
                queue_wait_ms: ns_ms(job.close_ns.saturating_sub(r.enq_ns)),
                batch_form_ms: ns_ms(worker_start_ns.saturating_sub(job.close_ns)),
                compile_ms,
                execute_ms: ns_ms(
                    now_ns.saturating_sub(worker_start_ns)
                ) - compile_ms,
                plan_cache_hit: false,
                batch_formed: b,
                batch_bucket: bucket,
                backend,
            };
            shared.metrics.record_rejection(
                Some((shards, &timing)),
                job.class,
                reason,
                timing.queue_wait_ms,
            );
            r.resp.send(Err(e.clone())).ok();
        }
    };
    let net = shared.batched_net(job.class, bucket);
    let parallel = shared.config.parallel_nodes;
    let key = PlanKey { fingerprint: rt.class.fingerprint(), batch: bucket, backend, parallel };
    let compiled = shared.plan_cache.get_or_compile(key, || match backend {
        BackendKind::Arm => {
            Planner::for_arm(&shared.arm).with_parallel_nodes(parallel).compile(&net)
        }
        BackendKind::GpuModel => Planner::for_gpu(&shared.gpu, Tuning::Default)
            .with_parallel_nodes(parallel)
            .compile(&net),
    });
    let (plan, cache_hit) = match compiled {
        Ok(x) => x,
        Err(e) => {
            let now = shared.now_ns();
            fail_batch(RejectReason::CompileError, now, ns_ms(now.saturating_sub(worker_start_ns)), e);
            return;
        }
    };
    let compile_done_ns = shared.now_ns();

    // Zero-pad the batch up to its bucket. Zeros cannot extend the batch
    // calibration |max|, so padding never changes the admitted requests'
    // quantization, and padded rows' outputs are simply discarded.
    let (_, c, h, w) = rt.class.input_dims();
    let sample = c * h * w;
    let mut input = Tensor::zeros((bucket, c, h, w), Layout::Nchw);
    for (i, r) in job.requests.iter().enumerate() {
        input.data_mut()[i * sample..(i + 1) * sample].copy_from_slice(r.input.data());
    }

    // Certified plans run node-parallel; everything else takes the serial
    // path. The dispatch keys off the certificate itself, not the config
    // knob, so a plan that failed to certify can never be raced.
    let run = if plan.parallel_schedule().is_some() {
        shared.executor.run_parallel_traced(&plan, &net, &input, &shared.tracer)
    } else {
        shared.executor.run_traced(&plan, &net, &input, &shared.tracer)
    };
    let exec_done_ns = shared.now_ns();

    let run = match run {
        Ok(run) => run,
        Err(e) => {
            let compile_ms = ns_ms(compile_done_ns.saturating_sub(worker_start_ns));
            fail_batch(RejectReason::ExecError, exec_done_ns, compile_ms, e);
            return;
        }
    };

    let od = run.output.dims();
    let out_len = od.1 * od.2 * od.3;
    let completed_now = job.requests.len() as u64;
    for (i, r) in job.requests.into_iter().enumerate() {
        let slice = &run.output.data()[i * out_len..(i + 1) * out_len];
        let timing = RequestTiming {
            queue_wait_ms: ns_ms(job.close_ns.saturating_sub(r.enq_ns)),
            batch_form_ms: ns_ms(worker_start_ns.saturating_sub(job.close_ns)),
            compile_ms: ns_ms(compile_done_ns.saturating_sub(worker_start_ns)),
            execute_ms: ns_ms(exec_done_ns.saturating_sub(compile_done_ns)),
            plan_cache_hit: cache_hit,
            batch_formed: b,
            batch_bucket: bucket,
            backend,
        };
        if shared.tracer.enabled() {
            emit_request_spans(shared, rt.class.name(), r.id, r.enq_ns, job.close_ns,
                worker_start_ns, compile_done_ns, exec_done_ns, &timing);
        }
        shared.metrics.record_completion(shards, job.class, &timing);
        let output = Tensor::from_vec((1, od.1, od.2, od.3), Layout::Nchw, slice.to_vec());
        r.resp.send(Ok(Response { output, timing })).ok();
    }

    shared.completed.fetch_add(completed_now, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    *shared.batch_hist.lock().expect("histogram poisoned").entry(b).or_insert(0) += 1;
    shared.metrics.record_batch(&shared.plan_cache.stats());
    shared.emit_completion_counters();
}

#[allow(clippy::too_many_arguments)]
fn emit_request_spans(
    shared: &Shared,
    class_name: &str,
    id: u64,
    enq_ns: u64,
    close_ns: u64,
    worker_start_ns: u64,
    compile_done_ns: u64,
    exec_done_ns: u64,
    timing: &RequestTiming,
) {
    let tracer = &shared.tracer;
    let track = tracer.track(&format!("req/{class_name}/{id}"));
    // Sequential, touching intervals on a per-request track: the chrome
    // validator's nesting check sees them as disjoint neighbors.
    let phases = [
        ("queue wait", enq_ns, close_ns),
        ("batch form", close_ns, worker_start_ns),
        ("compile", worker_start_ns, compile_done_ns),
        ("execute", compile_done_ns, exec_done_ns),
    ];
    for (name, start, end) in phases {
        let label = match name {
            "compile" => Some(format!(
                "{} b{} {}",
                if timing.plan_cache_hit { "hit" } else { "miss" },
                timing.batch_bucket,
                timing.backend
            )),
            "execute" => Some(format!("batch {} on {}", timing.batch_formed, timing.backend)),
            _ => None,
        };
        tracer.modeled_span(track, name, start, end.saturating_sub(start), label, None);
    }
}
