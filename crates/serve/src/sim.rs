//! Deterministic virtual-time serving simulation.
//!
//! The real [`crate::server::Server`] runs wall-clock threads, so its
//! latencies are host-dependent. The benchmark numbers in
//! `BENCH_serving.json` instead come from this discrete-event model of the
//! same architecture — bounded queue, batch-policy close rule, bucketed
//! plan cache, single modeled worker — driven by the cost model's modeled
//! service times ([`crate::cost`]). Seeded arrivals and virtual time make
//! every number reproducible bit-for-bit on any host.
//!
//! Two traffic shapes:
//!
//! - **Open loop**: Poisson arrivals at a fixed rate that does not react to
//!   the server (the saturation-honest shape). Driving the rate above a
//!   policy's capacity exposes the policy's true throughput ceiling and its
//!   queueing-delay p99.
//! - **Closed loop**: a fixed client population; each client resubmits when
//!   its previous request completes (plus think time). Arrival waiting is
//!   deadlock-prone here (new arrivals only happen after completions), so
//!   the batcher closes greedily at whatever is queued.

use crate::cache::PlanCacheStats;
use crate::class::RequestClass;
use crate::cost::{self, CostPoint};
use crate::metrics::{RejectReason, ServeMetrics, WorkerShards};
use crate::policy::BatchPolicy;
use crate::server::RequestTiming;
use lowbit::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// Traffic shape.
#[derive(Clone, Copy, Debug)]
pub enum Arrival {
    /// Poisson arrivals at `rate_per_s`, non-reactive.
    OpenLoop {
        /// Mean arrival rate, requests per second.
        rate_per_s: f64,
    },
    /// `clients` concurrent submitters, each re-submitting `think_ms` after
    /// its previous completion.
    ClosedLoop {
        /// Concurrent clients.
        clients: usize,
        /// Per-client pause between completion and resubmission.
        think_ms: f64,
    },
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Batch close rule.
    pub policy: BatchPolicy,
    /// Traffic shape.
    pub arrival: Arrival,
    /// Total requests to generate (open loop) or complete (closed loop).
    pub requests: usize,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Arrival RNG seed.
    pub seed: u64,
    /// Pin the backend instead of asking the cost model.
    pub force_backend: Option<BackendKind>,
}

/// Aggregated results of one simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Requests served.
    pub completed: usize,
    /// Requests rejected by admission (typed backpressure in the real
    /// server).
    pub rejected: usize,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Served throughput over the busy interval, requests/second.
    pub throughput_rps: f64,
    /// `(batch size as formed, batches)` ascending.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Plan-cache hits (steady-state lookups).
    pub cache_hits: u64,
    /// Plan-cache misses (first sight of a bucket).
    pub cache_misses: u64,
    /// `(backend, batches served)` for the backends actually used.
    pub backends: Vec<(BackendKind, u64)>,
    /// Virtual makespan in milliseconds.
    pub makespan_ms: f64,
}

impl SimResult {
    /// Hits over all plan-cache lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// `q`-th percentile of unsorted latencies (nearest-rank).
pub fn percentile(latencies: &[f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Per-bucket service model shared by both loops.
struct ServiceModel {
    points: HashMap<usize, CostPoint>,
    layers: usize,
}

impl ServiceModel {
    fn build(class: &RequestClass, cfg: &SimConfig) -> ServiceModel {
        let arm = ArmEngine::cortex_a53().with_threads(4);
        let gpu = GpuEngine::rtx2080ti();
        let points = cost::BATCH_BUCKETS
            .iter()
            .map(|&b| {
                let mut pt = cost::choose_point(class, b, &arm, &gpu);
                if let Some(k) = cfg.force_backend {
                    pt.backend = k;
                    pt.batch_millis = match k {
                        BackendKind::Arm => pt.arm_millis,
                        BackendKind::GpuModel => {
                            pt.gpu_millis.expect("forced GPU on an unsupported width")
                        }
                    };
                }
                (b, pt)
            })
            .collect();
        ServiceModel { points, layers: class.template().layers().len() }
    }

    fn point(&self, bucket: usize) -> &CostPoint {
        self.points.get(&bucket).expect("bucket in table")
    }

    fn compile_ms(&self, bucket: usize) -> f64 {
        cost::modeled_compile_millis(self.point(bucket).backend, self.layers)
    }
}

/// The instrumented sim's recording hook: a metrics surface, the class
/// index inside it, and one shard set (the sim is its own single worker).
struct SimRecorder<'a> {
    metrics: &'a ServeMetrics,
    class: usize,
    shards: WorkerShards,
}

struct Tally<'a> {
    latencies: Vec<f64>,
    hist: HashMap<usize, u64>,
    backends: HashMap<&'static str, (BackendKind, u64)>,
    seen: HashSet<usize>,
    hits: u64,
    misses: u64,
    last_done: f64,
    recorder: Option<SimRecorder<'a>>,
}

impl<'a> Tally<'a> {
    fn new(metrics: Option<(&'a ServeMetrics, usize)>) -> Tally<'a> {
        Tally {
            latencies: Vec::new(),
            hist: HashMap::new(),
            backends: HashMap::new(),
            seen: HashSet::new(),
            hits: 0,
            misses: 0,
            last_done: 0.0,
            recorder: metrics.map(|(metrics, class)| SimRecorder {
                metrics,
                class,
                shards: metrics.worker_shards(),
            }),
        }
    }

    fn reject(&mut self) {
        if let Some(r) = &self.recorder {
            // Open-loop rejection is instantaneous: the queue is at depth
            // when the request arrives, so its accumulated wait is zero.
            r.metrics.record_rejection(None, r.class, RejectReason::QueueFull, 0.0);
        }
    }

    /// Serves one batch at virtual time `t_close`; returns the completion
    /// time.
    fn serve(&mut self, model: &ServiceModel, batch: &[f64], t_close: f64) -> f64 {
        let bucket = cost::bucket_for(batch.len());
        let pt = model.point(bucket);
        let mut svc = pt.batch_millis;
        let cache_hit;
        let mut compile_ms = 0.0;
        if self.seen.insert(bucket) {
            self.misses += 1;
            cache_hit = false;
            compile_ms = model.compile_ms(bucket);
            svc += compile_ms;
        } else {
            self.hits += 1;
            cache_hit = true;
        }
        let done = t_close + svc;
        for &a in batch {
            self.latencies.push(done - a);
        }
        if let Some(r) = &self.recorder {
            for &a in batch {
                let timing = RequestTiming {
                    queue_wait_ms: t_close - a,
                    batch_form_ms: 0.0,
                    compile_ms,
                    execute_ms: pt.batch_millis,
                    plan_cache_hit: cache_hit,
                    batch_formed: batch.len(),
                    batch_bucket: bucket,
                    backend: pt.backend,
                };
                r.metrics.record_completion(&r.shards, r.class, &timing);
            }
            r.metrics.record_batch(&PlanCacheStats {
                hits: self.hits,
                misses: self.misses,
                entries: self.seen.len(),
            });
        }
        *self.hist.entry(batch.len()).or_insert(0) += 1;
        let tag = match pt.backend {
            BackendKind::Arm => "arm",
            BackendKind::GpuModel => "gpu",
        };
        self.backends.entry(tag).or_insert((pt.backend, 0)).1 += 1;
        self.last_done = done;
        done
    }

    fn into_result(self, rejected: usize, first_arrival: f64) -> SimResult {
        let busy_ms = (self.last_done - first_arrival).max(1e-9);
        let mut batch_histogram: Vec<(usize, u64)> =
            self.hist.iter().map(|(&b, &n)| (b, n)).collect();
        batch_histogram.sort_unstable();
        let mut backends: Vec<(BackendKind, u64)> =
            self.backends.values().copied().collect();
        backends.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        let mean =
            self.latencies.iter().sum::<f64>() / self.latencies.len().max(1) as f64;
        SimResult {
            completed: self.latencies.len(),
            rejected,
            p50_ms: percentile(&self.latencies, 0.50),
            p95_ms: percentile(&self.latencies, 0.95),
            p99_ms: percentile(&self.latencies, 0.99),
            mean_ms: mean,
            throughput_rps: self.latencies.len() as f64 / busy_ms * 1e3,
            batch_histogram,
            cache_hits: self.hits,
            cache_misses: self.misses,
            backends,
            makespan_ms: self.last_done,
        }
    }
}

/// Runs the simulation for `class` under `cfg`.
pub fn simulate(class: &RequestClass, cfg: &SimConfig) -> SimResult {
    simulate_inner(class, cfg, None)
}

/// [`simulate`] with production-metrics recording: every virtual request's
/// stage attribution lands in `metrics` under class index `class_idx`,
/// rejections are counted by reason, and the cache hit-ratio gauge tracks
/// the sim's bucket cache. Results are bit-identical to the uninstrumented
/// run — recording never perturbs virtual time.
pub fn simulate_instrumented(
    class: &RequestClass,
    cfg: &SimConfig,
    metrics: &ServeMetrics,
    class_idx: usize,
) -> SimResult {
    simulate_inner(class, cfg, Some((metrics, class_idx)))
}

fn simulate_inner(
    class: &RequestClass,
    cfg: &SimConfig,
    metrics: Option<(&ServeMetrics, usize)>,
) -> SimResult {
    let model = ServiceModel::build(class, cfg);
    match cfg.arrival {
        Arrival::OpenLoop { rate_per_s } => open_loop(&model, cfg, rate_per_s, metrics),
        Arrival::ClosedLoop { clients, think_ms } => {
            closed_loop(&model, cfg, clients, think_ms, metrics)
        }
    }
}

fn open_loop(
    model: &ServiceModel,
    cfg: &SimConfig,
    rate_per_s: f64,
    metrics: Option<(&ServeMetrics, usize)>,
) -> SimResult {
    // Seeded Poisson arrivals, in milliseconds.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let rate_per_ms = (rate_per_s / 1e3).max(1e-12);
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0;
    for _ in 0..cfg.requests {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate_per_ms;
        arrivals.push(t);
    }

    let depth = cfg.queue_depth.max(1);
    let mut queued: VecDeque<f64> = VecDeque::new();
    let mut next = 0usize;
    let mut rejected = 0usize;
    let mut admit_until = |t: f64, queued: &mut VecDeque<f64>, rejected: &mut usize| {
        while next < arrivals.len() && arrivals[next] <= t {
            if queued.len() < depth {
                queued.push_back(arrivals[next]);
            } else {
                *rejected += 1;
            }
            next += 1;
        }
        next
    };

    let mut tally = Tally::new(metrics);
    let mut free = 0.0f64;
    loop {
        let next_now = admit_until(free, &mut queued, &mut rejected);
        if queued.is_empty() {
            if next_now >= arrivals.len() {
                break;
            }
            free = arrivals[next_now];
            continue;
        }
        let target = cfg.policy.max_batch();
        // Lazy batching: the close decision is made at server-free time,
        // looking ahead at the arrival stream (a real batcher looks at the
        // clock and its condvar; same information).
        let oldest = queued[0];
        let t_close = match cfg.policy {
            BatchPolicy::Fixed(_) if queued.len() >= target => free,
            BatchPolicy::Fixed(_) => {
                let need = target - queued.len();
                if next_now + need <= arrivals.len() {
                    arrivals[next_now + need - 1].max(free)
                } else {
                    f64::INFINITY // not enough arrivals left: flush at end
                }
            }
            BatchPolicy::Dynamic { deadline_ms, .. } => {
                if queued.len() >= target {
                    free
                } else {
                    let t_deadline = (oldest + deadline_ms).max(free);
                    let need = target - queued.len();
                    let t_full = if next_now + need <= arrivals.len() {
                        arrivals[next_now + need - 1].max(free)
                    } else {
                        f64::INFINITY
                    };
                    t_full.min(t_deadline)
                }
            }
        };
        let t_close = if t_close.is_finite() {
            t_close
        } else {
            arrivals.last().copied().unwrap_or(free).max(free)
        };
        admit_until(t_close, &mut queued, &mut rejected);
        let b = queued.len().min(target);
        let batch: Vec<f64> = queued.drain(..b).collect();
        free = tally.serve(model, &batch, t_close);
    }
    for _ in 0..rejected {
        tally.reject();
    }
    let first = arrivals.first().copied().unwrap_or(0.0);
    tally.into_result(rejected, first)
}

fn closed_loop(
    model: &ServiceModel,
    cfg: &SimConfig,
    clients: usize,
    think_ms: f64,
    metrics: Option<(&ServeMetrics, usize)>,
) -> SimResult {
    let clients = clients.max(1);
    // Staggered initial arrivals (1 µs apart) keep ordering deterministic.
    let mut arrivals: Vec<f64> = (0..clients).map(|i| i as f64 * 1e-3).collect();
    let mut queued: VecDeque<f64> = VecDeque::new();
    let mut tally = Tally::new(metrics);
    let mut free = 0.0f64;
    let target = cfg.policy.max_batch();
    while tally.latencies.len() < cfg.requests {
        arrivals.sort_by(f64::total_cmp);
        let mut i = 0;
        while i < arrivals.len() && arrivals[i] <= free {
            queued.push_back(arrivals[i]);
            i += 1;
        }
        arrivals.drain(..i);
        if queued.is_empty() {
            free = arrivals.first().copied().unwrap_or(free);
            continue;
        }
        let b = queued.len().min(target);
        let batch: Vec<f64> = queued.drain(..b).collect();
        let done = tally.serve(model, &batch, free);
        for _ in 0..b {
            arrivals.push(done + think_ms);
        }
        free = done;
    }
    tally.into_result(0, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_class() -> RequestClass {
        RequestClass::demo(BitWidth::W6, 12, 9)
    }

    fn open_cfg(policy: BatchPolicy, rate: f64) -> SimConfig {
        SimConfig {
            policy,
            arrival: Arrival::OpenLoop { rate_per_s: rate },
            requests: 6000,
            queue_depth: 512,
            seed: 42,
            force_backend: None,
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let class = demo_class();
        let cfg = open_cfg(BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 }, 2000.0);
        let a = simulate(&class, &cfg);
        let b = simulate(&class, &cfg);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());
        assert_eq!(a.throughput_rps.to_bits(), b.throughput_rps.to_bits());
        assert_eq!(a.batch_histogram, b.batch_histogram);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&lat, 0.50), 50.0);
        assert_eq!(percentile(&lat, 0.95), 95.0);
        assert_eq!(percentile(&lat, 0.99), 99.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn overload_shows_dynamic_beating_fixed1_at_lower_p99() {
        // Drive both policies at 1.2x the dynamic point's capacity: the
        // saturated server serves at its policy's capacity, so the batching
        // gain shows up directly as throughput, and the bounded queue keeps
        // p99 proportional to 1/throughput.
        let class = demo_class();
        let model_rate = {
            let arm = ArmEngine::cortex_a53().with_threads(4);
            let gpu = GpuEngine::rtx2080ti();
            let pt = cost::choose_point(&class, 16, &arm, &gpu);
            16.0 / pt.batch_millis * 1e3
        };
        let rate = 1.2 * model_rate;
        let dynamic = simulate(
            &class,
            &open_cfg(BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 }, rate),
        );
        let fixed1 = simulate(&class, &open_cfg(BatchPolicy::Fixed(1), rate));
        assert!(
            dynamic.throughput_rps > fixed1.throughput_rps,
            "dynamic {:.0} rps must beat fixed-1 {:.0} rps",
            dynamic.throughput_rps,
            fixed1.throughput_rps
        );
        assert!(
            dynamic.p99_ms <= fixed1.p99_ms,
            "dynamic p99 {:.3} must not exceed fixed-1 p99 {:.3}",
            dynamic.p99_ms,
            fixed1.p99_ms
        );
        assert!(fixed1.rejected > 0, "overload must exercise backpressure");
        // Bounded bucket set => steady-state hit rate is structural.
        assert!(dynamic.cache_hit_rate() >= 0.9, "hit rate {}", dynamic.cache_hit_rate());
    }

    #[test]
    fn closed_loop_completes_the_request_budget() {
        let class = demo_class();
        let cfg = SimConfig {
            policy: BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 },
            arrival: Arrival::ClosedLoop { clients: 32, think_ms: 0.0 },
            requests: 500,
            queue_depth: 64,
            seed: 7,
            force_backend: None,
        };
        let r = simulate(&class, &cfg);
        assert!(r.completed >= 500);
        assert_eq!(r.rejected, 0);
        assert!(r.throughput_rps > 0.0);
        assert!(r.cache_hit_rate() > 0.9);
    }
}
