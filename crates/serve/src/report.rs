//! `BENCH_serving.json`: the serving layer's perf-trajectory record.
//!
//! Three request classes × three batch policies, each run through the
//! deterministic virtual-time simulation ([`crate::sim`]) in the overload
//! regime: the open-loop arrival rate is set to 1.2× the dynamic point's
//! modeled capacity, so every policy is saturated and its true throughput
//! ceiling (and queueing p99) is what the numbers show. The file also
//! carries each class's batch-size/backend crossover table — the Fig. 10
//! curve the batcher's decision rule walks — and a criteria block asserting
//! the properties the serving layer exists to deliver (dynamic batching
//! beats fixed-1 at no worse p99; the bucketed plan cache hits ≥90% in
//! steady state).

use crate::class::RequestClass;
use crate::cost::{self, CostPoint};
use crate::policy::BatchPolicy;
use crate::sim::{simulate, Arrival, SimConfig, SimResult};
use lowbit::prelude::*;
use std::path::{Path, PathBuf};

/// Fixed report parameters (kept small enough that the report regenerates in
/// well under a second; the numbers are modeled, not wall-clock).
const REQUESTS: usize = 6000;
const QUEUE_DEPTH: usize = 512;
const SEED: u64 = 42;
const ARM_THREADS: usize = 4;
const CLOSED_CLIENTS: usize = 32;

/// The three benchmarked policies: no batching, static batching, and
/// deadline-bounded dynamic batching.
fn policies() -> [BatchPolicy; 3] {
    [
        BatchPolicy::Fixed(1),
        BatchPolicy::Fixed(8),
        BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 },
    ]
}

/// The benchmarked classes: a GPU-leaning width, an ARM-only width (W6 has
/// no Tensor Core path), and the real-geometry bottleneck block.
fn classes() -> Vec<RequestClass> {
    vec![
        RequestClass::demo(BitWidth::W4, 12, 9),
        RequestClass::demo(BitWidth::W6, 12, 9),
        RequestClass::resnet50_bottleneck(BitWidth::W4, 7),
    ]
}

/// The dynamic point's modeled capacity in requests/second: the size-16
/// bucket's chosen-backend batch latency amortized per request.
fn dynamic_capacity_rps(class: &RequestClass) -> f64 {
    let arm = ArmEngine::cortex_a53().with_threads(ARM_THREADS);
    let gpu = GpuEngine::rtx2080ti();
    let pt = cost::choose_point(class, 16, &arm, &gpu);
    16.0 / pt.batch_millis * 1e3
}

struct ClassReport {
    name: String,
    crossover: Vec<CostPoint>,
    open_loop_rate_rps: f64,
    open_loop: Vec<(String, SimResult)>,
    closed_loop: SimResult,
    dynamic_beats_fixed1: bool,
    dynamic_p99_not_worse: bool,
}

fn run_class(class: &RequestClass) -> ClassReport {
    let arm = ArmEngine::cortex_a53().with_threads(ARM_THREADS);
    let gpu = GpuEngine::rtx2080ti();
    let crossover = cost::crossover_table(class, &arm, &gpu);
    // Overload regime: 1.2x the best policy's capacity saturates them all.
    let rate = 1.2 * dynamic_capacity_rps(class);
    let open_loop: Vec<(String, SimResult)> = policies()
        .iter()
        .map(|&policy| {
            let cfg = SimConfig {
                policy,
                arrival: Arrival::OpenLoop { rate_per_s: rate },
                requests: REQUESTS,
                queue_depth: QUEUE_DEPTH,
                seed: SEED,
                force_backend: None,
            };
            (policy.label(), simulate(class, &cfg))
        })
        .collect();
    let closed_loop = simulate(
        class,
        &SimConfig {
            policy: BatchPolicy::Dynamic { max_batch: 16, deadline_ms: 2.0 },
            arrival: Arrival::ClosedLoop { clients: CLOSED_CLIENTS, think_ms: 0.0 },
            requests: REQUESTS,
            queue_depth: QUEUE_DEPTH,
            seed: SEED,
            force_backend: None,
        },
    );
    let fixed1 = &open_loop[0].1;
    let dynamic = &open_loop[2].1;
    ClassReport {
        name: class.name().to_string(),
        crossover,
        open_loop_rate_rps: rate,
        dynamic_beats_fixed1: dynamic.throughput_rps > fixed1.throughput_rps,
        dynamic_p99_not_worse: dynamic.p99_ms <= fixed1.p99_ms,
        open_loop,
        closed_loop,
    }
}

fn json_result(r: &SimResult, indent: &str) -> String {
    let hist: Vec<String> =
        r.batch_histogram.iter().map(|(b, n)| format!("[{b},{n}]")).collect();
    let backs: Vec<String> =
        r.backends.iter().map(|(k, n)| format!("[\"{k}\",{n}]")).collect();
    format!(
        "{{\n{i}  \"completed\": {},\n{i}  \"rejected\": {},\n{i}  \"p50_ms\": {:.6},\n{i}  \"p95_ms\": {:.6},\n{i}  \"p99_ms\": {:.6},\n{i}  \"mean_ms\": {:.6},\n{i}  \"throughput_rps\": {:.3},\n{i}  \"cache_hits\": {},\n{i}  \"cache_misses\": {},\n{i}  \"cache_hit_rate\": {:.4},\n{i}  \"batch_histogram\": [{}],\n{i}  \"backends\": [{}]\n{i}}}",
        r.completed,
        r.rejected,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        r.mean_ms,
        r.throughput_rps,
        r.cache_hits,
        r.cache_misses,
        r.cache_hit_rate(),
        hist.join(","),
        backs.join(","),
        i = indent,
    )
}

fn json_crossover(table: &[CostPoint]) -> String {
    let rows: Vec<String> = table
        .iter()
        .map(|pt| {
            let gpu = match pt.gpu_millis {
                Some(g) => format!("{g:.6}"),
                None => "null".to_string(),
            };
            format!(
                "        {{\"batch\":{},\"backend\":\"{}\",\"arm_ms\":{:.6},\"gpu_ms\":{},\"chosen_ms\":{:.6},\"per_request_ms\":{:.6}}}",
                pt.batch,
                pt.backend,
                pt.arm_millis,
                gpu,
                pt.batch_millis,
                pt.per_request_millis(),
            )
        })
        .collect();
    format!("[\n{}\n      ]", rows.join(",\n"))
}

/// Renders the full report as a JSON string.
pub fn serving_report() -> String {
    let reports: Vec<ClassReport> = classes().iter().map(run_class).collect();
    let all_dynamic_win = reports.iter().all(|r| r.dynamic_beats_fixed1 && r.dynamic_p99_not_worse);
    let min_hit_rate = reports
        .iter()
        .flat_map(|r| r.open_loop.iter().map(|(_, s)| s.cache_hit_rate()))
        .fold(f64::INFINITY, f64::min);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"lowbit-serving-v1\",\n");
    s.push_str("  \"experiment\": \"batched_serving\",\n");
    s.push_str("  \"config\": {\n");
    s.push_str(&format!("    \"requests_per_run\": {REQUESTS},\n"));
    s.push_str(&format!("    \"queue_depth\": {QUEUE_DEPTH},\n"));
    s.push_str(&format!("    \"seed\": {SEED},\n"));
    s.push_str(&format!("    \"arm_threads\": {ARM_THREADS},\n"));
    s.push_str(&format!("    \"closed_loop_clients\": {CLOSED_CLIENTS},\n"));
    let labels: Vec<String> = policies().iter().map(|p| format!("\"{}\"", p.label())).collect();
    s.push_str(&format!("    \"policies\": [{}],\n", labels.join(",")));
    let buckets: Vec<String> = cost::BATCH_BUCKETS.iter().map(|b| b.to_string()).collect();
    s.push_str(&format!("    \"batch_buckets\": [{}],\n", buckets.join(",")));
    s.push_str("    \"overload_factor\": 1.2\n");
    s.push_str("  },\n");
    s.push_str("  \"classes\": [\n");
    let class_rows: Vec<String> = reports
        .iter()
        .map(|r| {
            let mut c = String::new();
            c.push_str("    {\n");
            c.push_str(&format!("      \"name\": \"{}\",\n", r.name));
            c.push_str(&format!("      \"crossover\": {},\n", json_crossover(&r.crossover)));
            c.push_str(&format!(
                "      \"open_loop_rate_rps\": {:.3},\n",
                r.open_loop_rate_rps
            ));
            c.push_str("      \"open_loop\": {\n");
            let runs: Vec<String> = r
                .open_loop
                .iter()
                .map(|(label, res)| {
                    format!("        \"{}\": {}", label, json_result(res, "        "))
                })
                .collect();
            c.push_str(&runs.join(",\n"));
            c.push_str("\n      },\n");
            c.push_str(&format!(
                "      \"closed_loop\": {},\n",
                json_result(&r.closed_loop, "      ")
            ));
            c.push_str(&format!(
                "      \"dynamic_beats_fixed1_throughput\": {},\n",
                r.dynamic_beats_fixed1
            ));
            c.push_str(&format!(
                "      \"dynamic_p99_not_worse\": {}\n",
                r.dynamic_p99_not_worse
            ));
            c.push_str("    }");
            c
        })
        .collect();
    s.push_str(&class_rows.join(",\n"));
    s.push_str("\n  ],\n");
    s.push_str("  \"criteria\": {\n");
    s.push_str(&format!(
        "    \"dynamic_beats_fixed1_on_all_classes\": {all_dynamic_win},\n"
    ));
    s.push_str(&format!(
        "    \"min_steady_cache_hit_rate\": {min_hit_rate:.4},\n"
    ));
    s.push_str(&format!(
        "    \"cache_hit_rate_ok\": {}\n",
        min_hit_rate >= 0.9
    ));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Writes `BENCH_serving.json` under `dir` and returns the path.
pub fn save_serving_json(dir: &Path) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_serving.json");
    std::fs::write(&path, serving_report())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_meets_the_acceptance_criteria() {
        let text = serving_report();
        assert!(text.contains("\"schema\": \"lowbit-serving-v1\""));
        assert!(
            text.contains("\"dynamic_beats_fixed1_on_all_classes\": true"),
            "dynamic batching must beat fixed-1 on every class:\n{text}"
        );
        assert!(
            text.contains("\"cache_hit_rate_ok\": true"),
            "plan cache must hit >= 90% in steady state:\n{text}"
        );
        // Three classes, each with all three policy rows.
        for class in ["demo-w4-12", "demo-w6-12", "resnet50-bottleneck-w4"] {
            assert!(text.contains(&format!("\"name\": \"{class}\"")), "missing {class}");
        }
        for policy in ["fixed-1", "fixed-8", "dynamic-16@2ms"] {
            assert!(text.contains(&format!("\"{policy}\":")), "missing {policy}");
        }
    }

    #[test]
    fn report_is_deterministic() {
        assert_eq!(serving_report(), serving_report());
    }

    #[test]
    fn saved_file_lands_in_the_requested_dir() {
        let dir = std::env::temp_dir().join("lowbit_serving_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = save_serving_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_serving.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"experiment\": \"batched_serving\""));
    }
}
