//! Distinct convolution-layer shape tables for the three evaluated networks
//! (paper Sec. 5.1).
//!
//! The paper benchmarks *representative, non-repetitive* convolution layers:
//! 19 from ResNet-50 (Caffe Model Zoo), 19 from SCR-ResNet-50 (the CRNAS
//! computation-reallocated variant with unusual channel counts) and 16 from
//! DenseNet-121. Kernel performance depends only on layer geometry, so the
//! tables below — reconstructed from the architectures — are the complete
//! workload definition. Layer names follow the paper's `conv1..convN`
//! numbering.

#![forbid(unsafe_code)]

use lowbit_tensor::ConvShape;

/// One benchmark layer: paper-style name plus geometry (batch left at 1;
/// scale with [`ConvShape::with_batch`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LayerDef {
    /// The paper's layer label (`conv1`, `conv2`, …).
    pub name: &'static str,
    /// Convolution geometry at batch 1.
    pub shape: ConvShape,
}

const fn layer(
    name: &'static str,
    c_in: usize,
    hw: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> LayerDef {
    LayerDef {
        name,
        shape: ConvShape {
            batch: 1,
            c_in,
            h: hw,
            w: hw,
            c_out,
            kh: k,
            kw: k,
            stride,
            pad,
        },
    }
}

/// The 19 distinct convolution shapes of ResNet-50 (stem + the four stages'
/// bottleneck 1x1/3x3/1x1 triplets and projection shortcuts).
pub fn resnet50() -> Vec<LayerDef> {
    vec![
        layer("conv1", 3, 224, 64, 7, 2, 3),      // stem
        layer("conv2", 64, 56, 64, 3, 1, 1),      // stage1 3x3
        layer("conv3", 64, 56, 64, 1, 1, 0),      // stage1 1x1 reduce
        layer("conv4", 64, 56, 256, 1, 1, 0),     // stage1 1x1 expand
        layer("conv5", 256, 56, 64, 1, 1, 0),     // stage1 1x1 reduce (later blocks)
        layer("conv6", 256, 56, 128, 1, 2, 0),    // stage2 projection reduce
        layer("conv7", 128, 28, 128, 3, 1, 1),    // stage2 3x3
        layer("conv8", 128, 28, 512, 1, 1, 0),    // stage2 1x1 expand
        layer("conv9", 256, 56, 512, 1, 2, 0),    // stage2 shortcut projection
        layer("conv10", 512, 28, 128, 1, 1, 0),   // stage2 1x1 reduce
        layer("conv11", 512, 28, 256, 1, 2, 0),   // stage3 projection reduce
        layer("conv12", 256, 14, 256, 3, 1, 1),   // stage3 3x3
        layer("conv13", 256, 14, 1024, 1, 1, 0),  // stage3 1x1 expand
        layer("conv14", 512, 28, 1024, 1, 2, 0),  // stage3 shortcut projection
        layer("conv15", 1024, 14, 256, 1, 1, 0),  // stage3 1x1 reduce
        layer("conv16", 1024, 14, 512, 1, 2, 0),  // stage4 projection reduce
        layer("conv17", 512, 7, 512, 3, 1, 1),    // stage4 3x3
        layer("conv18", 512, 7, 2048, 1, 1, 0),   // stage4 1x1 expand
        layer("conv19", 2048, 7, 512, 1, 1, 0),   // stage4 1x1 reduce
    ]
}

/// SCR-ResNet-50: the CRNAS-searched variant. Computation is reallocated
/// across stages, producing channel counts off the power-of-two grid (the
/// paper highlights shapes like 736 channels at 14x14) that sit outside
/// TensorRT's tuning radar.
pub fn scr_resnet50() -> Vec<LayerDef> {
    vec![
        layer("conv1", 3, 224, 48, 7, 2, 3),
        layer("conv2", 48, 56, 40, 3, 1, 1),
        layer("conv3", 48, 56, 40, 1, 1, 0),
        layer("conv4", 40, 56, 160, 1, 1, 0),
        layer("conv5", 160, 56, 40, 1, 1, 0),
        layer("conv6", 160, 56, 88, 1, 2, 0),
        layer("conv7", 88, 28, 88, 3, 1, 1),
        layer("conv8", 88, 28, 352, 1, 1, 0),
        layer("conv9", 160, 56, 352, 1, 2, 0),
        layer("conv10", 352, 28, 88, 1, 1, 0),
        layer("conv11", 352, 28, 184, 1, 2, 0),
        layer("conv12", 184, 14, 184, 3, 1, 1),
        layer("conv13", 184, 14, 736, 1, 1, 0),
        layer("conv14", 352, 28, 736, 1, 2, 0),
        layer("conv15", 736, 14, 184, 1, 1, 0),
        layer("conv16", 736, 14, 648, 1, 2, 0),
        layer("conv17", 648, 7, 648, 3, 1, 1),
        layer("conv18", 648, 7, 2592, 1, 1, 0),
        layer("conv19", 2592, 7, 648, 1, 1, 0),
    ]
}

/// The 16 representative DenseNet-121 shapes: per dense stage the 1x1
/// bottleneck (growth rate 32, bottleneck 128) at its smallest and largest
/// input channel count, the 3x3 layer, and the transition convs. Includes
/// the paper's example `1x14x14x736` input.
pub fn densenet121() -> Vec<LayerDef> {
    vec![
        layer("conv1", 3, 224, 64, 7, 2, 3),     // stem
        layer("conv2", 64, 56, 128, 1, 1, 0),    // block1 bottleneck (first)
        layer("conv3", 128, 56, 32, 3, 1, 1),    // block1 3x3
        layer("conv4", 224, 56, 128, 1, 1, 0),   // block1 bottleneck (mid)
        layer("conv5", 256, 56, 128, 1, 1, 0),   // transition1
        layer("conv6", 128, 28, 128, 1, 1, 0),   // block2 bottleneck (first)
        layer("conv7", 128, 28, 32, 3, 1, 1),    // block2 3x3
        layer("conv8", 352, 28, 128, 1, 1, 0),   // block2 bottleneck (mid)
        layer("conv9", 512, 28, 256, 1, 1, 0),   // transition2
        layer("conv10", 256, 14, 128, 1, 1, 0),  // block3 bottleneck (first)
        layer("conv11", 128, 14, 32, 3, 1, 1),   // block3 3x3
        layer("conv12", 640, 14, 128, 1, 1, 0),  // block3 bottleneck (mid)
        layer("conv13", 1024, 14, 512, 1, 1, 0), // transition3
        layer("conv14", 512, 7, 128, 1, 1, 0),   // block4 bottleneck (first)
        layer("conv15", 736, 14, 128, 1, 1, 0),  // block3 bottleneck (the paper's example)
        layer("conv16", 896, 7, 128, 1, 1, 0),   // block4 bottleneck (late)
    ]
}

/// The full ResNet-50 convolution stack: every distinct shape paired with
/// how many times it executes in one forward pass (bottleneck blocks repeat
/// 3/4/6/3 times across the four stages). Summing `shape.macs() * count`
/// gives the network's true convolution work — used by the end-to-end
/// estimate, which the per-figure tables (distinct shapes only) cannot
/// provide.
pub fn resnet50_with_counts() -> Vec<(LayerDef, usize)> {
    let l = resnet50();
    let by_name = |name: &str| *l.iter().find(|d| d.name == name).unwrap();
    vec![
        (by_name("conv1"), 1),  // stem
        // Stage 1 (3 blocks): first block projects from 64, later from 256.
        (by_name("conv3"), 1),  // 64 -> 64 reduce (block 1)
        (by_name("conv2"), 3),  // 3x3 in every block
        (by_name("conv4"), 4),  // 64 -> 256: 3 expands + the block-1 shortcut
        (by_name("conv5"), 2),  // 256 -> 64 reduce (blocks 2-3)
        // Stage 2 (4 blocks).
        (by_name("conv6"), 1),  // 256 -> 128 s2 reduce (block 1)
        (by_name("conv9"), 1),  // 256 -> 512 s2 shortcut
        (by_name("conv7"), 4),  // 3x3
        (by_name("conv8"), 4),  // 128 -> 512 expand
        (by_name("conv10"), 3), // 512 -> 128 reduce (blocks 2-4)
        // Stage 3 (6 blocks).
        (by_name("conv11"), 1), // 512 -> 256 s2 reduce
        (by_name("conv14"), 1), // 512 -> 1024 s2 shortcut
        (by_name("conv12"), 6), // 3x3
        (by_name("conv13"), 6), // 256 -> 1024 expand
        (by_name("conv15"), 5), // 1024 -> 256 reduce
        // Stage 4 (3 blocks).
        (by_name("conv16"), 1), // 1024 -> 512 s2 reduce
        (by_name("conv17"), 3), // 3x3
        (by_name("conv18"), 3), // 512 -> 2048 expand
        (by_name("conv19"), 2), // 2048 -> 512 reduce
    ]
}

/// The three-layer demo chain used across examples, tests and the plan
/// golden file: a 3->8 3x3/s1 conv at `hw`, an 8->16 3x3/s2 downsample, and
/// a 16->8 1x1 projection at the downsampled size. This is the single source
/// of the demo geometry — `lowbit::Network::demo` attaches weights and
/// re-quantization on top of these shapes.
pub fn demo(hw: usize) -> Vec<LayerDef> {
    let l2 = ConvShape {
        batch: 1,
        c_in: 8,
        h: hw,
        w: hw,
        c_out: 16,
        kh: 3,
        kw: 3,
        stride: 2,
        pad: 1,
    };
    vec![
        LayerDef {
            name: "conv1",
            shape: ConvShape {
                batch: 1,
                c_in: 3,
                h: hw,
                w: hw,
                c_out: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
        },
        LayerDef { name: "conv2", shape: l2 },
        LayerDef {
            name: "conv3",
            shape: ConvShape {
                batch: 1,
                c_in: 16,
                h: l2.out_h(),
                w: l2.out_w(),
                c_out: 8,
                kh: 1,
                kw: 1,
                stride: 1,
                pad: 0,
            },
        },
    ]
}

/// A chainable three-layer ResNet-50 stage-2 bottleneck (conv6 1x1/s2
/// reduce → conv7 3x3 → conv8 1x1 expand): the distinct-shape table's rows
/// that actually compose into a runnable block. This is the serving layer's
/// heavyweight request class — real ResNet-50 geometry without the full
/// 53-conv stack.
pub fn resnet50_bottleneck() -> Vec<LayerDef> {
    let all = resnet50();
    let pick = |name: &str| *all.iter().find(|l| l.name == name).unwrap();
    vec![pick("conv6"), pick("conv7"), pick("conv8")]
}

/// One node of a [`GraphDef`]: a conv layer or a joining op over value ids.
///
/// Value 0 is the graph input; node `i` produces value `i + 1` (the same
/// convention `lowbit::Network` topologies use).
#[derive(Clone, Debug)]
pub enum GraphOpDef {
    /// A conv layer with an optional fused ReLU.
    Conv {
        /// The layer's geometry.
        def: LayerDef,
        /// Whether a ReLU follows.
        relu: bool,
    },
    /// Elementwise add of two equally-shaped values (the residual join).
    Add,
    /// Channel concatenation (the dense-block join).
    Concat,
}

/// One named node over input value ids.
#[derive(Clone, Debug)]
pub struct GraphNodeDef {
    /// Display name.
    pub name: &'static str,
    /// The op.
    pub op: GraphOpDef,
    /// Input value ids (value 0 = graph input, node `i` produces `i + 1`).
    pub inputs: Vec<usize>,
}

/// A DAG-shaped model definition: the graph counterpart of a chainable
/// `Vec<LayerDef>`. The last node's value is the graph output.
#[derive(Clone, Debug)]
pub struct GraphDef {
    /// Graph input as `(channels, h, w)` at batch 1.
    pub input: (usize, usize, usize),
    /// Nodes in topological order.
    pub nodes: Vec<GraphNodeDef>,
}

/// A ResNet-50 stage-1 style residual block at spatial size `hw`: the
/// 1x1-reduce → 3x3 → 1x1-expand bottleneck with the identity shortcut
/// added back onto the expand output (paper Sec. 5.1's dominant ResNet
/// pattern). This is the graph the chain IR could not express: value 0 is
/// read by both the first conv and the final add.
pub fn resnet50_residual_block(hw: usize) -> GraphDef {
    GraphDef {
        input: (256, hw, hw),
        nodes: vec![
            GraphNodeDef {
                name: "reduce",
                op: GraphOpDef::Conv { def: layer("reduce", 256, hw, 64, 1, 1, 0), relu: true },
                inputs: vec![0],
            },
            GraphNodeDef {
                name: "conv3x3",
                op: GraphOpDef::Conv { def: layer("conv3x3", 64, hw, 64, 3, 1, 1), relu: true },
                inputs: vec![1],
            },
            GraphNodeDef {
                name: "expand",
                op: GraphOpDef::Conv { def: layer("expand", 64, hw, 256, 1, 1, 0), relu: false },
                inputs: vec![2],
            },
            GraphNodeDef { name: "residual", op: GraphOpDef::Add, inputs: vec![3, 0] },
        ],
    }
}

/// The bottleneck's *projection* variant (ResNet-50's first block of every
/// stage): the shortcut is not the identity but a 1x1 projection conv that
/// runs **in parallel** with the reduce → 3x3 → expand main path, the two
/// meeting at the final add. This is the workload with genuinely
/// incomparable conv nodes — the projection and the main path share no
/// dependency — so it is the plan the parallel DAG node scheduler can
/// actually widen (the residual and dense blocks are dependency chains).
pub fn resnet50_projection_block(hw: usize) -> GraphDef {
    GraphDef {
        input: (256, hw, hw),
        nodes: vec![
            GraphNodeDef {
                name: "reduce",
                op: GraphOpDef::Conv { def: layer("reduce", 256, hw, 64, 1, 1, 0), relu: true },
                inputs: vec![0],
            },
            GraphNodeDef {
                name: "conv3x3",
                op: GraphOpDef::Conv { def: layer("conv3x3", 64, hw, 64, 3, 1, 1), relu: true },
                inputs: vec![1],
            },
            GraphNodeDef {
                name: "expand",
                op: GraphOpDef::Conv { def: layer("expand", 64, hw, 256, 1, 1, 0), relu: false },
                inputs: vec![2],
            },
            GraphNodeDef {
                name: "project",
                op: GraphOpDef::Conv { def: layer("project", 256, hw, 256, 1, 1, 0), relu: false },
                inputs: vec![0],
            },
            GraphNodeDef { name: "residual", op: GraphOpDef::Add, inputs: vec![3, 4] },
        ],
    }
}

/// A DenseNet-121 style dense block at spatial size `hw`: two growth steps
/// (1x1 bottleneck to 128, 3x3 growth conv emitting 32 channels) with the
/// running channel concatenation that defines the architecture — every
/// concat output stays live until the next one consumes it, which is what
/// makes dense blocks the memory-planner stress case.
pub fn densenet121_dense_block(hw: usize) -> GraphDef {
    densenet121_dense_block_n(hw, 2)
}

/// The dense block generalized to `steps` growth steps (DenseNet-121's
/// first dense block has six). Longer blocks accumulate more concat values,
/// which is what separates a liveness-sharing arena from allocating every
/// value its own buffer — the `BENCH_graph.json` memory experiment runs the
/// six-step block for that reason.
///
/// Node names are pre-baked static strings, so `steps` is capped at six.
pub fn densenet121_dense_block_n(hw: usize, steps: usize) -> GraphDef {
    const BOTTLENECK: [&str; 6] = [
        "bottleneck1", "bottleneck2", "bottleneck3", "bottleneck4", "bottleneck5", "bottleneck6",
    ];
    const GROWTH: [&str; 6] =
        ["growth1", "growth2", "growth3", "growth4", "growth5", "growth6"];
    const CONCAT: [&str; 6] =
        ["concat1", "concat2", "concat3", "concat4", "concat5", "concat6"];
    assert!(
        (1..=6).contains(&steps),
        "node names are pre-baked for one to six growth steps"
    );
    let mut nodes = Vec::new();
    let mut channels = 64usize;
    // Value id of the running concatenation (value 0 = graph input).
    let mut running = 0usize;
    for k in 0..steps {
        nodes.push(GraphNodeDef {
            name: BOTTLENECK[k],
            op: GraphOpDef::Conv { def: layer(BOTTLENECK[k], channels, hw, 128, 1, 1, 0), relu: true },
            inputs: vec![running],
        });
        let bottleneck = nodes.len();
        nodes.push(GraphNodeDef {
            name: GROWTH[k],
            op: GraphOpDef::Conv { def: layer(GROWTH[k], 128, hw, 32, 3, 1, 1), relu: true },
            inputs: vec![bottleneck],
        });
        let growth = nodes.len();
        nodes.push(GraphNodeDef { name: CONCAT[k], op: GraphOpDef::Concat, inputs: vec![running, growth] });
        running = nodes.len();
        channels += 32;
    }
    GraphDef { input: (64, hw, hw), nodes }
}

/// All 3x3 stride-1 layers of a table (the Winograd-applicable subset used
/// by Fig. 8).
pub fn winograd_layers(layers: &[LayerDef]) -> Vec<LayerDef> {
    layers
        .iter()
        .copied()
        .filter(|l| l.shape.winograd_applicable())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_sizes_match_the_paper_figures() {
        assert_eq!(resnet50().len(), 19, "Fig. 7 has 19 ResNet-50 layers");
        assert_eq!(scr_resnet50().len(), 19, "Fig. 15 has 19 SCR layers");
        assert_eq!(densenet121().len(), 16, "Fig. 14 has 16 DenseNet layers");
    }

    #[test]
    fn resnet_shapes_chain_spatially() {
        // Spot-check the downsampling chain: 224 -> 112 -> ... -> 7.
        let l = resnet50();
        assert_eq!(l[0].shape.out_h(), 112); // stem (pooling halves it again)
        assert_eq!(l[1].shape.out_h(), 56);
        assert_eq!(l[16].shape.out_h(), 7);
        // Every layer must have a positive output.
        for layer in &l {
            assert!(layer.shape.out_h() > 0 && layer.shape.out_w() > 0);
        }
    }

    #[test]
    fn conv1_and_conv3_are_the_small_layers() {
        // The paper singles out conv1/conv3 as the poorly-performing small
        // layers ("1x1 kernel with 64 channels" for conv3).
        let l = resnet50();
        assert_eq!(l[2].name, "conv3");
        assert_eq!(l[2].shape.c_in, 64);
        assert_eq!(l[2].shape.kh, 1);
    }

    #[test]
    fn scr_has_off_grid_channel_counts() {
        let l = scr_resnet50();
        assert!(l.iter().any(|l| l.shape.c_in == 736));
        // Channel counts not powers of two dominate.
        let odd = l
            .iter()
            .filter(|l| !l.shape.c_out.is_power_of_two())
            .count();
        assert!(odd > 10);
    }

    #[test]
    fn densenet_contains_the_papers_example_layer() {
        // "input size for conv15 in DenseNet-121 is 1x14x14x736".
        let l = densenet121();
        let conv15 = l.iter().find(|l| l.name == "conv15").unwrap();
        assert_eq!(
            (conv15.shape.c_in, conv15.shape.h, conv15.shape.w),
            (736, 14, 14)
        );
    }

    #[test]
    fn winograd_subset_is_exactly_the_3x3_stride1_layers() {
        let wg = winograd_layers(&resnet50());
        assert!(wg.iter().all(|l| l.shape.kh == 3 && l.shape.stride == 1));
        assert_eq!(wg.len(), 4); // conv2, conv7, conv12, conv17
    }

    #[test]
    fn full_resnet_conv_work_is_in_the_published_band() {
        // ResNet-50's convolutions total ~3.8 GMACs at 224x224 (the usual
        // "4 GFLOPs" figure counts 2 ops per MAC and includes the FC layer).
        let total: u64 = resnet50_with_counts()
            .iter()
            .map(|(l, c)| l.shape.macs() * *c as u64)
            .sum();
        let gmacs = total as f64 / 1e9;
        assert!(
            (3.2..=4.3).contains(&gmacs),
            "ResNet-50 conv work should be ~3.8 GMAC, got {gmacs:.2}"
        );
        // 52 of the standard network's 53 convolutions: the stage-4
        // projection shortcut (1024 -> 2048, s2) has no entry in the
        // distinct-shape table (the paper's 19 shapes omit it too).
        let layers: usize = resnet50_with_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(layers, 52);
    }

    #[test]
    fn demo_chain_is_consistent_at_any_resolution() {
        for hw in [10, 12, 16] {
            let d = demo(hw);
            assert_eq!(d.len(), 3);
            assert_eq!(d[0].name, "conv1");
            for w in d.windows(2) {
                assert_eq!(w[0].shape.c_out, w[1].shape.c_in);
                assert_eq!(
                    (w[0].shape.out_h(), w[0].shape.out_w()),
                    (w[1].shape.h, w[1].shape.w)
                );
            }
        }
    }

    #[test]
    fn bottleneck_chain_is_consistent() {
        let d = resnet50_bottleneck();
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].name, "conv6");
        assert_eq!(d[2].shape.c_out, 512);
        for w in d.windows(2) {
            assert_eq!(w[0].shape.c_out, w[1].shape.c_in);
            assert_eq!(
                (w[0].shape.out_h(), w[0].shape.out_w()),
                (w[1].shape.h, w[1].shape.w)
            );
        }
    }

    #[test]
    fn residual_block_def_is_well_formed() {
        let g = resnet50_residual_block(14);
        assert_eq!(g.nodes.len(), 4);
        // Value 0 has two consumers: the reduce conv and the residual add.
        let readers: Vec<&str> = g
            .nodes
            .iter()
            .filter(|n| n.inputs.contains(&0))
            .map(|n| n.name)
            .collect();
        assert_eq!(readers, vec!["reduce", "residual"]);
        // The expand conv restores the input channel count so the add types.
        match &g.nodes[2].op {
            GraphOpDef::Conv { def, relu } => {
                assert_eq!(def.shape.c_out, g.input.0);
                assert!(!relu, "no ReLU before the residual add");
            }
            other => panic!("expand must be a conv, got {other:?}"),
        }
    }

    #[test]
    fn dense_block_def_grows_by_the_growth_rate() {
        let g = densenet121_dense_block(14);
        assert_eq!(g.nodes.len(), 6);
        // Channel counts along the two concats: 64 -> 96 -> 128.
        assert!(matches!(g.nodes[2].op, GraphOpDef::Concat));
        assert_eq!(g.nodes[2].inputs, vec![0, 2]);
        assert!(matches!(g.nodes[5].op, GraphOpDef::Concat));
        assert_eq!(g.nodes[5].inputs, vec![3, 5]);
        match &g.nodes[3].op {
            GraphOpDef::Conv { def, .. } => assert_eq!(def.shape.c_in, 64 + 32),
            other => panic!("bottleneck2 must be a conv, got {other:?}"),
        }
    }

    #[test]
    fn deep_dense_block_matches_densenet121_block_one() {
        let g = densenet121_dense_block_n(14, 6);
        assert_eq!(g.nodes.len(), 18, "six steps of bottleneck/growth/concat");
        // The last bottleneck reads 64 input channels plus five growth steps.
        match &g.nodes[15].op {
            GraphOpDef::Conv { def, .. } => assert_eq!(def.shape.c_in, 64 + 5 * 32),
            other => panic!("bottleneck6 must be a conv, got {other:?}"),
        }
        // The final concat joins the running value with the last growth conv.
        assert_eq!(g.nodes[17].inputs, vec![15, 17]);
        // The two-step default is exactly the first two iterations.
        let short = densenet121_dense_block(14);
        for (a, b) in short.nodes.iter().zip(&g.nodes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.inputs, b.inputs);
        }
    }

    #[test]
    fn all_tables_have_unique_names_and_shapes() {
        for table in [resnet50(), scr_resnet50(), densenet121()] {
            for (i, a) in table.iter().enumerate() {
                for b in &table[i + 1..] {
                    assert_ne!(a.name, b.name);
                    assert_ne!(a.shape, b.shape, "{} duplicates {}", a.name, b.name);
                }
            }
        }
    }
}
