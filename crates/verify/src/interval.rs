//! Closed integer intervals — the abstract domain of the saturation checker.
//!
//! Every vector-register lane is tracked as an `[lo, hi]` interval over i64,
//! which comfortably contains every exact i8/i16/i32 computation the kernels
//! perform (worst cases are far below `i64::MAX`, so interval arithmetic here
//! never itself overflows).

use neon_sim::meta::ElemWidth;

/// A closed interval `[lo, hi]`, `lo <= hi`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The singleton zero interval.
    pub const ZERO: Interval = Interval { lo: 0, hi: 0 };

    /// Builds `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton `[v, v]`.
    pub fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The symmetric interval `[-a, a]`.
    pub fn symmetric(a: i64) -> Interval {
        Interval::new(-a.abs(), a.abs())
    }

    /// Largest absolute value in the interval.
    pub fn abs_max(self) -> i64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// `true` when every value fits the signed range of `w`.
    pub fn fits(self, w: ElemWidth) -> bool {
        self.lo >= w.min_value() && self.hi <= w.max_value()
    }

    /// `true` for the singleton zero.
    pub fn is_zero(self) -> bool {
        self.lo == 0 && self.hi == 0
    }

    /// The interval as seen through an *unsigned* byte read (`UADALP`):
    /// in-range non-negative values pass through, anything that could be
    /// negative widens conservatively to the full `[0, 255]` byte range.
    pub fn as_unsigned_byte(self) -> Interval {
        if self.lo >= 0 && self.hi <= 255 {
            self
        } else {
            Interval { lo: 0, hi: 255 }
        }
    }

    /// Conservative bitwise-AND bound for i8 lanes: two provably non-negative
    /// operands stay within `[0, min(hi_a, hi_b)]`; otherwise the full i8
    /// range.
    pub fn bitand_i8(self, o: Interval) -> Interval {
        if self.lo >= 0 && o.lo >= 0 {
            Interval { lo: 0, hi: self.hi.min(o.hi) }
        } else {
            Interval { lo: i8::MIN as i64, hi: i8::MAX as i64 }
        }
    }
}

/// Exact interval sum.
impl std::ops::Add for Interval {
    type Output = Interval;
    fn add(self, o: Interval) -> Interval {
        Interval { lo: self.lo + o.lo, hi: self.hi + o.hi }
    }
}

/// Exact interval difference.
impl std::ops::Sub for Interval {
    type Output = Interval;
    fn sub(self, o: Interval) -> Interval {
        Interval { lo: self.lo - o.hi, hi: self.hi - o.lo }
    }
}

/// Exact interval product (four-corner rule).
impl std::ops::Mul for Interval {
    type Output = Interval;
    fn mul(self, o: Interval) -> Interval {
        let c = [self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi];
        Interval { lo: *c.iter().min().unwrap(), hi: *c.iter().max().unwrap() }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_corner_products() {
        let a = Interval::new(-8, 7);
        let p = a * a;
        assert_eq!(p, Interval::new(-56, 64));
        assert_eq!(Interval::new(-2, 1) * Interval::new(-2, 1), Interval::new(-2, 4));
    }

    #[test]
    fn accumulation_chains_reproduce_paper_ratios() {
        // 511 accumulations of the 4-bit worst product stay inside i16; one
        // more escapes. This is Fig. 3's claim, in the abstract domain.
        let prod = Interval::new(-8, 7) * Interval::new(-8, 7);
        let mut acc = Interval::ZERO;
        for _ in 0..511 {
            acc = acc + prod;
        }
        assert!(acc.fits(ElemWidth::H), "{acc}");
        assert!(!(acc + prod).fits(ElemWidth::H));
    }

    #[test]
    fn width_fitting() {
        assert!(Interval::new(-128, 127).fits(ElemWidth::B));
        assert!(!Interval::new(-129, 0).fits(ElemWidth::B));
        assert!(Interval::exact(i16::MAX as i64).fits(ElemWidth::H));
        assert!(!Interval::exact(i16::MAX as i64 + 1).fits(ElemWidth::H));
    }

    #[test]
    fn unsigned_byte_view() {
        assert_eq!(Interval::new(0, 8).as_unsigned_byte(), Interval::new(0, 8));
        assert_eq!(Interval::new(-1, 8).as_unsigned_byte(), Interval::new(0, 255));
    }
}
