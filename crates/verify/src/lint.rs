//! Register-discipline lint: the Alg. 1 allocation contract as a dataflow
//! check.
//!
//! The paper's Alg. 1 hand-allocates every vector register so that no live
//! partial sum is ever destroyed before its drain consumes it, and no drain
//! result is computed and then thrown away. This pass checks exactly that,
//! independent of value ranges, with a pending-value sweep:
//!
//! 1. an instruction's **reads** consume any pending value in the registers
//!    it reads (including read-modify-write destinations such as `SMLAL`'s
//!    accumulator);
//! 2. a **destructive write** (a write to a register the instruction does
//!    not read) that hits a still-pending value is a [`Violation::Clobbered`]
//!    — a load or `MOVI` just destroyed unconsumed work;
//! 3. every value-producing instruction then marks its written registers
//!    pending again.
//!
//! Anything still pending at end of stream is [`Violation::Unconsumed`]:
//! the kernel computed a partial sum and never drained or stored it.

use crate::report::Violation;
use neon_sim::inst::{Inst, RegId};

fn reg_index(r: RegId) -> usize {
    match r {
        RegId::V(v) => v as usize,
        RegId::X(x) => 32 + x as usize,
    }
}

fn reg_name(i: usize) -> String {
    if i < 32 {
        format!("v{i}")
    } else {
        format!("x{}", i - 32)
    }
}

/// Checks the clobber/consumption discipline of a straight-line stream.
pub fn lint_stream(prog: &[Inst]) -> Result<(), Violation> {
    // pending[r] = Some(index of the instruction whose result is still live)
    let mut pending: [Option<usize>; 64] = [None; 64];
    for (index, inst) in prog.iter().enumerate() {
        for r in inst.reads() {
            pending[reg_index(r)] = None;
        }
        for r in inst.destructive_writes() {
            let slot = reg_index(r);
            if let Some(born) = pending[slot] {
                return Err(Violation::Clobbered {
                    index,
                    inst: inst.to_string(),
                    reg: reg_name(slot),
                    born,
                });
            }
        }
        if inst.produces_value() {
            for r in inst.writes() {
                pending[reg_index(r)] = Some(index);
            }
        } else {
            // Pure moves/zeroing/stores leave nothing pending: their effect
            // is either consumed immediately (store) or is a fresh blank.
            for r in inst.writes() {
                pending[reg_index(r)] = None;
            }
        }
    }
    if let Some(slot) = pending.iter().position(|p| p.is_some()) {
        return Err(Violation::Unconsumed {
            reg: reg_name(slot),
            born: pending[slot].unwrap(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neon_sim::inst::Half;

    #[test]
    fn clobbered_partial_is_reported() {
        // v10 accumulates a partial, then a load destroys it before any
        // drain reads it.
        let prog = [
            Inst::Ld1 { vt: 0, addr: 0 },
            Inst::Ld1 { vt: 2, addr: 16 },
            Inst::MoviZero { vd: 10 },
            Inst::Smlal8 { vd: 10, vn: 0, vm: 2, half: Half::Low },
            Inst::Ld1 { vt: 10, addr: 0 },
        ];
        match lint_stream(&prog) {
            Err(Violation::Clobbered { index: 4, reg, born: 3, .. }) => {
                assert_eq!(reg, "v10");
            }
            other => panic!("expected clobber at #4, got {other:?}"),
        }
    }

    #[test]
    fn unconsumed_partial_is_reported() {
        let prog = [
            Inst::Ld1 { vt: 0, addr: 0 },
            Inst::Ld1 { vt: 2, addr: 16 },
            Inst::MoviZero { vd: 10 },
            Inst::Smlal8 { vd: 10, vn: 0, vm: 2, half: Half::Low },
        ];
        match lint_stream(&prog) {
            Err(Violation::Unconsumed { reg, born: 3 }) => assert_eq!(reg, "v10"),
            other => panic!("expected unconsumed v10, got {other:?}"),
        }
    }

    #[test]
    fn consumed_chain_is_clean() {
        let prog = [
            Inst::Ld1 { vt: 0, addr: 0 },
            Inst::Ld1 { vt: 2, addr: 16 },
            Inst::MoviZero { vd: 10 },
            Inst::MoviZero { vd: 20 },
            Inst::Smlal8 { vd: 10, vn: 0, vm: 2, half: Half::Low },
            Inst::Saddw16 { vd: 20, vn: 20, vm: 10, half: Half::Low },
            Inst::Saddw16 { vd: 20, vn: 20, vm: 10, half: Half::High },
            Inst::St1 { vt: 20, addr: 32 },
        ];
        lint_stream(&prog).unwrap();
    }
}
