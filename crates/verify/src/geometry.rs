//! Structural verification of the parallel GEMM column partition.
//!
//! `qgemm::parallel` splits the output's `n` columns across threads and hands
//! each thread a `split_at_mut` slice of C — safe only if the spans are
//! contiguous, pairwise disjoint, tile-aligned at interior boundaries and
//! jointly cover `[0, n)`. [`check_spans`] proves those four properties for a
//! concrete span list, and [`check_partition`] applies it to the partition
//! the runtime actually computes, for arbitrary thread counts and shapes.

use crate::report::Violation;
use lowbit_qgemm::{partition_columns, ColumnSpan, NB};

/// Verifies that `spans` is a disjoint, covering, tile-aligned partition of
/// `n` output columns.
///
/// Empty spans (`cols == 0`) are legal — `partition_columns` emits them for
/// threads beyond the tile count — but only when **well-formed**: parked
/// exactly at the partition cursor, so they own no columns and leave no gap.
pub fn check_spans(spans: &[ColumnSpan], n: usize) -> Result<(), Violation> {
    let mut expected_col = 0usize;
    for (thread, span) in spans.iter().enumerate() {
        match span.col0.cmp(&expected_col) {
            std::cmp::Ordering::Greater => {
                return Err(Violation::GeometryGap {
                    thread,
                    expected_col,
                    got_col: span.col0,
                })
            }
            std::cmp::Ordering::Less => {
                return Err(Violation::GeometryOverlap {
                    thread,
                    expected_col,
                    got_col: span.col0,
                })
            }
            std::cmp::Ordering::Equal => {}
        }
        if span.cols == 0 {
            // A well-formed empty span sits at the cursor (checked above),
            // owns nothing, and is exempt from the tile-alignment rule: the
            // cursor of a final partial tile is not NB-aligned.
            continue;
        }
        // Interior boundaries must sit on a column-tile edge so every micro-
        // kernel tile is owned by exactly one thread.
        if span.col0 % NB != 0 {
            return Err(Violation::GeometryMisaligned { thread, col: span.col0 });
        }
        expected_col = span.end();
    }
    if expected_col != n {
        return Err(Violation::GeometryCoverage { end: expected_col, n });
    }
    Ok(())
}

/// Verifies the partition `qgemm::parallel` would use for an `n`-column
/// output on `threads` threads.
pub fn check_partition(n: usize, threads: usize) -> Result<(), Violation> {
    check_spans(&partition_columns(n, threads), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_partitions_verify_over_a_shape_sweep() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 16, 17, 63, 64, 65, 127, 128, 999, 1000] {
            for threads in [1, 2, 3, 4, 5, 8, 13, 16, 64, 99] {
                check_partition(n, threads)
                    .unwrap_or_else(|v| panic!("n={n} threads={threads}: {v}"));
            }
        }
    }

    #[test]
    fn wellformed_empty_spans_verify_and_malformed_ones_are_caught() {
        // Trailing empty spans at the cursor: the degenerate threads > tiles
        // partition shape. Accepted even when n is not tile-aligned.
        let trailing = [
            ColumnSpan { col0: 0, cols: 3 },
            ColumnSpan { col0: 3, cols: 0 },
            ColumnSpan { col0: 3, cols: 0 },
        ];
        check_spans(&trailing, 3).expect("trailing empty spans are covered");

        // n == 0: every span is empty at the origin.
        let all_empty = [ColumnSpan { col0: 0, cols: 0 }; 4];
        check_spans(&all_empty, 0).expect("empty output verifies");

        // An empty span ahead of the cursor leaves a gap claim.
        let ahead = [ColumnSpan { col0: 0, cols: 3 }, ColumnSpan { col0: 5, cols: 0 }];
        assert!(matches!(
            check_spans(&ahead, 3),
            Err(Violation::GeometryGap { thread: 1, .. })
        ));

        // An empty span behind the cursor is a malformed (overlapping) claim.
        let behind = [ColumnSpan { col0: 0, cols: 8 }, ColumnSpan { col0: 4, cols: 0 }];
        assert!(matches!(
            check_spans(&behind, 8),
            Err(Violation::GeometryOverlap { thread: 1, .. })
        ));

        // Empty spans cannot paper over missing coverage.
        let short = [ColumnSpan { col0: 0, cols: 4 }, ColumnSpan { col0: 4, cols: 0 }];
        assert!(matches!(
            check_spans(&short, 12),
            Err(Violation::GeometryCoverage { end: 4, n: 12 })
        ));
    }

    #[test]
    fn overlap_gap_misalignment_and_short_coverage_are_caught() {
        let overlap = [
            ColumnSpan { col0: 0, cols: 8 },
            ColumnSpan { col0: 4, cols: 8 },
        ];
        assert!(matches!(
            check_spans(&overlap, 12),
            Err(Violation::GeometryOverlap { thread: 1, .. })
        ));

        let gap = [
            ColumnSpan { col0: 0, cols: 4 },
            ColumnSpan { col0: 8, cols: 4 },
        ];
        assert!(matches!(
            check_spans(&gap, 12),
            Err(Violation::GeometryGap { thread: 1, .. })
        ));

        let misaligned = [
            ColumnSpan { col0: 0, cols: 6 },
            ColumnSpan { col0: 6, cols: 6 },
        ];
        assert!(matches!(
            check_spans(&misaligned, 12),
            Err(Violation::GeometryMisaligned { thread: 1, col: 6 })
        ));

        let short = [ColumnSpan { col0: 0, cols: 8 }];
        assert!(matches!(
            check_spans(&short, 12),
            Err(Violation::GeometryCoverage { end: 8, n: 12 })
        ));
    }
}
