//! Whole-plan static verification: end-to-end numeric range, layout and
//! workspace proofs over a compiled execution plan.
//!
//! The stream verifier ([`crate::absint`]) proves each emitted NEON kernel
//! saturation-safe *given* operands inside the declared bit-width range, and
//! the GPU verifier ([`crate::gpu`]) proves each tile configuration's
//! geometry and resource discipline. Neither can catch a cross-layer bug:
//! a re-quantization that emits values outside the range the next layer's
//! kernel proof assumed, a dropped NCHW/NHWC conversion between backends, or
//! a workspace high-water figure that understates what the arena will
//! actually grow to. This module closes that gap with a plan-level pass
//! over a backend-neutral [`PlanSpec`]:
//!
//! 1. **Numeric soundness** — interval abstract interpretation of the
//!    activation range through every layer: per-output-channel accumulator
//!    bounds from the actual packed weights (positive/negative column sums x
//!    the incoming activation interval, plus the exact bias), proven to fit
//!    i32 before re-quantization, then pushed through the fused
//!    bias+requant+ReLU epilogue to the next layer's operand interval —
//!    which must sit inside the range the *stream* proofs assumed for that
//!    layer's bit width (Winograd layers additionally re-check the paper's
//!    4x input-transform inflation against the live interval).
//! 2. **Layout/shape dataflow** — each layer's input layout and shape must
//!    match its predecessor's output modulo the plan's *recorded*
//!    conversions, with typed witnesses ([`PlanViolation::LayoutMismatch`],
//!    [`PlanViolation::ShapeBreak`], [`PlanViolation::DanglingConversion`]).
//! 3. **Workspace certification** — the exact arena requirement of each ARM
//!    layer (im2col matrix, column-major result, per-thread packed-B panels
//!    maximized over every legal thread count, SDOT quad buffers) is
//!    recomputed from the blocking constants the engine really uses, and the
//!    plan's declared per-layer and whole-plan high-water figures must be
//!    upper bounds on it.
//!
//! The pass is deliberately independent of the `lowbit` core crate (which
//! itself depends on this one): core lowers its `ExecutionPlan` into a
//! [`PlanSpec`] and calls [`verify_plan`]; the negative catalog in the CLI
//! and integration tests seeds mutants directly at this level.

use crate::interval::Interval;
use lowbit_conv_arm::range_analysis::f23_range_halved;
use lowbit_qgemm::parallel::{partition_columns, DEFAULT_KC, DEFAULT_NC, MAX_THREADS};
use lowbit_qgemm::NB;
use lowbit_tensor::{BitWidth, ConvShape, Layout};
use neon_sim::meta::ElemWidth;

/// The concrete ARM kernel family a plan layer committed to, as the
/// workspace certifier needs to see it (mirrors `lowbit::ArmAlgo` without
/// the `Auto` state or the core dependency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArmAlgoKind {
    /// Wide 16x4 explicit-GEMM tiles through the shared arena.
    GemmWide,
    /// Narrow 8x4 explicit-GEMM tiles through the shared arena.
    GemmNarrow,
    /// ARMv8.2 SDOT quad path through the shared arena.
    GemmSdot,
    /// Winograd `F(2x2, 3x3)` (own transform buffers, not the arena).
    Winograd,
    /// ncnn-style baseline (no arena).
    NcnnBaseline,
    /// Bit-serial popcount baseline (no arena).
    BitserialBaseline,
}

impl std::fmt::Display for ArmAlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArmAlgoKind::GemmWide => "gemm",
            ArmAlgoKind::GemmNarrow => "gemm-narrow",
            ArmAlgoKind::GemmSdot => "gemm-sdot",
            ArmAlgoKind::Winograd => "winograd",
            ArmAlgoKind::NcnnBaseline => "ncnn",
            ArmAlgoKind::BitserialBaseline => "bitserial",
        };
        write!(f, "{s}")
    }
}

/// Which backend a spec layer runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendSpec {
    /// The ARM engine with its committed kernel family.
    Arm(ArmAlgoKind),
    /// The GPU model (NHWC-native implicit GEMM).
    Gpu,
}

impl BackendSpec {
    /// The memory layout the backend's kernel consumes and produces.
    pub fn native_layout(&self) -> Layout {
        match self {
            BackendSpec::Arm(_) => Layout::Nchw,
            BackendSpec::Gpu => Layout::Nhwc,
        }
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Arm(a) => write!(f, "arm/{a}"),
            BackendSpec::Gpu => write!(f, "gpu"),
        }
    }
}

/// One recorded layout conversion the executor performs at a plan boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LayoutConversion {
    /// Layout the activations are in before the conversion.
    pub from: Layout,
    /// Layout they are in afterwards.
    pub to: Layout,
}

impl std::fmt::Display for LayoutConversion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}->{:?}", self.from, self.to)
    }
}

/// Re-quantization parameters as the verifier needs them (mirrors
/// `lowbit_qnn::RequantParams` without the dependency).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RequantSpec {
    /// Output bit width the requant truncates into.
    pub bits: BitWidth,
    /// Combined multiplier.
    pub multiplier: f32,
    /// Lower truncation bound before any ReLU fold.
    pub clamp_min: i8,
}

/// Per-output-channel signed weight sums: the exact extreme contributions a
/// channel's row of the GEMM can make given an activation interval.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChannelSums {
    /// Sum of the channel's negative weights (<= 0).
    pub neg: i64,
    /// Sum of the channel's positive weights (>= 0).
    pub pos: i64,
}

/// One layer of the backend-neutral plan spec.
#[derive(Clone, Debug)]
pub struct LayerSpec {
    /// Layer name.
    pub name: String,
    /// Convolution geometry.
    pub shape: ConvShape,
    /// Operand bit width the layer's kernel proofs assumed.
    pub bits: BitWidth,
    /// Backend and committed kernel family.
    pub backend: BackendSpec,
    /// Recorded conversion applied to the activations before the kernel.
    pub pre: Option<LayoutConversion>,
    /// Recorded conversion applied to the kernel output.
    pub post: Option<LayoutConversion>,
    /// The workspace bytes the plan declares for this layer.
    pub declared_workspace_bytes: usize,
    /// Per-output-channel signed weight sums (length `c_out`).
    pub channel_sums: Vec<ChannelSums>,
    /// Per-output-channel bias added to the accumulators.
    pub bias: Option<Vec<i32>>,
    /// Re-quantization into the next layer's operand range.
    pub requant: RequantSpec,
    /// Whether a ReLU is fused into the truncation.
    pub relu: bool,
}

/// A node operation in the lowered DAG (mirrors `lowbit::PlanOp` without
/// the core dependency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeOpSpec {
    /// A planned convolution, indexing [`PlanSpec::layers`], optionally
    /// carrying a fused residual-add operand (a value id).
    Conv {
        /// Index into the layer table.
        layer: usize,
        /// Fused residual operand, if the planner folded an add here.
        fused_add: Option<usize>,
    },
    /// Elementwise saturating add of two equal-shape values.
    Add,
    /// Channel-axis concatenation in NCHW.
    Concat,
}

/// One node of the lowered DAG, in execution order.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Node name (for witnesses).
    pub name: String,
    /// The operation.
    pub op: NodeOpSpec,
    /// Value ids this node reads.
    pub inputs: Vec<usize>,
    /// Value id this node defines.
    pub output: usize,
}

/// One value of the lowered DAG with its recorded activation-arena
/// placement and live range (both re-proven, not trusted).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ValueSlot {
    /// `(batch, channels, h, w)`.
    pub dims: (usize, usize, usize, usize),
    /// Quantized bit width of the stored elements.
    pub bits: BitWidth,
    /// The layout the value is stored in between nodes.
    pub layout: Layout,
    /// Recorded byte size.
    pub bytes: usize,
    /// Recorded defining step (0 for the graph input).
    pub def: usize,
    /// Recorded last consuming step.
    pub last_use: usize,
    /// Recorded activation-arena byte offset.
    pub offset: usize,
}

/// The backend-neutral lowering of a compiled execution plan.
///
/// `nodes`/`values` describe the DAG; when `nodes` is empty the spec is a
/// pure layer chain and the verifier runs the chain-shaped passes (the
/// negative catalog seeds mutants at that level).
#[derive(Clone, Debug)]
pub struct PlanSpec {
    /// Per-layer specs, in execution order.
    pub layers: Vec<LayerSpec>,
    /// DAG nodes in execution order (empty for a bare layer chain).
    pub nodes: Vec<NodeSpec>,
    /// DAG values with recorded arena placements (empty for a bare chain).
    pub values: Vec<ValueSlot>,
    /// The whole-plan workspace high-water bytes the plan declares.
    pub declared_high_water_bytes: usize,
    /// The activation-arena high-water bytes the plan declares.
    pub declared_activation_high_water_bytes: usize,
}

/// A typed counterexample from the plan verifier. Every variant names the
/// layer it anchors to and carries enough context to reproduce the failure.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanViolation {
    /// Consecutive layers disagree on activation geometry
    /// (`(batch, channels, h, w)` produced vs expected).
    ShapeBreak {
        /// Layer producing the activations.
        producer: String,
        /// `(batch, c, h, w)` it produces.
        produces: (usize, usize, usize, usize),
        /// Layer consuming them.
        consumer: String,
        /// `(batch, c, h, w)` it expects.
        expects: (usize, usize, usize, usize),
    },
    /// The layout entering a kernel (or leaving the plan boundary) is not
    /// the one the site requires.
    LayoutMismatch {
        /// The offending layer.
        layer: String,
        /// Where the mismatch bites (`"kernel input"` / `"layer output"`).
        site: &'static str,
        /// Layout the site requires.
        expected: Layout,
        /// Layout the dataflow actually has there.
        found: Layout,
    },
    /// A recorded conversion whose source layout is not the layout the
    /// dataflow is actually in — the conversion is anchored to nothing.
    DanglingConversion {
        /// The offending layer.
        layer: String,
        /// The conversion's claimed source layout.
        from: Layout,
        /// The layout the activations are actually in.
        current: Layout,
    },
    /// A per-channel i32 accumulator can overflow before re-quantization.
    AccOverflow {
        /// The offending layer.
        layer: String,
        /// Output channel whose bound escapes i32.
        channel: usize,
        /// The proven accumulator interval.
        acc: Interval,
    },
    /// The activation interval entering a layer escapes the operand range
    /// its kernel proofs assumed (or a Winograd transform inflates it past
    /// i8).
    OperandRangeBreak {
        /// The offending layer.
        layer: String,
        /// The live activation interval.
        interval: Interval,
        /// The bound it must stay within (absolute value).
        bound: i64,
        /// What assumed the bound.
        context: String,
    },
    /// A layer re-quantizes into a different bit width than its successor's
    /// kernels were proven for.
    RequantWidthBreak {
        /// Layer producing the activations.
        producer: String,
        /// Width its requant truncates into.
        produced: BitWidth,
        /// Layer consuming them.
        consumer: String,
        /// Width the consumer's proofs assume.
        expects: BitWidth,
    },
    /// A requant truncation range that escapes the declared output width.
    ClampRangeBreak {
        /// The offending layer.
        layer: String,
        /// The effective lower clamp (after any ReLU fold).
        clamp_min: i8,
        /// The declared width's adjusted `[qmin, qmax]`.
        qmin: i8,
        /// Upper end of the declared range.
        qmax: i8,
    },
    /// A per-channel bias whose length is not the layer's `c_out`.
    EpilogueBiasBreak {
        /// The offending layer.
        layer: String,
        /// The layer's output channel count.
        expects: usize,
        /// The bias vector length in the spec.
        got: usize,
    },
    /// Channel weight sums whose length is not the layer's `c_out`.
    ChannelSumsBreak {
        /// The offending layer.
        layer: String,
        /// The layer's output channel count.
        expects: usize,
        /// The sums vector length in the spec.
        got: usize,
    },
    /// A layer declares fewer workspace bytes than its kernels will request.
    WorkspaceUnderstated {
        /// The offending layer.
        layer: String,
        /// Bytes the plan declares.
        declared: usize,
        /// Bytes the engine will actually require.
        required: usize,
    },
    /// The plan's recorded whole-plan high-water understates the arena's
    /// proven requirement.
    HighWaterUnderstated {
        /// Bytes the plan declares.
        declared: usize,
        /// The certified component-wise arena bound.
        required: usize,
    },
    /// The network content fingerprint does not cover a field the verifier's
    /// verdict depends on — two cache-equal plans could verify differently.
    FingerprintBlind {
        /// The invisible field.
        field: String,
    },
    /// The lowered DAG is not well-formed: a dangling value id, a node
    /// defined out of order, a value table inconsistent with the node that
    /// defines it, or a recorded live range shorter than the dataflow
    /// proves.
    GraphStructureBroken {
        /// The node (or value, as `v{id}`) the witness anchors to.
        node: String,
        /// What is broken.
        detail: String,
    },
    /// Two simultaneously-live values were assigned overlapping activation
    /// arena byte ranges — executing the plan in place would corrupt one.
    ActivationOverlap {
        /// First value id.
        a: usize,
        /// Its `[offset, offset + bytes)` span.
        a_span: (usize, usize),
        /// Second value id, live at the same step.
        b: usize,
        /// Its `[offset, offset + bytes)` span.
        b_span: (usize, usize),
    },
    /// The plan's declared activation high-water understates what the
    /// recorded arena placements actually reach.
    ActivationHighWaterUnderstated {
        /// Bytes the plan declares.
        declared: usize,
        /// `max(offset + bytes)` over the value table.
        required: usize,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::ShapeBreak { producer, produces, consumer, expects } => write!(
                f,
                "{producer} produces {produces:?} but {consumer} expects {expects:?}"
            ),
            PlanViolation::LayoutMismatch { layer, site, expected, found } => write!(
                f,
                "{layer}: {site} requires {expected:?} but the dataflow is {found:?}"
            ),
            PlanViolation::DanglingConversion { layer, from, current } => write!(
                f,
                "{layer}: recorded conversion from {from:?} but the activations are {current:?}"
            ),
            PlanViolation::AccOverflow { layer, channel, acc } => write!(
                f,
                "{layer}: channel {channel} accumulator {acc} escapes i32"
            ),
            PlanViolation::OperandRangeBreak { layer, interval, bound, context } => write!(
                f,
                "{layer}: activation interval {interval} escapes |v| <= {bound} ({context})"
            ),
            PlanViolation::RequantWidthBreak { producer, produced, consumer, expects } => write!(
                f,
                "{producer} requantizes into {produced} but {consumer} was proven for {expects}"
            ),
            PlanViolation::ClampRangeBreak { layer, clamp_min, qmin, qmax } => write!(
                f,
                "{layer}: clamp_min {clamp_min} outside the declared width's [{qmin}, {qmax}]"
            ),
            PlanViolation::EpilogueBiasBreak { layer, expects, got } => write!(
                f,
                "{layer} has {expects} output channels but its bias has {got} entries"
            ),
            PlanViolation::ChannelSumsBreak { layer, expects, got } => write!(
                f,
                "{layer} has {expects} output channels but {got} channel weight sums"
            ),
            PlanViolation::WorkspaceUnderstated { layer, declared, required } => write!(
                f,
                "{layer} declares {declared} workspace bytes but requires {required}"
            ),
            PlanViolation::HighWaterUnderstated { declared, required } => write!(
                f,
                "plan declares {declared} high-water bytes but the arena requires {required}"
            ),
            PlanViolation::FingerprintBlind { field } => write!(
                f,
                "Network::fingerprint is blind to {field}: mutating it leaves the cache key \
                 unchanged while the verification verdict can differ"
            ),
            PlanViolation::GraphStructureBroken { node, detail } => {
                write!(f, "{node}: graph structure broken: {detail}")
            }
            PlanViolation::ActivationOverlap { a, a_span, b, b_span } => write!(
                f,
                "values v{a} [{}, {}) and v{b} [{}, {}) are live together but their arena \
                 spans overlap",
                a_span.0, a_span.1, b_span.0, b_span.1
            ),
            PlanViolation::ActivationHighWaterUnderstated { declared, required } => write!(
                f,
                "plan declares {declared} activation high-water bytes but its arena \
                 placements reach {required}"
            ),
        }
    }
}

/// The shared arena's per-buffer byte requirement for one layer. The arena
/// is reused across a plan's layers, so the whole-plan high-water is the
/// *component-wise* maximum summed — not the max of per-layer totals.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ArenaRequirement {
    /// im2col matrix bytes (`K x N` i8).
    pub col: usize,
    /// Column-major parallel-GEMM result bytes (`4 * M * N`).
    pub c_cm: usize,
    /// Per-thread packed-B panel bytes, maximized over every legal thread
    /// count the engine accepts.
    pub panels: usize,
    /// SDOT quad-packed B bytes (K and N padded to the quad/tile grid).
    pub bq: usize,
    /// SDOT column-major result bytes (`4 * M * N`).
    pub c_sdot: usize,
}

impl ArenaRequirement {
    /// Total bytes this layer needs from the arena.
    pub fn total(&self) -> usize {
        self.col + self.c_cm + self.panels + self.bq + self.c_sdot
    }

    /// Component-wise maximum (the arena's growth rule across layers).
    pub fn max(self, o: ArenaRequirement) -> ArenaRequirement {
        ArenaRequirement {
            col: self.col.max(o.col),
            c_cm: self.c_cm.max(o.c_cm),
            panels: self.panels.max(o.panels),
            bq: self.bq.max(o.bq),
            c_sdot: self.c_sdot.max(o.c_sdot),
        }
    }
}

/// The largest total packed-B panel allocation the parallel driver can make
/// for a `K x N` GEMM, over every thread count the engine accepts
/// (`1..=MAX_THREADS`) at the default cache blocking. Mirrors the sizing in
/// `lowbit_qgemm::parallel::pack_b_panel`: each worker's panel holds
/// `min(nc/NB, ceil(cols_t/NB))` column tiles of `min(kc, K)` packed rows.
pub fn max_panel_bytes(k: usize, n: usize) -> usize {
    let klen = DEFAULT_KC.min(k);
    let nc_tiles = DEFAULT_NC / NB;
    let mut worst = 0usize;
    for threads in 1..=MAX_THREADS {
        let total: usize = partition_columns(n, threads)
            .iter()
            .map(|span| nc_tiles.min(span.cols.div_ceil(NB)) * NB * klen)
            .sum();
        worst = worst.max(total);
    }
    worst
}

/// The exact arena requirement of one ARM layer: which buffers its kernel
/// family touches and how large each grows. This is the certified bound the
/// plan's declared `workspace_bytes` must dominate.
pub fn arm_workspace_requirement(shape: &ConvShape, algo: ArmAlgoKind) -> ArenaRequirement {
    // Delegates to the pure-geometry form so the concurrency verifier can
    // recompute the same bound from a lowered GEMM footprint without the
    // original `ConvShape`.
    crate::conc::GemmFootprint {
        m: shape.gemm_m(),
        k: shape.gemm_k(),
        n: shape.gemm_n(),
        algo,
    }
    .required_workspace()
}

/// The arena requirement of one spec layer (GPU layers run outside the ARM
/// arena and require nothing from it).
pub fn layer_workspace_requirement(layer: &LayerSpec) -> ArenaRequirement {
    match layer.backend {
        BackendSpec::Arm(kind) => arm_workspace_requirement(&layer.shape, kind),
        BackendSpec::Gpu => ArenaRequirement::default(),
    }
}

/// The certified whole-plan arena high-water: component-wise maximum over
/// the layers, then summed — exactly how the shared `ConvWorkspace` grows.
pub fn arena_high_water(layers: &[LayerSpec]) -> usize {
    layers
        .iter()
        .map(layer_workspace_requirement)
        .fold(ArenaRequirement::default(), ArenaRequirement::max)
        .total()
}

/// One layer's entry in the proof certificate.
#[derive(Clone, Debug)]
pub struct LayerRangeProof {
    /// Layer name.
    pub name: String,
    /// Backend/kernel label.
    pub backend: BackendSpec,
    /// The activation interval entering the layer.
    pub input: Interval,
    /// The proven pre-requant accumulator interval (union over channels,
    /// bias included).
    pub acc: Interval,
    /// The proven post-epilogue output interval.
    pub output: Interval,
    /// Fraction of i32 the accumulator bound leaves unused.
    pub acc_headroom: f64,
    /// The certified arena bytes the layer requires.
    pub required_workspace: usize,
}

/// The certificate [`verify_plan`] returns on success.
#[derive(Clone, Debug)]
pub struct PlanProof {
    /// Per-layer range proofs, in execution order.
    pub layers: Vec<LayerRangeProof>,
    /// The certified arena high-water bound.
    pub certified_high_water: usize,
    /// The high-water bytes the plan declared (>= certified).
    pub declared_high_water: usize,
    /// The certified activation-arena bound (`max(offset + bytes)` over the
    /// proven-overlap-free value placements).
    pub certified_activation_high_water: usize,
    /// The activation high-water bytes the plan declared (>= certified).
    pub declared_activation_high_water: usize,
}

impl PlanProof {
    /// The smallest per-layer accumulator headroom.
    pub fn tightest_headroom(&self) -> f64 {
        self.layers.iter().map(|l| l.acc_headroom).fold(1.0, f64::min)
    }

    /// Renders the proof as a deterministic aligned table (the golden-file
    /// format the CI `--plan --check` diffs).
    pub fn report(&self) -> String {
        let mut out = format!(
            "{:<8} {:<16} {:>16} {:>26} {:>14} {:>9} {:>10}\n",
            "layer", "backend", "input", "acc (i32)", "output", "headroom", "ws bytes"
        );
        for l in &self.layers {
            out.push_str(&format!(
                "{:<8} {:<16} {:>16} {:>26} {:>14} {:>8.1}% {:>10}\n",
                l.name,
                l.backend.to_string(),
                l.input.to_string(),
                l.acc.to_string(),
                l.output.to_string(),
                l.acc_headroom * 100.0,
                l.required_workspace
            ));
        }
        out.push_str(&format!(
            "arena high-water: certified {} <= declared {}\n",
            self.certified_high_water, self.declared_high_water
        ));
        out.push_str(&format!(
            "activation high-water: certified {} <= declared {}\n",
            self.certified_activation_high_water, self.declared_activation_high_water
        ));
        out
    }

    /// Deterministic JSON rendering for machine consumption (`--json`).
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self
            .layers
            .iter()
            .map(|l| {
                format!(
                    "    {{\"name\":\"{}\",\"backend\":\"{}\",\"input\":[{},{}],\
\"acc\":[{},{}],\"output\":[{},{}],\"acc_headroom\":{:.6},\"required_workspace\":{}}}",
                    l.name,
                    l.backend,
                    l.input.lo,
                    l.input.hi,
                    l.acc.lo,
                    l.acc.hi,
                    l.output.lo,
                    l.output.hi,
                    l.acc_headroom,
                    l.required_workspace
                )
            })
            .collect();
        format!(
            "{{\n  \"layers\": [\n{}\n  ],\n  \"certified_high_water\":{},\n  \
\"declared_high_water\":{},\n  \"certified_activation_high_water\":{},\n  \
\"declared_activation_high_water\":{}\n}}\n",
            items.join(",\n"),
            self.certified_high_water,
            self.declared_high_water,
            self.certified_activation_high_water,
            self.declared_activation_high_water
        )
    }
}

/// The adjusted operand interval of a bit width (what the stream proofs and
/// the input quantizer both clamp into).
pub fn operand_interval(bits: BitWidth) -> Interval {
    Interval::new(bits.qmin() as i64, bits.qmax() as i64)
}

/// Conservative bound on `round(acc * multiplier)` over an interval: both
/// corners in f64 with a +-1 slack absorbing any f32-vs-f64 rounding skew.
fn scaled_interval(acc: Interval, multiplier: f32) -> Interval {
    let m = multiplier as f64;
    let a = (acc.lo as f64 * m).round() as i64;
    let b = (acc.hi as f64 * m).round() as i64;
    Interval::new(a.min(b) - 1, a.max(b) + 1)
}

/// Runs the shape pass: consecutive layers must chain on
/// `(batch, channels, h, w)`.
fn check_shapes(layers: &[LayerSpec]) -> Result<(), PlanViolation> {
    for w in layers.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let produces = (a.shape.batch, a.shape.c_out, a.shape.out_h(), a.shape.out_w());
        let expects = (b.shape.batch, b.shape.c_in, b.shape.h, b.shape.w);
        if produces != expects {
            return Err(PlanViolation::ShapeBreak {
                producer: a.name.clone(),
                produces,
                consumer: b.name.clone(),
                expects,
            });
        }
    }
    Ok(())
}

/// Runs the layout pass: walk the recorded conversions, requiring the
/// kernel-input layout to be the backend's native one and the inter-layer
/// layout to be the executor's NCHW canonical form.
fn check_layouts(layers: &[LayerSpec]) -> Result<(), PlanViolation> {
    let canonical = Layout::Nchw;
    let mut current = canonical;
    for l in layers {
        if let Some(c) = l.pre {
            if c.from != current {
                return Err(PlanViolation::DanglingConversion {
                    layer: l.name.clone(),
                    from: c.from,
                    current,
                });
            }
            current = c.to;
        }
        let native = l.backend.native_layout();
        if current != native {
            return Err(PlanViolation::LayoutMismatch {
                layer: l.name.clone(),
                site: "kernel input",
                expected: native,
                found: current,
            });
        }
        // The kernel writes its native layout.
        current = native;
        if let Some(c) = l.post {
            if c.from != current {
                return Err(PlanViolation::DanglingConversion {
                    layer: l.name.clone(),
                    from: c.from,
                    current,
                });
            }
            current = c.to;
        }
        if current != canonical {
            return Err(PlanViolation::LayoutMismatch {
                layer: l.name.clone(),
                site: "layer output",
                expected: canonical,
                found: current,
            });
        }
    }
    Ok(())
}

/// Runs the numeric pass over one layer: operand-range check, accumulator
/// bounds, epilogue. Returns the proof entry and the next layer's operand
/// interval.
fn check_layer_numerics(
    l: &LayerSpec,
    act: Interval,
) -> Result<(LayerRangeProof, Interval), PlanViolation> {
    let c_out = l.shape.c_out;
    if l.channel_sums.len() != c_out {
        return Err(PlanViolation::ChannelSumsBreak {
            layer: l.name.clone(),
            expects: c_out,
            got: l.channel_sums.len(),
        });
    }
    if let Some(bias) = &l.bias {
        if bias.len() != c_out {
            return Err(PlanViolation::EpilogueBiasBreak {
                layer: l.name.clone(),
                expects: c_out,
                got: bias.len(),
            });
        }
    }
    // The layer's kernel proofs assume operands inside the adjusted range
    // of its bit width.
    let assumed = operand_interval(l.bits);
    if act.lo < assumed.lo || act.hi > assumed.hi {
        return Err(PlanViolation::OperandRangeBreak {
            layer: l.name.clone(),
            interval: act,
            bound: assumed.abs_max(),
            context: format!("{} operand range for the {} stream proofs", l.bits, l.bits),
        });
    }
    if !l.requant.multiplier.is_finite() {
        return Err(PlanViolation::OperandRangeBreak {
            layer: l.name.clone(),
            interval: act,
            bound: assumed.abs_max(),
            context: "non-finite requant multiplier".into(),
        });
    }
    // Winograd: the F(2x2,3x3) input transform inflates operands 4x and the
    // transformed weights must also fit i8 — re-check against the *live*
    // interval, not just the static bit-width gate.
    if l.backend == BackendSpec::Arm(ArmAlgoKind::Winograd) {
        let range = f23_range_halved(l.bits);
        if 4 * act.abs_max() > 128 || !range.fits_i8() {
            return Err(PlanViolation::OperandRangeBreak {
                layer: l.name.clone(),
                interval: act,
                bound: 32,
                context: "Winograd F(2x2,3x3) input transform inflates 4x past i8".into(),
            });
        }
    }
    // Zero-padding contributes zero-valued taps.
    let act_padded = if l.shape.pad > 0 {
        Interval::new(act.lo.min(0), act.hi.max(0))
    } else {
        act
    };
    // Per-channel accumulator bounds: pos/neg weight sums x the activation
    // interval is the exact extreme of `sum w_i * a_i`, plus the exact bias.
    let mut acc_union: Option<Interval> = None;
    for (channel, sums) in l.channel_sums.iter().enumerate() {
        let lo = sums.pos * act_padded.lo + sums.neg * act_padded.hi;
        let hi = sums.pos * act_padded.hi + sums.neg * act_padded.lo;
        let bias = l.bias.as_ref().map_or(0, |b| b[channel]) as i64;
        let acc = Interval::new(lo + bias, hi + bias);
        if !acc.fits(ElemWidth::S) {
            return Err(PlanViolation::AccOverflow { layer: l.name.clone(), channel, acc });
        }
        acc_union = Some(match acc_union {
            Some(u) => Interval::new(u.lo.min(acc.lo), u.hi.max(acc.hi)),
            None => acc,
        });
    }
    let acc = acc_union.expect("c_out >= 1 by ConvShape construction");
    // Epilogue: requant + optional ReLU fold. The effective truncation range
    // must sit inside the declared output width.
    let (qmin, qmax) = (l.requant.bits.qmin(), l.requant.bits.qmax());
    let clamp_min = if l.relu { 0 } else { l.requant.clamp_min };
    if clamp_min < qmin || clamp_min > qmax {
        return Err(PlanViolation::ClampRangeBreak {
            layer: l.name.clone(),
            clamp_min,
            qmin,
            qmax,
        });
    }
    let scaled = scaled_interval(acc, l.requant.multiplier);
    let out = Interval::new(
        scaled.lo.clamp(clamp_min as i64, qmax as i64),
        scaled.hi.clamp(clamp_min as i64, qmax as i64),
    );
    let headroom = 1.0 - acc.abs_max() as f64 / i32::MAX as f64;
    let proof = LayerRangeProof {
        name: l.name.clone(),
        backend: l.backend,
        input: act,
        acc,
        output: out,
        acc_headroom: headroom,
        required_workspace: layer_workspace_requirement(l).total(),
    };
    Ok((proof, out))
}

/// Workspace certification shared by the chain and graph passes: each
/// layer's declared bytes must dominate its recomputed requirement, and the
/// declared whole-plan figure the component-wise arena bound. Returns the
/// certified bound.
fn check_workspace(spec: &PlanSpec) -> Result<usize, PlanViolation> {
    for l in &spec.layers {
        let required = layer_workspace_requirement(l).total();
        if l.declared_workspace_bytes < required {
            return Err(PlanViolation::WorkspaceUnderstated {
                layer: l.name.clone(),
                declared: l.declared_workspace_bytes,
                required,
            });
        }
    }
    let certified = arena_high_water(&spec.layers);
    if spec.declared_high_water_bytes < certified {
        return Err(PlanViolation::HighWaterUnderstated {
            declared: spec.declared_high_water_bytes,
            required: certified,
        });
    }
    Ok(certified)
}

/// The chain-shaped passes: consecutive layers feed each other directly.
fn verify_chain_plan(spec: &PlanSpec) -> Result<PlanProof, PlanViolation> {
    check_shapes(&spec.layers)?;
    check_layouts(&spec.layers)?;
    // Numeric pass: the first layer's operands come from the input
    // quantizer, which clamps into the layer's adjusted range.
    let first = spec.layers.first().expect("plans have at least one layer");
    let mut act = operand_interval(first.bits);
    let mut proofs = Vec::with_capacity(spec.layers.len());
    for (i, l) in spec.layers.iter().enumerate() {
        let (proof, out) = check_layer_numerics(l, act)?;
        if let Some(next) = spec.layers.get(i + 1) {
            if l.requant.bits != next.bits {
                return Err(PlanViolation::RequantWidthBreak {
                    producer: l.name.clone(),
                    produced: l.requant.bits,
                    consumer: next.name.clone(),
                    expects: next.bits,
                });
            }
        }
        proofs.push(proof);
        act = out;
    }
    let certified = check_workspace(spec)?;
    Ok(PlanProof {
        layers: proofs,
        certified_high_water: certified,
        declared_high_water: spec.declared_high_water_bytes,
        // A bare chain records no value table; there is nothing to certify
        // beyond the declaration itself.
        certified_activation_high_water: spec.declared_activation_high_water_bytes,
        declared_activation_high_water: spec.declared_activation_high_water_bytes,
    })
}

fn graph_broken(node: impl Into<String>, detail: String) -> PlanViolation {
    PlanViolation::GraphStructureBroken { node: node.into(), detail }
}

/// Structural pass over the DAG: every id in range, values defined before
/// use and exactly once, conv nodes covering the layer table in order, and
/// the value table's dims/bytes/live-ranges consistent with the node table.
fn check_graph_structure(spec: &PlanSpec) -> Result<(), PlanViolation> {
    let (nodes, values) = (&spec.nodes, &spec.values);
    if values.is_empty() {
        return Err(graph_broken("plan", "a DAG plan has no values".into()));
    }
    let mut defined_at = vec![None; values.len()];
    defined_at[0] = Some(0usize);
    let mut conv_layers = Vec::new();
    for (step, n) in nodes.iter().enumerate() {
        if n.output == 0 || n.output >= values.len() {
            return Err(graph_broken(
                n.name.clone(),
                format!("defines value v{} outside the table (len {})", n.output, values.len()),
            ));
        }
        if defined_at[n.output].is_some() {
            return Err(graph_broken(n.name.clone(), format!("redefines value v{}", n.output)));
        }
        for &v in &n.inputs {
            if v >= values.len() {
                return Err(graph_broken(
                    n.name.clone(),
                    format!("reads value v{v} outside the table (len {})", values.len()),
                ));
            }
            if defined_at[v].is_none() {
                return Err(graph_broken(
                    n.name.clone(),
                    format!("reads value v{v} before any node defines it"),
                ));
            }
        }
        match n.op {
            NodeOpSpec::Conv { layer, fused_add } => {
                if layer >= spec.layers.len() {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!("references layer {layer} outside the table"),
                    ));
                }
                conv_layers.push(layer);
                match fused_add {
                    None if n.inputs.len() == 1 => {}
                    Some(r) if n.inputs.len() == 2 && n.inputs[1] == r => {}
                    _ => {
                        return Err(graph_broken(
                            n.name.clone(),
                            format!(
                                "conv operand list {:?} disagrees with fused_add {fused_add:?}",
                                n.inputs
                            ),
                        ));
                    }
                }
            }
            NodeOpSpec::Add => {
                if n.inputs.len() != 2 {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!("add has {} operands, expected 2", n.inputs.len()),
                    ));
                }
            }
            NodeOpSpec::Concat => {
                if n.inputs.len() < 2 {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!("concat has {} operands, expected >= 2", n.inputs.len()),
                    ));
                }
            }
        }
        defined_at[n.output] = Some(step);
    }
    // Every layer compiled must be executed exactly once, in node order —
    // the executor indexes reports and metrics by this correspondence.
    let expected: Vec<usize> = (0..spec.layers.len()).collect();
    if conv_layers != expected {
        return Err(graph_broken(
            "plan",
            format!("conv nodes reference layers {conv_layers:?}, expected {expected:?} in order"),
        ));
    }
    for (v, slot) in values.iter().enumerate() {
        if defined_at[v].is_none() {
            return Err(graph_broken(format!("v{v}"), "no node defines this value".into()));
        }
        let (n, c, h, w) = slot.dims;
        if slot.bytes != n * c * h * w {
            return Err(graph_broken(
                format!("v{v}"),
                format!("records {} bytes for dims {:?}", slot.bytes, slot.dims),
            ));
        }
    }
    // Recorded live ranges must cover what the dataflow proves: `def` is
    // exactly the defining step and `last_use` at least the last read (the
    // output value is held through the final step for the caller).
    let last_step = nodes.len() - 1;
    let output = nodes[last_step].output;
    for (v, slot) in values.iter().enumerate() {
        let def = defined_at[v].expect("checked above");
        let mut last = def;
        for (step, n) in nodes.iter().enumerate() {
            if n.inputs.contains(&v) {
                last = last.max(step);
            }
        }
        if v == output {
            last = last_step;
        }
        if slot.def != def {
            return Err(graph_broken(
                format!("v{v}"),
                format!("records def step {} but node {def} defines it", slot.def),
            ));
        }
        if slot.last_use < last {
            return Err(graph_broken(
                format!("v{v}"),
                format!("records last use {} but step {last} still reads it", slot.last_use),
            ));
        }
    }
    Ok(())
}

/// Dataflow pass over the DAG: operand shapes, bit widths and layouts at
/// every edge, with the recorded conversions anchored to the stored value
/// layouts (this is what proves an elided NCHW round-trip sound: the value
/// stays NHWC only if every consumer's kernel is NHWC-native).
fn check_graph_dataflow(spec: &PlanSpec) -> Result<(), PlanViolation> {
    let (nodes, values) = (&spec.nodes, &spec.values);
    let producer_name = |v: usize| -> String {
        if v == 0 {
            "input".into()
        } else {
            nodes
                .iter()
                .find(|n| n.output == v)
                .map(|n| n.name.clone())
                .expect("structure pass proved every value defined")
        }
    };
    for n in nodes {
        let out = &values[n.output];
        match n.op {
            NodeOpSpec::Conv { layer, fused_add } => {
                let l = &spec.layers[layer];
                let act = &values[n.inputs[0]];
                let expects = (l.shape.batch, l.shape.c_in, l.shape.h, l.shape.w);
                if act.dims != expects {
                    return Err(PlanViolation::ShapeBreak {
                        producer: producer_name(n.inputs[0]),
                        produces: act.dims,
                        consumer: l.name.clone(),
                        expects,
                    });
                }
                if act.bits != l.bits {
                    return Err(PlanViolation::RequantWidthBreak {
                        producer: producer_name(n.inputs[0]),
                        produced: act.bits,
                        consumer: l.name.clone(),
                        expects: l.bits,
                    });
                }
                let produces =
                    (l.shape.batch, l.shape.c_out, l.shape.out_h(), l.shape.out_w());
                if out.dims != produces {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!("produces {produces:?} but value v{} records {:?}", n.output, out.dims),
                    ));
                }
                if out.bits != l.requant.bits {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!(
                            "requantizes into {} but value v{} records {}",
                            l.requant.bits, n.output, out.bits
                        ),
                    ));
                }
                if let Some(r) = fused_add {
                    let res = &values[r];
                    if res.dims != produces || res.bits != l.requant.bits {
                        return Err(graph_broken(
                            n.name.clone(),
                            format!(
                                "fused residual v{r} is {:?}@{} but the conv produces {:?}@{}",
                                res.dims, res.bits, produces, l.requant.bits
                            ),
                        ));
                    }
                }
                // Layout walk: stored layout -> (pre) -> kernel-native ->
                // (post) -> stored output layout.
                let mut current = act.layout;
                if let Some(c) = l.pre {
                    if c.from != current {
                        return Err(PlanViolation::DanglingConversion {
                            layer: l.name.clone(),
                            from: c.from,
                            current,
                        });
                    }
                    current = c.to;
                }
                let native = l.backend.native_layout();
                if current != native {
                    return Err(PlanViolation::LayoutMismatch {
                        layer: l.name.clone(),
                        site: "kernel input",
                        expected: native,
                        found: current,
                    });
                }
                current = native;
                if let Some(c) = l.post {
                    if c.from != current {
                        return Err(PlanViolation::DanglingConversion {
                            layer: l.name.clone(),
                            from: c.from,
                            current,
                        });
                    }
                    current = c.to;
                }
                if current != out.layout {
                    return Err(PlanViolation::LayoutMismatch {
                        layer: l.name.clone(),
                        site: "layer output",
                        expected: out.layout,
                        found: current,
                    });
                }
            }
            NodeOpSpec::Add => {
                let (a, b) = (&values[n.inputs[0]], &values[n.inputs[1]]);
                if a.dims != b.dims {
                    return Err(PlanViolation::ShapeBreak {
                        producer: producer_name(n.inputs[1]),
                        produces: b.dims,
                        consumer: n.name.clone(),
                        expects: a.dims,
                    });
                }
                if a.bits != b.bits || out.bits != a.bits || out.dims != a.dims {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!(
                            "add over v{}@{} and v{}@{} into v{}@{}",
                            n.inputs[0], a.bits, n.inputs[1], b.bits, n.output, out.bits
                        ),
                    ));
                }
            }
            NodeOpSpec::Concat => {
                let first = &values[n.inputs[0]];
                let mut c_total = 0;
                for &v in &n.inputs {
                    let t = &values[v];
                    if (t.dims.0, t.dims.2, t.dims.3) != (first.dims.0, first.dims.2, first.dims.3)
                    {
                        return Err(PlanViolation::ShapeBreak {
                            producer: producer_name(v),
                            produces: t.dims,
                            consumer: n.name.clone(),
                            expects: (first.dims.0, t.dims.1, first.dims.2, first.dims.3),
                        });
                    }
                    if t.bits != first.bits {
                        return Err(graph_broken(
                            n.name.clone(),
                            format!("concat operands v{} and v{} disagree on bit width", n.inputs[0], v),
                        ));
                    }
                    c_total += t.dims.1;
                }
                let expects = (first.dims.0, c_total, first.dims.2, first.dims.3);
                if out.dims != expects || out.bits != first.bits {
                    return Err(graph_broken(
                        n.name.clone(),
                        format!("concat produces {expects:?} but value v{} records {:?}", n.output, out.dims),
                    ));
                }
            }
        }
        // Joins and the plan boundary consume canonical NCHW.
        if !matches!(n.op, NodeOpSpec::Conv { .. }) {
            for &v in &n.inputs {
                if values[v].layout != Layout::Nchw {
                    return Err(PlanViolation::LayoutMismatch {
                        layer: n.name.clone(),
                        site: "join operand",
                        expected: Layout::Nchw,
                        found: values[v].layout,
                    });
                }
            }
            if out.layout != Layout::Nchw {
                return Err(PlanViolation::LayoutMismatch {
                    layer: n.name.clone(),
                    site: "layer output",
                    expected: Layout::Nchw,
                    found: out.layout,
                });
            }
        }
    }
    let output = nodes.last().expect("non-empty").output;
    if values[output].layout != Layout::Nchw {
        return Err(PlanViolation::LayoutMismatch {
            layer: producer_name(output),
            site: "plan output",
            expected: Layout::Nchw,
            found: values[output].layout,
        });
    }
    Ok(())
}

/// Numeric pass over the DAG: per-value intervals pushed through every
/// node. Convolutions reuse the chain pass's per-layer machinery; a fused
/// residual add widens the epilogue interval by the residual's before
/// re-clamping into the output width — exactly the executor's arithmetic.
fn check_graph_numerics(spec: &PlanSpec) -> Result<Vec<LayerRangeProof>, PlanViolation> {
    let values = &spec.values;
    let mut intervals: Vec<Option<Interval>> = vec![None; values.len()];
    intervals[0] = Some(operand_interval(values[0].bits));
    let mut proofs: Vec<Option<LayerRangeProof>> = vec![None; spec.layers.len()];
    for n in &spec.nodes {
        let out = match n.op {
            NodeOpSpec::Conv { layer, fused_add } => {
                let l = &spec.layers[layer];
                let act = intervals[n.inputs[0]].expect("structure pass proved def-before-use");
                let (proof, out) = check_layer_numerics(l, act)?;
                proofs[layer] = Some(proof);
                match fused_add {
                    Some(r) => {
                        let res = intervals[r].expect("structure pass proved def-before-use");
                        let (qmin, qmax) =
                            (l.requant.bits.qmin() as i64, l.requant.bits.qmax() as i64);
                        Interval::new(
                            (out.lo + res.lo).clamp(qmin, qmax),
                            (out.hi + res.hi).clamp(qmin, qmax),
                        )
                    }
                    None => out,
                }
            }
            NodeOpSpec::Add => {
                let a = intervals[n.inputs[0]].expect("def-before-use");
                let b = intervals[n.inputs[1]].expect("def-before-use");
                let bits = values[n.output].bits;
                let (qmin, qmax) = (bits.qmin() as i64, bits.qmax() as i64);
                Interval::new((a.lo + b.lo).clamp(qmin, qmax), (a.hi + b.hi).clamp(qmin, qmax))
            }
            NodeOpSpec::Concat => {
                let mut u = intervals[n.inputs[0]].expect("def-before-use");
                for &v in &n.inputs[1..] {
                    let t = intervals[v].expect("def-before-use");
                    u = Interval::new(u.lo.min(t.lo), u.hi.max(t.hi));
                }
                u
            }
        };
        intervals[n.output] = Some(out);
    }
    Ok(proofs
        .into_iter()
        .map(|p| p.expect("structure pass proved every layer has a conv node"))
        .collect())
}

/// Activation-arena pass: every pair of simultaneously-live values must
/// occupy disjoint byte spans, and the declared high-water must dominate
/// `max(offset + bytes)`. Together with the structure pass's live-range
/// proof this makes the declared figure a true upper bound: at any step the
/// live values are pairwise disjoint within `[0, declared)`, so their byte
/// sum — what the executor meters at run time — cannot exceed it.
fn check_activation_arena(spec: &PlanSpec) -> Result<usize, PlanViolation> {
    let values = &spec.values;
    let mut required = 0;
    for (a, va) in values.iter().enumerate() {
        required = required.max(va.offset + va.bytes);
        for (b, vb) in values.iter().enumerate().skip(a + 1) {
            let live_together = va.def <= vb.last_use && vb.def <= va.last_use;
            if !live_together || va.bytes == 0 || vb.bytes == 0 {
                continue;
            }
            let disjoint =
                va.offset + va.bytes <= vb.offset || vb.offset + vb.bytes <= va.offset;
            if !disjoint {
                return Err(PlanViolation::ActivationOverlap {
                    a,
                    a_span: (va.offset, va.offset + va.bytes),
                    b,
                    b_span: (vb.offset, vb.offset + vb.bytes),
                });
            }
        }
    }
    if spec.declared_activation_high_water_bytes < required {
        return Err(PlanViolation::ActivationHighWaterUnderstated {
            declared: spec.declared_activation_high_water_bytes,
            required,
        });
    }
    Ok(required)
}

/// The DAG-shaped passes.
fn verify_graph_plan(spec: &PlanSpec) -> Result<PlanProof, PlanViolation> {
    check_graph_structure(spec)?;
    check_graph_dataflow(spec)?;
    let proofs = check_graph_numerics(spec)?;
    let certified = check_workspace(spec)?;
    let certified_activation = check_activation_arena(spec)?;
    Ok(PlanProof {
        layers: proofs,
        certified_high_water: certified,
        declared_high_water: spec.declared_high_water_bytes,
        certified_activation_high_water: certified_activation,
        declared_activation_high_water: spec.declared_activation_high_water_bytes,
    })
}

/// Verifies a lowered plan spec: shape and layout dataflow, numeric range
/// propagation through every layer, and workspace certification. A spec
/// with a node table additionally gets the graph passes — structural
/// well-formedness, per-edge dataflow, and the activation-arena
/// disjointness proof behind `declared_activation_high_water_bytes`.
/// Returns the proof certificate, or the first typed counterexample.
pub fn verify_plan(spec: &PlanSpec) -> Result<PlanProof, PlanViolation> {
    if spec.nodes.is_empty() {
        verify_chain_plan(spec)
    } else {
        verify_graph_plan(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_conv_arm::workspace::{
        gemm_conv_narrow_prepacked_ws, gemm_conv_prepacked_ws, gemm_conv_sdot_prepacked_ws,
        ConvWorkspace,
    };
    use lowbit_qgemm::narrow::pack_a_narrow;
    use lowbit_qgemm::parallel::ParallelConfig;
    use lowbit_qgemm::sdot::pack_a_quads;
    use lowbit_qgemm::{pack_a, Scheme};
    use lowbit_tensor::{Layout, QTensor};

    /// A hand-built two-layer spec small enough to reason about exactly.
    fn toy_spec() -> PlanSpec {
        let s1 = ConvShape::new(1, 3, 8, 8, 4, 3, 1, 1);
        let s2 = ConvShape::new(1, 4, 8, 8, 2, 3, 2, 1);
        let mk = |name: &str, shape: ConvShape, relu: bool| LayerSpec {
            name: name.into(),
            shape,
            bits: BitWidth::W4,
            backend: BackendSpec::Arm(ArmAlgoKind::GemmWide),
            pre: None,
            post: None,
            declared_workspace_bytes: arm_workspace_requirement(&shape, ArmAlgoKind::GemmWide)
                .total(),
            channel_sums: vec![ChannelSums { neg: -40, pos: 44 }; shape.c_out],
            bias: None,
            requant: RequantSpec { bits: BitWidth::W4, multiplier: 0.01, clamp_min: -8 },
            relu,
        };
        let layers = vec![mk("l1", s1, true), mk("l2", s2, false)];
        let hw = arena_high_water(&layers);
        PlanSpec {
            layers,
            nodes: vec![],
            values: vec![],
            declared_high_water_bytes: hw,
            declared_activation_high_water_bytes: 0,
        }
    }

    /// The toy chain lifted into an explicit DAG with a residual add fused
    /// into the second conv: input v0 feeds l1 -> v1, l1's output feeds
    /// l2 whose epilogue adds v1 back in -> v2. Arena: v0 and v2 share
    /// offset 0 (their live ranges are disjoint), v1 sits after v0.
    fn toy_graph_spec() -> PlanSpec {
        let shape = ConvShape::new(1, 4, 8, 8, 4, 3, 1, 1);
        let mk = |name: &str, relu: bool| LayerSpec {
            name: name.into(),
            shape,
            bits: BitWidth::W4,
            backend: BackendSpec::Arm(ArmAlgoKind::GemmWide),
            pre: None,
            post: None,
            declared_workspace_bytes: arm_workspace_requirement(&shape, ArmAlgoKind::GemmWide)
                .total(),
            channel_sums: vec![ChannelSums { neg: -40, pos: 44 }; shape.c_out],
            bias: None,
            requant: RequantSpec { bits: BitWidth::W4, multiplier: 0.01, clamp_min: -8 },
            relu,
        };
        let layers = vec![mk("l1", true), mk("l2", false)];
        let hw = arena_high_water(&layers);
        let bytes = 4 * 8 * 8;
        let slot = |layout, def, last_use, offset| ValueSlot {
            dims: (1, 4, 8, 8),
            bits: BitWidth::W4,
            layout,
            bytes,
            def,
            last_use,
            offset,
        };
        PlanSpec {
            layers,
            nodes: vec![
                NodeSpec {
                    name: "l1".into(),
                    op: NodeOpSpec::Conv { layer: 0, fused_add: None },
                    inputs: vec![0],
                    output: 1,
                },
                NodeSpec {
                    name: "l2".into(),
                    op: NodeOpSpec::Conv { layer: 1, fused_add: Some(1) },
                    inputs: vec![1, 1],
                    output: 2,
                },
            ],
            values: vec![
                slot(Layout::Nchw, 0, 0, 0),
                slot(Layout::Nchw, 0, 1, bytes),
                slot(Layout::Nchw, 1, 1, 0),
            ],
            declared_high_water_bytes: hw,
            declared_activation_high_water_bytes: 2 * bytes,
        }
    }

    #[test]
    fn toy_spec_proves_and_reports() {
        let spec = toy_spec();
        let proof = verify_plan(&spec).unwrap();
        assert_eq!(proof.layers.len(), 2);
        // Layer 1 sees the full W4 operand range; its ReLU clamps the output
        // to [0, 7], which is what layer 2 must see.
        assert_eq!(proof.layers[0].input, Interval::new(-8, 7));
        assert!(proof.layers[0].output.lo >= 0);
        assert_eq!(proof.layers[1].input, proof.layers[0].output);
        assert!(proof.tightest_headroom() > 0.99, "toy accumulators are tiny");
        let report = proof.report();
        assert!(report.contains("l1"));
        assert!(report.contains("arena high-water"));
        let json = proof.to_json();
        assert!(json.contains("\"certified_high_water\""));
    }

    #[test]
    fn shape_break_is_caught() {
        let mut spec = toy_spec();
        spec.layers[1].shape.c_in = 5;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::ShapeBreak { .. })
        ));
    }

    #[test]
    fn layout_witnesses_fire() {
        // A GPU layer with no recorded pre-conversion: NCHW hits an
        // NHWC-native kernel.
        let mut spec = toy_spec();
        spec.layers[0].backend = BackendSpec::Gpu;
        spec.layers[0].declared_workspace_bytes = 0;
        spec.layers[0].post = Some(LayoutConversion { from: Layout::Nhwc, to: Layout::Nchw });
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::LayoutMismatch { site: "kernel input", .. })
        ));
        // Recorded properly, it proves.
        spec.layers[0].pre = Some(LayoutConversion { from: Layout::Nchw, to: Layout::Nhwc });
        assert!(verify_plan(&spec).is_ok());
        // Dropping the post-conversion leaves NHWC at the plan boundary.
        spec.layers[0].post = None;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::LayoutMismatch { site: "layer output", .. })
        ));
        // A conversion anchored to the wrong source layout dangles.
        let mut spec = toy_spec();
        spec.layers[1].pre = Some(LayoutConversion { from: Layout::Nhwc, to: Layout::Nchw });
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::DanglingConversion { .. })
        ));
    }

    #[test]
    fn acc_overflow_and_operand_range_witnesses_fire() {
        let mut spec = toy_spec();
        spec.layers[0].channel_sums[1] = ChannelSums { neg: 0, pos: i32::MAX as i64 };
        match verify_plan(&spec) {
            Err(PlanViolation::AccOverflow { layer, channel, .. }) => {
                assert_eq!((layer.as_str(), channel), ("l1", 1));
            }
            other => panic!("expected AccOverflow, got {other:?}"),
        }
        // A plan claiming Winograd at 7 bit: the 4x input-transform
        // inflation escapes i8 (the paper's 4-6 bit restriction, re-proven
        // against the live interval).
        let mut spec = toy_spec();
        spec.layers[0].bits = BitWidth::W7;
        spec.layers[0].requant.bits = BitWidth::W7;
        spec.layers[1].bits = BitWidth::W7;
        spec.layers[1].requant.bits = BitWidth::W7;
        spec.layers[0].backend = BackendSpec::Arm(ArmAlgoKind::Winograd);
        spec.layers[0].declared_workspace_bytes = 0;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::OperandRangeBreak { .. })
        ));
    }

    #[test]
    fn epilogue_witnesses_fire() {
        let mut spec = toy_spec();
        spec.layers[0].requant.bits = BitWidth::W6;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::RequantWidthBreak { .. })
        ));
        let mut spec = toy_spec();
        spec.layers[1].requant.clamp_min = -100;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::ClampRangeBreak { clamp_min: -100, .. })
        ));
        let mut spec = toy_spec();
        spec.layers[0].bias = Some(vec![1; 3]);
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::EpilogueBiasBreak { expects: 4, got: 3, .. })
        ));
    }

    #[test]
    fn workspace_witnesses_fire() {
        let mut spec = toy_spec();
        spec.layers[0].declared_workspace_bytes /= 2;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::WorkspaceUnderstated { layer, .. }) if layer == "l1"
        ));
        let mut spec = toy_spec();
        spec.declared_high_water_bytes -= 1;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::HighWaterUnderstated { .. })
        ));
    }

    #[test]
    fn toy_graph_spec_proves_with_activation_certificate() {
        let spec = toy_graph_spec();
        let proof = verify_plan(&spec).unwrap();
        assert_eq!(proof.layers.len(), 2);
        assert_eq!(proof.certified_activation_high_water, 2 * 4 * 8 * 8);
        assert!(proof.certified_activation_high_water <= proof.declared_activation_high_water);
        // The fused residual widens l2's output interval but stays clamped
        // inside the W4 range.
        let report = proof.report();
        assert!(report.contains("activation high-water"));
        assert!(proof.to_json().contains("\"certified_activation_high_water\""));
    }

    #[test]
    fn graph_structure_witnesses_fire() {
        // A conv reading a value no node has defined yet.
        let mut spec = toy_graph_spec();
        spec.nodes[0].inputs = vec![2];
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::GraphStructureBroken { .. })
        ));
        // A value table understating a live range the dataflow still needs.
        let mut spec = toy_graph_spec();
        spec.values[1].last_use = 0;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::GraphStructureBroken { .. })
        ));
        // A value whose byte size disagrees with its dims.
        let mut spec = toy_graph_spec();
        spec.values[1].bytes -= 1;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::GraphStructureBroken { .. })
        ));
    }

    #[test]
    fn activation_witnesses_fire() {
        // Placing v1 on top of the still-live input overlaps two
        // simultaneously-live values.
        let mut spec = toy_graph_spec();
        spec.values[1].offset = 0;
        spec.values[1].last_use = 1;
        match verify_plan(&spec) {
            Err(PlanViolation::ActivationOverlap { a, b, .. }) => assert_eq!((a, b), (0, 1)),
            other => panic!("expected ActivationOverlap, got {other:?}"),
        }
        // Understating the declared activation high-water is caught even
        // with sound placements.
        let mut spec = toy_graph_spec();
        spec.declared_activation_high_water_bytes -= 1;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::ActivationHighWaterUnderstated { .. })
        ));
    }

    #[test]
    fn graph_dataflow_witnesses_fire() {
        // A value recorded NHWC that no conversion ever produces: the
        // ARM producer writes NCHW, so the recorded store layout dangles
        // (an unsound elision is caught at whichever edge breaks first).
        let mut spec = toy_graph_spec();
        spec.values[1].layout = Layout::Nhwc;
        spec.values[1].offset = 2 * 4 * 8 * 8;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::LayoutMismatch { site: "layer output", .. })
        ));
        // A producer re-quantizing into a width the consuming conv's
        // proofs never assumed (value table kept consistent so the edge
        // check, not the table check, is what fires).
        let mut spec = toy_graph_spec();
        spec.layers[0].requant.bits = BitWidth::W6;
        spec.values[1].bits = BitWidth::W6;
        assert!(matches!(
            verify_plan(&spec),
            Err(PlanViolation::RequantWidthBreak { .. })
        ));
    }

    #[test]
    fn every_violation_displays_non_empty() {
        let samples = [
            PlanViolation::ShapeBreak {
                producer: "a".into(),
                produces: (1, 2, 3, 4),
                consumer: "b".into(),
                expects: (1, 5, 3, 4),
            },
            PlanViolation::LayoutMismatch {
                layer: "a".into(),
                site: "kernel input",
                expected: Layout::Nhwc,
                found: Layout::Nchw,
            },
            PlanViolation::DanglingConversion {
                layer: "a".into(),
                from: Layout::Nhwc,
                current: Layout::Nchw,
            },
            PlanViolation::AccOverflow {
                layer: "a".into(),
                channel: 0,
                acc: Interval::new(0, i64::MAX / 2),
            },
            PlanViolation::OperandRangeBreak {
                layer: "a".into(),
                interval: Interval::new(-9, 9),
                bound: 8,
                context: "test".into(),
            },
            PlanViolation::RequantWidthBreak {
                producer: "a".into(),
                produced: BitWidth::W4,
                consumer: "b".into(),
                expects: BitWidth::W6,
            },
            PlanViolation::ClampRangeBreak { layer: "a".into(), clamp_min: -100, qmin: -8, qmax: 7 },
            PlanViolation::EpilogueBiasBreak { layer: "a".into(), expects: 4, got: 3 },
            PlanViolation::ChannelSumsBreak { layer: "a".into(), expects: 4, got: 3 },
            PlanViolation::WorkspaceUnderstated { layer: "a".into(), declared: 1, required: 2 },
            PlanViolation::HighWaterUnderstated { declared: 1, required: 2 },
            PlanViolation::FingerprintBlind { field: "requant.clamp_min".into() },
            PlanViolation::GraphStructureBroken {
                node: "add".into(),
                detail: "reads value v9 outside the table (len 4)".into(),
            },
            PlanViolation::ActivationOverlap {
                a: 0,
                a_span: (0, 256),
                b: 2,
                b_span: (128, 384),
            },
            PlanViolation::ActivationHighWaterUnderstated { declared: 1, required: 2 },
        ];
        for v in samples {
            assert!(!v.to_string().is_empty(), "{v:?}");
        }
    }

    /// The certified arena bound must dominate what the real kernels
    /// allocate, at every thread count, for every GEMM-family path — and be
    /// exact for the single-layer case (no slack hiding in the formula).
    #[test]
    fn certified_workspace_dominates_real_arena_growth() {
        let shapes = [
            ConvShape::new(1, 5, 9, 7, 11, 3, 2, 1),
            ConvShape::new(2, 4, 10, 10, 8, 3, 1, 1),
            ConvShape::new(1, 8, 5, 5, 16, 1, 1, 0),
        ];
        let bits = BitWidth::W8;
        let scheme = Scheme::for_bits(bits);
        for shape in &shapes {
            let input = QTensor::random(
                (shape.batch, shape.c_in, shape.h, shape.w),
                Layout::Nchw,
                bits,
                3,
            );
            let weights = QTensor::random(
                (shape.c_out, shape.c_in, shape.kh, shape.kw),
                Layout::Nchw,
                bits,
                4,
            );
            let (m, k) = (shape.gemm_m(), shape.gemm_k());
            for threads in [1, 2, 4, 16] {
                let cfg = ParallelConfig::with_threads(threads);
                let mut ws = ConvWorkspace::new();
                let pa = pack_a(weights.data(), m, k);
                gemm_conv_prepacked_ws(&input, &pa, &scheme, shape, &cfg, &mut ws);
                let bound = arm_workspace_requirement(shape, ArmAlgoKind::GemmWide).total();
                assert!(
                    ws.footprint_bytes() <= bound,
                    "wide {shape} x{threads}: {} > {bound}",
                    ws.footprint_bytes()
                );
                let mut ws = ConvWorkspace::new();
                let pan = pack_a_narrow(weights.data(), m, k);
                gemm_conv_narrow_prepacked_ws(&input, &pan, &scheme, shape, &cfg, &mut ws);
                let bound = arm_workspace_requirement(shape, ArmAlgoKind::GemmNarrow).total();
                assert!(ws.footprint_bytes() <= bound, "narrow {shape} x{threads}");
            }
            let mut ws = ConvWorkspace::new();
            let paq = pack_a_quads(weights.data(), m, k);
            gemm_conv_sdot_prepacked_ws(&input, &paq, shape, &mut ws);
            let bound = arm_workspace_requirement(shape, ArmAlgoKind::GemmSdot).total();
            assert!(ws.footprint_bytes() <= bound, "sdot {shape}");
        }
    }

    #[test]
    fn high_water_is_component_wise_not_total_max() {
        // One im2col-heavy layer + one result-heavy layer: the arena keeps
        // the max of each buffer, so the certified bound exceeds either
        // layer's own total.
        let a = ConvShape::new(1, 32, 16, 16, 4, 3, 1, 1); // big K -> big col
        let b = ConvShape::new(1, 4, 16, 16, 64, 1, 1, 0); // big M -> big c_cm
        let mk = |name: &str, shape: ConvShape| LayerSpec {
            name: name.into(),
            shape,
            bits: BitWidth::W4,
            backend: BackendSpec::Arm(ArmAlgoKind::GemmWide),
            pre: None,
            post: None,
            declared_workspace_bytes: usize::MAX,
            channel_sums: vec![ChannelSums { neg: -1, pos: 1 }; shape.c_out],
            bias: None,
            requant: RequantSpec { bits: BitWidth::W4, multiplier: 0.01, clamp_min: -8 },
            relu: false,
        };
        let layers = vec![mk("a", a), mk("b", b)];
        let hw = arena_high_water(&layers);
        let ta = layer_workspace_requirement(&layers[0]).total();
        let tb = layer_workspace_requirement(&layers[1]).total();
        assert!(hw > ta.max(tb), "{hw} vs {ta}/{tb}");
        assert!(hw <= ta + tb);
    }
}
