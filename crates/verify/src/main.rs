//! `lowbit-verify`: sweep the standard kernel catalog and the parallel
//! partition geometry, printing one line per proof. Exits non-zero if any
//! stream fails — CI runs this on every push.
//!
//! * no flags — the ARM sweep: abstract interpretation of every emitted
//!   NEON stream plus the parallel-GEMM partition geometry.
//! * `--gpu` — the GPU sweep: prove every tile configuration the tuner can
//!   emit, at both Tensor Core precisions, over the demo and ResNet-50
//!   shapes (tiling geometry, bank conflicts + negative witness, staging
//!   hazards, launch resources).
//! * `--gpu --check <golden>` — regenerate the demo-network proof report
//!   and diff it against the golden file (CI's drift gate). With
//!   `--report`, print the report instead (for regenerating the golden).

use lowbit_verify::gpu::{gpu_demo_report, gpu_sweep_layers, precision_label};
use lowbit_verify::{standard_cases, verify_case, verify_gpu_plan};

use lowbit_conv_gpu::{search_space_stats, ConvGpuPlan};
use turing_sim::{Device, Precision};

fn arm_sweep() -> usize {
    let cases = standard_cases();
    let mut failures = 0usize;
    println!("{:<34} {:>6} {:>6} {:>6} {:>9} {:>9}", "stream", "insts", "macs", "drains", "peak i16", "headroom");
    for case in &cases {
        match verify_case(case) {
            Ok(proof) => {
                println!(
                    "{:<34} {:>6} {:>6} {:>6} {:>9} {:>8.1}%",
                    proof.name,
                    proof.insts,
                    proof.macs,
                    proof.drains,
                    proof.peak_i16,
                    proof.tightest_headroom() * 100.0
                );
            }
            Err(v) => {
                failures += 1;
                println!("{:<34} FAIL: {v}", case.stream.name);
            }
        }
    }

    // Partition geometry: prove the per-thread column spans partition the
    // output for a sweep of shapes and thread counts.
    let mut geo = 0usize;
    for n in 1..=256 {
        for threads in 1..=32 {
            if let Err(v) = lowbit_verify::check_partition(n, threads) {
                eprintln!("partition n={n} threads={threads}: {v}");
                failures += 1;
            }
            geo += 1;
        }
    }

    println!();
    println!(
        "{} streams, {} partitions checked, {} failure(s)",
        cases.len(),
        geo,
        failures
    );
    failures
}

fn gpu_sweep() -> usize {
    let device = Device::rtx2080ti();
    let layers = gpu_sweep_layers();
    let mut failures = 0usize;
    let mut proofs = 0usize;
    for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
        let (space, stats) = search_space_stats(precision);
        println!("{} search space: {stats}", precision_label(precision));
        for layer in &layers {
            let mut worst_witness = u64::MAX;
            let mut layer_failures = 0usize;
            for cfg in &space {
                let plan = match ConvGpuPlan::try_new(layer.shape, *cfg, precision) {
                    Ok(p) => p,
                    Err(r) => {
                        eprintln!(
                            "{} {} {cfg:?}: space emitted an invalid config: {r}",
                            layer.name,
                            precision_label(precision)
                        );
                        layer_failures += 1;
                        continue;
                    }
                };
                match verify_gpu_plan(&plan, &device) {
                    Ok(proof) => {
                        proofs += 1;
                        worst_witness = worst_witness.min(proof.witness_degree);
                    }
                    Err(v) => {
                        eprintln!(
                            "{} {} {cfg:?}: {v}",
                            layer.name,
                            precision_label(precision)
                        );
                        layer_failures += 1;
                    }
                }
            }
            let (m, n, k) = {
                let s = &layer.shape;
                (s.gemm_n(), s.gemm_m(), s.gemm_k())
            };
            println!(
                "  {:<7} gemm {:>5}x{:>4}x{:>5} {}: {} configs proven, witness >= x{}, {} failure(s)",
                layer.name,
                m,
                n,
                k,
                precision_label(precision),
                space.len() - layer_failures,
                worst_witness,
                layer_failures
            );
            failures += layer_failures;
        }
    }
    println!();
    println!(
        "{} GPU plans proven over {} shapes x 2 precisions, {} failure(s)",
        proofs,
        layers.len(),
        failures
    );
    failures
}

fn gpu_check(golden_path: &str) -> usize {
    let report = match gpu_demo_report(&Device::rtx2080ti()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("demo report failed to prove: {e}");
            return 1;
        }
    };
    let golden = match std::fs::read_to_string(golden_path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("cannot read golden file {golden_path}: {e}");
            return 1;
        }
    };
    if report == golden {
        println!(
            "GPU verifier report matches {golden_path} ({} lines)",
            report.lines().count()
        );
        return 0;
    }
    eprintln!("GPU verifier report drifted from {golden_path}:");
    for (i, (got, want)) in report.lines().zip(golden.lines()).enumerate() {
        if got != want {
            eprintln!("  line {}:", i + 1);
            eprintln!("    golden: {want}");
            eprintln!("    got:    {got}");
        }
    }
    let (got_n, want_n) = (report.lines().count(), golden.lines().count());
    if got_n != want_n {
        eprintln!("  line counts differ: golden {want_n}, got {got_n}");
    }
    eprintln!("regenerate with: lowbit-verify --gpu --report > {golden_path}");
    1
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let failures = if has("--gpu") {
        if let Some(i) = args.iter().position(|a| a == "--check") {
            match args.get(i + 1) {
                Some(path) => gpu_check(path),
                None => {
                    eprintln!("--check requires a golden file path");
                    1
                }
            }
        } else if has("--report") {
            match gpu_demo_report(&Device::rtx2080ti()) {
                Ok(r) => {
                    print!("{r}");
                    0
                }
                Err(e) => {
                    eprintln!("demo report failed to prove: {e}");
                    1
                }
            }
        } else {
            gpu_sweep()
        }
    } else {
        arm_sweep()
    };
    if failures > 0 {
        std::process::exit(1);
    }
}
