//! `lowbit-verify`: sweep the standard kernel catalog and the parallel
//! partition geometry, printing one line per proof. Exits non-zero if any
//! stream fails — CI runs this on every push.

use lowbit_verify::{standard_cases, verify_case};

fn main() {
    let cases = standard_cases();
    let mut failures = 0usize;
    println!("{:<34} {:>6} {:>6} {:>6} {:>9} {:>9}", "stream", "insts", "macs", "drains", "peak i16", "headroom");
    for case in &cases {
        match verify_case(case) {
            Ok(proof) => {
                println!(
                    "{:<34} {:>6} {:>6} {:>6} {:>9} {:>8.1}%",
                    proof.name,
                    proof.insts,
                    proof.macs,
                    proof.drains,
                    proof.peak_i16,
                    proof.tightest_headroom() * 100.0
                );
            }
            Err(v) => {
                failures += 1;
                println!("{:<34} FAIL: {v}", case.stream.name);
            }
        }
    }

    // Partition geometry: prove the per-thread column spans partition the
    // output for a sweep of shapes and thread counts.
    let mut geo = 0usize;
    for n in 1..=256 {
        for threads in 1..=32 {
            if let Err(v) = lowbit_verify::check_partition(n, threads) {
                eprintln!("partition n={n} threads={threads}: {v}");
                failures += 1;
            }
            geo += 1;
        }
    }

    println!();
    println!(
        "{} streams, {} partitions checked, {} failure(s)",
        cases.len(),
        geo,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
