//! Abstract interpretation of kernel streams over the interval domain.
//!
//! The analyzer executes a [`KernelStream`] symbolically: every 128-bit
//! register is modeled as two 8-byte *slots*, each either undefined, known
//! zero, or a vector of per-lane intervals at one element width. Loads draw
//! their lane values from the operand bounds attached to the stream's
//! declared regions; every multiply-accumulate, widen-add and store is then
//! checked against the signed range of its intermediate width.
//!
//! Passing means: **no reachable operand values can wrap any i8/i16
//! intermediate before its drain, every `SADDW` chain lands in i32 without
//! wrap, and every store writes a fully-defined i32 result inside the
//! declared output span.** The analysis is sound for straight-line streams
//! (which all the emitters produce) because the transfer functions
//! over-approximate the interpreter in `neon_sim::machine` lane by lane.
//!
//! The slot model doubles as a width checker: reading a register at a width
//! other than the one its live lanes were produced at is reported as
//! [`Violation::WidthConfusion`] — in these kernels that only happens when
//! register allocation is broken (e.g. an i16 partial consumed as an i8
//! operand), so it is a register-discipline check as well as a type check.

use crate::interval::Interval;
use crate::report::{StreamProof, Violation};
use lowbit_qgemm::stream::{KernelStream, OperandRegion};
use neon_sim::inst::{Half, Inst};
use neon_sim::meta::ElemWidth;

/// Operand value ranges for one verification run: every lane loaded from the
/// A (resp. B) region is assumed to lie in `a` (resp. `b`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OperandBounds {
    /// Value range of packed-A elements.
    pub a: Interval,
    /// Value range of packed-B elements.
    pub b: Interval,
}

/// One 8-byte half of a vector register (or one general register).
#[derive(Clone, PartialEq, Debug)]
enum Slot {
    /// Never written.
    Undef,
    /// Known all-zero (any width reads as zero lanes).
    Zero,
    /// Live lanes at one element width; `ivs.len() == 8 / width.bytes()`.
    Lanes { width: ElemWidth, ivs: Vec<Interval> },
}

impl Slot {
    fn lanes(width: ElemWidth, ivs: Vec<Interval>) -> Slot {
        debug_assert_eq!(ivs.len(), 8 / width.bytes());
        if ivs.iter().all(|iv| iv.is_zero()) {
            Slot::Zero
        } else {
            Slot::Lanes { width, ivs }
        }
    }
}

struct Analyzer<'s> {
    stream: &'s KernelStream,
    bounds: OperandBounds,
    v: Vec<[Slot; 2]>,
    x: Vec<Slot>,
    macs: usize,
    drains: usize,
    peak: [i64; 3], // indexed by width_slot(): B, H, S
}

fn width_slot(w: ElemWidth) -> usize {
    match w {
        ElemWidth::B => 0,
        ElemWidth::H => 1,
        _ => 2,
    }
}

fn half_slot(half: Half) -> usize {
    match half {
        Half::Low => 0,
        Half::High => 1,
    }
}

/// Verifies one stream against operand bounds, returning the proof
/// certificate or the first violation found (streams are straight-line, so
/// the first violation is the earliest dynamic hazard).
pub fn check_stream(
    stream: &KernelStream,
    bounds: &OperandBounds,
) -> Result<StreamProof, Violation> {
    for (name, region, iv) in [
        ("A", &stream.a, bounds.a),
        ("B", &stream.b, bounds.b),
    ] {
        if !iv.fits(region.elem) {
            return Err(Violation::BadSpec {
                reason: format!(
                    "operand {name} bound {iv} does not fit its {} region",
                    region.elem
                ),
            });
        }
    }
    let mut an = Analyzer {
        stream,
        bounds: *bounds,
        v: (0..32).map(|_| [Slot::Undef, Slot::Undef]).collect(),
        x: (0..31).map(|_| Slot::Undef).collect(),
        macs: 0,
        drains: 0,
        peak: [0; 3],
    };
    for (index, inst) in stream.prog.iter().enumerate() {
        an.step(index, inst)?;
    }
    Ok(StreamProof {
        name: stream.name.clone(),
        insts: stream.prog.len(),
        macs: an.macs,
        drains: an.drains,
        peak_i8: an.peak[0],
        peak_i16: an.peak[1],
        peak_i32: an.peak[2],
    })
}

impl Analyzer<'_> {
    /// Reads one slot of `v{reg}` as `want`-width lanes.
    fn read_slot(
        &self,
        index: usize,
        inst: &Inst,
        reg: u8,
        slot: usize,
        want: ElemWidth,
    ) -> Result<Vec<Interval>, Violation> {
        let lanes = 8 / want.bytes();
        match &self.v[reg as usize][slot] {
            Slot::Undef => Err(Violation::UninitRead {
                index,
                inst: inst.to_string(),
                reg: format!("v{reg}"),
            }),
            Slot::Zero => Ok(vec![Interval::ZERO; lanes]),
            Slot::Lanes { width, ivs } if *width == want => Ok(ivs.clone()),
            Slot::Lanes { width, .. } => Err(Violation::WidthConfusion {
                index,
                inst: inst.to_string(),
                reg,
                expected: want,
                found: *width,
            }),
        }
    }

    /// Reads the full 128-bit `v{reg}` as `want`-width lanes.
    fn read_full(
        &self,
        index: usize,
        inst: &Inst,
        reg: u8,
        want: ElemWidth,
    ) -> Result<Vec<Interval>, Violation> {
        let mut lo = self.read_slot(index, inst, reg, 0, want)?;
        lo.extend(self.read_slot(index, inst, reg, 1, want)?);
        Ok(lo)
    }

    fn write_full(&mut self, reg: u8, width: ElemWidth, ivs: Vec<Interval>) {
        let half = ivs.len() / 2;
        let hi = ivs[half..].to_vec();
        let lo = ivs[..half].to_vec();
        self.v[reg as usize][0] = Slot::lanes(width, lo);
        self.v[reg as usize][1] = Slot::lanes(width, hi);
    }

    /// Range-checks `ivs` against `width`, records the peak occupancy and
    /// writes the full register.
    fn checked_write_full(
        &mut self,
        index: usize,
        inst: &Inst,
        reg: u8,
        width: ElemWidth,
        ivs: Vec<Interval>,
    ) -> Result<(), Violation> {
        for iv in &ivs {
            if !iv.fits(width) {
                return Err(Violation::SaturationOverflow {
                    index,
                    inst: inst.to_string(),
                    width,
                    value: *iv,
                });
            }
        }
        let ws = width_slot(width);
        let peak = ivs.iter().map(|iv| iv.abs_max()).max().unwrap_or(0);
        self.peak[ws] = self.peak[ws].max(peak);
        self.write_full(reg, width, ivs);
        Ok(())
    }

    /// Resolves a load/store address to its declared region.
    fn region_for_load(
        &self,
        index: usize,
        inst: &Inst,
        addr: u32,
        bytes: u32,
    ) -> Result<(&OperandRegion, Interval), Violation> {
        if self.stream.a.span.contains(addr, bytes) {
            Ok((&self.stream.a, self.bounds.a))
        } else if self.stream.b.span.contains(addr, bytes) {
            Ok((&self.stream.b, self.bounds.b))
        } else {
            Err(Violation::UnmappedAccess { index, inst: inst.to_string(), addr, bytes })
        }
    }

    fn step(&mut self, index: usize, inst: &Inst) -> Result<(), Violation> {
        match *inst {
            // ---- loads -------------------------------------------------
            Inst::Ld1 { vt, addr } => {
                let (region, iv) = self.region_for_load(index, inst, addr, 16)?;
                let elem = region.elem;
                self.write_full(vt, elem, vec![iv; 16 / elem.bytes()]);
            }
            Inst::Ld1B8 { vt, addr } => {
                let (region, iv) = self.region_for_load(index, inst, addr, 8)?;
                let elem = region.elem;
                self.v[vt as usize][0] = Slot::lanes(elem, vec![iv; 8 / elem.bytes()]);
                self.v[vt as usize][1] = Slot::Zero;
            }
            Inst::Ld4r { vt, addr } => {
                let (region, iv) = self.region_for_load(index, inst, addr, 4)?;
                if region.elem != ElemWidth::B {
                    return Err(Violation::RegionMismatch {
                        index,
                        inst: inst.to_string(),
                        region_elem: region.elem,
                    });
                }
                for i in 0..4 {
                    self.write_full(vt + i, ElemWidth::B, vec![iv; 16]);
                }
            }
            Inst::Ld4rH { vt, addr } => {
                let (region, iv) = self.region_for_load(index, inst, addr, 8)?;
                if region.elem != ElemWidth::H {
                    return Err(Violation::RegionMismatch {
                        index,
                        inst: inst.to_string(),
                        region_elem: region.elem,
                    });
                }
                for i in 0..4 {
                    self.write_full(vt + i, ElemWidth::H, vec![iv; 8]);
                }
            }
            Inst::Ld4rW { vt, addr } => {
                let (region, iv) = self.region_for_load(index, inst, addr, 16)?;
                // A word broadcast over a B region replicates packed byte
                // quads (the SDOT B layout): every destination byte is a
                // region element, so B-width lanes describe it exactly.
                let elem = match region.elem {
                    ElemWidth::B => ElemWidth::B,
                    ElemWidth::S => ElemWidth::S,
                    other => {
                        return Err(Violation::RegionMismatch {
                            index,
                            inst: inst.to_string(),
                            region_elem: other,
                        })
                    }
                };
                for i in 0..4 {
                    self.write_full(vt + i, elem, vec![iv; 16 / elem.bytes()]);
                }
            }
            // ---- store -------------------------------------------------
            Inst::St1 { vt, addr } => {
                if !self.stream.c.contains(addr, 16) {
                    return Err(Violation::StoreOutsideOutput {
                        index,
                        inst: inst.to_string(),
                        addr,
                    });
                }
                // The output region holds i32 results: the stored register
                // must be fully-defined i32 lanes (this is what "every SADDW
                // chain lands in i32" means at the boundary).
                let _ = self.read_full(index, inst, vt, ElemWidth::S)?;
            }
            // ---- multiply-accumulate family ----------------------------
            Inst::Smlal8 { vd, vn, vm, half } => {
                self.macs += 1;
                let s = half_slot(half);
                let a = self.read_slot(index, inst, vn, s, ElemWidth::B)?;
                let b = self.read_slot(index, inst, vm, s, ElemWidth::B)?;
                let acc = self.read_full(index, inst, vd, ElemWidth::H)?;
                let new: Vec<Interval> = (0..8).map(|i| acc[i] + a[i] * b[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::H, new)?;
            }
            Inst::Smull8 { vd, vn, vm, half } => {
                self.macs += 1;
                let s = half_slot(half);
                let a = self.read_slot(index, inst, vn, s, ElemWidth::B)?;
                let b = self.read_slot(index, inst, vm, s, ElemWidth::B)?;
                let new: Vec<Interval> = (0..8).map(|i| a[i] * b[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::H, new)?;
            }
            Inst::Smlal16 { vd, vn, vm, half } => {
                self.macs += 1;
                let s = half_slot(half);
                let a = self.read_slot(index, inst, vn, s, ElemWidth::H)?;
                let b = self.read_slot(index, inst, vm, s, ElemWidth::H)?;
                let acc = self.read_full(index, inst, vd, ElemWidth::S)?;
                let new: Vec<Interval> = (0..4).map(|i| acc[i] + a[i] * b[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::S, new)?;
            }
            Inst::Mla8 { vd, vn, vm } | Inst::Mul8 { vd, vn, vm } => {
                self.macs += 1;
                let accumulate = matches!(inst, Inst::Mla8 { .. });
                let a = self.read_full(index, inst, vn, ElemWidth::B)?;
                let b = self.read_full(index, inst, vm, ElemWidth::B)?;
                let mut new = Vec::with_capacity(16);
                for i in 0..16 {
                    let prod = a[i] * b[i];
                    // The i8 multiply itself wraps before the accumulate:
                    // report it distinctly from accumulator overflow.
                    if !prod.fits(ElemWidth::B) {
                        return Err(Violation::ProductOverflow {
                            index,
                            inst: inst.to_string(),
                            value: prod,
                        });
                    }
                    new.push(prod);
                }
                if accumulate {
                    let acc = self.read_full(index, inst, vd, ElemWidth::B)?;
                    for (nv, av) in new.iter_mut().zip(&acc) {
                        *nv = *nv + *av;
                    }
                }
                self.checked_write_full(index, inst, vd, ElemWidth::B, new)?;
            }
            Inst::Sdot { vd, vn, vm } => {
                self.macs += 1;
                let a = self.read_full(index, inst, vn, ElemWidth::B)?;
                let b = self.read_full(index, inst, vm, ElemWidth::B)?;
                let acc = self.read_full(index, inst, vd, ElemWidth::S)?;
                let new: Vec<Interval> = (0..4)
                    .map(|lane| {
                        let mut iv = acc[lane];
                        for j in 0..4 {
                            iv = iv + a[4 * lane + j] * b[4 * lane + j];
                        }
                        iv
                    })
                    .collect();
                self.checked_write_full(index, inst, vd, ElemWidth::S, new)?;
            }
            // ---- drains / widens ---------------------------------------
            Inst::Saddw8 { vd, vn, vm, half } => {
                self.drains += 1;
                let wide = self.read_full(index, inst, vn, ElemWidth::H)?;
                let narrow = self.read_slot(index, inst, vm, half_slot(half), ElemWidth::B)?;
                let new: Vec<Interval> = (0..8).map(|i| wide[i] + narrow[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::H, new)?;
            }
            Inst::Saddw16 { vd, vn, vm, half } => {
                self.drains += 1;
                let wide = self.read_full(index, inst, vn, ElemWidth::S)?;
                let narrow = self.read_slot(index, inst, vm, half_slot(half), ElemWidth::H)?;
                let new: Vec<Interval> = (0..4).map(|i| wide[i] + narrow[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::S, new)?;
            }
            Inst::Sshll8 { vd, vn, half } => {
                self.drains += 1;
                let narrow = self.read_slot(index, inst, vn, half_slot(half), ElemWidth::B)?;
                self.checked_write_full(index, inst, vd, ElemWidth::H, narrow)?;
            }
            // ---- ALU / transforms --------------------------------------
            Inst::Add16 { vd, vn, vm } | Inst::Sub16 { vd, vn, vm } => {
                let a = self.read_full(index, inst, vn, ElemWidth::H)?;
                let b = self.read_full(index, inst, vm, ElemWidth::H)?;
                let sub = matches!(inst, Inst::Sub16 { .. });
                let new: Vec<Interval> = (0..8)
                    .map(|i| if sub { a[i] - b[i] } else { a[i] + b[i] })
                    .collect();
                self.checked_write_full(index, inst, vd, ElemWidth::H, new)?;
            }
            Inst::Add32 { vd, vn, vm } => {
                let a = self.read_full(index, inst, vn, ElemWidth::S)?;
                let b = self.read_full(index, inst, vm, ElemWidth::S)?;
                let new: Vec<Interval> = (0..4).map(|i| a[i] + b[i]).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::S, new)?;
            }
            Inst::And { vd, vn, vm } => {
                let a = self.read_full(index, inst, vn, ElemWidth::B)?;
                let b = self.read_full(index, inst, vm, ElemWidth::B)?;
                let new: Vec<Interval> = (0..16).map(|i| a[i].bitand_i8(b[i])).collect();
                self.checked_write_full(index, inst, vd, ElemWidth::B, new)?;
            }
            Inst::Cnt { vd, vn } => {
                let _ = self.read_full(index, inst, vn, ElemWidth::B)?;
                let new = vec![Interval::new(0, 8); 16];
                self.checked_write_full(index, inst, vd, ElemWidth::B, new)?;
            }
            Inst::Uadalp { vd, vn } => {
                self.drains += 1;
                let bytes = self.read_full(index, inst, vn, ElemWidth::B)?;
                let acc = self.read_full(index, inst, vd, ElemWidth::H)?;
                let new: Vec<Interval> = (0..8)
                    .map(|i| {
                        acc[i]
                            + bytes[2 * i].as_unsigned_byte()
                            + bytes[2 * i + 1].as_unsigned_byte()
                    })
                    .collect();
                self.checked_write_full(index, inst, vd, ElemWidth::H, new)?;
            }
            // ---- moves -------------------------------------------------
            Inst::MoviZero { vd } => {
                self.v[vd as usize] = [Slot::Zero, Slot::Zero];
            }
            Inst::MovDToX { xd, vn, lane } => {
                let slot = &self.v[vn as usize][lane as usize];
                if matches!(slot, Slot::Undef) {
                    return Err(Violation::UninitRead {
                        index,
                        inst: inst.to_string(),
                        reg: format!("v{vn}"),
                    });
                }
                self.x[xd as usize] = slot.clone();
            }
            Inst::MovXToD { vd, lane, xn } => {
                let slot = &self.x[xn as usize];
                if matches!(slot, Slot::Undef) {
                    return Err(Violation::UninitRead {
                        index,
                        inst: inst.to_string(),
                        reg: format!("x{xn}"),
                    });
                }
                self.v[vd as usize][lane as usize] = slot.clone();
            }
        }
        Ok(())
    }
}
