//! The verification case catalog: every emitted kernel variant paired with
//! the operand value ranges it must be safe for.
//!
//! A [`VerifyCase`] is a [`KernelStream`] plus [`OperandBounds`]. The
//! standard catalog covers, for every bit width 2–8:
//!
//! * the wide 16x4 tile (Alg. 1) at K depths that exercise zero, exactly one
//!   and more-than-one drain boundary (`k ∈ {1, r, 2r+1}`);
//! * for the MLA widths, a K deep enough to cross the *second-level*
//!   i16→i32 drain (`k = r·r2 + 5`);
//! * the spill-free narrow 8x4 tile for the SMLAL widths;
//! * the Winograd-domain operand ranges of Sec. 3.4 (bits 2–6) on both
//!   tiles — the inflated `Ū`/`V` bounds are the hard case for i16 safety;
//! * the `SDOT` and ncnn-baseline streams;
//! * whole multi-tile GEMM programs with ragged edges.

use crate::absint::OperandBounds;
use crate::interval::Interval;
use lowbit_conv_arm::{winograd_operand_bounds, winograd_scheme, winograd_supported};
use lowbit_qgemm::{
    gemm_stream, tile_stream_narrow, tile_stream_ncnn, tile_stream_sdot, tile_stream_wide,
    KernelStream, Scheme,
};
use lowbit_tensor::BitWidth;

impl OperandBounds {
    /// Natural quantized operand ranges for `bits` (adjusted symmetric at
    /// 7/8 bit, asymmetric two's-complement below).
    pub fn for_bits(bits: BitWidth) -> OperandBounds {
        let iv = Interval::new(bits.qmin() as i64, bits.qmax() as i64);
        OperandBounds { a: iv, b: iv }
    }

    /// Winograd-domain ranges for `bits` (Sec. 3.4): transformed weights
    /// `Ū ∈ [-u, u]`, transformed inputs `V ∈ [-v, v - 1]`.
    pub fn winograd(bits: BitWidth) -> OperandBounds {
        let (u, v) = winograd_operand_bounds(bits);
        OperandBounds {
            a: Interval::symmetric(u as i64),
            b: Interval::new(-(v as i64), v as i64 - 1),
        }
    }
}

/// One stream/bounds pair to verify.
pub struct VerifyCase {
    /// The emitted program and its memory contract.
    pub stream: KernelStream,
    /// Operand value ranges the program must be safe for.
    pub bounds: OperandBounds,
}

impl VerifyCase {
    fn new(stream: KernelStream, bounds: OperandBounds) -> VerifyCase {
        VerifyCase { stream, bounds }
    }
}

/// K depths that bracket the drain boundaries of `scheme`: no drain, the
/// last drain-free depth, and one that crosses several boundaries (plus the
/// second-level boundary for MLA).
fn interesting_ks(scheme: &Scheme) -> Vec<usize> {
    let r = scheme.ratio();
    let mut ks = vec![1, r, 2 * r + 1];
    if scheme.ratio2() != usize::MAX {
        // Deep enough to force the second-level i16 -> i32 drain.
        ks.push(r * scheme.ratio2() + 5);
    }
    ks.dedup();
    ks
}

/// Direct-convolution cases for one bit width: wide tile at the interesting
/// K depths, plus the narrow tile for the SMLAL widths.
pub fn direct_cases(bits: BitWidth) -> Vec<VerifyCase> {
    let scheme = Scheme::for_bits(bits);
    let bounds = OperandBounds::for_bits(bits);
    let mut cases = Vec::new();
    for k in interesting_ks(&scheme) {
        cases.push(VerifyCase::new(tile_stream_wide(&scheme, k), bounds));
    }
    if !bits.uses_mla_scheme() {
        let r = scheme.ratio();
        for k in [1, r, 2 * r + 1] {
            cases.push(VerifyCase::new(tile_stream_narrow(&scheme, k), bounds));
        }
    }
    cases
}

/// Winograd-domain cases for one bit width (empty above 6 bit, where the
/// transform is unsupported). These use the inflated Sec. 3.4 operand
/// bounds on both tile shapes.
pub fn winograd_cases(bits: BitWidth) -> Vec<VerifyCase> {
    if !winograd_supported(bits) {
        return Vec::new();
    }
    let scheme = winograd_scheme(bits);
    let bounds = OperandBounds::winograd(bits);
    let r = scheme.ratio();
    let mut cases = Vec::new();
    for k in [1, r, 2 * r + 1] {
        cases.push(VerifyCase::new(tile_stream_wide(&scheme, k), bounds));
        cases.push(VerifyCase::new(tile_stream_narrow(&scheme, k), bounds));
    }
    cases
}

/// The drain-free baselines: the ncnn-like pre-widened i16 kernel and the
/// ARMv8.2 `SDOT` kernel, both at 8-bit operand ranges.
pub fn baseline_cases() -> Vec<VerifyCase> {
    let i8_bounds = OperandBounds::for_bits(BitWidth::W8);
    let mut cases = Vec::new();
    for k in [1, 5, 64] {
        cases.push(VerifyCase::new(tile_stream_ncnn(k), i8_bounds));
    }
    for k in [1, 7, 64] {
        cases.push(VerifyCase::new(tile_stream_sdot(k), i8_bounds));
    }
    cases
}

/// Whole multi-tile GEMM programs (ragged M/N edges, tile-major C) at a
/// representative MLA width, SMLAL width and the 8-bit worst case.
pub fn gemm_cases() -> Vec<VerifyCase> {
    [BitWidth::W2, BitWidth::W4, BitWidth::W8]
        .into_iter()
        .map(|bits| {
            let scheme = Scheme::for_bits(bits);
            VerifyCase::new(
                gemm_stream(&scheme, 21, 40, 9),
                OperandBounds::for_bits(bits),
            )
        })
        .collect()
}

/// The full standard catalog: every bit width's direct and Winograd cases,
/// the baselines, and the multi-tile GEMMs.
pub fn standard_cases() -> Vec<VerifyCase> {
    let mut cases = Vec::new();
    for bits in BitWidth::ALL {
        cases.extend(direct_cases(bits));
        cases.extend(winograd_cases(bits));
    }
    cases.extend(baseline_cases());
    cases.extend(gemm_cases());
    cases
}
