//! Verification outcomes: the violation taxonomy and the proof certificate.

use crate::interval::Interval;
use neon_sim::meta::ElemWidth;

/// Why a stream (or partition) fails verification. Each variant carries
/// enough context to point a kernel author at the defect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// An accumulation could exceed the signed range of its intermediate
    /// width — the paper's saturation-safety property (Sec. 3.3) is broken.
    SaturationOverflow {
        /// Instruction index in the stream.
        index: usize,
        /// Disassembly of the offending instruction.
        inst: String,
        /// The intermediate width that would wrap.
        width: ElemWidth,
        /// The offending lane's value interval.
        value: Interval,
    },
    /// A non-widening multiply (`MLA`/`MUL`) product could wrap i8 before it
    /// is even accumulated.
    ProductOverflow { index: usize, inst: String, value: Interval },
    /// A register holding lanes of one element width was read at another —
    /// in these kernels that always means a live value was overwritten or an
    /// operand register was misused.
    WidthConfusion {
        index: usize,
        inst: String,
        /// The vector register misread.
        reg: u8,
        expected: ElemWidth,
        found: ElemWidth,
    },
    /// A register was read before any instruction defined it.
    UninitRead { index: usize, inst: String, reg: String },
    /// A memory access falls outside every declared operand region.
    UnmappedAccess { index: usize, inst: String, addr: u32, bytes: u32 },
    /// A broadcast load's element granularity disagrees with the element
    /// type of the region it reads (e.g. `LD4R.16b` over an i16 region).
    RegionMismatch { index: usize, inst: String, region_elem: ElemWidth },
    /// A store targets memory outside the declared output span.
    StoreOutsideOutput { index: usize, inst: String, addr: u32 },
    /// A live (not yet consumed) computed value was destroyed by a
    /// destructive write — the Alg. 1 register-allocation discipline is
    /// broken.
    Clobbered {
        index: usize,
        inst: String,
        reg: String,
        /// Index of the instruction that produced the lost value.
        born: usize,
    },
    /// A computed value was never consumed by any later instruction or
    /// store — dead work, which in these hand-scheduled kernels means a
    /// drain or store was dropped.
    Unconsumed { reg: String, born: usize },
    /// The stream/bounds specification itself is inconsistent (e.g. operand
    /// bounds that do not fit the region's element type).
    BadSpec { reason: String },
    /// Thread partition: a column is owned by no thread.
    GeometryGap { thread: usize, expected_col: usize, got_col: usize },
    /// Thread partition: a column is owned by two threads.
    GeometryOverlap { thread: usize, expected_col: usize, got_col: usize },
    /// Thread partition: an interior boundary is not tile-aligned.
    GeometryMisaligned { thread: usize, col: usize },
    /// Thread partition: the spans stop short of (or run past) column `n`.
    GeometryCoverage { end: usize, n: usize },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SaturationOverflow { index, inst, width, value } => write!(
                f,
                "#{index} `{inst}`: accumulation {value} exceeds {width} range"
            ),
            Violation::ProductOverflow { index, inst, value } => write!(
                f,
                "#{index} `{inst}`: non-widening product {value} exceeds i8 range"
            ),
            Violation::WidthConfusion { index, inst, reg, expected, found } => write!(
                f,
                "#{index} `{inst}`: v{reg} read as {expected} but holds live {found} lanes"
            ),
            Violation::UninitRead { index, inst, reg } => {
                write!(f, "#{index} `{inst}`: {reg} read before definition")
            }
            Violation::UnmappedAccess { index, inst, addr, bytes } => write!(
                f,
                "#{index} `{inst}`: access [{addr}, {}) outside declared regions",
                addr + bytes
            ),
            Violation::RegionMismatch { index, inst, region_elem } => write!(
                f,
                "#{index} `{inst}`: broadcast granularity disagrees with {region_elem} region"
            ),
            Violation::StoreOutsideOutput { index, inst, addr } => {
                write!(f, "#{index} `{inst}`: store at {addr} outside the output span")
            }
            Violation::Clobbered { index, inst, reg, born } => write!(
                f,
                "#{index} `{inst}`: destroys live value in {reg} (produced at #{born})"
            ),
            Violation::Unconsumed { reg, born } => {
                write!(f, "end of stream: value in {reg} (produced at #{born}) never consumed")
            }
            Violation::BadSpec { reason } => write!(f, "bad specification: {reason}"),
            Violation::GeometryGap { thread, expected_col, got_col } => write!(
                f,
                "thread {thread}: columns [{expected_col}, {got_col}) owned by no thread"
            ),
            Violation::GeometryOverlap { thread, expected_col, got_col } => write!(
                f,
                "thread {thread}: columns [{got_col}, {expected_col}) owned twice"
            ),
            Violation::GeometryMisaligned { thread, col } => {
                write!(f, "thread {thread}: boundary at column {col} not tile-aligned")
            }
            Violation::GeometryCoverage { end, n } => {
                write!(f, "spans cover [0, {end}) but the output has {n} columns")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// The certificate returned for a stream that verifies: what was proven and
/// how close the intermediates came to their limits.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StreamProof {
    /// Stream name (from the [`lowbit_qgemm::stream::KernelStream`]).
    pub name: String,
    /// Instructions analyzed.
    pub insts: usize,
    /// Multiply-accumulate instructions proven in-range.
    pub macs: usize,
    /// `SADDW`/`SSHLL` drain instructions proven in-range.
    pub drains: usize,
    /// Largest |value| proven for any i8 intermediate lane (0 if none).
    pub peak_i8: i64,
    /// Largest |value| proven for any i16 intermediate lane (0 if none).
    pub peak_i16: i64,
    /// Largest |value| proven for any i32 accumulator lane.
    pub peak_i32: i64,
}

impl StreamProof {
    /// Headroom left in the tightest intermediate, as a fraction of its
    /// range (1.0 = untouched, 0.0 = exactly at the limit).
    pub fn tightest_headroom(&self) -> f64 {
        let h8 = 1.0 - self.peak_i8 as f64 / i8::MAX as f64;
        let h16 = 1.0 - self.peak_i16 as f64 / i16::MAX as f64;
        let h32 = 1.0 - self.peak_i32 as f64 / i32::MAX as f64;
        h8.min(h16).min(h32)
    }
}
