//! # lowbit-verify — static saturation-safety verifier and kernel lint
//!
//! The low-bit kernels in this workspace (paper Sec. 3.3, Alg. 1) are only
//! correct because of a numeric contract: every `SMLAL`/`MLA` partial sum
//! must be drained by `SADDW` *before* its i16/i8 intermediate can wrap, and
//! the hand-made register allocation must never clobber a live partial.
//! The interpreter in `neon-sim` can test that contract on sample inputs;
//! this crate **proves** it for all inputs in the declared operand ranges,
//! by abstract interpretation of the emitted instruction streams over a
//! per-lane interval domain.
//!
//! Three analyses compose into [`verify_stream`]:
//!
//! * [`absint::check_stream`] — interval analysis proving every
//!   intermediate fits its width and every store writes defined i32 data
//!   inside the output span;
//! * [`lint::lint_stream`] — register-discipline dataflow pass proving no
//!   live value is clobbered or silently dropped (Alg. 1's allocation
//!   contract);
//! * [`geometry::check_spans`] — structural proof that the parallel GEMM's
//!   per-thread column slices partition the output.
//!
//! The GPU path gets the structural analogue in [`gpu`]:
//! [`gpu::verify_gpu_plan`] lifts a `ConvGpuPlan` into its typed
//! access-descriptor stream and proves the Alg. 2 tiling partitions the
//! GEMM exactly, the Fig. 5 reordered shared-memory traffic is
//! bank-conflict-free (with the un-reordered layout as a conflicting
//! negative witness), the Fig. 6 register double-buffer schedule is
//! hazard-free, and the launch fits the device's hard limits.
//!
//! On top of both per-kernel layers sits the whole-plan pass in [`plan`]:
//! [`plan::verify_plan`] takes the backend-neutral lowering of a compiled
//! `ExecutionPlan` and proves the *composition* — activation ranges
//! propagate through every layer without i32 overflow and land inside the
//! operand ranges the stream proofs assumed, the recorded NCHW/NHWC
//! conversions stitch the layers' layouts together, and the declared
//! workspace figures dominate what the engines will actually request.
//!
//! The fourth family, [`conc`], certifies *concurrency*:
//! [`conc::verify_conc`] lifts every DAG node to a typed memory footprint
//! (activation-arena spans, GEMM workspace slices, per-thread column
//! partitions) and proves a proposed wave-parallel schedule sound — every
//! pair of nodes that may run concurrently either has disjoint footprints
//! or a declared interference edge the waves respect, the arena packing
//! stays sound under wave-coarsened lifetimes, and an FNV-1a digest seals
//! the certificate the executor demands before racing any nodes.
//!
//! The `lowbit-verify` binary (crate `lowbit-verify-cli`) sweeps the
//! [`streams::standard_cases`] catalog (every bit width 2–8, both schemes,
//! Winograd-inflated ranges, baselines and whole GEMM programs) and fails
//! on any unproven stream; `lowbit-verify --gpu` does the same over every
//! tile configuration the GPU tuner can emit, `lowbit-verify --plan`
//! over compiled demo and ResNet-50 bottleneck plans at every supported
//! bit width plus a seeded plan-mutant catalog, and `lowbit-verify --conc`
//! over the parallel schedules of every DAG block at every width plus a
//! schedule-mutant catalog. CI runs all four on every push.

#![forbid(unsafe_code)]

pub mod absint;
pub mod conc;
pub mod geometry;
pub mod gpu;
pub mod interval;
pub mod lint;
pub mod plan;
pub mod report;
pub mod streams;

pub use absint::{check_stream, OperandBounds};
pub use conc::{
    build_schedule, schedule_digest, verify_conc, ConcNode, ConcProof, ConcSpec, ConcValue,
    ConcViolation, GemmFootprint, MemSpan, ScheduleSpec,
};
pub use geometry::{check_partition, check_spans};
pub use gpu::{
    check_staging, check_tiling, verify_gpu_plan, verify_tile_config, GpuProof, GpuViolation,
};
pub use interval::Interval;
pub use lint::lint_stream;
pub use plan::{
    arena_high_water, arm_workspace_requirement, verify_plan, ArenaRequirement, ArmAlgoKind,
    BackendSpec, ChannelSums, LayerSpec, LayoutConversion, NodeOpSpec, NodeSpec, PlanProof,
    PlanSpec, PlanViolation, RequantSpec, ValueSlot,
};
pub use report::{StreamProof, Violation};
pub use streams::{
    baseline_cases, direct_cases, gemm_cases, standard_cases, winograd_cases, VerifyCase,
};

use lowbit_qgemm::KernelStream;

/// Runs the full static check on one stream: the register-discipline lint
/// followed by the interval analysis. Returns the proof certificate of the
/// interval pass.
pub fn verify_stream(
    stream: &KernelStream,
    bounds: &OperandBounds,
) -> Result<StreamProof, Violation> {
    lint_stream(&stream.prog)?;
    check_stream(stream, bounds)
}

/// Verifies one catalog case.
pub fn verify_case(case: &VerifyCase) -> Result<StreamProof, Violation> {
    verify_stream(&case.stream, &case.bounds)
}
