//! Static verification of GPU convolution plans (the Tensor Core path).
//!
//! [`crate::absint`] proves the ARM streams numerically safe; this module
//! proves the GPU plans *structurally* safe. A [`ConvGpuPlan`] is lifted
//! into its typed access-descriptor stream (`ConvGpuPlan::access_stream`,
//! `tiling_levels`, `staging_schedule` in `lowbit-conv-gpu`) and
//! [`verify_gpu_plan`] discharges four proof obligations:
//!
//! 1. **Tiling geometry** — every level of the Alg. 2 partition (grid →
//!    warp → 8x8 `mma` fragment, and the `k_tile → k_step → k_mma`
//!    reduction staging) covers its parent exactly: no gap, no overlap,
//!    no ragged inner tile. The grid level alone may clip at the GEMM
//!    edge, because only the epilogue bounds-checks.
//! 2. **Shared-memory discipline** — after the Fig. 5 reorder every
//!    `STS`/`LDS` pattern is bank-conflict-free and `LDS.128`-aligned,
//!    *and* the un-reordered layout of the same plan provably conflicts
//!    (the negative witness: if it did not, the cost model would be
//!    crediting the reorder for a gain that does not exist).
//! 3. **Register staging hazards** — the Fig. 6 double-buffer schedule
//!    never reads a step before its write retires and never overwrites an
//!    unconsumed slot; the single-buffered schedule degenerates safely.
//! 4. **Launch resources** — threads, shared memory and registers fit the
//!    device's hard limits with operand shapes legal for
//!    `m8n8k16.s8`/`m8n8k32.s4` (via `TileConfig::validate`).
//!
//! `lowbit-verify --gpu` sweeps every [`TileConfig`] the tuner can emit at
//! both precisions over the demo and ResNet-50 shapes; the planner runs
//! the same proof on each layer it compiles.

use lowbit_conv_gpu::{
    auto_search, default_config, ConvGpuPlan, TileConfig, TileRejection, TileSpan,
};
use lowbit_models::LayerDef;
use turing_sim::{BufOp, Device, Precision, ResourceViolation, StagingSchedule};

/// Why a GPU plan fails verification: the typed counterexample.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GpuViolation {
    /// The tile configuration is not executable at this precision
    /// (divisibility, `mma` operand shape, or a hardware limit).
    InvalidTile(TileRejection),
    /// A tiling level leaves part of its parent uncovered between spans.
    TileGap {
        /// Which level/dimension (e.g. `"warp.m"`).
        level: &'static str,
        /// Span index where the gap opens.
        at: usize,
        /// Index the next span had to start at.
        expected: usize,
        /// Index it actually starts at.
        got: usize,
    },
    /// Two spans of a tiling level claim the same output elements.
    TileOverlap {
        /// Which level/dimension.
        level: &'static str,
        /// Span index that re-enters covered territory.
        at: usize,
        /// First uncovered index.
        expected: usize,
        /// Where the offending span starts.
        got: usize,
    },
    /// An inner (non-clipping) level emits a span of the wrong length —
    /// its loop would read out of bounds or drop work.
    RaggedTile {
        /// Which level/dimension.
        level: &'static str,
        /// Offending span index.
        at: usize,
        /// The span's length.
        len: usize,
        /// The exact tile length the level must use.
        tile: usize,
    },
    /// A tiling level's spans do not end exactly at the parent extent.
    TileCoverage {
        /// Which level/dimension.
        level: &'static str,
        /// Where coverage actually ends.
        end: usize,
        /// The parent extent it had to end at.
        extent: usize,
    },
    /// A shared-memory access serializes on the banks.
    BankConflict {
        /// The access's description string.
        access: &'static str,
        /// Worst per-phase serialization degree (1 = conflict-free).
        degree: u64,
    },
    /// A wide access whose lane addresses are not provably aligned to its
    /// width (a misaligned `LDS.128` faults on real hardware).
    MisalignedAccess {
        /// The access's description string.
        access: &'static str,
        /// Access width in bytes.
        width: u64,
        /// The alignment actually guaranteed.
        align: u64,
    },
    /// The un-reordered layout of a reordered plan failed to conflict —
    /// the Fig. 5 gain the cost model credits would not exist.
    MissingConflictWitness {
        /// Conflict degree of the supposed negative witness.
        degree: u64,
    },
    /// A staging-buffer read before the step's write retired (or of a slot
    /// holding a different step's operands).
    ReadBeforeWrite {
        /// Staging slot.
        buf: usize,
        /// Step whose operands the read expected.
        step: usize,
        /// Position in the issue order.
        at: usize,
    },
    /// A staging-buffer write clobbered operands not yet consumed.
    OverwriteBeforeRead {
        /// Staging slot.
        buf: usize,
        /// Step whose operands were lost.
        lost_step: usize,
        /// Position in the issue order.
        at: usize,
    },
    /// An event names a staging slot the schedule does not have.
    BadBuffer {
        /// The out-of-range slot.
        buf: usize,
        /// Slots the schedule declares.
        buffers: usize,
        /// Position in the issue order.
        at: usize,
    },
    /// An event names a reduction step outside the schedule.
    BadStep {
        /// The out-of-range step.
        step: usize,
        /// Steps the schedule declares.
        steps: usize,
        /// Position in the issue order.
        at: usize,
    },
    /// A reduction step's operands are never loaded.
    StepNeverLoaded {
        /// The unloaded step.
        step: usize,
    },
    /// A reduction step's operands are loaded but never consumed.
    StepNeverConsumed {
        /// The unconsumed step.
        step: usize,
    },
    /// The launch descriptor exceeds a hard device limit.
    Resource(ResourceViolation),
}

impl std::fmt::Display for GpuViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuViolation::InvalidTile(r) => write!(f, "invalid tile config: {r}"),
            GpuViolation::TileGap { level, at, expected, got } => write!(
                f,
                "{level} span {at} leaves a gap: expected start {expected}, got {got}"
            ),
            GpuViolation::TileOverlap { level, at, expected, got } => write!(
                f,
                "{level} span {at} overlaps: expected start {expected}, got {got}"
            ),
            GpuViolation::RaggedTile { level, at, len, tile } => write!(
                f,
                "{level} span {at} has length {len}, but the level must tile exactly by {tile}"
            ),
            GpuViolation::TileCoverage { level, end, extent } => write!(
                f,
                "{level} covers [0, {end}) of a [0, {extent}) extent"
            ),
            GpuViolation::BankConflict { access, degree } => {
                write!(f, "{access}: {degree}-way bank conflict")
            }
            GpuViolation::MisalignedAccess { access, width, align } => write!(
                f,
                "{access}: {width}-byte access only aligned to {align} bytes"
            ),
            GpuViolation::MissingConflictWitness { degree } => write!(
                f,
                "unreordered layout is conflict-free (degree {degree}); the Fig. 5 reorder would buy nothing"
            ),
            GpuViolation::ReadBeforeWrite { buf, step, at } => write!(
                f,
                "staging op {at}: read of step {step} from slot {buf} before its write retired"
            ),
            GpuViolation::OverwriteBeforeRead { buf, lost_step, at } => write!(
                f,
                "staging op {at}: write to slot {buf} clobbers unconsumed step {lost_step}"
            ),
            GpuViolation::BadBuffer { buf, buffers, at } => write!(
                f,
                "staging op {at}: slot {buf} out of range for {buffers} buffer(s)"
            ),
            GpuViolation::BadStep { step, steps, at } => write!(
                f,
                "staging op {at}: step {step} out of range for {steps} step(s)"
            ),
            GpuViolation::StepNeverLoaded { step } => {
                write!(f, "step {step} is never loaded into a staging slot")
            }
            GpuViolation::StepNeverConsumed { step } => {
                write!(f, "step {step} is loaded but never consumed by an mma")
            }
            GpuViolation::Resource(r) => write!(f, "launch resources: {r}"),
        }
    }
}

impl std::error::Error for GpuViolation {}

/// The proof certificate of one verified plan: what was checked and the
/// quantities the checks established.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GpuProof {
    /// GEMM dimensions `(m, n, k)` the partition was proven over.
    pub gemm: (usize, usize, usize),
    /// Thread blocks in the verified grid.
    pub grid_blocks: usize,
    /// Total tile spans checked across all levels.
    pub spans: usize,
    /// Worst bank-conflict degree over every `STS`/`LDS` pattern (proven 1).
    pub smem_conflict_degree: u64,
    /// Conflict degree of the un-reordered negative witness (proven > 1).
    pub witness_degree: u64,
    /// Staging events proven hazard-free.
    pub staging_ops: usize,
    /// Whether the schedule was the Fig. 6 double buffer.
    pub double_buffered: bool,
    /// Shared memory per block of the verified launch.
    pub smem_per_block: u32,
    /// Registers per thread of the verified launch.
    pub regs_per_thread: u32,
    /// Modeled global coalescing factor (reported, not gated).
    pub coalescing: f64,
}

/// Checks one tiling level: spans must be contiguous from 0, non-empty, at
/// most `tile` long (exactly `tile` when `exact`), and end at `extent`.
fn check_level(
    level: &'static str,
    spans: &[TileSpan],
    extent: usize,
    tile: usize,
    exact: bool,
) -> Result<usize, GpuViolation> {
    let mut expected = 0usize;
    for (at, s) in spans.iter().enumerate() {
        match s.start.cmp(&expected) {
            std::cmp::Ordering::Greater => {
                return Err(GpuViolation::TileGap { level, at, expected, got: s.start })
            }
            std::cmp::Ordering::Less => {
                return Err(GpuViolation::TileOverlap { level, at, expected, got: s.start })
            }
            std::cmp::Ordering::Equal => {}
        }
        if s.len == 0 || s.len > tile || (exact && s.len != tile) {
            return Err(GpuViolation::RaggedTile { level, at, len: s.len, tile });
        }
        expected = s.end();
    }
    if expected != extent {
        return Err(GpuViolation::TileCoverage { level, end: expected, extent });
    }
    Ok(spans.len())
}

/// Proves the Alg. 2 partition exact at every level. Returns the number of
/// spans checked.
pub fn check_tiling(plan: &ConvGpuPlan) -> Result<usize, GpuViolation> {
    let t = plan.tiling_levels();
    let cfg = &plan.cfg;
    let (frag_m, frag_n) = cfg.warp_frag();
    let k_mma = TileConfig::k_mma(plan.precision);
    let mut spans = 0usize;
    // The grid clips at the GEMM edge (the epilogue bounds-checks); every
    // inner loop runs without bounds checks and must tile exactly.
    spans += check_level("grid.m", &t.grid_m, t.output.0, cfg.m_tile, false)?;
    spans += check_level("grid.n", &t.grid_n, t.output.1, cfg.n_tile, false)?;
    spans += check_level("warp.m", &t.warp_m, cfg.m_tile, frag_m, true)?;
    spans += check_level("warp.n", &t.warp_n, cfg.n_tile, frag_n, true)?;
    spans += check_level("mma.m", &t.mma_m, frag_m, 8, true)?;
    spans += check_level("mma.n", &t.mma_n, frag_n, 8, true)?;
    spans += check_level("k.tile", &t.k_tiles, t.k_pad, cfg.k_tile, true)?;
    spans += check_level("k.step", &t.k_steps, cfg.k_tile, cfg.k_step, true)?;
    spans += check_level("k.mma", &t.k_mmas, cfg.k_step, k_mma, true)?;
    Ok(spans)
}

/// Proves a register staging schedule hazard-free: every read finds its
/// step's operands already written, no write clobbers an unconsumed slot,
/// and every declared step is both loaded and consumed. Returns the number
/// of events checked.
pub fn check_staging(s: &StagingSchedule) -> Result<usize, GpuViolation> {
    // Per-slot state: which step's operands it holds and whether they have
    // been consumed yet.
    let mut slots: Vec<Option<(usize, bool)>> = vec![None; s.buffers];
    let mut loaded = vec![false; s.steps];
    let mut consumed = vec![false; s.steps];
    for (at, op) in s.ops.iter().enumerate() {
        let (buf, step) = match *op {
            BufOp::Write { buf, step } | BufOp::Read { buf, step } => (buf, step),
        };
        if buf >= s.buffers {
            return Err(GpuViolation::BadBuffer { buf, buffers: s.buffers, at });
        }
        if step >= s.steps {
            return Err(GpuViolation::BadStep { step, steps: s.steps, at });
        }
        match *op {
            BufOp::Write { .. } => {
                if let Some((held, false)) = slots[buf] {
                    return Err(GpuViolation::OverwriteBeforeRead { buf, lost_step: held, at });
                }
                slots[buf] = Some((step, false));
                loaded[step] = true;
            }
            BufOp::Read { .. } => match slots[buf] {
                Some((held, _)) if held == step => {
                    slots[buf] = Some((held, true));
                    consumed[step] = true;
                }
                _ => return Err(GpuViolation::ReadBeforeWrite { buf, step, at }),
            },
        }
    }
    if let Some(step) = loaded.iter().position(|&l| !l) {
        return Err(GpuViolation::StepNeverLoaded { step });
    }
    if let Some(step) = consumed.iter().position(|&c| !c) {
        return Err(GpuViolation::StepNeverConsumed { step });
    }
    Ok(s.ops.len())
}

/// Runs the full static check on one plan (see the module docs for the four
/// proof obligations). Returns the proof certificate.
pub fn verify_gpu_plan(plan: &ConvGpuPlan, device: &Device) -> Result<GpuProof, GpuViolation> {
    plan.cfg
        .validate(plan.precision, device.smem_per_sm as usize)
        .map_err(GpuViolation::InvalidTile)?;

    let spans = check_tiling(plan)?;

    // Shared-memory discipline: every pattern conflict-free and aligned to
    // its access width.
    let stream = plan.access_stream();
    let mut degree = 1u64;
    for a in stream.smem_stores.iter().chain(&stream.smem_loads) {
        let d = a.bank_conflict_degree();
        if d > 1 {
            return Err(GpuViolation::BankConflict { access: a.desc, degree: d });
        }
        if !a.width_aligned() {
            return Err(GpuViolation::MisalignedAccess {
                access: a.desc,
                width: a.bytes_per_lane,
                align: a.align_bytes,
            });
        }
        degree = degree.max(d);
    }
    // Negative witness: the same plan without the Fig. 5 reorder must
    // conflict, or the reorder's modeled gain is fictitious.
    let mut unreordered = plan.clone();
    unreordered.opts.smem_reordered = false;
    let witness_degree = unreordered
        .access_stream()
        .smem_loads
        .iter()
        .map(|a| a.bank_conflict_degree())
        .max()
        .unwrap_or(1);
    if witness_degree <= 1 {
        return Err(GpuViolation::MissingConflictWitness { degree: witness_degree });
    }

    let staging_ops = check_staging(&stream.staging)?;

    let desc = plan.kernel_desc(device);
    desc.check_resources(device).map_err(GpuViolation::Resource)?;

    let (m, n, k) = plan.gemm_dims();
    Ok(GpuProof {
        gemm: (m, n, k),
        grid_blocks: m.div_ceil(plan.cfg.m_tile) * n.div_ceil(plan.cfg.n_tile),
        spans,
        smem_conflict_degree: degree,
        witness_degree,
        staging_ops,
        double_buffered: plan.opts.double_buffered,
        smem_per_block: desc.smem_per_block,
        regs_per_thread: desc.regs_per_thread,
        coalescing: desc.coalescing_factor,
    })
}

/// Verifies one `(shape, config, precision)` triple end to end — the entry
/// point the sweep and the planner share.
pub fn verify_tile_config(
    shape: lowbit_tensor::ConvShape,
    cfg: TileConfig,
    precision: Precision,
    device: &Device,
) -> Result<GpuProof, GpuViolation> {
    let plan =
        ConvGpuPlan::try_new(shape, cfg, precision).map_err(GpuViolation::InvalidTile)?;
    verify_gpu_plan(&plan, device)
}

/// Short label for a precision in reports.
pub fn precision_label(precision: Precision) -> &'static str {
    match precision {
        Precision::TensorCoreInt4 => "int4",
        Precision::TensorCoreInt8 => "int8",
        Precision::Dp4aInt8 => "dp4a",
    }
}

fn report_line(name: &str, tuning: &str, cfg: &TileConfig, proof: &GpuProof) -> String {
    let (m, n, k) = proof.gemm;
    format!(
        "{:<7} gemm {:>5}x{:>4}x{:>5} {:<7} {:>3}x{:<3}x{:>3}/{:<2} w{}x{} | blocks {:>3} spans {:>4} smem {:>6}B regs {:>3} conflict x{} witness x{} staging {:>2} ops coal {:.3}",
        name,
        m,
        n,
        k,
        tuning,
        cfg.m_tile,
        cfg.n_tile,
        cfg.k_tile,
        cfg.k_step,
        cfg.warps_m,
        cfg.warps_n,
        proof.grid_blocks,
        proof.spans,
        proof.smem_per_block,
        proof.regs_per_thread,
        proof.smem_conflict_degree,
        proof.witness_degree,
        proof.staging_ops,
        proof.coalescing,
    )
}

/// The deterministic verifier report for the demo network's GPU layers:
/// every layer at both precisions, under both the no-profile default config
/// and the auto-search winner. One proof certificate per line; checked
/// against `tests/golden/verify_gpu_demo.txt` in CI.
pub fn gpu_demo_report(device: &Device) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(
        "# lowbit-verify --gpu: demo network proof certificates (RTX 2080 Ti model)\n",
    );
    for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
        for layer in lowbit_models::demo(12) {
            for (tuning, cfg) in [
                ("default", default_config(precision)),
                ("tuned", auto_search(&layer.shape, precision, device).0),
            ] {
                let proof = verify_tile_config(layer.shape, cfg, precision, device)
                    .map_err(|v| {
                        format!("{} {} {tuning}: {v}", layer.name, precision_label(precision))
                    })?;
                out.push_str(&format!(
                    "{} {}\n",
                    precision_label(precision),
                    report_line(layer.name, tuning, &cfg, &proof)
                ));
            }
        }
    }
    Ok(out)
}

/// The shapes `lowbit-verify --gpu` sweeps: the demo chain plus the 19
/// distinct ResNet-50 layers.
pub fn gpu_sweep_layers() -> Vec<LayerDef> {
    let mut layers = lowbit_models::demo(12);
    layers.extend(lowbit_models::resnet50());
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::ConvShape;

    fn plan() -> ConvGpuPlan {
        let shape = ConvShape::new(1, 32, 14, 14, 48, 3, 1, 1);
        let cfg = TileConfig {
            m_tile: 64, n_tile: 32, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
        };
        ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8)
    }

    #[test]
    fn a_well_formed_plan_proves_out() {
        let proof = verify_gpu_plan(&plan(), &Device::rtx2080ti()).unwrap();
        assert_eq!(proof.smem_conflict_degree, 1);
        assert_eq!(proof.witness_degree, 4, "the Fig. 5(a) strided pattern");
        assert!(proof.spans > 0);
        assert!(proof.double_buffered);
    }

    #[test]
    fn misordered_smem_layout_is_rejected() {
        let mut p = plan();
        p.opts.smem_reordered = false;
        assert!(matches!(
            verify_gpu_plan(&p, &Device::rtx2080ti()),
            Err(GpuViolation::BankConflict { degree: 4, .. })
        ));
    }

    #[test]
    fn geometry_violations_are_typed() {
        let overlap = [TileSpan { start: 0, len: 8 }, TileSpan { start: 4, len: 8 }];
        assert!(matches!(
            check_level("warp.m", &overlap, 12, 8, true),
            Err(GpuViolation::TileOverlap { at: 1, .. })
        ));
        let gap = [TileSpan { start: 0, len: 4 }, TileSpan { start: 8, len: 4 }];
        assert!(matches!(
            check_level("warp.m", &gap, 12, 4, true),
            Err(GpuViolation::TileGap { at: 1, .. })
        ));
        // A ragged inner tile: the loop would run past its parent.
        let ragged = [TileSpan { start: 0, len: 8 }, TileSpan { start: 8, len: 8 }];
        assert!(matches!(
            check_level("k.step", &ragged, 12, 8, true),
            Err(GpuViolation::TileCoverage { end: 16, extent: 12, .. })
        ));
        let short = [TileSpan { start: 0, len: 8 }];
        assert!(matches!(
            check_level("grid.m", &short, 12, 8, false),
            Err(GpuViolation::TileCoverage { end: 8, extent: 12, .. })
        ));
    }

    #[test]
    fn single_buffer_with_issue_ahead_write_is_a_hazard() {
        // The Fig. 6 issue-ahead order is only safe with two slots: on one
        // slot the step-1 write lands before step 0 is consumed.
        let s = StagingSchedule {
            buffers: 1,
            steps: 2,
            ops: vec![
                BufOp::Write { buf: 0, step: 0 },
                BufOp::Write { buf: 0, step: 1 },
                BufOp::Read { buf: 0, step: 0 },
                BufOp::Read { buf: 0, step: 1 },
            ],
        };
        assert_eq!(
            check_staging(&s),
            Err(GpuViolation::OverwriteBeforeRead { buf: 0, lost_step: 0, at: 1 })
        );
    }

    #[test]
    fn staging_hazards_are_typed() {
        let read_first = StagingSchedule {
            buffers: 2,
            steps: 1,
            ops: vec![BufOp::Read { buf: 0, step: 0 }, BufOp::Write { buf: 0, step: 0 }],
        };
        assert!(matches!(
            check_staging(&read_first),
            Err(GpuViolation::ReadBeforeWrite { buf: 0, step: 0, at: 0 })
        ));
        let wrong_slot = StagingSchedule {
            buffers: 2,
            steps: 2,
            ops: vec![
                BufOp::Write { buf: 0, step: 0 },
                BufOp::Read { buf: 1, step: 0 },
            ],
        };
        assert!(matches!(
            check_staging(&wrong_slot),
            Err(GpuViolation::ReadBeforeWrite { buf: 1, .. })
        ));
        let never_consumed = StagingSchedule {
            buffers: 2,
            steps: 2,
            ops: vec![
                BufOp::Write { buf: 0, step: 0 },
                BufOp::Read { buf: 0, step: 0 },
                BufOp::Write { buf: 1, step: 1 },
            ],
        };
        assert_eq!(
            check_staging(&never_consumed),
            Err(GpuViolation::StepNeverConsumed { step: 1 })
        );
        let bad_slot = StagingSchedule {
            buffers: 1,
            steps: 1,
            ops: vec![BufOp::Write { buf: 3, step: 0 }],
        };
        assert!(matches!(
            check_staging(&bad_slot),
            Err(GpuViolation::BadBuffer { buf: 3, buffers: 1, .. })
        ));
    }

    #[test]
    fn both_staging_modes_of_real_plans_are_hazard_free() {
        let mut p = plan();
        assert!(check_staging(&p.staging_schedule()).is_ok());
        p.opts.double_buffered = false;
        assert!(check_staging(&p.staging_schedule()).is_ok());
    }

    #[test]
    fn invalid_tile_config_is_rejected_with_its_reason() {
        let shape = ConvShape::new(1, 32, 14, 14, 48, 3, 1, 1);
        let cfg = TileConfig {
            m_tile: 100, n_tile: 32, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
        };
        assert!(matches!(
            verify_tile_config(shape, cfg, Precision::TensorCoreInt8, &Device::rtx2080ti()),
            Err(GpuViolation::InvalidTile(TileRejection::WarpShape { dim: 'm', .. }))
        ));
    }

    #[test]
    fn violations_render_human_readable() {
        let v = GpuViolation::TileGap { level: "warp.m", at: 1, expected: 8, got: 16 };
        assert!(v.to_string().contains("warp.m"));
        let v = GpuViolation::BankConflict { access: "lds", degree: 4 };
        assert!(v.to_string().contains("4-way"));
    }
}
