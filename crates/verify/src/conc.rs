//! Static concurrency verification of a lowered execution plan — the fourth
//! verifier family, and the one that makes parallel DAG node scheduling
//! safe by construction.
//!
//! PR 9's liveness arena deliberately aliases activation buffers, which is
//! provably safe for *serial* node execution but unproven the moment two
//! DAG nodes run concurrently. This module closes that gap statically:
//!
//! 1. every node is lifted into a typed access footprint — its activation
//!    arena read/write spans (from the recorded `memplan` offsets), its
//!    modeled workspace slice, and for GEMM nodes the per-thread column
//!    partition and packed-panel slices the parallel driver will write;
//! 2. the DAG's **may-run-concurrently** relation is the set of node pairs
//!    incomparable under topological reachability; every such pair must
//!    have disjoint arena spans and disjoint workspace slices, or carry an
//!    explicit **interference edge** that constrains scheduling;
//! 3. a declared wave schedule is admitted only when dependencies strictly
//!    increase across waves, wave-mates are interference-free, every value
//!    placement stays disjoint under wave-coarsened liveness, and the
//!    certificate digest matches a full recomputation — so a forged or
//!    stale certificate is rejected, not trusted.
//!
//! Like `verify::plan`, everything here is backend-neutral: `lowbit` lowers
//! its `ExecutionPlan` into a [`ConcSpec`] + [`ScheduleSpec`] and the
//! verifier re-proves the claims from scratch. On success [`verify_conc`]
//! returns a [`ConcProof`]; on failure a typed [`ConcViolation`] witness.

use crate::geometry::check_spans;
use crate::plan::{ArenaRequirement, ArmAlgoKind, max_panel_bytes};
use lowbit_qgemm::{ColumnSpan, NB};
use lowbit_qgemm::parallel::{DEFAULT_KC, DEFAULT_NC};

/// A half-open byte span `[offset, offset + bytes)` in a named arena.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemSpan {
    /// First byte.
    pub offset: usize,
    /// Length (0 = the empty span, which never overlaps anything).
    pub bytes: usize,
}

impl MemSpan {
    /// One past the last byte.
    pub fn end(&self) -> usize {
        self.offset + self.bytes
    }

    /// True when the two spans share at least one byte.
    pub fn overlaps(&self, o: &MemSpan) -> bool {
        self.bytes > 0 && o.bytes > 0 && self.offset < o.end() && o.offset < self.end()
    }
}

/// The GEMM geometry of a conv node whose kernels partition work across
/// threads — what the partition and panel proofs are checked against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GemmFootprint {
    /// GEMM rows (output channels).
    pub m: usize,
    /// Shared dimension.
    pub k: usize,
    /// GEMM columns (output pixels) — the partitioned dimension.
    pub n: usize,
    /// The committed ARM kernel family.
    pub algo: ArmAlgoKind,
}

impl GemmFootprint {
    /// The workspace bytes this node's kernels will request — the bound its
    /// declared workspace slice must dominate.
    pub fn required_workspace(&self) -> ArenaRequirement {
        let (m, k, n) = (self.m, self.k, self.n);
        match self.algo {
            ArmAlgoKind::GemmWide | ArmAlgoKind::GemmNarrow => ArenaRequirement {
                col: k * n,
                c_cm: 4 * m * n,
                panels: max_panel_bytes(k, n),
                ..ArenaRequirement::default()
            },
            ArmAlgoKind::GemmSdot => ArenaRequirement {
                col: k * n,
                bq: k.next_multiple_of(4) * n.next_multiple_of(NB),
                c_sdot: 4 * m * n,
                ..ArenaRequirement::default()
            },
            // Winograd and the baselines allocate their own transform
            // buffers per call; they do not grow the shared arena.
            _ => ArenaRequirement::default(),
        }
    }
}

/// One DAG node's declared access footprint.
#[derive(Clone, Debug)]
pub struct ConcNode {
    /// Node name (for witnesses).
    pub name: String,
    /// Value ids this node reads (including a fused residual operand).
    pub inputs: Vec<usize>,
    /// Value id this node writes.
    pub output: usize,
    /// The modeled workspace slice the node's kernels are confined to
    /// (`MemSpan::default()` for nodes that touch no workspace).
    pub workspace: MemSpan,
    /// GEMM geometry for partitioned kernels (`None` for Add/Concat, GPU
    /// layers and per-call-buffer families like Winograd).
    pub gemm: Option<GemmFootprint>,
    /// The declared per-thread column partition of the GEMM output at the
    /// maximum thread count (empty spans legal per the hardened
    /// `partition_columns` contract; empty vec for non-GEMM nodes).
    pub partition: Vec<ColumnSpan>,
}

/// One value's recorded activation-arena placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConcValue {
    /// Recorded arena byte offset.
    pub offset: usize,
    /// Recorded byte size.
    pub bytes: usize,
}

impl ConcValue {
    fn span(&self) -> MemSpan {
        MemSpan { offset: self.offset, bytes: self.bytes }
    }
}

/// The backend-neutral concurrency lowering of a compiled execution plan.
#[derive(Clone, Debug)]
pub struct ConcSpec {
    /// DAG nodes in topological (execution) order.
    pub nodes: Vec<ConcNode>,
    /// Value placements in the activation arena.
    pub values: Vec<ConcValue>,
    /// The value held live through the final dequantization.
    pub output_value: usize,
    /// Declared activation-arena high-water bytes.
    pub arena_bytes: usize,
    /// Declared parallel workspace-arena bytes (every node slice must fit).
    pub workspace_bytes: usize,
}

/// The wave schedule and interference graph a plan declares — the claim
/// [`verify_conc`] re-proves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleSpec {
    /// Node ids grouped into waves; wave `w` may start only after wave
    /// `w - 1` completes, and nodes within a wave may run concurrently.
    pub waves: Vec<Vec<usize>>,
    /// Interference edges `(a, b)` with `a < b`: incomparable node pairs
    /// whose footprints overlap and which therefore must never share a wave.
    pub interference: Vec<(usize, usize)>,
    /// FNV-1a digest over the footprints and the schedule — the certificate
    /// the executor checks before engaging parallel node execution.
    pub certificate: u64,
}

/// A typed counterexample from the concurrency verifier.
#[derive(Clone, Debug, PartialEq)]
pub enum ConcViolation {
    /// Two values that can be live at the same time under the declared wave
    /// schedule were placed on overlapping arena byte ranges.
    ArenaInterference {
        /// First value id.
        a: usize,
        /// Its `[offset, end)` span.
        a_span: (usize, usize),
        /// Second value id.
        b: usize,
        /// Its `[offset, end)` span.
        b_span: (usize, usize),
        /// Where the two lifetimes collide.
        context: String,
    },
    /// Two nodes scheduled into the same wave share workspace bytes.
    WorkspaceAliasing {
        /// First node name.
        a: String,
        /// Its workspace slice `[offset, end)`.
        a_span: (usize, usize),
        /// Second node name.
        b: String,
        /// Its workspace slice `[offset, end)`.
        b_span: (usize, usize),
    },
    /// A node's kernels write outside its declared spans: an arena
    /// placement past the declared arena, or a workspace slice smaller than
    /// the kernels' certified requirement or escaping the workspace arena.
    FootprintEscape {
        /// The offending node (or value, as `v{id}`).
        node: String,
        /// Which declared span is escaped.
        what: String,
        /// The span actually touched `[offset, end)`.
        span: (usize, usize),
        /// The bound it must stay within.
        bound: usize,
    },
    /// A GEMM node's declared per-thread partition is not a disjoint,
    /// covering, tile-aligned split — or its packed panels / SDOT-padded
    /// slices escape the certified panel budget.
    PartitionOverlap {
        /// The offending node.
        node: String,
        /// The structural defect.
        detail: String,
    },
    /// The declared schedule contradicts topological reachability: a node
    /// is scheduled no later than a node it depends on.
    ReachabilityError {
        /// The producing node.
        from: String,
        /// The consuming node scheduled too early.
        to: String,
        /// Wave of the producer.
        from_wave: usize,
        /// Wave of the consumer.
        to_wave: usize,
    },
    /// An incomparable node pair whose footprints overlap is missing from
    /// the declared interference edge set — the scheduler would be free to
    /// run them together.
    InterferenceEdgeMissing {
        /// First node name.
        a: String,
        /// Second node name.
        b: String,
        /// Which resource overlaps (`"arena"` / `"workspace"`).
        resource: &'static str,
    },
    /// The certificate digest does not match a recomputation over the
    /// footprints and schedule — the certificate was forged or is stale.
    CertificateForged {
        /// The digest the plan declares.
        declared: u64,
        /// The digest the verifier computed.
        computed: u64,
    },
    /// The wave list is not a permutation of the nodes, a declared
    /// interference edge is violated, or an id is out of range.
    ScheduleBroken {
        /// What is broken.
        detail: String,
    },
}

impl std::fmt::Display for ConcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcViolation::ArenaInterference { a, a_span, b, b_span, context } => write!(
                f,
                "values v{a} [{}, {}) and v{b} [{}, {}) can be live together ({context}) but \
                 their arena spans overlap",
                a_span.0, a_span.1, b_span.0, b_span.1
            ),
            ConcViolation::WorkspaceAliasing { a, a_span, b, b_span } => write!(
                f,
                "{a} [{}, {}) and {b} [{}, {}) share a wave but their workspace slices overlap",
                a_span.0, a_span.1, b_span.0, b_span.1
            ),
            ConcViolation::FootprintEscape { node, what, span, bound } => write!(
                f,
                "{node}: {what} [{}, {}) escapes the declared bound {bound}",
                span.0, span.1
            ),
            ConcViolation::PartitionOverlap { node, detail } => {
                write!(f, "{node}: partition broken: {detail}")
            }
            ConcViolation::ReachabilityError { from, to, from_wave, to_wave } => write!(
                f,
                "{to} (wave {to_wave}) depends on {from} (wave {from_wave}) but is not \
                 scheduled strictly later"
            ),
            ConcViolation::InterferenceEdgeMissing { a, b, resource } => write!(
                f,
                "{a} and {b} may run concurrently and overlap on {resource} but the \
                 interference graph has no edge between them"
            ),
            ConcViolation::CertificateForged { declared, computed } => write!(
                f,
                "certificate {declared:#018x} does not match the recomputed digest \
                 {computed:#018x}"
            ),
            ConcViolation::ScheduleBroken { detail } => {
                write!(f, "schedule broken: {detail}")
            }
        }
    }
}

/// The certificate [`verify_conc`] returns on success.
#[derive(Clone, Debug)]
pub struct ConcProof {
    /// Node count.
    pub nodes: usize,
    /// Conv nodes carrying a GEMM partition proof.
    pub gemm_nodes: usize,
    /// Value count.
    pub values: usize,
    /// Node names per wave, in wave order.
    pub waves: Vec<Vec<String>>,
    /// Count of incomparable (may-run-concurrently) node pairs.
    pub incomparable_pairs: usize,
    /// Count of certified interference edges.
    pub interference_edges: usize,
    /// Widest wave (1 = the plan is effectively serial).
    pub max_wave_width: usize,
    /// Declared activation-arena bytes the placements were proven within.
    pub arena_bytes: usize,
    /// Declared workspace-arena bytes the slices were proven within.
    pub workspace_bytes: usize,
    /// The validated certificate digest.
    pub certificate: u64,
}

impl ConcProof {
    /// Renders the proof as a deterministic aligned table (the golden-file
    /// format the CI `--conc --check` diffs).
    pub fn report(&self) -> String {
        let mut out = format!("{:<6} {:>5}  nodes\n", "wave", "width");
        for (w, names) in self.waves.iter().enumerate() {
            out.push_str(&format!("{:<6} {:>5}  {}\n", w, names.len(), names.join(" ")));
        }
        out.push_str(&format!(
            "nodes {}  gemm {}  values {}  waves {}  max width {}\n",
            self.nodes,
            self.gemm_nodes,
            self.values,
            self.waves.len(),
            self.max_wave_width
        ));
        out.push_str(&format!(
            "may-run-concurrently pairs {}  interference edges {}\n",
            self.incomparable_pairs, self.interference_edges
        ));
        out.push_str(&format!(
            "arena: wave-coarsened liveness disjoint within {} declared bytes\n",
            self.arena_bytes
        ));
        out.push_str(&format!(
            "workspace: concurrent slices disjoint within {} declared bytes\n",
            self.workspace_bytes
        ));
        out.push_str(&format!("certificate {:#018x}\n", self.certificate));
        out
    }

    /// Deterministic JSON rendering for machine consumption (`--json`).
    pub fn to_json(&self) -> String {
        let waves: Vec<String> = self
            .waves
            .iter()
            .map(|names| {
                let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
                format!("[{}]", quoted.join(","))
            })
            .collect();
        format!(
            "{{\n  \"nodes\":{},\n  \"gemm_nodes\":{},\n  \"values\":{},\n  \
\"waves\": [{}],\n  \"incomparable_pairs\":{},\n  \"interference_edges\":{},\n  \
\"max_wave_width\":{},\n  \"arena_bytes\":{},\n  \"workspace_bytes\":{},\n  \
\"certificate\":\"{:#018x}\"\n}}\n",
            self.nodes,
            self.gemm_nodes,
            self.values,
            waves.join(","),
            self.incomparable_pairs,
            self.interference_edges,
            self.max_wave_width,
            self.arena_bytes,
            self.workspace_bytes,
            self.certificate
        )
    }
}

/// Reachability under the dependency relation: `reach[i][j]` is true when
/// node `j` transitively consumes node `i`'s output. Nodes are required to
/// be in topological order (the plan verifier proves this independently).
fn reachability(nodes: &[ConcNode]) -> Vec<Vec<bool>> {
    let n = nodes.len();
    // producer[v] = node that writes value v.
    let mut producer: Vec<Option<usize>> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if producer.len() <= node.output {
            producer.resize(node.output + 1, None);
        }
        producer[node.output] = Some(i);
    }
    let mut reach = vec![vec![false; n]; n];
    for j in 0..n {
        for &v in &nodes[j].inputs {
            if let Some(i) = producer.get(v).copied().flatten() {
                if i < j {
                    reach[i][j] = true;
                    // Inherit everything that reaches the producer.
                    for row in reach.iter_mut().take(i) {
                        if row[i] {
                            row[j] = true;
                        }
                    }
                }
            }
        }
    }
    reach
}

/// True when nodes `i` and `j` are incomparable — neither can observe the
/// other's completion, so a scheduler is free to run them concurrently.
fn may_run_concurrently(reach: &[Vec<bool>], i: usize, j: usize) -> bool {
    !reach[i][j] && !reach[j][i]
}

/// How two node footprints can collide: `"arena"` when one's write span
/// touches the other's read or write spans, `"workspace"` when their
/// workspace slices share bytes.
fn overlap_resource(spec: &ConcSpec, i: usize, j: usize) -> Option<&'static str> {
    let (a, b) = (&spec.nodes[i], &spec.nodes[j]);
    let wa = spec.values[a.output].span();
    let wb = spec.values[b.output].span();
    let arena = wa.overlaps(&wb)
        || b.inputs.iter().any(|&v| wa.overlaps(&spec.values[v].span()))
        || a.inputs.iter().any(|&v| wb.overlaps(&spec.values[v].span()));
    if arena {
        return Some("arena");
    }
    if a.workspace.overlaps(&b.workspace) {
        return Some("workspace");
    }
    None
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

/// The certificate digest: FNV-1a over every fact the proof depends on —
/// node footprints, value placements, arena bounds, waves and interference
/// edges. Any drift between what was certified and what is executed changes
/// the digest, so a schedule cannot be spliced onto a different plan.
pub fn schedule_digest(spec: &ConcSpec, waves: &[Vec<usize>], interference: &[(usize, usize)]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_usize(&mut h, spec.nodes.len());
    for node in &spec.nodes {
        fnv(&mut h, node.name.as_bytes());
        for &v in &node.inputs {
            fnv_usize(&mut h, v);
        }
        fnv_usize(&mut h, node.output);
        fnv_usize(&mut h, node.workspace.offset);
        fnv_usize(&mut h, node.workspace.bytes);
        if let Some(g) = &node.gemm {
            fnv_usize(&mut h, g.m);
            fnv_usize(&mut h, g.k);
            fnv_usize(&mut h, g.n);
            fnv(&mut h, g.algo.to_string().as_bytes());
        }
        for s in &node.partition {
            fnv_usize(&mut h, s.col0);
            fnv_usize(&mut h, s.cols);
        }
    }
    fnv_usize(&mut h, spec.values.len());
    for v in &spec.values {
        fnv_usize(&mut h, v.offset);
        fnv_usize(&mut h, v.bytes);
    }
    fnv_usize(&mut h, spec.output_value);
    fnv_usize(&mut h, spec.arena_bytes);
    fnv_usize(&mut h, spec.workspace_bytes);
    fnv_usize(&mut h, waves.len());
    for wave in waves {
        fnv_usize(&mut h, wave.len());
        for &n in wave {
            fnv_usize(&mut h, n);
        }
    }
    fnv_usize(&mut h, interference.len());
    for &(a, b) in interference {
        fnv_usize(&mut h, a);
        fnv_usize(&mut h, b);
    }
    h
}

/// Computes the certified schedule for a spec: the interference edge set
/// over all may-run-concurrently pairs, greedy dependency-level waves that
/// never co-schedule an interfering pair, and the certificate digest.
///
/// The result verifies by construction: `verify_conc(spec, &schedule)` is
/// the planner's debug gate.
pub fn build_schedule(spec: &ConcSpec) -> ScheduleSpec {
    let n = spec.nodes.len();
    let reach = reachability(&spec.nodes);
    let mut interference = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if may_run_concurrently(&reach, i, j) && overlap_resource(spec, i, j).is_some() {
                interference.push((i, j));
            }
        }
    }
    // Level schedule: a node starts one wave after its last dependency, then
    // moves later until no wave-mate interferes with it.
    let mut wave_of = vec![0usize; n];
    for j in 0..n {
        let mut w = (0..j)
            .filter(|&i| reach[i][j])
            .map(|i| wave_of[i] + 1)
            .max()
            .unwrap_or(0);
        loop {
            let clash = (0..j).any(|i| {
                wave_of[i] == w
                    && (interference.contains(&(i, j)) || interference.contains(&(j, i)))
            });
            if !clash {
                break;
            }
            w += 1;
        }
        wave_of[j] = w;
    }
    let wave_count = wave_of.iter().copied().max().map_or(0, |m| m + 1);
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); wave_count];
    for (node, &w) in wave_of.iter().enumerate() {
        waves[w].push(node);
    }
    let certificate = schedule_digest(spec, &waves, &interference);
    ScheduleSpec { waves, interference, certificate }
}

/// Verifies a declared wave schedule against a spec, re-proving every claim
/// from scratch. Check order is fixed so each mutant of the negative catalog
/// is caught by its own witness before the certificate comparison runs:
/// schedule structure, reachability, footprints, partitions, interference
/// completeness, wave disjointness, wave-coarsened value liveness, and
/// finally the certificate digest.
pub fn verify_conc(spec: &ConcSpec, sched: &ScheduleSpec) -> Result<ConcProof, ConcViolation> {
    let n = spec.nodes.len();

    // -- 1. The wave list is a permutation of the nodes. ---------------------
    let mut wave_of = vec![usize::MAX; n];
    for (w, wave) in sched.waves.iter().enumerate() {
        for &node in wave {
            if node >= n {
                return Err(ConcViolation::ScheduleBroken {
                    detail: format!("wave {w} names node {node} but the plan has {n} nodes"),
                });
            }
            if wave_of[node] != usize::MAX {
                return Err(ConcViolation::ScheduleBroken {
                    detail: format!("node {} appears in two waves", spec.nodes[node].name),
                });
            }
            wave_of[node] = w;
        }
    }
    if let Some(missing) = wave_of.iter().position(|&w| w == usize::MAX) {
        return Err(ConcViolation::ScheduleBroken {
            detail: format!("node {} is not scheduled in any wave", spec.nodes[missing].name),
        });
    }
    for &(a, b) in &sched.interference {
        if a >= n || b >= n {
            return Err(ConcViolation::ScheduleBroken {
                detail: format!("interference edge ({a}, {b}) is out of range"),
            });
        }
    }

    // -- 2. Dependencies strictly increase across waves. ---------------------
    let reach = reachability(&spec.nodes);
    for j in 0..n {
        for i in 0..j {
            if reach[i][j] && wave_of[i] >= wave_of[j] {
                return Err(ConcViolation::ReachabilityError {
                    from: spec.nodes[i].name.clone(),
                    to: spec.nodes[j].name.clone(),
                    from_wave: wave_of[i],
                    to_wave: wave_of[j],
                });
            }
        }
    }

    // -- 3. Footprints stay inside their declared spans. ---------------------
    for (v, value) in spec.values.iter().enumerate() {
        if value.span().end() > spec.arena_bytes {
            return Err(ConcViolation::FootprintEscape {
                node: format!("v{v}"),
                what: "arena placement".into(),
                span: (value.offset, value.span().end()),
                bound: spec.arena_bytes,
            });
        }
    }
    for node in &spec.nodes {
        if node.workspace.end() > spec.workspace_bytes {
            return Err(ConcViolation::FootprintEscape {
                node: node.name.clone(),
                what: "workspace slice".into(),
                span: (node.workspace.offset, node.workspace.end()),
                bound: spec.workspace_bytes,
            });
        }
        if let Some(g) = &node.gemm {
            let required = g.required_workspace().total();
            if node.workspace.bytes < required {
                return Err(ConcViolation::FootprintEscape {
                    node: node.name.clone(),
                    what: "workspace requirement".into(),
                    span: (node.workspace.offset, node.workspace.offset + required),
                    bound: node.workspace.end(),
                });
            }
        }
    }

    // -- 4. Per-thread partitions: disjoint, covering, panel-bounded. --------
    // `check_spans` accepts the hardened empty spans and proves contiguity,
    // disjointness, NB alignment and coverage; on top of it the packed-panel
    // slices (prefix-carved per thread) must fit the certified panel budget,
    // and SDOT's NB-aligned interior boundaries guarantee the final padded
    // tile — the columns `[n, n.next_multiple_of(NB))` the kernel zero-fills
    // — belongs to exactly one thread.
    for node in &spec.nodes {
        let Some(g) = &node.gemm else { continue };
        if let Err(v) = check_spans(&node.partition, g.n) {
            return Err(ConcViolation::PartitionOverlap {
                node: node.name.clone(),
                detail: v.to_string(),
            });
        }
        let req = g.required_workspace();
        if matches!(g.algo, ArmAlgoKind::GemmWide | ArmAlgoKind::GemmNarrow) {
            let klen = DEFAULT_KC.min(g.k);
            let nc_tiles = DEFAULT_NC / NB;
            let panel_total: usize = node
                .partition
                .iter()
                .map(|s| nc_tiles.min(s.cols.div_ceil(NB)) * NB * klen)
                .sum();
            if panel_total > req.panels {
                return Err(ConcViolation::PartitionOverlap {
                    node: node.name.clone(),
                    detail: format!(
                        "packed panels need {panel_total} bytes but {} are certified",
                        req.panels
                    ),
                });
            }
        }
    }

    // -- 5. Every overlapping may-run-concurrently pair has an edge. ---------
    let has_edge = |i: usize, j: usize| {
        sched.interference.contains(&(i, j)) || sched.interference.contains(&(j, i))
    };
    for i in 0..n {
        for j in i + 1..n {
            if may_run_concurrently(&reach, i, j) {
                if let Some(resource) = overlap_resource(spec, i, j) {
                    if !has_edge(i, j) {
                        return Err(ConcViolation::InterferenceEdgeMissing {
                            a: spec.nodes[i].name.clone(),
                            b: spec.nodes[j].name.clone(),
                            resource,
                        });
                    }
                }
            }
        }
    }

    // -- 6. Wave-mates are interference-free. --------------------------------
    for wave in &sched.waves {
        for (x, &i) in wave.iter().enumerate() {
            for &j in wave.iter().skip(x + 1) {
                let (a, b) = (&spec.nodes[i], &spec.nodes[j]);
                let wa = spec.values[a.output].span();
                let wb = spec.values[b.output].span();
                if wa.overlaps(&wb) {
                    return Err(ConcViolation::ArenaInterference {
                        a: a.output,
                        a_span: (wa.offset, wa.end()),
                        b: b.output,
                        b_span: (wb.offset, wb.end()),
                        context: format!("both written in wave {}", wave_of[i]),
                    });
                }
                if a.workspace.overlaps(&b.workspace) {
                    return Err(ConcViolation::WorkspaceAliasing {
                        a: a.name.clone(),
                        a_span: (a.workspace.offset, a.workspace.end()),
                        b: b.name.clone(),
                        b_span: (b.workspace.offset, b.workspace.end()),
                    });
                }
                if has_edge(i, j) {
                    return Err(ConcViolation::ScheduleBroken {
                        detail: format!(
                            "interference edge between {} and {} violated within wave {}",
                            a.name, b.name, wave_of[i]
                        ),
                    });
                }
            }
        }
    }

    // -- 7. Value placements disjoint under wave-coarsened liveness. ---------
    // Under wave execution a value exists from the start of its defining
    // wave (inputs: before wave 0) until the end of the last wave that reads
    // it (the output value: the final wave). Overlapping wave ranges must
    // mean disjoint spans — this is the parallel generalization of the plan
    // verifier's serial offset-disjointness pass, and the reason
    // `memplan::assign_arena_with` exists.
    let last_wave = sched.waves.len().saturating_sub(1);
    let mut live: Vec<(usize, usize)> = vec![(0, 0); spec.values.len()];
    for (v, range) in live.iter_mut().enumerate() {
        let def = spec
            .nodes
            .iter()
            .enumerate()
            .find(|(_, node)| node.output == v)
            .map(|(i, _)| wave_of[i])
            .unwrap_or(0);
        let mut last = def;
        for (i, node) in spec.nodes.iter().enumerate() {
            if node.inputs.contains(&v) {
                last = last.max(wave_of[i]);
            }
        }
        if v == spec.output_value {
            last = last.max(last_wave);
        }
        *range = (def, last);
    }
    for a in 0..spec.values.len() {
        for b in a + 1..spec.values.len() {
            let (da, la) = live[a];
            let (db, lb) = live[b];
            if da <= lb && db <= la {
                let (sa, sb) = (spec.values[a].span(), spec.values[b].span());
                if sa.overlaps(&sb) {
                    return Err(ConcViolation::ArenaInterference {
                        a,
                        a_span: (sa.offset, sa.end()),
                        b,
                        b_span: (sb.offset, sb.end()),
                        context: format!("waves [{da}, {la}] and [{db}, {lb}]"),
                    });
                }
            }
        }
    }

    // -- 8. The certificate digest matches a full recomputation. -------------
    let computed = schedule_digest(spec, &sched.waves, &sched.interference);
    if computed != sched.certificate {
        return Err(ConcViolation::CertificateForged {
            declared: sched.certificate,
            computed,
        });
    }

    let mut incomparable = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            if may_run_concurrently(&reach, i, j) {
                incomparable += 1;
            }
        }
    }
    Ok(ConcProof {
        nodes: n,
        gemm_nodes: spec.nodes.iter().filter(|nd| nd.gemm.is_some()).count(),
        values: spec.values.len(),
        waves: sched
            .waves
            .iter()
            .map(|wave| wave.iter().map(|&i| spec.nodes[i].name.clone()).collect())
            .collect(),
        incomparable_pairs: incomparable,
        interference_edges: sched.interference.len(),
        max_wave_width: sched.waves.iter().map(Vec::len).max().unwrap_or(0),
        arena_bytes: spec.arena_bytes,
        workspace_bytes: spec.workspace_bytes,
        certificate: sched.certificate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: input -> a; a -> b; a -> c; (b, c) -> d. b and c are
    /// incomparable. Arena placements are always disjoint (both branch
    /// outputs feed the join, so they are co-live under *every* schedule);
    /// `disjoint` controls whether the branches' workspace slices collide —
    /// the overlap an interference edge can legitimately schedule around.
    fn diamond(disjoint: bool) -> ConcSpec {
        let ws_c = if disjoint { 64 } else { 32 };
        ConcSpec {
            nodes: vec![
                ConcNode {
                    name: "a".into(),
                    inputs: vec![0],
                    output: 1,
                    workspace: MemSpan { offset: 0, bytes: 64 },
                    gemm: None,
                    partition: Vec::new(),
                },
                ConcNode {
                    name: "b".into(),
                    inputs: vec![1],
                    output: 2,
                    workspace: MemSpan { offset: 0, bytes: 64 },
                    gemm: None,
                    partition: Vec::new(),
                },
                ConcNode {
                    name: "c".into(),
                    inputs: vec![1],
                    output: 3,
                    workspace: MemSpan { offset: ws_c, bytes: 64 },
                    gemm: None,
                    partition: Vec::new(),
                },
                ConcNode {
                    name: "d".into(),
                    inputs: vec![2, 3],
                    output: 4,
                    workspace: MemSpan::default(),
                    gemm: None,
                    partition: Vec::new(),
                },
            ],
            values: vec![
                ConcValue { offset: 0, bytes: 100 },
                ConcValue { offset: 100, bytes: 100 },
                ConcValue { offset: 200, bytes: 100 },
                ConcValue { offset: 300, bytes: 100 },
                ConcValue { offset: 0, bytes: 100 },
            ],
            output_value: 4,
            arena_bytes: 400,
            workspace_bytes: 128,
        }
    }

    #[test]
    fn diamond_schedules_b_and_c_in_one_wave() {
        let spec = diamond(true);
        let sched = build_schedule(&spec);
        let proof = verify_conc(&spec, &sched).expect("disjoint diamond certifies");
        assert_eq!(proof.max_wave_width, 2);
        assert_eq!(proof.incomparable_pairs, 1);
        assert_eq!(proof.interference_edges, 0);
        assert_eq!(sched.waves, vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn overlapping_branches_get_an_interference_edge_and_separate_waves() {
        let spec = diamond(false);
        let sched = build_schedule(&spec);
        assert_eq!(sched.interference, vec![(1, 2)]);
        assert_eq!(sched.waves, vec![vec![0], vec![1], vec![2], vec![3]]);
        let proof = verify_conc(&spec, &sched).expect("edge-constrained schedule certifies");
        assert_eq!(proof.max_wave_width, 1);
        assert_eq!(proof.interference_edges, 1);
    }

    #[test]
    fn dropped_interference_edge_is_caught() {
        let spec = diamond(false);
        let mut sched = build_schedule(&spec);
        sched.interference.clear();
        sched.certificate = schedule_digest(&spec, &sched.waves, &sched.interference);
        assert!(matches!(
            verify_conc(&spec, &sched),
            Err(ConcViolation::InterferenceEdgeMissing { resource: "workspace", .. })
        ));
    }

    #[test]
    fn dependent_nodes_in_one_wave_are_a_reachability_error() {
        let spec = diamond(true);
        let mut sched = build_schedule(&spec);
        sched.waves = vec![vec![0, 1], vec![2], vec![3]];
        sched.certificate = schedule_digest(&spec, &sched.waves, &sched.interference);
        assert!(matches!(
            verify_conc(&spec, &sched),
            Err(ConcViolation::ReachabilityError { .. })
        ));
    }

    #[test]
    fn forged_certificate_is_rejected() {
        let spec = diamond(true);
        let mut sched = build_schedule(&spec);
        sched.certificate ^= 1;
        assert!(matches!(
            verify_conc(&spec, &sched),
            Err(ConcViolation::CertificateForged { .. })
        ));
    }

    #[test]
    fn same_wave_workspace_aliasing_is_caught() {
        // The interference edge between b and c is declared, but the waves
        // co-schedule them anyway: the slice overlap is caught before the
        // edge-violation fallback.
        let spec = diamond(false);
        let mut sched = build_schedule(&spec);
        sched.waves = vec![vec![0], vec![1, 2], vec![3]];
        sched.certificate = schedule_digest(&spec, &sched.waves, &sched.interference);
        assert!(matches!(
            verify_conc(&spec, &sched),
            Err(ConcViolation::WorkspaceAliasing { .. })
        ));
    }

    #[test]
    fn shifted_arena_offset_is_caught_under_wave_liveness() {
        let mut spec = diamond(true);
        let sched = build_schedule(&spec);
        // Shift c's output onto b's output: both live into the join wave.
        spec.values[3].offset = spec.values[2].offset;
        let got = verify_conc(&spec, &sched);
        assert!(
            matches!(
                got,
                Err(ConcViolation::ArenaInterference { a: 2, b: 3, .. })
                    | Err(ConcViolation::InterferenceEdgeMissing { resource: "arena", .. })
            ),
            "got {got:?}"
        );
    }

    #[test]
    fn chains_certify_with_serial_waves() {
        // input -> a -> b: no incomparable pairs, one node per wave.
        let spec = ConcSpec {
            nodes: vec![
                ConcNode {
                    name: "a".into(),
                    inputs: vec![0],
                    output: 1,
                    workspace: MemSpan { offset: 0, bytes: 64 },
                    gemm: None,
                    partition: Vec::new(),
                },
                ConcNode {
                    name: "b".into(),
                    inputs: vec![1],
                    output: 2,
                    workspace: MemSpan { offset: 0, bytes: 64 },
                    gemm: None,
                    partition: Vec::new(),
                },
            ],
            values: vec![
                ConcValue { offset: 0, bytes: 10 },
                ConcValue { offset: 10, bytes: 10 },
                ConcValue { offset: 0, bytes: 10 },
            ],
            output_value: 2,
            arena_bytes: 20,
            workspace_bytes: 64,
        };
        let sched = build_schedule(&spec);
        let proof = verify_conc(&spec, &sched).expect("chain certifies");
        assert_eq!(proof.max_wave_width, 1);
        assert_eq!(proof.incomparable_pairs, 0);
    }
}
