//! Integer Winograd `F(2x2, 3x3)` convolution (paper Sec. 3.4).
//!
//! `Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A` with the canonical matrices
//!
//! ```text
//! G  = [1 0 0; ½ ½ ½; ½ -½ ½; 0 0 1]     (weight transform, range x 9/4)
//! Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]  (input transform, range x 4)
//! Aᵀ = [1 1 1 0; 0 1 -1 -1]              (output transform)
//! ```
//!
//! The fractional `G` rows are handled in two integer-exact ways:
//!
//! * **Exact mode (≤ 4 bit)** — store `Ū = R g Rᵀ` with `R = 2G`-style
//!   integer rows (`[1,1,1]` instead of `½[1,1,1]`), i.e. `Ū = γᵢγⱼU` with
//!   `γ = (1,2,2,1)`. The inverse scaling folds into an integer output
//!   transform `A₂ᵀ = 2·Aᵀ·diag(1/γ) = [2 1 1 0; 0 1 -1 -2]` followed by an
//!   exact `/4`. `|Ū| ≤ 9·2^{b-1} ≤ 72`, so it fits i8 through 4-bit and the
//!   result is **bit-exact** against direct convolution.
//! * **Rounded mode (5–6 bit)** — exactness is information-theoretically
//!   impossible in i8 (a 6-bit weight's true `U` has quarter resolution over
//!   ±72, i.e. 577 levels). Following deployed int8 Winograd practice, the
//!   *offline* weight transform stores a per-row halved
//!   `Ū = round(U / 2^{hᵢ+hⱼ-2})` with middle-row levels `h = 1` (5-bit,
//!   `Ū ≈ round(U)`, plain `Aᵀ` output transform — the paper's 9/4 range
//!   claim) or `h = 2` (6-bit, `Ū ≈ round(U/2)`, compensated by the integer
//!   `A₂ᵀ = [1 2 2 0; 0 2 -2 -1]`). The sub-LSB rounding error is the same
//!   winograd-domain quantization deployed int8 stacks accept; tests bound
//!   it.
//!
//! Either way the elementwise-multiply stage runs the `SMLAL` scheme with a
//! product bound computed from the transformed ranges (Sec. 3.4's reason for
//! the 4–6 bit restriction: 7-bit would need `|Ū| ≤ 144`).

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use crate::ConvOutput;
use lowbit_qgemm::gemm::schedule_gemm;
use lowbit_qgemm::{gemm, gemm_narrow, schedule_gemm_narrow, Scheme, SchemeKind};
use lowbit_tensor::{BitWidth, ConvShape, Layout, QTensor, Tensor};
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// `true` when the Winograd fast path applies to this bit width (2–6 bit;
/// the paper *uses* it for 4–6 bit because the MLA-scheme GEMM already wins
/// below that, which the cost model reproduces).
pub fn winograd_supported(bits: BitWidth) -> bool {
    bits.bits() <= 6
}

/// `true` when the transform is bit-exact (no winograd-domain rounding).
pub fn winograd_exact(bits: BitWidth) -> bool {
    bits.bits() <= 4
}

/// Magnitude bound of the transformed input `V = Bᵀ d B`: values lie in
/// `[-2^(b+1), 2^(b+1) - 1]` (the sum-sum path reaches `4·qmin`), which still
/// fits i8 at 6 bit (`-128`).
fn v_bound(bits: BitWidth) -> i32 {
    1i32 << (bits.bits() + 1)
}

/// Halving level applied to the two middle rows of the weight transform
/// (0 = exact integer `R g Rᵀ`).
fn h_mid(bits: BitWidth) -> u32 {
    match bits.bits() {
        0..=4 => 0,
        5 => 1,
        _ => 2,
    }
}

/// Worst-case |value| of the stored transformed weight `Ū`.
fn u_bound(bits: BitWidth) -> i32 {
    let qmax = 1i32 << (bits.bits() - 1); // |qmin| dominates
    let h = h_mid(bits);
    // Element (i, j) is bounded by (rowsum_i * rowsum_j * qmax) >> (h_i+h_j)
    // (+1 rounding when halved); rowsums are (1, 3, 3, 1).
    let mm = ((9 * qmax) >> (2 * h)) + if h > 0 { 1 } else { 0 };
    let me = ((3 * qmax) >> h) + if h > 0 { 1 } else { 0 };
    mm.max(me).max(qmax)
}

/// Worst-case magnitudes of the Winograd-domain GEMM operands for `bits`:
/// `(u, v)` with the stored transformed weight `Ū ∈ [-u, u]` and the
/// transformed input `V ∈ [-v, v - 1]`. This is the operand-range contract
/// the static verifier (`lowbit-verify`) feeds to the interval analysis when
/// proving the Sec. 3.4 inflated ranges still respect the drain ratios.
pub fn winograd_operand_bounds(bits: BitWidth) -> (i32, i32) {
    (u_bound(bits), v_bound(bits))
}

/// The Winograd-domain GEMM scheme for `bits`.
pub fn winograd_scheme(bits: BitWidth) -> Scheme {
    let bound = u_bound(bits) * v_bound(bits);
    Scheme::for_product_bound(SchemeKind::Smlal8, bound)
}

/// At tight drain ratios the 16x4 tile's per-drain spill MOVs outweigh its
/// operand reuse, so the Winograd GEMM switches to the spill-free narrow
/// 8x4 tile (see `lowbit_qgemm::narrow`). The paper fixes Alg. 1's 16x4 for
/// the direct GEMM path; the Winograd-domain kernel is unspecified, and this
/// is the register allocation "tailored for the instruction scheme".
fn winograd_uses_narrow_tile(bits: BitWidth) -> bool {
    winograd_scheme(bits).ratio() <= 8
}

/// Transforms one 3x3 weight into the 16 stored i8 coefficients:
/// `Ū[i][j] = round((Rᵢ g Rⱼᵀ) / 2^{hᵢ+hⱼ})` with `h = (0, h_mid, h_mid, 0)`.
fn transform_weight(g: &[i32; 9], bits: BitWidth) -> [i8; 16] {
    // Rows of R applied to the 3-vector (a, b, c).
    #[inline]
    fn apply_r(v: [i32; 3]) -> [i32; 4] {
        [v[0], v[0] + v[1] + v[2], v[0] - v[1] + v[2], v[2]]
    }
    // First pass: rows of g.
    let mut tmp = [[0i32; 3]; 4]; // 4 x 3
    for col in 0..3 {
        let r = apply_r([g[col], g[3 + col], g[6 + col]]);
        for (i, v) in r.iter().enumerate() {
            tmp[i][col] = *v;
        }
    }
    let hm = h_mid(bits);
    let h = [0u32, hm, hm, 0];
    let mut out = [0i8; 16];
    for (i, row) in tmp.iter().enumerate() {
        let r = apply_r(*row);
        for (j, &v) in r.iter().enumerate() {
            // Round-half-away-from-zero division by 2^(h_i + h_j).
            let s = h[i] + h[j];
            let scaled = if s == 0 {
                v
            } else {
                let half = 1i32 << (s - 1);
                if v >= 0 { (v + half) >> s } else { -((-v + half) >> s) }
            };
            debug_assert!(scaled.abs() <= u_bound(bits), "U out of bound: {scaled}");
            out[i * 4 + j] = scaled as i8;
        }
    }
    out
}

/// Transforms one 4x4 input patch: `V = Bᵀ d B` (always exact).
fn transform_input(d: &[i32; 16], bits: BitWidth) -> [i8; 16] {
    #[inline]
    fn apply_bt(v: [i32; 4]) -> [i32; 4] {
        [v[0] - v[2], v[1] + v[2], v[2] - v[1], v[1] - v[3]]
    }
    let mut tmp = [[0i32; 4]; 4];
    for col in 0..4 {
        let r = apply_bt([d[col], d[4 + col], d[8 + col], d[12 + col]]);
        for (i, v) in r.iter().enumerate() {
            tmp[i][col] = *v;
        }
    }
    let mut out = [0i8; 16];
    for (i, row) in tmp.iter().enumerate() {
        let r = apply_bt(*row);
        for (j, &v) in r.iter().enumerate() {
            debug_assert!(
                v >= -v_bound(bits) && v < v_bound(bits),
                "V out of bound: {v}"
            );
            out[i * 4 + j] = v as i8;
        }
    }
    out
}

/// Output transform of one 4x4 block of i32 GEMM results into 2x2 outputs.
///
/// The integer rows compensate the weight-transform row scaling `γᵢ`:
/// exact mode stored `Ū = γᵢγⱼU` with `γ = (1,2,2,1)` so uses
/// `A₂ᵀ = 2·Aᵀ·diag(1/γ)` and an exact `/4`; 5-bit stored `Ū ≈ U` so uses
/// the plain `Aᵀ`; 6-bit stored `Ū ≈ U/2` on middle rows so uses
/// `Aᵀ·diag(1/γ)` with `γ = (1,½,½,1)`.
fn transform_output(m: &[i32; 16], bits: BitWidth) -> [i32; 4] {
    let (row0, row1, shift): ([i32; 4], [i32; 4], u32) = match h_mid(bits) {
        0 => ([2, 1, 1, 0], [0, 1, -1, -2], 2),
        1 => ([1, 1, 1, 0], [0, 1, -1, -1], 0),
        _ => ([1, 2, 2, 0], [0, 2, -2, -1], 0),
    };
    let apply = |v: [i32; 4]| -> [i32; 2] {
        [
            row0[0] * v[0] + row0[1] * v[1] + row0[2] * v[2] + row0[3] * v[3],
            row1[0] * v[0] + row1[1] * v[1] + row1[2] * v[2] + row1[3] * v[3],
        ]
    };
    let mut tmp = [[0i32; 4]; 2]; // 2 x 4
    for col in 0..4 {
        let r = apply([m[col], m[4 + col], m[8 + col], m[12 + col]]);
        tmp[0][col] = r[0];
        tmp[1][col] = r[1];
    }
    let mut out = [0i32; 4];
    for (i, row) in tmp.iter().enumerate() {
        let r = apply(*row);
        for (j, &v) in r.iter().enumerate() {
            out[i * 2 + j] = if shift > 0 {
                debug_assert_eq!(v & ((1 << shift) - 1), 0, "exact division expected");
                v >> shift
            } else {
                v
            };
        }
    }
    out
}

/// Runs the Winograd `F(2x2, 3x3)` convolution.
///
/// Panics if the shape is not 3x3/stride-1 or the bit width exceeds 6.
pub fn winograd_conv(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert!(shape.winograd_applicable(), "requires 3x3 stride-1");
    let bits = input.bits().max(weights.bits());
    assert!(winograd_supported(bits), "winograd supports <= 6 bit");
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );

    let (oh, ow) = (shape.out_h(), shape.out_w());
    let (ty, tx) = (oh.div_ceil(2), ow.div_ceil(2));
    let n_tiles = shape.batch * ty * tx;

    // Offline weight transform: 16 matrices of c_out x c_in.
    let mut u = vec![vec![0i8; shape.c_out * shape.c_in]; 16];
    for co in 0..shape.c_out {
        for ci in 0..shape.c_in {
            let mut g = [0i32; 9];
            for (idx, gv) in g.iter_mut().enumerate() {
                *gv = weights.get((co, ci, idx / 3, idx % 3)) as i32;
            }
            let t = transform_weight(&g, bits);
            for (pos, &tv) in t.iter().enumerate() {
                u[pos][co * shape.c_in + ci] = tv;
            }
        }
    }

    // Input transform: 16 matrices of c_in x n_tiles.
    let mut v = vec![vec![0i8; shape.c_in * n_tiles]; 16];
    for b in 0..shape.batch {
        for ci in 0..shape.c_in {
            for tyy in 0..ty {
                for txx in 0..tx {
                    let tile = (b * ty + tyy) * tx + txx;
                    let mut d = [0i32; 16];
                    for r in 0..4 {
                        let iy = (2 * tyy + r) as isize - shape.pad as isize;
                        if iy < 0 || iy >= shape.h as isize {
                            continue;
                        }
                        for c in 0..4 {
                            let ix = (2 * txx + c) as isize - shape.pad as isize;
                            if ix < 0 || ix >= shape.w as isize {
                                continue;
                            }
                            d[r * 4 + c] =
                                input.get((b, ci, iy as usize, ix as usize)) as i32;
                        }
                    }
                    let t = transform_input(&d, bits);
                    for (pos, &tv) in t.iter().enumerate() {
                        v[pos][ci * n_tiles + tile] = tv;
                    }
                }
            }
        }
    }

    // 16 position-wise GEMMs in the Winograd domain.
    let scheme = winograd_scheme(bits);
    let narrow = winograd_uses_narrow_tile(bits);
    let mut m_mats = Vec::with_capacity(16);
    for pos in 0..16 {
        let out = if narrow {
            gemm_narrow(&scheme, &u[pos], &v[pos], shape.c_out, shape.c_in, n_tiles)
        } else {
            gemm(&scheme, &u[pos], &v[pos], shape.c_out, shape.c_in, n_tiles)
        };
        m_mats.push(out.c);
    }

    // Output transform back to NCHW.
    let mut acc: Tensor<i32> = Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nchw);
    for co in 0..shape.c_out {
        for b in 0..shape.batch {
            for tyy in 0..ty {
                for txx in 0..tx {
                    let tile = (b * ty + tyy) * tx + txx;
                    let mut m = [0i32; 16];
                    for (pos, mv) in m.iter_mut().enumerate() {
                        *mv = m_mats[pos][co * n_tiles + tile];
                    }
                    let y = transform_output(&m, bits);
                    for r in 0..2 {
                        let oy = 2 * tyy + r;
                        if oy >= oh {
                            continue;
                        }
                        for cx in 0..2 {
                            let ox = 2 * txx + cx;
                            if ox >= ow {
                                continue;
                            }
                            acc.set((b, co, oy, ox), y[r * 2 + cx]);
                        }
                    }
                }
            }
        }
    }

    ConvOutput {
        acc,
        schedule: schedule_winograd_conv(bits, shape),
    }
}

/// Analytic schedule of the Winograd pipeline: input transform, 16 GEMMs
/// (with their packing), output transform. The weight transform is offline
/// (model load time) and charged as a bulk stage like weight packing.
pub fn schedule_winograd_conv(bits: BitWidth, shape: &ConvShape) -> KernelSchedule {
    assert!(shape.winograd_applicable() && winograd_supported(bits));
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let n_tiles = shape.batch * oh.div_ceil(2) * ow.div_ceil(2);
    let scheme = winograd_scheme(bits);

    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "wg weight transform",
        (shape.c_out * shape.c_in * 9) as u64,
        (shape.c_out * shape.c_in * 16) as u64,
    ));
    // Input transform: per (channel, tile) a strided 4-row gather, the
    // 32-op BᵀdB transform (partially vectorizable on the in-order A53,
    // including address arithmetic), and a scatter of 16 single bytes into
    // 16 distinct position matrices (cache-hostile).
    let tc = (shape.c_in * n_tiles) as u64;
    let mut itc = InstCounts::default();
    itc.loads = 4 * tc;
    itc.load_bytes = 64 * tc;
    itc.neon_alu = 88 * tc;
    itc.stores = 16 * tc;
    itc.store_bytes = 16 * tc;
    sched.push(StageCost::compute("wg input transform", itc));

    // 16 Winograd-domain GEMMs (pack A is the offline-transformed weight, so
    // only its packing is charged, consistent with the GEMM path).
    let gemm_sched = if winograd_uses_narrow_tile(bits) {
        schedule_gemm_narrow(&scheme, shape.c_out, shape.c_in, n_tiles)
    } else {
        schedule_gemm(&scheme, shape.c_out, shape.c_in, n_tiles)
    };
    for stage in gemm_sched.stages {
        let mut counts = InstCounts::default();
        counts.add_scaled(&stage.counts, 16);
        sched.push(StageCost::compute(stage.name, counts));
    }

    // Output transform: per (c_out, tile) 16 scattered i32 gathers from the
    // 16 position matrices, the 24-op i32 AᵀMA transform plus scaling, and
    // the 2x2 store.
    let oc = (shape.c_out * n_tiles) as u64;
    let mut otc = InstCounts::default();
    otc.loads = 16 * oc;
    otc.load_bytes = 64 * oc;
    otc.neon_alu = 96 * oc;
    otc.stores = 4 * oc;
    otc.store_bytes = 16 * oc;
    sched.push(StageCost::compute("wg output transform", otc));
    sched.push(crate::gemm_conv::requant_stage(shape));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{direct_conv, schedule_gemm_conv};
    use neon_sim::CortexA53;

    fn case(shape: ConvShape, bits: BitWidth, seed: u64) -> (ConvOutput, Tensor<i32>) {
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            bits,
            seed,
        );
        let weights = QTensor::random(
            (shape.c_out, shape.c_in, 3, 3),
            Layout::Nchw,
            bits,
            seed + 1,
        );
        let out = winograd_conv(&input, &weights, &shape);
        let oracle = direct_conv(&input, &weights, &shape);
        (out, oracle)
    }

    #[test]
    fn exact_mode_is_bit_exact() {
        for bits in [BitWidth::W2, BitWidth::W3, BitWidth::W4] {
            let shape = ConvShape::new(1, 3, 8, 8, 5, 3, 1, 1);
            let (out, oracle) = case(shape, bits, 7 + bits.bits() as u64);
            assert_eq!(out.acc.data(), oracle.data(), "{bits}");
        }
    }

    #[test]
    fn exact_mode_handles_odd_output_and_batch() {
        let shape = ConvShape::new(2, 2, 7, 9, 3, 3, 1, 1); // 7x9 output, odd
        let (out, oracle) = case(shape, BitWidth::W4, 100);
        assert_eq!(out.acc.data(), oracle.data());
    }

    #[test]
    fn exact_mode_no_padding() {
        let shape = ConvShape::new(1, 2, 6, 6, 2, 3, 1, 0); // 4x4 output
        let (out, oracle) = case(shape, BitWidth::W3, 200);
        assert_eq!(out.acc.data(), oracle.data());
    }

    #[test]
    fn rounded_mode_error_is_sub_lsb() {
        // 5/6-bit: the winograd-domain rounding perturbs each weight tap by
        // < 0.5 of a quarter-unit; the end-to-end error per output is bounded
        // by c_in * (sum of |A| coefficients)^2 * max|V| rounding analysis.
        // Empirically it stays well inside the requantization step; assert a
        // conservative bound relative to the accumulator magnitude.
        for bits in [BitWidth::W5, BitWidth::W6] {
            let shape = ConvShape::new(1, 4, 10, 10, 4, 3, 1, 1);
            let (out, oracle) = case(shape, bits, 300 + bits.bits() as u64);
            let max_err = out
                .acc
                .data()
                .iter()
                .zip(oracle.data())
                .map(|(a, b)| (a - b).abs())
                .max()
                .unwrap();
            // Each of c_in=4 channels contributes at most 0.5 units of
            // transformed-weight rounding per position, amplified by |V| and
            // the output-transform coefficient mass (<= 5 per side at 6-bit).
            let bound = 4 * 25 * v_bound(bits) / 2;
            assert!(
                max_err <= bound,
                "{bits}: rounding error {max_err} exceeds bound {bound}"
            );
            // And it must stay a small fraction of the accumulator range —
            // at 6-bit the fast (h=2) transform trades ~1 weight-LSB of
            // winograd-domain rounding for the drain-ratio win (see module
            // docs and EXPERIMENTS.md).
            let max_acc = oracle.data().iter().map(|v| v.abs()).max().unwrap();
            assert!(max_err as f64 <= 0.12 * max_acc as f64 + 64.0);
        }
    }

    #[test]
    fn transformed_operands_fit_i8() {
        // Bound check is a debug assertion inside the transforms; drive it
        // with extreme values.
        for bits in [BitWidth::W4, BitWidth::W5, BitWidth::W6] {
            let g = [bits.qmin() as i32; 9];
            let _ = transform_weight(&g, bits);
            let d = {
                let mut d = [bits.qmin() as i32; 16];
                // Alternating extremes maximize the subtract rows.
                for (i, v) in d.iter_mut().enumerate() {
                    if i % 2 == 0 {
                        *v = bits.qmax() as i32;
                    }
                }
                d
            };
            let _ = transform_input(&d, bits);
        }
    }

    #[test]
    fn winograd_models_faster_than_gemm_at_4_to_6_bit() {
        // Fig. 8: winograd beats the GEMM path on 3x3 s1 layers at 4-6 bit.
        let model = CortexA53::cost_model();
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        for bits in [BitWidth::W4, BitWidth::W5, BitWidth::W6] {
            let wg = schedule_winograd_conv(bits, &shape).cycles(&model);
            let gm = schedule_gemm_conv(&Scheme::for_bits(bits), &shape).cycles(&model);
            assert!(
                wg < gm,
                "{bits}: winograd ({wg:.0}) should beat GEMM ({gm:.0})"
            );
        }
    }

    #[test]
    fn winograd_does_not_beat_mla_gemm_at_2_bit() {
        // Sec. 3.4: MLA's 2x throughput offsets winograd's 2.25x MAC saving.
        let model = CortexA53::cost_model();
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let wg = schedule_winograd_conv(BitWidth::W2, &shape).cycles(&model);
        let gm = schedule_gemm_conv(&Scheme::for_bits(BitWidth::W2), &shape).cycles(&model);
        assert!(
            wg > 0.85 * gm,
            "2-bit winograd should not meaningfully beat the MLA GEMM"
        );
    }

    #[test]
    fn six_bit_winograd_takes_the_narrow_tile() {
        // Ratio 7 at 6-bit: the tailored allocation must kick in and help.
        assert!(super::winograd_uses_narrow_tile(BitWidth::W6));
        assert!(!super::winograd_uses_narrow_tile(BitWidth::W4)); // ratio 14: wide wins
        // And the narrow-tile path stays bit-consistent (rounded mode bound
        // already verified; exactness at 4-bit is unaffected since it keeps
        // the wide tile).
        let shape = ConvShape::new(1, 3, 8, 8, 4, 3, 1, 1);
        let input = QTensor::random((1, 3, 8, 8), Layout::Nchw, BitWidth::W6, 88);
        let weights = QTensor::random((4, 3, 3, 3), Layout::Nchw, BitWidth::W6, 89);
        let out = winograd_conv(&input, &weights, &shape);
        assert_eq!(out.acc.dims(), (1, 4, 8, 8));
    }

    #[test]
    #[should_panic(expected = "winograd supports")]
    fn rejects_7_bit() {
        let shape = ConvShape::new(1, 2, 6, 6, 2, 3, 1, 1);
        let input = QTensor::random((1, 2, 6, 6), Layout::Nchw, BitWidth::W7, 1);
        let weights = QTensor::random((2, 2, 3, 3), Layout::Nchw, BitWidth::W7, 2);
        let _ = winograd_conv(&input, &weights, &shape);
    }

    #[test]
    #[should_panic(expected = "3x3 stride-1")]
    fn rejects_strided_shapes() {
        let shape = ConvShape::new(1, 2, 6, 6, 2, 3, 2, 1);
        let input = QTensor::random((1, 2, 6, 6), Layout::Nchw, BitWidth::W4, 1);
        let weights = QTensor::random((2, 2, 3, 3), Layout::Nchw, BitWidth::W4, 2);
        let _ = winograd_conv(&input, &weights, &shape);
    }
}
