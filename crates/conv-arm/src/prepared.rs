//! Prepared convolutions: weight packing hoisted to model-load time.
//!
//! The per-layer measurements (and Fig. 7) charge weight packing on every
//! call, as the paper does; a deployment packs each layer's weights once and
//! amortizes the cost to zero. [`PreparedConv`] is that API: construction
//! performs the pad/pack (Fig. 2) of the weight matrix, execution reuses it,
//! and the schedule drops the `pack A` stage.

use crate::gemm_conv::{matrix_to_nchw, requant_stage};
use crate::ConvOutput;
use lowbit_qgemm::gemm::{gemm_prepacked, schedule_gemm};
use lowbit_qgemm::{pack_a, pack_b, PackedA, Scheme};
use lowbit_tensor::{im2col_nchw, BitWidth, ConvShape, QTensor};
use neon_sim::{KernelSchedule, StageCost};

/// A convolution with pre-packed weights (explicit-GEMM path).
#[derive(Clone, Debug)]
pub struct PreparedConv {
    shape: ConvShape,
    bits: BitWidth,
    scheme: Scheme,
    packed_a: PackedA,
}

impl PreparedConv {
    /// Packs the weights for `shape` once.
    pub fn new(weights: &QTensor, shape: &ConvShape) -> PreparedConv {
        assert_eq!(
            weights.dims(),
            (shape.c_out, shape.c_in, shape.kh, shape.kw)
        );
        let bits = weights.bits();
        let scheme = Scheme::for_bits(bits);
        let packed_a = pack_a(weights.data(), shape.gemm_m(), shape.gemm_k());
        PreparedConv {
            shape: *shape,
            bits,
            scheme,
            packed_a,
        }
    }

    /// The weight bit width the kernel was prepared for.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Runs the convolution; activations may be at any width up to the
    /// prepared one (the drain ratio was fixed at preparation).
    pub fn execute(&self, input: &QTensor) -> ConvOutput {
        assert!(
            input.bits() <= self.bits,
            "activations ({}) exceed the prepared width ({})",
            input.bits(),
            self.bits
        );
        let shape = &self.shape;
        let col = im2col_nchw(input, shape);
        let pb = pack_b(&col.data, shape.gemm_k(), shape.gemm_n());
        let out = gemm_prepacked(&self.scheme, &self.packed_a, &pb);
        ConvOutput {
            acc: matrix_to_nchw(&out.c, shape),
            schedule: self.schedule(),
        }
    }

    /// Analytic schedule: the full pipeline minus the amortized `pack A`.
    pub fn schedule(&self) -> KernelSchedule {
        let shape = &self.shape;
        let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
        let mut sched = KernelSchedule::new();
        sched.push(StageCost::bulk_move(
            "im2col",
            (k * n) as u64,
            (k * n) as u64,
        ));
        for stage in schedule_gemm(&self.scheme, m, k, n).stages {
            if stage.name != "pack A" {
                sched.push(stage);
            }
        }
        sched.push(requant_stage(shape));
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{direct_conv, gemm_conv};
    use lowbit_tensor::Layout;
    use neon_sim::CortexA53;

    fn fixtures(bits: BitWidth) -> (QTensor, QTensor, ConvShape) {
        let shape = ConvShape::new(1, 6, 9, 9, 7, 3, 1, 1);
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            bits,
            71,
        );
        let weights = QTensor::random(
            (shape.c_out, shape.c_in, shape.kh, shape.kw),
            Layout::Nchw,
            bits,
            72,
        );
        (input, weights, shape)
    }

    #[test]
    fn prepared_conv_is_exact() {
        for bits in [BitWidth::W2, BitWidth::W5, BitWidth::W8] {
            let (input, weights, shape) = fixtures(bits);
            let prepared = PreparedConv::new(&weights, &shape);
            let out = prepared.execute(&input);
            assert_eq!(
                out.acc.data(),
                direct_conv(&input, &weights, &shape).data(),
                "{bits}"
            );
        }
    }

    #[test]
    fn preparation_amortizes_the_pack_a_stage() {
        let (input, weights, shape) = fixtures(BitWidth::W4);
        let model = CortexA53::cost_model();
        let prepared = PreparedConv::new(&weights, &shape).execute(&input);
        let unprepared = gemm_conv(&input, &weights, &shape);
        assert_eq!(prepared.schedule.stage_cycles("pack A", &model), 0.0);
        assert!(unprepared.schedule.stage_cycles("pack A", &model) > 0.0);
        assert!(
            prepared.schedule.cycles(&model) < unprepared.schedule.cycles(&model),
            "amortization must show up in the modeled time"
        );
    }

    #[test]
    fn repeated_execution_reuses_the_packing() {
        let (input, weights, shape) = fixtures(BitWidth::W6);
        let prepared = PreparedConv::new(&weights, &shape);
        let a = prepared.execute(&input);
        let b = prepared.execute(&input);
        assert_eq!(a.acc.data(), b.acc.data());
    }

    #[test]
    #[should_panic(expected = "exceed the prepared width")]
    fn rejects_wider_activations() {
        let (_, weights, shape) = fixtures(BitWidth::W4);
        let prepared = PreparedConv::new(&weights, &shape);
        let wide = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            BitWidth::W8,
            9,
        );
        let _ = prepared.execute(&wide);
    }
}
