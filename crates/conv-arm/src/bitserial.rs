//! TVM-like bit-serial (popcount) 2-bit convolution — the Fig. 9 baseline.
//!
//! Following Cowan et al. (the paper's TVM comparison), signed 2-bit operands
//! are offset to unsigned `u = v + 2 ∈ [0, 3]`, decomposed into two bit
//! planes, and the dot product is computed as
//!
//! ```text
//! Σ a·w = Σ aᵤwᵤ - 2Σaᵤ - 2Σwᵤ + 4K,   Σ aᵤwᵤ = Σᵢⱼ 2^(i+j)·popcnt(aᵢ & wⱼ)
//! ```
//!
//! The NEON kernel shape is `AND` + `CNT` + `UADALP` per 128-bit chunk per
//! plane pair. TVM's auto-generated kernels do not reach hand-scheduled issue
//! efficiency; the schedule applies a calibrated [`TVM_KERNEL_EFFICIENCY`]
//! factor (documented in EXPERIMENTS.md) to the compute stage.

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use crate::gemm_conv::matrix_to_nchw;
use crate::ConvOutput;
use lowbit_tensor::{im2col_nchw, BitWidth, ConvShape, QTensor};
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// Issue efficiency of the TVM-generated popcount kernel relative to
/// hand-scheduled assembly (calibrated once against Fig. 9's band).
pub const TVM_KERNEL_EFFICIENCY: f64 = 0.4;

/// Offset applied to map signed 2-bit `[-2, 1]` onto unsigned `[0, 3]`.
const OFFSET: i32 = 2;

/// Two bit planes over `words`-length u64 bitmaps.
#[derive(Clone, Debug)]
struct BitPlanes {
    plane0: Vec<u64>,
    plane1: Vec<u64>,
    /// Per-vector sum of unsigned values (for the offset correction).
    usum: i64,
}

fn pack_planes(values: impl Iterator<Item = i8>, k: usize) -> BitPlanes {
    let words = k.div_ceil(64);
    let mut plane0 = vec![0u64; words];
    let mut plane1 = vec![0u64; words];
    let mut usum = 0i64;
    for (idx, v) in values.enumerate() {
        let u = (v as i32 + OFFSET) as u64;
        debug_assert!(u <= 3, "value {v} is not 2-bit");
        usum += u as i64;
        if u & 1 != 0 {
            plane0[idx / 64] |= 1 << (idx % 64);
        }
        if u & 2 != 0 {
            plane1[idx / 64] |= 1 << (idx % 64);
        }
    }
    BitPlanes { plane0, plane1, usum }
}

fn popcnt_dot(a: &BitPlanes, b: &BitPlanes) -> i64 {
    let mut sum = 0i64;
    for ((i, j), weight) in [((0, 0), 1i64), ((0, 1), 2), ((1, 0), 2), ((1, 1), 4)] {
        let pa = if i == 0 { &a.plane0 } else { &a.plane1 };
        let pb = if j == 0 { &b.plane0 } else { &b.plane1 };
        let mut cnt = 0u64;
        for (wa, wb) in pa.iter().zip(pb) {
            cnt += (wa & wb).count_ones() as u64;
        }
        sum += weight * cnt as i64;
    }
    sum
}

/// Runs the bit-serial 2-bit convolution (A2W2).
pub fn bitserial_conv(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert_eq!(input.bits(), BitWidth::W2, "bitserial baseline is A2W2");
    assert_eq!(weights.bits(), BitWidth::W2);
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let col = im2col_nchw(input, shape);

    // Caveat for correctness: im2col zero-padding contributes literal signed
    // zeros, but the unsigned offset trick shifts every *tap* by +2. The
    // padded taps must therefore be packed as u = 2 (signed 0), which the
    // offset of the zero i8 already produces — no special casing needed.
    let w_rows: Vec<BitPlanes> = (0..m)
        .map(|row| pack_planes(weights.data()[row * k..(row + 1) * k].iter().copied(), k))
        .collect();
    let b_cols: Vec<BitPlanes> = (0..n)
        .map(|cix| pack_planes((0..k).map(|r| col.get(r, cix)), k))
        .collect();

    let mut c = vec![0i32; m * n];
    for (row, wr) in w_rows.iter().enumerate() {
        for (cix, bc) in b_cols.iter().enumerate() {
            let uu = popcnt_dot(wr, bc);
            let dot = uu - 2 * wr.usum - 2 * bc.usum + 4 * k as i64;
            c[row * n + cix] = dot as i32;
        }
    }

    ConvOutput {
        acc: matrix_to_nchw(&c, shape),
        schedule: schedule_bitserial_conv(shape),
    }
}

/// Analytic schedule for the TVM-like pipeline: im2col, bit-plane packing,
/// the tiled popcount kernel (8x4 output tiles over 128-bit chunks), and the
/// offset-correction epilogue.
pub fn schedule_bitserial_conv(shape: &ConvShape) -> KernelSchedule {
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "im2col",
        (k * n) as u64,
        (k * n) as u64,
    ));
    // Bit packing: read both operands, write 2 planes of 1 bit per element.
    sched.push(StageCost::bulk_move(
        "bit pack",
        (m * k + k * n) as u64,
        ((m * k + k * n) / 4) as u64,
    ));

    // Popcount kernel over 8x4 tiles: per 128-bit chunk, the 8 row bitmaps
    // (x2 planes) and 4 column bitmaps (x2 planes) are loaded once, and each
    // of the 32 outputs runs 4 plane pairs x (AND + CNT + UADALP).
    let tiles = m.div_ceil(8) as u64 * n.div_ceil(4) as u64;
    let chunks = k.div_ceil(128) as u64;
    let mut kc = InstCounts::default();
    kc.loads = tiles * chunks * 24; // (8 + 4) bitmaps x 2 planes
    kc.load_bytes = kc.loads * 16;
    let compute = tiles * chunks * 32 * 12; // 32 outputs x 4 pairs x 3 insts
    // TVM codegen inefficiency shows up as extra issue slots.
    kc.neon_alu = (compute as f64 / TVM_KERNEL_EFFICIENCY) as u64;
    kc.stores = tiles * 8; // 32 i32 per tile
    kc.store_bytes = kc.stores * 16;
    sched.push(StageCost::compute("popcount kernel", kc));

    // Correction epilogue: row/column unsigned sums + 4 scalar fixups per
    // output (vectorized).
    let mut ec = InstCounts::default();
    ec.neon_alu = ((m + n) as u64 * k.div_ceil(16) as u64) + (m * n) as u64;
    sched.push(StageCost::compute("offset correction", ec));
    sched.push(crate::gemm_conv::requant_stage(shape));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{direct_conv, schedule_gemm_conv};
    use lowbit_tensor::Layout;
    use neon_sim::CortexA53;

    #[test]
    fn matches_direct_conv() {
        let shape = ConvShape::new(1, 4, 8, 8, 6, 3, 1, 1);
        let input = QTensor::random((1, 4, 8, 8), Layout::Nchw, BitWidth::W2, 81);
        let weights = QTensor::random((6, 4, 3, 3), Layout::Nchw, BitWidth::W2, 82);
        let out = bitserial_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), direct_conv(&input, &weights, &shape).data());
    }

    #[test]
    fn matches_direct_conv_strided_batched() {
        let shape = ConvShape::new(2, 3, 9, 7, 4, 3, 2, 1);
        let input = QTensor::random((2, 3, 9, 7), Layout::Nchw, BitWidth::W2, 83);
        let weights = QTensor::random((4, 3, 3, 3), Layout::Nchw, BitWidth::W2, 84);
        let out = bitserial_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), direct_conv(&input, &weights, &shape).data());
    }

    #[test]
    fn handles_k_not_multiple_of_64() {
        // K = 3*3*3 = 27: exercises the partial-word path.
        let shape = ConvShape::new(1, 3, 6, 6, 2, 3, 1, 0);
        let input = QTensor::random((1, 3, 6, 6), Layout::Nchw, BitWidth::W2, 85);
        let weights = QTensor::random((2, 3, 3, 3), Layout::Nchw, BitWidth::W2, 86);
        let out = bitserial_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), direct_conv(&input, &weights, &shape).data());
    }

    #[test]
    fn our_2bit_gemm_models_faster_than_tvm_popcount() {
        // Fig. 9: our 2-bit GEMM beats the TVM baseline on typical layers.
        let model = CortexA53::cost_model();
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let tvm = schedule_bitserial_conv(&shape).cycles(&model);
        let ours = schedule_gemm_conv(
            &lowbit_qgemm::Scheme::for_bits(BitWidth::W2),
            &shape,
        )
        .cycles(&model);
        let speedup = tvm / ours;
        assert!(
            (1.2..=2.6).contains(&speedup),
            "expected a Fig. 9-like speedup band, got {speedup}"
        );
    }

    #[test]
    #[should_panic(expected = "A2W2")]
    fn rejects_non_2bit_inputs() {
        let shape = ConvShape::new(1, 2, 4, 4, 2, 1, 1, 0);
        let input = QTensor::random((1, 2, 4, 4), Layout::Nchw, BitWidth::W4, 1);
        let weights = QTensor::random((2, 2, 1, 1), Layout::Nchw, BitWidth::W2, 2);
        let _ = bitserial_conv(&input, &weights, &shape);
    }
}
