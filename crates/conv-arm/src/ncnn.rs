//! The ncnn-like 8-bit baseline (paper Sec. 5.2's description of ncnn):
//! im2col explicit GEMM where 8-bit operands are pre-widened to 16 bits and
//! `SMLAL vd.4s` accumulates directly into 32-bit registers — no drain
//! instructions, but half the MAC lanes and double the operand traffic.

use crate::gemm_conv::matrix_to_nchw;
use crate::ConvOutput;
use lowbit_qgemm::gemm::{gemm_ncnn, schedule_gemm};
use lowbit_qgemm::Scheme;
use lowbit_tensor::{im2col_nchw, ConvShape, QTensor};
use neon_sim::{KernelSchedule, StageCost};

/// Runs the ncnn-like 8-bit convolution.
pub fn ncnn_conv(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let col = im2col_nchw(input, shape);
    let out = gemm_ncnn(weights.data(), &col.data, m, k, n);
    ConvOutput {
        acc: matrix_to_nchw(&out.c, shape),
        schedule: schedule_ncnn_conv(shape),
    }
}

/// Analytic schedule for the ncnn-like pipeline.
pub fn schedule_ncnn_conv(shape: &ConvShape) -> KernelSchedule {
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "im2col",
        (k * n) as u64,
        (k * n) as u64,
    ));
    for stage in schedule_gemm(&Scheme::ncnn16(), m, k, n).stages {
        sched.push(stage);
    }
    sched.push(crate::gemm_conv::requant_stage(shape));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{direct_conv, gemm_conv};
    use lowbit_tensor::{BitWidth, Layout};
    use neon_sim::CortexA53;

    #[test]
    fn matches_direct_conv() {
        let shape = ConvShape::new(2, 4, 8, 8, 6, 3, 1, 1);
        let input = QTensor::random((2, 4, 8, 8), Layout::Nchw, BitWidth::W8, 61);
        let weights = QTensor::random((6, 4, 3, 3), Layout::Nchw, BitWidth::W8, 62);
        let out = ncnn_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), direct_conv(&input, &weights, &shape).data());
    }

    #[test]
    fn low_bit_gemm_conv_models_faster_than_ncnn() {
        // The headline of Fig. 7: 2-bit and 4-bit beat the ncnn 8-bit
        // baseline on the same layer; 8-bit does not beat it.
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let model = CortexA53::cost_model();
        let ncnn = schedule_ncnn_conv(&shape).cycles(&model);
        let ours = |bits: BitWidth| {
            crate::schedule_gemm_conv(&lowbit_qgemm::Scheme::for_bits(bits), &shape)
                .cycles(&model)
        };
        assert!(ours(BitWidth::W2) < ncnn, "2-bit must beat ncnn");
        assert!(ours(BitWidth::W4) < ncnn, "4-bit must beat ncnn");
        let speedup8 = ncnn / ours(BitWidth::W8);
        assert!(
            (0.7..=1.1).contains(&speedup8),
            "8-bit should be at or below parity, got {speedup8}"
        );
    }

    #[test]
    fn gemm_conv_and_ncnn_agree_numerically_at_8_bit() {
        let shape = ConvShape::new(1, 3, 7, 9, 5, 3, 2, 1);
        let input = QTensor::random((1, 3, 7, 9), Layout::Nchw, BitWidth::W8, 71);
        let weights = QTensor::random((5, 3, 3, 3), Layout::Nchw, BitWidth::W8, 72);
        let ours = gemm_conv(&input, &weights, &shape);
        let ncnn = ncnn_conv(&input, &weights, &shape);
        assert_eq!(ours.acc.data(), ncnn.acc.data());
    }
}
