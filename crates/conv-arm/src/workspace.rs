//! The parallel, allocation-free convolution paths: prepacked weights +
//! caller-owned [`ConvWorkspace`] arena.
//!
//! [`crate::PreparedConv`] showed that packing A once per layer pays off;
//! these paths go further for the engine's steady state:
//!
//! * the im2col matrix, the per-thread packed-B panels and the GEMM result
//!   live in one reusable arena — after a warm-up pass over a network's
//!   layer shapes, repeated inference performs **zero heap allocations**
//!   in these stages (the output tensor itself is still returned by value);
//! * the GEMM runs on `lowbit_qgemm::parallel` across N, bit-exact versus
//!   the serial kernels for any thread count;
//! * the executed and analytic schedules drop the `pack A` stage, which the
//!   prepack cache amortizes to zero across calls.

use crate::gemm_conv::{
    matrix_to_nchw_cm, schedule_gemm_conv, schedule_gemm_conv_narrow, schedule_gemm_conv_sdot,
};
use crate::ConvOutput;
use lowbit_qgemm::narrow::PackedANarrow;
use lowbit_qgemm::parallel::{gemm_parallel_cm_traced, ParallelConfig, SharedWeights};
use lowbit_qgemm::sdot::{gemm_sdot_prepacked_cm, pack_b_quads_into, PackedAQuads, PackedBQuads};
use lowbit_qgemm::workspace::{GemmWorkspace, WorkspaceStats};
use lowbit_qgemm::{PackedA, Scheme};
use lowbit_tensor::{im2col_nchw_into, ConvShape, Im2colMatrix, QTensor};
use lowbit_trace::{Tracer, MAIN_TRACK};
use neon_sim::KernelSchedule;

/// Caller-owned scratch for the prepacked convolution paths: the im2col
/// matrix, the parallel-GEMM arena, and the SDOT path's quad-packed B and
/// column-major result.
#[derive(Default)]
pub struct ConvWorkspace {
    col: Im2colMatrix,
    gemm: GemmWorkspace,
    bq: PackedBQuads,
    c_sdot: Vec<i32>,
    stats: WorkspaceStats,
}

impl ConvWorkspace {
    /// An empty arena; the first convolution sizes it.
    pub fn new() -> ConvWorkspace {
        ConvWorkspace::default()
    }

    /// Allocation statistics over every buffer in the arena.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Current total buffer capacity in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.col.data.capacity()
            + self.gemm.footprint_bytes()
            + self.bq.data.capacity()
            + self.c_sdot.capacity() * std::mem::size_of::<i32>()
    }

    fn note_call(&mut self, footprint_before: usize) {
        self.stats.calls += 1;
        let after = self.footprint_bytes();
        if after > footprint_before {
            self.stats.alloc_events += 1;
        }
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(after);
    }
}

fn check_weight_shape(pa_m: usize, pa_k: usize, shape: &ConvShape) {
    assert_eq!(pa_m, shape.gemm_m(), "packed weights disagree with shape on M");
    assert_eq!(pa_k, shape.gemm_k(), "packed weights disagree with shape on K");
}

/// Prepacked parallel explicit-GEMM convolution (wide 16x4 tiles).
///
/// `pa` is the layer's weight matrix packed once via
/// `lowbit_qgemm::pack_a`; `scheme` must cover the wider of the two operand
/// bit widths, exactly as [`crate::gemm_conv`] chooses it.
pub fn gemm_conv_prepacked_ws(
    input: &QTensor,
    pa: &PackedA,
    scheme: &Scheme,
    shape: &ConvShape,
    cfg: &ParallelConfig,
    ws: &mut ConvWorkspace,
) -> ConvOutput {
    gemm_conv_prepacked_ws_traced(input, pa, scheme, shape, cfg, ws, &Tracer::null())
}

/// [`gemm_conv_prepacked_ws`] with span recording for the lowering and
/// reshape stages (the inner GEMM records onto per-worker tracks).
pub fn gemm_conv_prepacked_ws_traced(
    input: &QTensor,
    pa: &PackedA,
    scheme: &Scheme,
    shape: &ConvShape,
    cfg: &ParallelConfig,
    ws: &mut ConvWorkspace,
    tracer: &Tracer,
) -> ConvOutput {
    check_weight_shape(pa.m, pa.k, shape);
    let before = ws.footprint_bytes();
    let (k, n) = (shape.gemm_k(), shape.gemm_n());
    {
        let mut span = tracer.span("im2col", MAIN_TRACK);
        span.set_label(|| format!("{k}x{n}"));
        im2col_nchw_into(input, shape, &mut ws.col);
    }
    let c_cm = gemm_parallel_cm_traced(
        scheme,
        SharedWeights::Wide(pa),
        &ws.col.data,
        k,
        n,
        cfg,
        &mut ws.gemm,
        tracer,
    );
    let acc = {
        let _span = tracer.span("reshape nchw", MAIN_TRACK);
        matrix_to_nchw_cm(c_cm, shape)
    };
    ws.note_call(before);
    ConvOutput { acc, schedule: schedule_gemm_conv_prepacked(scheme, shape) }
}

/// Prepacked parallel convolution on the narrow 8x4 kernel (SMLAL widths).
pub fn gemm_conv_narrow_prepacked_ws(
    input: &QTensor,
    pa: &PackedANarrow,
    scheme: &Scheme,
    shape: &ConvShape,
    cfg: &ParallelConfig,
    ws: &mut ConvWorkspace,
) -> ConvOutput {
    gemm_conv_narrow_prepacked_ws_traced(input, pa, scheme, shape, cfg, ws, &Tracer::null())
}

/// [`gemm_conv_narrow_prepacked_ws`] with span recording.
pub fn gemm_conv_narrow_prepacked_ws_traced(
    input: &QTensor,
    pa: &PackedANarrow,
    scheme: &Scheme,
    shape: &ConvShape,
    cfg: &ParallelConfig,
    ws: &mut ConvWorkspace,
    tracer: &Tracer,
) -> ConvOutput {
    check_weight_shape(pa.m, pa.k, shape);
    let before = ws.footprint_bytes();
    let (k, n) = (shape.gemm_k(), shape.gemm_n());
    {
        let mut span = tracer.span("im2col", MAIN_TRACK);
        span.set_label(|| format!("{k}x{n}"));
        im2col_nchw_into(input, shape, &mut ws.col);
    }
    let c_cm = gemm_parallel_cm_traced(
        scheme,
        SharedWeights::Narrow(pa),
        &ws.col.data,
        k,
        n,
        cfg,
        &mut ws.gemm,
        tracer,
    );
    let acc = {
        let _span = tracer.span("reshape nchw", MAIN_TRACK);
        matrix_to_nchw_cm(c_cm, shape)
    };
    ws.note_call(before);
    ConvOutput { acc, schedule: schedule_gemm_conv_narrow_prepacked(scheme, shape) }
}

/// Prepacked convolution on the ARMv8.2 SDOT path (serial — SDOT has no
/// drain cadence to block around; it gains prepack + buffer reuse only).
pub fn gemm_conv_sdot_prepacked_ws(
    input: &QTensor,
    pa: &PackedAQuads,
    shape: &ConvShape,
    ws: &mut ConvWorkspace,
) -> ConvOutput {
    gemm_conv_sdot_prepacked_ws_traced(input, pa, shape, ws, &Tracer::null())
}

/// [`gemm_conv_sdot_prepacked_ws`] with span recording (serial path: all
/// stages land on the main track).
pub fn gemm_conv_sdot_prepacked_ws_traced(
    input: &QTensor,
    pa: &PackedAQuads,
    shape: &ConvShape,
    ws: &mut ConvWorkspace,
    tracer: &Tracer,
) -> ConvOutput {
    check_weight_shape(pa.m, pa.k, shape);
    let before = ws.footprint_bytes();
    let (k, n) = (shape.gemm_k(), shape.gemm_n());
    {
        let mut span = tracer.span("im2col", MAIN_TRACK);
        span.set_label(|| format!("{k}x{n}"));
        im2col_nchw_into(input, shape, &mut ws.col);
    }
    {
        let _span = tracer.span("pack B quads", MAIN_TRACK);
        pack_b_quads_into(&ws.col.data, k, n, &mut ws.bq);
    }
    {
        let _span = tracer.span("gemm sdot", MAIN_TRACK);
        gemm_sdot_prepacked_cm(pa, &ws.bq, &mut ws.c_sdot);
    }
    let acc = {
        let _span = tracer.span("reshape nchw", MAIN_TRACK);
        matrix_to_nchw_cm(&ws.c_sdot, shape)
    };
    ws.note_call(before);
    ConvOutput { acc, schedule: schedule_gemm_conv_sdot_prepacked(shape) }
}

fn drop_pack_a(mut sched: KernelSchedule) -> KernelSchedule {
    sched.stages.retain(|s| s.name != "pack A");
    sched
}

/// [`schedule_gemm_conv`] without the `pack A` stage (amortized by the
/// prepack cache).
pub fn schedule_gemm_conv_prepacked(scheme: &Scheme, shape: &ConvShape) -> KernelSchedule {
    drop_pack_a(schedule_gemm_conv(scheme, shape))
}

/// [`schedule_gemm_conv_narrow`] without the `pack A` stage.
pub fn schedule_gemm_conv_narrow_prepacked(scheme: &Scheme, shape: &ConvShape) -> KernelSchedule {
    drop_pack_a(schedule_gemm_conv_narrow(scheme, shape))
}

/// [`schedule_gemm_conv_sdot`] without the `pack A` stage.
pub fn schedule_gemm_conv_sdot_prepacked(shape: &ConvShape) -> KernelSchedule {
    drop_pack_a(schedule_gemm_conv_sdot(shape))
}

/// The serial + parallelizable cycle split of a prepacked schedule: im2col
/// and requant stay serial, pack B and the GEMM itself scale across N.
///
/// Used by the benchmark suite's Amdahl projection of multi-thread speedup
/// (the cost model itself stays single-core).
pub fn parallel_cycle_split(sched: &KernelSchedule, model: &neon_sim::CostModel) -> (f64, f64) {
    // Prepacked schedules have unique stage names by construction, so
    // summing per-name stage cycles partitions the schedule exactly.
    let mut serial = 0.0;
    let mut parallel = 0.0;
    for stage in &sched.stages {
        let cycles = sched.stage_cycles(stage.name, model);
        if stage.name == "pack B" || stage.name == "gemm" {
            parallel += cycles;
        } else {
            serial += cycles;
        }
    }
    (serial, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct_conv;
    use lowbit_qgemm::narrow::pack_a_narrow;
    use lowbit_qgemm::sdot::pack_a_quads;
    use lowbit_qgemm::pack_a;
    use lowbit_tensor::{BitWidth, Layout};
    use neon_sim::CortexA53;

    fn tensors(shape: &ConvShape, bits: BitWidth, seed: u64) -> (QTensor, QTensor) {
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            bits,
            seed,
        );
        let weights = QTensor::random(
            (shape.c_out, shape.c_in, shape.kh, shape.kw),
            Layout::Nchw,
            bits,
            seed + 1,
        );
        (input, weights)
    }

    #[test]
    fn prepacked_paths_match_the_oracle_across_threads() {
        let shape = ConvShape::new(2, 5, 9, 7, 11, 3, 2, 1);
        let bits = BitWidth::W8; // SMLAL: valid for wide, narrow and sdot
        let scheme = Scheme::for_bits(bits);
        let (input, weights) = tensors(&shape, bits, 700);
        let oracle = direct_conv(&input, &weights, &shape);
        let (m, k) = (shape.gemm_m(), shape.gemm_k());
        let pa = pack_a(weights.data(), m, k);
        let pan = pack_a_narrow(weights.data(), m, k);
        let paq = pack_a_quads(weights.data(), m, k);
        let mut ws = ConvWorkspace::new();
        for threads in [1, 3] {
            let cfg = ParallelConfig::with_threads(threads);
            let wide = gemm_conv_prepacked_ws(&input, &pa, &scheme, &shape, &cfg, &mut ws);
            assert_eq!(wide.acc.data(), oracle.data(), "wide x{threads}");
            let narrow =
                gemm_conv_narrow_prepacked_ws(&input, &pan, &scheme, &shape, &cfg, &mut ws);
            assert_eq!(narrow.acc.data(), oracle.data(), "narrow x{threads}");
        }
        let sdot = gemm_conv_sdot_prepacked_ws(&input, &paq, &shape, &mut ws);
        assert_eq!(sdot.acc.data(), oracle.data(), "sdot");
    }

    #[test]
    fn workspace_stops_allocating_after_warmup() {
        let shapes = [
            ConvShape::new(1, 4, 10, 10, 8, 3, 1, 1),
            ConvShape::new(1, 8, 5, 5, 16, 1, 1, 0),
        ];
        let bits = BitWidth::W4;
        let scheme = Scheme::for_bits(bits);
        let cfg = ParallelConfig::with_threads(2);
        let mut ws = ConvWorkspace::new();
        let cases: Vec<_> = shapes
            .iter()
            .map(|shape| {
                let (input, weights) = tensors(shape, bits, 800);
                let pa = pack_a(weights.data(), shape.gemm_m(), shape.gemm_k());
                (*shape, input, pa)
            })
            .collect();
        // Warm-up pass sizes the arena.
        for (shape, input, pa) in &cases {
            let _ = gemm_conv_prepacked_ws(input, pa, &scheme, shape, &cfg, &mut ws);
        }
        let warm = ws.stats();
        assert!(warm.alloc_events > 0, "warm-up must have allocated");
        // Steady state: repeated passes over the same layer set.
        for _ in 0..3 {
            for (shape, input, pa) in &cases {
                let _ = gemm_conv_prepacked_ws(input, pa, &scheme, shape, &cfg, &mut ws);
            }
        }
        let steady = ws.stats();
        assert_eq!(steady.calls, warm.calls + 6);
        assert_eq!(steady.alloc_events, warm.alloc_events, "steady state allocated");
        assert_eq!(steady.high_water_bytes, warm.high_water_bytes);
    }

    #[test]
    fn prepacked_schedules_drop_pack_a_and_nothing_else() {
        let shape = ConvShape::new(1, 16, 14, 14, 32, 3, 1, 1);
        let scheme = Scheme::for_bits(BitWidth::W4);
        let model = CortexA53::cost_model();
        let full = schedule_gemm_conv(&scheme, &shape);
        let pre = schedule_gemm_conv_prepacked(&scheme, &shape);
        assert_eq!(pre.stages.len() + 1, full.stages.len());
        assert_eq!(pre.stage_cycles("pack A", &model), 0.0);
        for stage in ["im2col", "pack B", "gemm", "requant"] {
            assert_eq!(
                pre.stage_cycles(stage, &model),
                full.stage_cycles(stage, &model),
                "{stage}"
            );
        }
    }

    #[test]
    fn cycle_split_partitions_the_whole_schedule() {
        let shape = ConvShape::new(1, 16, 14, 14, 32, 3, 1, 1);
        let scheme = Scheme::for_bits(BitWidth::W4);
        let model = CortexA53::cost_model();
        let sched = schedule_gemm_conv_prepacked(&scheme, &shape);
        let (serial, parallel) = parallel_cycle_split(&sched, &model);
        assert!(serial > 0.0 && parallel > 0.0);
        assert!((serial + parallel - sched.cycles(&model)).abs() < 1e-6);
        assert!(parallel > serial, "GEMM should dominate this layer");
    }
}
