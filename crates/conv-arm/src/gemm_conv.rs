//! Explicit-GEMM convolution (paper Sec. 3.2): im2col, pad/pack, the
//! re-designed low-bit GEMM, and the reshape back to NCHW.

use crate::ConvOutput;
use lowbit_qgemm::gemm::schedule_gemm;
use lowbit_qgemm::narrow::{gemm_narrow, schedule_gemm_narrow};
use lowbit_qgemm::sdot::{gemm_sdot, schedule_gemm_sdot};
use lowbit_qgemm::{gemm, Scheme};
use lowbit_tensor::{im2col_nchw, ConvShape, Layout, QTensor, Tensor};
use neon_sim::{KernelSchedule, StageCost};

/// Runs the low-bit explicit-GEMM convolution at the input's bit width.
///
/// Weights must be NCHW `c_out x c_in x kh x kw` at the same bit width (or
/// narrower) than the activations; the scheme is chosen from the wider of the
/// two so the drain ratios stay safe.
pub fn gemm_conv(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );
    let bits = input.bits().max(weights.bits());
    let scheme = Scheme::for_bits(bits);

    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let col = im2col_nchw(input, shape);
    // The NCHW weight tensor reshaped to M x K is already row-major.
    let out = gemm(&scheme, weights.data(), &col.data, m, k, n);

    let acc = matrix_to_nchw(&out.c, shape);
    // Keep the executed GEMM's own stages (identical to the analytic ones by
    // construction) and wrap them with the conv-level im2col/requant stages.
    let full = schedule_gemm_conv(&scheme, shape);
    debug_assert_eq!(full.stages.len(), out.schedule.stages.len() + 2);
    let mut schedule = KernelSchedule::new();
    schedule.push(full.stages.first().unwrap().clone()); // im2col
    for stage in out.schedule.stages {
        schedule.push(stage);
    }
    schedule.push(full.stages.last().unwrap().clone()); // requant
    ConvOutput { acc, schedule }
}

/// Explicit-GEMM convolution on the narrow 8x4 micro-kernel (extension;
/// SMLAL bit widths only — wins at tight drain ratios, see
/// `lowbit_qgemm::narrow`).
pub fn gemm_conv_narrow(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );
    let bits = input.bits().max(weights.bits());
    let scheme = Scheme::for_bits(bits);
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let col = im2col_nchw(input, shape);
    let out = gemm_narrow(&scheme, weights.data(), &col.data, m, k, n);
    ConvOutput {
        acc: matrix_to_nchw(&out.c, shape),
        schedule: schedule_gemm_conv_narrow(&scheme, shape),
    }
}

/// Analytic schedule for the narrow-tile pipeline.
pub fn schedule_gemm_conv_narrow(scheme: &Scheme, shape: &ConvShape) -> KernelSchedule {
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move("im2col", (k * n) as u64, (k * n) as u64));
    for stage in schedule_gemm_narrow(scheme, m, k, n).stages {
        sched.push(stage);
    }
    sched.push(requant_stage(shape));
    sched
}

/// Explicit-GEMM convolution on the ARMv8.2 `SDOT` path (extension; any bit
/// width up to 8, no drain machinery — see `lowbit_qgemm::sdot`).
pub fn gemm_conv_sdot(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> ConvOutput {
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw)
    );
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let col = im2col_nchw(input, shape);
    let out = gemm_sdot(weights.data(), &col.data, m, k, n);
    ConvOutput {
        acc: matrix_to_nchw(&out.c, shape),
        schedule: schedule_gemm_conv_sdot(shape),
    }
}

/// Analytic schedule for the SDOT pipeline.
pub fn schedule_gemm_conv_sdot(shape: &ConvShape) -> KernelSchedule {
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move("im2col", (k * n) as u64, (k * n) as u64));
    for stage in schedule_gemm_sdot(m, k, n).stages {
        sched.push(stage);
    }
    sched.push(requant_stage(shape));
    sched
}

/// Reshapes the row-major `c_out x (batch*oh*ow)` GEMM result to NCHW.
pub(crate) fn matrix_to_nchw(c: &[i32], shape: &ConvShape) -> Tensor<i32> {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let n = shape.gemm_n();
    let mut acc: Tensor<i32> = Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nchw);
    for co in 0..shape.c_out {
        for b in 0..shape.batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let col = (b * oh + oy) * ow + ox;
                    acc.set((b, co, oy, ox), c[co * n + col]);
                }
            }
        }
    }
    acc
}

/// Reshapes the **column-major** `c_out x (batch*oh*ow)` GEMM result
/// (`c[col * c_out + row]`, as produced by the parallel driver) to NCHW.
pub(crate) fn matrix_to_nchw_cm(c: &[i32], shape: &ConvShape) -> Tensor<i32> {
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let m = shape.gemm_m();
    let mut acc: Tensor<i32> = Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nchw);
    for co in 0..shape.c_out {
        for b in 0..shape.batch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let col = (b * oh + oy) * ow + ox;
                    acc.set((b, co, oy, ox), c[col * m + co]);
                }
            }
        }
    }
    acc
}

/// Analytic schedule for the whole explicit-GEMM pipeline: the im2col
/// expansion (read activation once per kernel tap, write the K x N matrix)
/// followed by the GEMM stages.
pub fn schedule_gemm_conv(scheme: &Scheme, shape: &ConvShape) -> KernelSchedule {
    let (m, k, n) = (shape.gemm_m(), shape.gemm_k(), shape.gemm_n());
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "im2col",
        (k * n) as u64, // gathered reads (incl. re-reads of overlapping taps)
        (k * n) as u64,
    ));
    for stage in schedule_gemm(scheme, m, k, n).stages {
        sched.push(stage);
    }
    sched.push(requant_stage(shape));
    sched
}

/// The per-layer requantization pass (i32 accumulators back to i8), charged
/// in every pipeline exactly like the paper's measured kernels, which include
/// the quantized output store.
pub(crate) fn requant_stage(shape: &ConvShape) -> StageCost {
    let out = shape.output_len() as u64;
    StageCost::bulk_move("requant", out * 4, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct_conv;
    use lowbit_tensor::BitWidth;
    use neon_sim::CortexA53;

    fn run_case(shape: ConvShape, bits: BitWidth, seed: u64) {
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nchw,
            bits,
            seed,
        );
        let weights = QTensor::random(
            (shape.c_out, shape.c_in, shape.kh, shape.kw),
            Layout::Nchw,
            bits,
            seed + 1,
        );
        let out = gemm_conv(&input, &weights, &shape);
        let oracle = direct_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), oracle.data(), "{shape} at {bits}");
    }

    #[test]
    fn matches_direct_conv_across_bit_widths() {
        for bits in BitWidth::ALL {
            run_case(ConvShape::new(1, 5, 8, 8, 7, 3, 1, 1), bits, bits.bits() as u64);
        }
    }

    #[test]
    fn matches_direct_conv_on_strided_padded_batched() {
        run_case(ConvShape::new(2, 3, 9, 7, 5, 3, 2, 1), BitWidth::W4, 50);
        run_case(ConvShape::new(2, 4, 7, 7, 6, 1, 1, 0), BitWidth::W2, 51);
        run_case(ConvShape::new(1, 2, 11, 11, 3, 5, 2, 2), BitWidth::W7, 52);
    }

    #[test]
    fn schedule_includes_all_pipeline_stages() {
        let shape = ConvShape::new(1, 16, 14, 14, 32, 3, 1, 1);
        let sched = schedule_gemm_conv(&Scheme::for_bits(BitWidth::W4), &shape);
        let model = CortexA53::cost_model();
        for stage in ["im2col", "pack A", "pack B", "gemm"] {
            assert!(
                sched.stage_cycles(stage, &model) > 0.0,
                "missing stage {stage}"
            );
        }
    }

    #[test]
    fn executed_schedule_equals_analytic_schedule() {
        let shape = ConvShape::new(1, 4, 6, 6, 8, 3, 1, 1);
        let bits = BitWidth::W5;
        let input = QTensor::random((1, 4, 6, 6), Layout::Nchw, bits, 9);
        let weights = QTensor::random((8, 4, 3, 3), Layout::Nchw, bits, 10);
        let out = gemm_conv(&input, &weights, &shape);
        let analytic = schedule_gemm_conv(&Scheme::for_bits(bits), &shape);
        let model = CortexA53::cost_model();
        assert!((out.schedule.cycles(&model) - analytic.cycles(&model)).abs() < 1e-6);
    }

    #[test]
    fn narrow_and_sdot_pipelines_match_direct_conv() {
        let shape = ConvShape::new(1, 5, 9, 7, 6, 3, 2, 1);
        for bits in [BitWidth::W5, BitWidth::W8] {
            let input = QTensor::random(
                (shape.batch, shape.c_in, shape.h, shape.w),
                Layout::Nchw,
                bits,
                500 + bits.bits() as u64,
            );
            let weights = QTensor::random(
                (shape.c_out, shape.c_in, shape.kh, shape.kw),
                Layout::Nchw,
                bits,
                600 + bits.bits() as u64,
            );
            let oracle = direct_conv(&input, &weights, &shape);
            assert_eq!(
                gemm_conv_narrow(&input, &weights, &shape).acc.data(),
                oracle.data(),
                "narrow {bits}"
            );
            assert_eq!(
                gemm_conv_sdot(&input, &weights, &shape).acc.data(),
                oracle.data(),
                "sdot {bits}"
            );
        }
    }

    #[test]
    fn sdot_pipeline_models_faster_than_ncnn_at_8_bit() {
        // The ARMv8.2 projection: with SDOT, even 8-bit convincingly beats
        // the v8.1 ncnn baseline.
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let model = neon_sim::CortexA53::cost_model();
        let sdot = schedule_gemm_conv_sdot(&shape).cycles(&model);
        let ncnn = crate::schedule_ncnn_conv(&shape).cycles(&model);
        assert!(
            sdot * 1.5 < ncnn,
            "SDOT conv ({sdot:.0}) should handily beat ncnn ({ncnn:.0})"
        );
    }

    #[test]
    fn mixed_bit_widths_use_the_wider_scheme() {
        // 4-bit weights with 6-bit activations must still be exact.
        let shape = ConvShape::new(1, 3, 6, 6, 4, 3, 1, 1);
        let input = QTensor::random((1, 3, 6, 6), Layout::Nchw, BitWidth::W6, 21);
        let weights = QTensor::random((4, 3, 3, 3), Layout::Nchw, BitWidth::W4, 22);
        let out = gemm_conv(&input, &weights, &shape);
        let oracle = direct_conv(&input, &weights, &shape);
        assert_eq!(out.acc.data(), oracle.data());
    }
}
