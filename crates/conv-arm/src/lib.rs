//! ARM-side convolution kernels (paper Sec. 3) on the `neon-sim` substrate.
//!
//! Pipelines provided:
//!
//! * [`direct`] — the plain nested-loop convolution, used as the correctness
//!   oracle for every other path,
//! * [`mod@gemm_conv`] — the paper's explicit-GEMM convolution: im2col → pad/pack
//!   → the re-designed low-bit GEMM (2–8 bit via the `SMLAL` / `MLA` schemes),
//! * [`winograd`] — the integer `F(2x2, 3x3)` fast path for 3x3/stride-1
//!   layers at ≤ 6 bit (Sec. 3.4),
//! * [`ncnn`] — the ncnn-like 8-bit baseline (16-bit `SMLAL` directly into
//!   i32),
//! * [`bitserial`] — the TVM-like popcount (bit-serial) 2-bit baseline
//!   (Fig. 9),
//! * [`range_analysis`] — computed Winograd transform ranges, deriving the
//!   4–6-bit F(2x2,3x3) boundary and the F(4x4,3x3) rejection of Sec. 3.4.
//!
//! Every kernel returns a [`ConvOutput`]: the exact i32 accumulator tensor in
//! NCHW plus the analytic [`neon_sim::KernelSchedule`] that prices the whole
//! pipeline on the Cortex-A53 cost model.

#![forbid(unsafe_code)]

pub mod bitserial;
pub mod direct;
pub mod gemm_conv;
pub mod ncnn;
pub mod prepared;
pub mod range_analysis;
pub mod winograd;
pub mod winograd_kernel;
pub mod workspace;

use lowbit_tensor::Tensor;
use neon_sim::KernelSchedule;

/// Result of an ARM convolution: exact i32 accumulators plus modeled cost.
#[derive(Clone, Debug)]
pub struct ConvOutput {
    /// `batch x c_out x out_h x out_w` accumulator tensor (NCHW).
    pub acc: Tensor<i32>,
    /// Analytic pipeline schedule.
    pub schedule: KernelSchedule,
}

pub use bitserial::{bitserial_conv, schedule_bitserial_conv};
pub use direct::{direct_conv, direct_conv_scheduled, schedule_direct_conv};
pub use gemm_conv::{
    gemm_conv, gemm_conv_narrow, gemm_conv_sdot, schedule_gemm_conv, schedule_gemm_conv_narrow,
    schedule_gemm_conv_sdot,
};
pub use ncnn::{ncnn_conv, schedule_ncnn_conv};
pub use prepared::PreparedConv;
pub use winograd::{
    schedule_winograd_conv, winograd_conv, winograd_operand_bounds, winograd_scheme,
    winograd_supported,
};
pub use workspace::{
    gemm_conv_narrow_prepacked_ws, gemm_conv_narrow_prepacked_ws_traced, gemm_conv_prepacked_ws,
    gemm_conv_prepacked_ws_traced, gemm_conv_sdot_prepacked_ws, gemm_conv_sdot_prepacked_ws_traced,
    parallel_cycle_split, schedule_gemm_conv_narrow_prepacked, schedule_gemm_conv_prepacked,
    schedule_gemm_conv_sdot_prepacked, ConvWorkspace,
};
