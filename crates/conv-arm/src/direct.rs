//! Direct (nested-loop) convolution — the correctness oracle.

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use crate::gemm_conv::requant_stage;
use crate::ConvOutput;
use lowbit_qgemm::Scheme;
use lowbit_tensor::{BitWidth, ConvShape, Layout, QTensor, Tensor};
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// Computes the exact i32 convolution accumulators by definition.
///
/// `input` is NCHW `batch x c_in x h x w`; `weights` is NCHW
/// `c_out x c_in x kh x kw` (batch dim reused as `c_out`).
pub fn direct_conv(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> Tensor<i32> {
    assert_eq!(input.layout(), Layout::Nchw);
    assert_eq!(weights.layout(), Layout::Nchw);
    assert_eq!(
        input.dims(),
        (shape.batch, shape.c_in, shape.h, shape.w),
        "input dims mismatch"
    );
    assert_eq!(
        weights.dims(),
        (shape.c_out, shape.c_in, shape.kh, shape.kw),
        "weight dims mismatch"
    );
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out: Tensor<i32> = Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nchw);
    for b in 0..shape.batch {
        for co in 0..shape.c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i32;
                    for ci in 0..shape.c_in {
                        for kr in 0..shape.kh {
                            let iy = (oy * shape.stride + kr) as isize - shape.pad as isize;
                            if iy < 0 || iy >= shape.h as isize {
                                continue;
                            }
                            for kc in 0..shape.kw {
                                let ix =
                                    (ox * shape.stride + kc) as isize - shape.pad as isize;
                                if ix < 0 || ix >= shape.w as isize {
                                    continue;
                                }
                                acc += input.get((b, ci, iy as usize, ix as usize)) as i32
                                    * weights.get((co, ci, kr, kc)) as i32;
                            }
                        }
                    }
                    out.set((b, co, oy, ox), acc);
                }
            }
        }
    }
    out
}

/// Direct convolution as a *schedulable algorithm* (paper Sec. 2.2's first
/// class: "simple to implement but inefficient").
///
/// The modeled kernel vectorizes 16 output pixels along a row per step: for
/// each kernel tap it loads the corresponding input segment, broadcasts the
/// weight, and multiply-accumulates with the bit-width's drain scheme. It
/// needs no im2col or packing stages, but re-reads the input once per tap
/// and loses vector efficiency on strided layers — which is exactly why the
/// paper (and this crate's `Auto` policy) picks the GEMM-based method.
pub fn direct_conv_scheduled(
    input: &QTensor,
    weights: &QTensor,
    shape: &ConvShape,
) -> ConvOutput {
    let bits = input.bits().max(weights.bits());
    ConvOutput {
        acc: direct_conv(input, weights, shape),
        schedule: schedule_direct_conv(bits, shape),
    }
}

/// Analytic schedule of the vectorized direct convolution.
pub fn schedule_direct_conv(bits: BitWidth, shape: &ConvShape) -> KernelSchedule {
    let scheme = Scheme::for_bits(bits);
    let k = shape.gemm_k();
    let vectors =
        (shape.batch * shape.c_out * shape.out_h()) as u64 * shape.out_w().div_ceil(16) as u64;

    let mut per_vec = InstCounts::default();
    // Per tap: the 16-pixel input segment (two loads plus shuffle ALU when
    // the stride breaks contiguity) and an amortized weight broadcast.
    let (seg_loads, shuffle_alu) = if shape.stride == 1 { (1u64, 0u64) } else { (2, 2) };
    per_vec.loads = k as u64 * (seg_loads + 1); // + broadcast load per tap
    per_vec.load_bytes = k as u64 * (16 * seg_loads + 1);
    // MACs: 16 lanes per tap at the scheme's lane width.
    let mac_per_tap = 16usize.div_ceil(scheme.lanes_per_mac_inst()) as u64;
    per_vec.neon_mac = k as u64 * mac_per_tap;
    // Drains: 16 lanes of i16 partials = 4 SADDW per level-1 drain.
    let drains = k.div_ceil(scheme.ratio()).max(1) as u64;
    per_vec.neon_alu = 4 * drains + shuffle_alu * k as u64;
    per_vec.stores = 4;
    per_vec.store_bytes = 64;

    let mut total = InstCounts::default();
    total.add_scaled(&per_vec, vectors);
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::compute("direct conv", total));
    sched.push(requant_stage(shape));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::BitWidth;

    #[test]
    fn identity_kernel_reproduces_input() {
        // A single 1x1 weight of value 1 makes conv the identity.
        let shape = ConvShape::new(1, 1, 4, 4, 1, 1, 1, 0);
        let input = QTensor::random((1, 1, 4, 4), Layout::Nchw, BitWidth::W6, 1);
        let w = Tensor::from_vec((1, 1, 1, 1), Layout::Nchw, vec![1i8]);
        let weights = QTensor::new(w, BitWidth::W6, 1.0);
        let out = direct_conv(&input, &weights, &shape);
        for (o, &i) in out.data().iter().zip(input.data()) {
            assert_eq!(*o, i as i32);
        }
    }

    #[test]
    fn all_ones_kernel_sums_receptive_field() {
        let shape = ConvShape::new(1, 1, 3, 3, 1, 3, 1, 1);
        let data: Vec<i8> = (1..=9).collect();
        let input = QTensor::new(
            Tensor::from_vec((1, 1, 3, 3), Layout::Nchw, data),
            BitWidth::W5,
            1.0,
        );
        let weights = QTensor::new(
            Tensor::from_vec((1, 1, 3, 3), Layout::Nchw, vec![1i8; 9]),
            BitWidth::W5,
            1.0,
        );
        let out = direct_conv(&input, &weights, &shape);
        // Center output = sum of all 9 inputs = 45; corner (0,0) sums the
        // 2x2 in-bounds patch {1,2,4,5} = 12.
        assert_eq!(out.get((0, 0, 1, 1)), 45);
        assert_eq!(out.get((0, 0, 0, 0)), 12);
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = ConvShape::new(1, 1, 5, 5, 1, 1, 2, 0);
        let input = QTensor::random((1, 1, 5, 5), Layout::Nchw, BitWidth::W4, 3);
        let weights = QTensor::new(
            Tensor::from_vec((1, 1, 1, 1), Layout::Nchw, vec![1i8]),
            BitWidth::W4,
            1.0,
        );
        let out = direct_conv(&input, &weights, &shape);
        assert_eq!(out.dims(), (1, 1, 3, 3));
        assert_eq!(out.get((0, 0, 1, 2)), input.get((0, 0, 2, 4)) as i32);
    }

    #[test]
    fn scheduled_direct_conv_is_exact_but_models_slower_than_gemm() {
        // Sec. 2.2: direct convolution is "simple to implement but
        // inefficient" — the reason every optimized path here is GEMM-based.
        let shape = ConvShape::new(1, 4, 8, 8, 5, 3, 1, 1);
        let input = QTensor::random((1, 4, 8, 8), Layout::Nchw, BitWidth::W4, 3);
        let weights = QTensor::random((5, 4, 3, 3), Layout::Nchw, BitWidth::W4, 4);
        let out = direct_conv_scheduled(&input, &weights, &shape);
        assert_eq!(out.acc.data(), direct_conv(&input, &weights, &shape).data());

        let model = neon_sim::CortexA53::cost_model();
        let big = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let direct = schedule_direct_conv(BitWidth::W4, &big).cycles(&model);
        let gemm = crate::schedule_gemm_conv(
            &lowbit_qgemm::Scheme::for_bits(BitWidth::W4),
            &big,
        )
        .cycles(&model);
        assert!(
            direct > gemm,
            "direct ({direct:.0}) should lose to the GEMM path ({gemm:.0})"
        );
    }

    #[test]
    fn strided_direct_conv_pays_the_shuffle_tax() {
        let model = neon_sim::CortexA53::cost_model();
        let s1 = ConvShape::new(1, 64, 28, 28, 64, 3, 1, 1);
        let s2 = ConvShape::new(1, 64, 56, 56, 64, 3, 2, 1); // same output size
        let t1 = schedule_direct_conv(BitWidth::W4, &s1).cycles(&model);
        let t2 = schedule_direct_conv(BitWidth::W4, &s2).cycles(&model);
        assert!(t2 > t1, "strided access must cost more per output");
    }

    #[test]
    fn channels_accumulate() {
        let shape = ConvShape::new(1, 3, 2, 2, 1, 1, 1, 0);
        let input = QTensor::new(
            Tensor::from_vec((1, 3, 2, 2), Layout::Nchw, vec![1i8; 12]),
            BitWidth::W3,
            1.0,
        );
        let weights = QTensor::new(
            Tensor::from_vec((1, 3, 1, 1), Layout::Nchw, vec![2i8, 3, -4]),
            BitWidth::W4,
            1.0,
        );
        let out = direct_conv(&input, &weights, &shape);
        assert!(out.data().iter().all(|&v| v == 2 + 3 - 4));
    }
}
