//! Vectorized Winograd input-transform kernel on the simulator.
//!
//! The functional transforms in [`crate::winograd`] are host-side Rust; this
//! module emits the NEON form of the `Bᵀd` 1-D pass — eight independent
//! columns per instruction, the way a production kernel vectorizes it — and
//! validates it on the interpreter against the scalar math. It also lets the
//! pipeline model confirm the transform has no hazard stalls worth
//! scheduling around (it is a pure dataflow diamond).
//!
//! Layout contract: the four input rows (`d0..d3`) each hold 8 consecutive
//! i8 values (one per column being transformed); outputs are four 8-lane i16
//! rows:
//!
//! ```text
//! x0 = d0 - d2      x1 = d1 + d2      x2 = d2 - d1      x3 = d1 - d3
//! ```

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use neon_sim::inst::{Half, Inst};
use neon_sim::{CostModel, InstCounts, Machine};

/// Emits the 8-column `Bᵀd` pass.
///
/// Inputs: 8 i8 values per row at `addr_in + 8*row`; outputs: 8 i16 values
/// per row at `addr_out + 16*row`.
pub fn emit_input_row_transform(addr_in: u32, addr_out: u32) -> Vec<Inst> {
    let mut prog = Vec::new();
    // Load the four rows into the low halves of v0..v3 and widen to i16 in
    // v4..v7 (the transform range exceeds i8 — Sec. 3.4's 4x growth).
    for r in 0..4u8 {
        prog.push(Inst::Ld1B8 { vt: r, addr: addr_in + 8 * r as u32 });
    }
    for r in 0..4u8 {
        prog.push(Inst::Sshll8 { vd: 4 + r, vn: r, half: Half::Low });
    }
    // The four butterfly ops into v8..v11.
    prog.push(Inst::Sub16 { vd: 8, vn: 4, vm: 6 }); // x0 = d0 - d2
    prog.push(Inst::Add16 { vd: 9, vn: 5, vm: 6 }); // x1 = d1 + d2
    prog.push(Inst::Sub16 { vd: 10, vn: 6, vm: 5 }); // x2 = d2 - d1
    prog.push(Inst::Sub16 { vd: 11, vn: 5, vm: 7 }); // x3 = d1 - d3
    for r in 0..4u8 {
        prog.push(Inst::St1 { vt: 8 + r, addr: addr_out + 16 * r as u32 });
    }
    prog
}

/// Instruction counts of one emitted pass (8 columns).
pub fn row_transform_counts() -> InstCounts {
    let mut c = InstCounts::default();
    c.loads = 4;
    c.load_bytes = 32;
    c.neon_alu = 8; // 4 SSHLL + 4 ADD/SUB
    c.stores = 4;
    c.store_bytes = 64;
    c
}

/// Runs the emitted pass on the interpreter for `columns.len() <= 8` column
/// vectors `d = [d0, d1, d2, d3]`, returning `[x0, x1, x2, x3]` per column.
pub fn interpret_row_transform(columns: &[[i8; 4]], model: CostModel) -> Vec<[i16; 4]> {
    assert!(columns.len() <= 8);
    let addr_in = 0u32;
    let addr_out = 64u32;
    let mut machine = Machine::new(256, model);
    for (col, d) in columns.iter().enumerate() {
        for (row, &v) in d.iter().enumerate() {
            machine.write_mem_i8(addr_in as usize + 8 * row + col, &[v]);
        }
    }
    machine.run(&emit_input_row_transform(addr_in, addr_out));
    columns
        .iter()
        .enumerate()
        .map(|(col, _)| {
            let mut x = [0i16; 4];
            for (row, xv) in x.iter_mut().enumerate() {
                let base = addr_out as usize + 16 * row + 2 * col;
                let bytes = machine.read_mem_i8(base, 2);
                *xv = i16::from_le_bytes([bytes[0] as u8, bytes[1] as u8]);
            }
            x
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::BitWidth;
    use neon_sim::{pipeline_schedule, CortexA53, PipelineModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scalar_bt(d: [i8; 4]) -> [i16; 4] {
        let v: Vec<i16> = d.iter().map(|&x| x as i16).collect();
        [v[0] - v[2], v[1] + v[2], v[2] - v[1], v[1] - v[3]]
    }

    #[test]
    fn emitted_transform_matches_scalar_math() {
        let mut rng = StdRng::seed_from_u64(4);
        let bits = BitWidth::W6;
        let columns: Vec<[i8; 4]> = (0..8)
            .map(|_| core::array::from_fn(|_| rng.gen_range(bits.qmin()..=bits.qmax())))
            .collect();
        let got = interpret_row_transform(&columns, CortexA53::cost_model());
        for (col, d) in columns.iter().enumerate() {
            assert_eq!(got[col], scalar_bt(*d), "column {col}");
        }
    }

    #[test]
    fn emitted_transform_agrees_with_the_winograd_module() {
        // One full 2-D transform equals two emitted 1-D passes (columns then
        // rows); check a single tile against transform_input's first pass by
        // feeding its column vectors through the kernel.
        let mut rng = StdRng::seed_from_u64(5);
        let bits = BitWidth::W5;
        let d: [i8; 16] =
            core::array::from_fn(|_| rng.gen_range(bits.qmin()..=bits.qmax()));
        let columns: Vec<[i8; 4]> = (0..4)
            .map(|c| core::array::from_fn(|r| d[r * 4 + c]))
            .collect();
        let got = interpret_row_transform(&columns, CortexA53::cost_model());
        for c in 0..4 {
            let want = scalar_bt(columns[c]);
            assert_eq!(got[c], want);
        }
    }

    #[test]
    fn counts_match_the_emitted_program() {
        let prog = emit_input_row_transform(0, 64);
        let mut counts = InstCounts::default();
        for &i in &prog {
            counts.record(i);
        }
        assert_eq!(counts, row_transform_counts());
    }

    #[test]
    fn transform_is_a_hazard_light_dataflow_diamond() {
        // The butterfly has no serial accumulation chain; IPC should be
        // respectable even though every op depends on the widened inputs.
        let prog = emit_input_row_transform(0, 64);
        let r = pipeline_schedule(&prog, &PipelineModel::cortex_a53());
        assert!(r.ipc() > 0.5, "IPC {:.2}", r.ipc());
    }
}
