//! Numerical-range analysis of Winograd transforms (paper Sec. 3.4).
//!
//! The paper makes two range claims: `F(2x2,3x3)` is usable up to 6-bit
//! operands, and `F(4x4,3x3)` is rejected "due to the unacceptable increment
//! of numerical range after G and B transformation". This module turns both
//! into computed facts: it propagates worst-case interval bounds through the
//! integer-scaled 1-D transforms (applied twice for the 2-D tile) and checks
//! the result against the i8 capacity of the `SMLAL` operands.

use lowbit_tensor::BitWidth;

/// Worst-case |output| per row of a 1-D transform: each output element is a
/// signed combination of inputs bounded by `input_bound`.
fn row_bounds(matrix: &[&[i64]], input_bound: i64) -> Vec<i64> {
    matrix
        .iter()
        .map(|row| row.iter().map(|c| c.abs()).sum::<i64>() * input_bound)
        .collect()
}

/// Worst-case |value| after the 2-D transform `M x M^T` on a tile bounded by
/// `input_bound` (the second pass sees the worst first-pass row).
fn transformed_bound(matrix: &[&[i64]], input_bound: i64) -> i64 {
    let pass1 = row_bounds(matrix, input_bound);
    let worst = pass1.into_iter().max().unwrap_or(0);
    row_bounds(matrix, worst).into_iter().max().unwrap_or(0)
}

/// Range report for one Winograd variant at one bit width.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WinogradRange {
    /// Worst |transformed weight| with the integer-scaled G.
    pub weight_bound: i64,
    /// Worst |transformed input| with the integer B.
    pub input_bound: i64,
    /// The integer scale factor applied to G (divided back out later).
    pub weight_scale: i64,
}

impl WinogradRange {
    /// `true` when both transformed operands fit the i8 `SMLAL` inputs.
    pub fn fits_i8(&self) -> bool {
        self.weight_bound <= 127 && self.input_bound <= 128
    }
}

/// `F(2x2, 3x3)` ranges: `R = 2G` rows `[1 0 0; 1 1 1; 1 -1 1; 0 0 1]`
/// (worst-case before the per-row halving levels of `winograd.rs`, i.e. the
/// exact-mode bound) and the integer `Bᵀ`.
pub fn f23_range(bits: BitWidth) -> WinogradRange {
    let g: [&[i64]; 4] = [&[1, 0, 0], &[1, 1, 1], &[1, -1, 1], &[0, 0, 1]];
    let bt: [&[i64]; 4] = [&[1, 0, -1, 0], &[0, 1, 1, 0], &[0, -1, 1, 0], &[0, 1, 0, -1]];
    let qmax = 1i64 << (bits.bits() - 1);
    WinogradRange {
        weight_bound: transformed_bound(&g, qmax),
        input_bound: transformed_bound(&bt, qmax),
        weight_scale: 2 * 2, // R = 2G applied twice
    }
}

/// `F(2x2, 3x3)` range with the production per-row halving of
/// `winograd.rs` (h = 1 on the middle rows ≈ `round(U)`), i.e. the paper's
/// "9/4 x" weight range.
pub fn f23_range_halved(bits: BitWidth) -> WinogradRange {
    let raw = f23_range(bits);
    WinogradRange {
        weight_bound: raw.weight_bound / 4 + 1,
        input_bound: raw.input_bound,
        weight_scale: 1,
    }
}

/// `F(4x4, 3x3)` ranges with the canonical Lavin–Gray matrices, G scaled by
/// its least common denominator 24.
pub fn f43_range(bits: BitWidth) -> WinogradRange {
    let g24: [&[i64]; 6] = [
        &[6, 0, 0],
        &[-4, -4, -4],
        &[-4, 4, -4],
        &[1, 2, 4],
        &[1, -2, 4],
        &[0, 0, 24],
    ];
    let bt: [&[i64]; 6] = [
        &[4, 0, -5, 0, 1, 0],
        &[0, -4, -4, 1, 1, 0],
        &[0, 4, -4, -1, 1, 0],
        &[0, -2, -1, 2, 1, 0],
        &[0, 2, -1, -2, 1, 0],
        &[0, 4, 0, -5, 0, 1],
    ];
    let qmax = 1i64 << (bits.bits() - 1);
    WinogradRange {
        weight_bound: transformed_bound(&g24, qmax),
        input_bound: transformed_bound(&bt, qmax),
        weight_scale: 24 * 24,
    }
}

/// The largest bit width at which `F(2x2,3x3)` (with halving) still fits i8
/// operands — the paper's "4 to 6-bit" boundary, derived instead of assumed.
pub fn f23_max_bits() -> u8 {
    (2..=8u8)
        .take_while(|&b| f23_range_halved(BitWidth::new(b).unwrap()).fits_i8())
        .last()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f23_matches_the_papers_factors() {
        // Paper: weight range x 9/4, input range x 4.
        let r = f23_range(BitWidth::W4);
        // Exact-mode (R = 2G) weight bound: 9 * qmax = 72 at 4-bit.
        assert_eq!(r.weight_bound, 9 * 8);
        // Input: the sum-sum path reaches 4 * qmax.
        assert_eq!(r.input_bound, 4 * 8);
    }

    #[test]
    fn f23_boundary_is_six_bits() {
        assert_eq!(f23_max_bits(), 6, "the paper's 4-6 bit restriction");
        assert!(f23_range_halved(BitWidth::W6).fits_i8());
        assert!(!f23_range_halved(BitWidth::W7).fits_i8());
    }

    #[test]
    fn f23_exact_mode_fits_through_4_bits_only() {
        assert!(f23_range(BitWidth::W4).fits_i8());
        assert!(!f23_range(BitWidth::W5).fits_i8());
    }

    #[test]
    fn f43_overflows_i8_at_every_bit_width() {
        // The paper's Sec. 3.4 rejection, quantified: even 2-bit operands
        // overflow i8 after the F(4x4,3x3) transforms.
        for bits in BitWidth::ALL {
            let r = f43_range(bits);
            assert!(
                !r.fits_i8(),
                "{bits}: F(4,3) should overflow (w={}, d={})",
                r.weight_bound,
                r.input_bound
            );
        }
        // Specifically: B's worst row-sum is 10, squared = 100x the input
        // range; 2-bit already needs +/-200.
        assert_eq!(f43_range(BitWidth::W2).input_bound, 100 * 2);
    }

    #[test]
    fn f43_weight_scale_is_prohibitive() {
        // 24^2 = 576x scaling before the division can be folded back.
        let r = f43_range(BitWidth::W2);
        assert_eq!(r.weight_scale, 576);
        assert!(r.weight_bound > 127);
    }

    #[test]
    fn analysis_agrees_with_the_kernel_gate() {
        // The runtime gate in winograd.rs must match the derived boundary.
        for bits in BitWidth::ALL {
            let analytic = bits.bits() <= f23_max_bits();
            assert_eq!(
                crate::winograd_supported(bits),
                analytic,
                "{bits}: gate vs analysis"
            );
        }
    }
}
