//! The precomputed offset buffer of Sec. 4.2.
//!
//! Implicit-precomp GEMM stores, per GEMM-K index, the *offset* of the tap
//! inside the NHWC input (kernel row/col delta and channel), and per GEMM-M
//! index the base coordinates of the output pixel. Offsets — not pointers —
//! so the buffer is computed once per shape and reused (the paper measures
//! 0.5–50 KB of global memory for it).

use lowbit_tensor::{ConvShape, Layout, QTensor};

/// Per-K tap descriptor: `(kernel_row, kernel_col, channel)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tap {
    /// Kernel row.
    pub kr: u16,
    /// Kernel column.
    pub kc: u16,
    /// Input channel.
    pub ci: u32,
}

/// The precomputed gather structure for one convolution shape.
#[derive(Clone, Debug)]
pub struct Precomp {
    shape: ConvShape,
    taps: Vec<Tap>,
}

impl Precomp {
    /// Builds the buffer for a shape (GEMM K = `kh*kw*c_in`, ordered with
    /// channels innermost to match NHWC).
    pub fn new(shape: &ConvShape) -> Precomp {
        let mut taps = Vec::with_capacity(shape.gemm_k());
        for kr in 0..shape.kh {
            for kc in 0..shape.kw {
                for ci in 0..shape.c_in {
                    taps.push(Tap { kr: kr as u16, kc: kc as u16, ci: ci as u32 });
                }
            }
        }
        Precomp { shape: *shape, taps }
    }

    /// GEMM K extent.
    pub fn k(&self) -> usize {
        self.taps.len()
    }

    /// Size of the buffer in global memory (one 32-bit offset per tap plus
    /// per-row bases folded into it, as the paper stores them).
    pub fn buffer_bytes(&self) -> usize {
        self.taps.len() * 4
    }

    /// Decodes GEMM row `m` into `(batch, out_y, out_x)`.
    #[inline]
    pub fn row_coords(&self, m: usize) -> (usize, usize, usize) {
        let (oh, ow) = (self.shape.out_h(), self.shape.out_w());
        (m / (oh * ow), (m / ow) % oh, m % ow)
    }

    /// Gathers logical element `A[m][k]` of the implicit activation matrix
    /// (0 for padding taps), from an NHWC input.
    #[inline]
    pub fn gather(&self, input: &QTensor, m: usize, k: usize) -> i8 {
        debug_assert_eq!(input.layout(), Layout::Nhwc);
        let (b, oy, ox) = self.row_coords(m);
        let tap = self.taps[k];
        let iy = (oy * self.shape.stride + tap.kr as usize) as isize - self.shape.pad as isize;
        let ix = (ox * self.shape.stride + tap.kc as usize) as isize - self.shape.pad as isize;
        if iy < 0 || iy >= self.shape.h as isize || ix < 0 || ix >= self.shape.w as isize {
            0
        } else {
            input.get((b, tap.ci as usize, iy as usize, ix as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::BitWidth;

    #[test]
    fn buffer_size_matches_paper_range_for_resnet_layers() {
        // Paper Sec. 5.4: 0.5 KB to 50 KB across ResNet-50 layers.
        let smallest = Precomp::new(&ConvShape::new(1, 64, 56, 56, 64, 1, 1, 0));
        let largest = Precomp::new(&ConvShape::new(1, 512, 7, 7, 512, 3, 1, 1));
        assert!(smallest.buffer_bytes() >= 256);
        assert!(smallest.buffer_bytes() <= 1024);
        assert!(largest.buffer_bytes() <= 50 * 1024);
        assert!(largest.buffer_bytes() >= 16 * 1024);
    }

    #[test]
    fn gather_matches_explicit_im2col_semantics() {
        let shape = ConvShape::new(2, 3, 6, 5, 4, 3, 2, 1);
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nhwc,
            BitWidth::W4,
            17,
        );
        let pc = Precomp::new(&shape);
        // Check against direct index arithmetic.
        let (oh, ow) = (shape.out_h(), shape.out_w());
        for m in 0..shape.batch * oh * ow {
            for k in 0..pc.k() {
                let (b, oy, ox) = pc.row_coords(m);
                let kr = k / (shape.kw * shape.c_in);
                let kc = (k / shape.c_in) % shape.kw;
                let ci = k % shape.c_in;
                let iy = (oy * shape.stride + kr) as isize - shape.pad as isize;
                let ix = (ox * shape.stride + kc) as isize - shape.pad as isize;
                let want = if iy < 0 || iy >= shape.h as isize || ix < 0 || ix >= shape.w as isize
                {
                    0
                } else {
                    input.get((b, ci, iy as usize, ix as usize))
                };
                assert_eq!(pc.gather(&input, m, k), want, "m={m} k={k}");
            }
        }
    }

    #[test]
    fn taps_are_channel_innermost() {
        let shape = ConvShape::new(1, 4, 8, 8, 2, 3, 1, 1);
        let pc = Precomp::new(&shape);
        // First c_in taps share (kr=0, kc=0).
        assert_eq!(pc.taps[0].ci, 0);
        assert_eq!(pc.taps[3].ci, 3);
        assert_eq!(pc.taps[4].kc, 1);
    }
}
