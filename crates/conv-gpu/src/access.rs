//! Typed access-descriptor emission: lifts a [`ConvGpuPlan`] into the
//! warp-access stream and tiling geometry the static verifier reasons over.
//!
//! [`crate::implicit_gemm`] carries each Sec. 4.3 memory optimization as an
//! aggregate knob on the analytic [`turing_sim::KernelDesc`] (an instruction
//! count, a coalescing factor, a boolean). That is enough to *price* the
//! kernel but not to *prove* anything about it. This module re-derives, from
//! the same `TileConfig`/`MemOpts`, the concrete per-lane patterns those
//! aggregates summarize:
//!
//! * [`ConvGpuPlan::tiling_levels`] — the span structure of the Alg. 2
//!   partition, level by level (grid → warp → `mma` fragment, and the
//!   `k_tile → k_step → k_mma` reduction staging), mirroring the exact loop
//!   bounds of [`ConvGpuPlan::execute`];
//! * [`ConvGpuPlan::access_stream`] — one [`WarpAccess`] per distinct
//!   global/shared access pattern (thread-lane strides, widths, alignment),
//!   plus the Fig. 6 register [`StagingSchedule`].
//!
//! `lowbit-verify --gpu` consumes both to prove the partition exact, the
//! reordered shared-memory traffic conflict-free and the double-buffer
//! schedule hazard-free — see `lowbit_verify::gpu`.

use crate::implicit_gemm::ConvGpuPlan;
use crate::tiling::TileConfig;
use turing_sim::{BufOp, MemSpace, Precision, StagingSchedule, WarpAccess};

/// One half-open span `[start, start + len)` of a tiled dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TileSpan {
    /// First index covered.
    pub start: usize,
    /// Indices covered.
    pub len: usize,
}

impl TileSpan {
    /// One past the last index covered.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// The Alg. 2 partition, one span list per hierarchy level and dimension.
/// Only the grid level clips at the ragged edge (the kernel's epilogue
/// breaks out of the tile at `m`/`n`); every inner level must tile its
/// parent exactly, because the warp/fragment loops never bounds-check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TilingLevels {
    /// GEMM rows per block, clipped to `m`.
    pub grid_m: Vec<TileSpan>,
    /// GEMM columns per block, clipped to `n`.
    pub grid_n: Vec<TileSpan>,
    /// Warp fragments over `[0, m_tile)` — must be exact.
    pub warp_m: Vec<TileSpan>,
    /// Warp fragments over `[0, n_tile)` — must be exact.
    pub warp_n: Vec<TileSpan>,
    /// 8-row `mma` tiles over `[0, frag_m)` — must be exact.
    pub mma_m: Vec<TileSpan>,
    /// 8-column `mma` tiles over `[0, frag_n)` — must be exact.
    pub mma_n: Vec<TileSpan>,
    /// Shared-memory stages over `[0, k_pad)` — must be exact.
    pub k_tiles: Vec<TileSpan>,
    /// Register steps over `[0, k_tile)` — must be exact.
    pub k_steps: Vec<TileSpan>,
    /// `mma` K depths over `[0, k_step)` — must be exact.
    pub k_mmas: Vec<TileSpan>,
    /// GEMM output extent `(m, n)` the grid level must cover.
    pub output: (usize, usize),
    /// Padded reduction extent the k stages must cover.
    pub k_pad: usize,
}

/// Spans produced by a `for i in 0..extent.div_ceil(tile)` loop whose body
/// clips at `extent` — exactly the block loop of [`ConvGpuPlan::execute`].
fn clipped_spans(extent: usize, tile: usize) -> Vec<TileSpan> {
    (0..extent.div_ceil(tile))
        .map(|i| TileSpan {
            start: i * tile,
            len: tile.min(extent - i * tile),
        })
        .collect()
}

/// Spans produced by a `step_by`-style loop with **no** clipping — the
/// warp/fragment/k loops, which rely on the parent extent dividing evenly
/// (the property the verifier must prove rather than assume).
fn strided_spans(extent: usize, tile: usize) -> Vec<TileSpan> {
    let mut out = Vec::with_capacity(extent.div_ceil(tile.max(1)));
    let mut start = 0;
    while start < extent {
        out.push(TileSpan { start, len: tile });
        start += tile;
    }
    out
}

/// The warp-access stream of one plan: every distinct global/shared pattern
/// the kernel issues per k-iteration, plus the register staging schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GpuAccessStream {
    /// Global loads (A gather, B weights) and the epilogue store.
    pub global: Vec<WarpAccess>,
    /// Shared-memory tile stores (`STS`).
    pub smem_stores: Vec<WarpAccess>,
    /// Shared-memory fragment loads (`LDS`) feeding the `mma`s.
    pub smem_loads: Vec<WarpAccess>,
    /// The Fig. 6 register double-buffer schedule (degenerates to a serial
    /// single-buffer schedule when `double_buffered` is off).
    pub staging: StagingSchedule,
}

impl ConvGpuPlan {
    /// The Alg. 2 span structure, level by level (see [`TilingLevels`]).
    pub fn tiling_levels(&self) -> TilingLevels {
        let (m, n, k) = self.gemm_dims();
        let cfg = &self.cfg;
        let k_pad = k.next_multiple_of(cfg.k_tile);
        let (frag_m, frag_n) = cfg.warp_frag();
        TilingLevels {
            grid_m: clipped_spans(m, cfg.m_tile),
            grid_n: clipped_spans(n, cfg.n_tile),
            warp_m: strided_spans(cfg.m_tile, frag_m.max(1)),
            warp_n: strided_spans(cfg.n_tile, frag_n.max(1)),
            mma_m: strided_spans(frag_m, 8),
            mma_n: strided_spans(frag_n, 8),
            k_tiles: strided_spans(k_pad, cfg.k_tile),
            k_steps: strided_spans(cfg.k_tile, cfg.k_step),
            k_mmas: strided_spans(cfg.k_step, TileConfig::k_mma(self.precision)),
            output: (m, n),
            k_pad,
        }
    }

    /// Row stride, in bytes, of the operand-major (Fig. 5(b) reordered)
    /// shared-memory layout: each A row holds `k_tile` elements, each B row
    /// likewise after the staging transpose.
    pub fn smem_row_bytes(&self) -> u64 {
        Precision::operand_bytes(self.precision, self.cfg.k_tile as u64)
    }

    /// The warp-access stream (see [`GpuAccessStream`]).
    pub fn access_stream(&self) -> GpuAccessStream {
        let cfg = &self.cfg;
        let precision = self.precision;
        let ebytes = |elems: u64| Precision::operand_bytes(precision, elems);
        let threads = cfg.threads() as u64;

        // --- Global loads -------------------------------------------------
        // A is gathered through the precomp offsets: contiguous along the
        // channel run; B (OHWI weights) is fully contiguous.
        let load_bytes: u64 = if self.opts.vector_loads { 16 } else { 4 };
        let a_run = ebytes(self.shape.c_in as u64).max(1);
        let stage_a = ebytes((cfg.m_tile * cfg.k_tile) as u64);
        let stage_b = ebytes((cfg.n_tile * cfg.k_tile) as u64);
        let mut global = vec![
            WarpAccess {
                desc: "global load A (activation gather)",
                space: MemSpace::Global,
                bytes_per_lane: load_bytes,
                lane_stride_bytes: load_bytes,
                align_bytes: if self.opts.vector_loads { 16 } else { 4 },
                contiguous_run_bytes: a_run,
                count: stage_a.div_ceil(threads * load_bytes),
            },
            WarpAccess {
                desc: "global load B (weights)",
                space: MemSpace::Global,
                bytes_per_lane: load_bytes,
                lane_stride_bytes: load_bytes,
                align_bytes: if self.opts.vector_loads { 16 } else { 4 },
                contiguous_run_bytes: 16,
                count: stage_b.div_ceil(threads * load_bytes),
            },
        ];
        // Epilogue store: i8 rows when the in-place requantization keeps
        // i32 traffic off the bus, i32 otherwise; contiguous along c_out.
        let out_elem: u64 = if self.opts.in_place_epilogue { 1 } else { 4 };
        global.push(WarpAccess {
            desc: "global store C (epilogue)",
            space: MemSpace::Global,
            bytes_per_lane: 4,
            lane_stride_bytes: 4,
            align_bytes: 4,
            contiguous_run_bytes: (self.shape.c_out as u64 * out_elem).max(1),
            count: ((cfg.m_tile * cfg.n_tile) as u64 * out_elem).div_ceil(threads * 4),
        });

        // --- Shared-memory stores -----------------------------------------
        // Both tiles are staged operand-major (rows of k_tile elements), so
        // consecutive lanes write consecutive 16-byte chunks.
        let smem_stores = vec![WarpAccess {
            desc: "smem store A+B tiles (STS.128)",
            space: MemSpace::Shared,
            bytes_per_lane: 16,
            lane_stride_bytes: 16,
            align_bytes: 16.min(self.smem_row_bytes()),
            contiguous_run_bytes: self.smem_row_bytes(),
            count: (stage_a + stage_b).div_ceil(threads * 16),
        }];

        // --- Shared-memory fragment loads ---------------------------------
        // Reordered (Fig. 5(b)): each lane pulls one 16-byte vector of its
        // fragment's k-run — consecutive lanes hit consecutive vectors.
        // Unreordered (Fig. 5(a)): the B tile stays [k][n], so a lane needs
        // four scalar words whose warp pattern strides 16 bytes between
        // consecutive lanes — the strided pattern the paper's figure shows
        // serializing four-way on the banks.
        let frag_bytes = ebytes((cfg.warps_n * cfg.m_tile + cfg.warps_m * cfg.n_tile) as u64)
            * cfg.k_tile as u64;
        let smem_loads = if self.opts.smem_reordered {
            vec![WarpAccess {
                desc: "smem load fragments (LDS.128, reordered)",
                space: MemSpace::Shared,
                bytes_per_lane: 16,
                lane_stride_bytes: 16,
                align_bytes: 16.min(self.smem_row_bytes()),
                contiguous_run_bytes: self.smem_row_bytes(),
                count: frag_bytes.div_ceil(threads * 16),
            }]
        } else {
            vec![WarpAccess {
                desc: "smem load fragments (4x LDS.32, strided)",
                space: MemSpace::Shared,
                bytes_per_lane: 4,
                lane_stride_bytes: 16,
                align_bytes: 4,
                contiguous_run_bytes: 4,
                count: frag_bytes.div_ceil(threads * 4),
            }]
        };

        GpuAccessStream {
            global,
            smem_stores,
            smem_loads,
            staging: self.staging_schedule(),
        }
    }

    /// The register staging schedule of one k-tile iteration.
    ///
    /// Double buffered (Fig. 6): the prologue fills slot 0, then each step
    /// issues the *next* step's load into the other slot before consuming
    /// its own — that issue-before-consume order is what lets the loads
    /// overlap the `mma`s, and exactly what the hazard check must prove
    /// safe. Single buffered: load and consume strictly alternate on one
    /// slot (the degenerate, serializing schedule).
    pub fn staging_schedule(&self) -> StagingSchedule {
        let steps = (self.cfg.k_tile / self.cfg.k_step).max(1);
        let mut ops = Vec::with_capacity(2 * steps + 1);
        if self.opts.double_buffered {
            ops.push(BufOp::Write { buf: 0, step: 0 });
            for s in 0..steps {
                if s + 1 < steps {
                    ops.push(BufOp::Write { buf: (s + 1) % 2, step: s + 1 });
                }
                ops.push(BufOp::Read { buf: s % 2, step: s });
            }
            StagingSchedule { buffers: 2, steps, ops }
        } else {
            for s in 0..steps {
                ops.push(BufOp::Write { buf: 0, step: s });
                ops.push(BufOp::Read { buf: 0, step: s });
            }
            StagingSchedule { buffers: 1, steps, ops }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::ConvShape;

    fn plan() -> ConvGpuPlan {
        let shape = ConvShape::new(1, 32, 14, 14, 48, 3, 1, 1);
        let cfg = TileConfig {
            m_tile: 64, n_tile: 32, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
        };
        ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8)
    }

    #[test]
    fn tiling_levels_mirror_the_execute_loops() {
        let p = plan();
        let t = p.tiling_levels();
        let (m, n, k) = p.gemm_dims();
        assert_eq!(t.output, (m, n));
        assert_eq!(t.grid_m.len(), m.div_ceil(64));
        // The ragged edge is clipped, interior tiles are full.
        assert_eq!(t.grid_m.last().unwrap().end(), m);
        assert_eq!(t.grid_m[0].len, 64);
        // Inner levels are exact.
        assert_eq!(t.warp_m.len(), 2);
        assert_eq!(t.mma_m.len(), 4); // frag_m 32 / 8
        assert_eq!(t.k_pad, k.next_multiple_of(64));
        assert_eq!(t.k_tiles.len(), t.k_pad / 64);
        assert_eq!(t.k_steps.len(), 2);
        assert_eq!(t.k_mmas.len(), 2); // k_step 32 / k_mma 16
    }

    #[test]
    fn reordered_loads_are_wide_and_unreordered_loads_stride() {
        let mut p = plan();
        let reordered = p.access_stream();
        assert_eq!(reordered.smem_loads[0].bytes_per_lane, 16);
        assert_eq!(reordered.smem_loads[0].bank_conflict_degree(), 1);
        p.opts.smem_reordered = false;
        let strided = p.access_stream();
        assert_eq!(strided.smem_loads[0].bytes_per_lane, 4);
        assert_eq!(strided.smem_loads[0].lane_stride_bytes, 16);
        assert_eq!(strided.smem_loads[0].bank_conflict_degree(), 4);
    }

    #[test]
    fn staging_schedule_shapes_follow_the_toggle() {
        let mut p = plan();
        let db = p.staging_schedule();
        assert_eq!((db.buffers, db.steps), (2, 2));
        // Prologue write, then issue-ahead write before each consume.
        assert_eq!(
            db.ops,
            vec![
                BufOp::Write { buf: 0, step: 0 },
                BufOp::Write { buf: 1, step: 1 },
                BufOp::Read { buf: 0, step: 0 },
                BufOp::Read { buf: 1, step: 1 },
            ]
        );
        p.opts.double_buffered = false;
        let serial = p.staging_schedule();
        assert_eq!((serial.buffers, serial.steps), (1, 2));
        assert_eq!(
            serial.ops,
            vec![
                BufOp::Write { buf: 0, step: 0 },
                BufOp::Read { buf: 0, step: 0 },
                BufOp::Write { buf: 0, step: 1 },
                BufOp::Read { buf: 0, step: 1 },
            ]
        );
    }
}
