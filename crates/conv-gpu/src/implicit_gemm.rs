//! The implicit-precomp GEMM convolution kernel (paper Alg. 2).
//!
//! GEMM view (NHWC): `C[M x N] = A[M x K] x B[K x N]` with
//! `M = batch*oh*ow` (output pixels), `N = c_out`, `K = kh*kw*c_in`.
//! `A` is gathered on the fly through the [`crate::Precomp`] offsets; `B` is
//! the OHWI weight tensor.
//!
//! Two consistent artifacts per plan:
//!
//! * [`ConvGpuPlan::execute`] — a functional execution that walks the exact
//!   block/warp/k-tile structure and computes every 8x8 fragment with the
//!   `turing-sim` `mma` semantics (bit-exact against direct convolution),
//! * [`ConvGpuPlan::kernel_desc`] — the analytic launch descriptor whose
//!   fields encode each Sec. 4.3 memory optimization, timed by the
//!   wave-quantized model.

use crate::precomp::Precomp;
use crate::tiling::TileConfig;
use lowbit_qnn::RequantParams;
use lowbit_tensor::{BitWidth, ConvShape, Layout, QTensor, Tensor};
use turing_sim::memory::{
    bank_conflict_degree, global_coalescing_factor, smem_load_insts, SmemWidth,
};
use turing_sim::mma::{mma_m8n8k16_s8, mma_m8n8k32_s4};
use turing_sim::{Device, KernelDesc, KernelTime, Precision};

/// The Sec. 4.3 memory-optimization toggles (all on by default; the
/// `gpu_memopt_ablation` bench switches them off one at a time).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemOpts {
    /// Coalesced 16-byte `int4`-vector global loads (vs 4-byte scalar).
    pub vector_loads: bool,
    /// Fig. 5 shared-memory access reordering (`LDS.128` vs 4x `LDS.32`).
    pub smem_reordered: bool,
    /// Fig. 6 register double-buffer overlapping DRAM with `mma`.
    pub double_buffered: bool,
    /// In-place bias + re-quantization on registers (i8 output traffic
    /// instead of i32).
    pub in_place_epilogue: bool,
}

impl Default for MemOpts {
    fn default() -> MemOpts {
        MemOpts {
            vector_loads: true,
            smem_reordered: true,
            double_buffered: true,
            in_place_epilogue: true,
        }
    }
}

/// Counters collected by [`ConvGpuPlan::execute_traced`]: what the
/// functional walk actually did, reconciled against the analytic
/// [`KernelDesc`] by tests (the GPU analog of the ARM emit-vs-counts
/// invariant).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct ExecTrace {
    /// Thread blocks executed.
    pub blocks: u64,
    /// `mma` instructions executed.
    pub mma_calls: u64,
    /// Operand elements staged into shared memory (A + B tiles).
    pub smem_staged_elems: u64,
    /// Output elements written to global memory.
    pub c_writes: u64,
}

/// A planned implicit-GEMM convolution on the GPU.
#[derive(Clone, Debug)]
pub struct ConvGpuPlan {
    /// Convolution geometry.
    pub shape: ConvShape,
    /// Tiling parameters.
    pub cfg: TileConfig,
    /// Arithmetic path.
    pub precision: Precision,
    /// Memory-optimization toggles.
    pub opts: MemOpts,
    /// Issue efficiency of the generated kernel (calibrated; baselines use
    /// their own values).
    pub compute_efficiency: f64,
}

impl ConvGpuPlan {
    /// Plans our kernel at the given precision with all optimizations on.
    pub fn new(shape: ConvShape, cfg: TileConfig, precision: Precision) -> ConvGpuPlan {
        match Self::try_new(shape, cfg, precision) {
            Ok(plan) => plan,
            Err(r) => panic!("invalid tile config {cfg:?} for {precision:?}: {r}"),
        }
    }

    /// [`ConvGpuPlan::new`] with the validity check surfaced as a typed
    /// [`TileRejection`] instead of a panic — the constructor plan-time
    /// callers (the planner, the verifier sweep) use.
    pub fn try_new(
        shape: ConvShape,
        cfg: TileConfig,
        precision: Precision,
    ) -> Result<ConvGpuPlan, crate::tiling::TileRejection> {
        cfg.validate(precision, 64 * 1024)?;
        Ok(ConvGpuPlan {
            shape,
            cfg,
            precision,
            opts: MemOpts::default(),
            compute_efficiency: 0.45,
        })
    }

    /// GEMM dimensions `(m, n, k)`.
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        (
            self.shape.gemm_n(), // batch*oh*ow (GEMM rows on the GPU path)
            self.shape.gemm_m(),     // c_out
            self.shape.gemm_k(),
        )
    }

    /// The analytic launch descriptor.
    pub fn kernel_desc(&self, device: &Device) -> KernelDesc {
        let (m, n, k) = self.gemm_dims();
        let cfg = &self.cfg;
        let grid_m = m.div_ceil(cfg.m_tile) as u64;
        let grid_n = n.div_ceil(cfg.n_tile) as u64;
        let k_pad = k.next_multiple_of(cfg.k_tile);

        // Global traffic: A is re-read once per column of blocks and B once
        // per row of blocks, except when the operand fits in half the L2.
        let a_elems = (m as u64) * k_pad as u64;
        let b_elems = (k_pad as u64) * n as u64;
        let a_bytes = Precision::operand_bytes(self.precision, a_elems);
        let b_bytes = Precision::operand_bytes(self.precision, b_elems);
        let a_traffic = if a_bytes <= device.l2_bytes / 2 {
            a_bytes
        } else {
            a_bytes * grid_n
        };
        let b_traffic = if b_bytes <= device.l2_bytes / 2 {
            b_bytes
        } else {
            b_bytes * grid_m
        };
        let c_bytes = (m as u64) * n as u64 * if self.opts.in_place_epilogue { 1 } else { 4 };
        let dram_bytes = a_traffic + b_traffic + c_bytes;

        // Coalescing: activation gathers run contiguously along channels;
        // weights are fully contiguous. Weight traffic is usually the minor
        // share, so weight the factors by traffic.
        let per_thread = if self.opts.vector_loads { 16 } else { 4 };
        let run_bytes =
            Precision::operand_bytes(self.precision, self.shape.c_in as u64).max(1);
        let f_a = global_coalescing_factor(per_thread, run_bytes);
        let f_b = global_coalescing_factor(per_thread, 16);
        let coalescing_factor = ((f_a * a_traffic as f64 + f_b * (b_traffic + c_bytes) as f64)
            / dram_bytes as f64)
            .clamp(0.01, 1.0);

        // Shared memory instructions: 128-bit stores stage both tiles; the
        // fragment loads depend on the Fig. 5 reordering.
        let k_iters = (k_pad / cfg.k_tile) as u64;
        let stage_bytes = cfg.smem_stage_bytes(self.precision) as u64;
        let sts = smem_load_insts(stage_bytes * k_iters, SmemWidth::Lds128);
        // The Fig. 5 reordering buys two things at once: one LDS.128 in
        // place of four LDS.32, and conflict-free bank access (the strided
        // pattern's 16-byte thread stride serializes 4-way on the banks).
        let (lds_width, bank_degree) = if self.opts.smem_reordered {
            (SmemWidth::Lds128, 1)
        } else {
            (SmemWidth::Lds32, bank_conflict_degree(16))
        };
        // Each warp row re-reads the B stripe and each warp column the A
        // stripe.
        let frag_elems = (cfg.warps_n * cfg.m_tile + cfg.warps_m * cfg.n_tile) as u64
            * k_pad as u64;
        let lds = smem_load_insts(
            Precision::operand_bytes(self.precision, frag_elems),
            lds_width,
        ) * bank_degree;

        KernelDesc {
            grid_blocks: grid_m * grid_n,
            threads_per_block: cfg.threads() as u32,
            smem_per_block: (stage_bytes
                * if self.opts.double_buffered { 2 } else { 1 }) as u32,
            regs_per_thread: cfg.regs_per_thread(self.opts.double_buffered),
            macs_per_block: (cfg.m_tile * cfg.n_tile) as u64 * k_pad as u64,
            precision: self.precision,
            compute_efficiency: self.compute_efficiency,
            dram_bytes,
            coalescing_factor,
            smem_insts_per_block: sts + lds,
            per_block_overhead_cycles: 400 + 64 * k_iters,
            double_buffered: self.opts.double_buffered,
        }
    }

    /// Modeled launch time.
    pub fn time(&self, device: &Device) -> KernelTime {
        self.kernel_desc(device).time(device)
    }

    /// Executes the convolution functionally: NHWC activations, OHWI weights
    /// (`(c_out, c_in, kh, kw)` dims in `Nhwc` layout), NHWC i32 output.
    ///
    /// Walks the exact block/k-tile/warp/fragment structure of Alg. 2 and
    /// computes every fragment with the Tensor Core `mma` semantics.
    pub fn execute(&self, input: &QTensor, weights: &QTensor) -> Tensor<i32> {
        self.execute_traced(input, weights).0
    }

    /// Executes with the Alg. 2 line-15 epilogue: per-output-channel bias is
    /// added and the accumulator re-quantized *inside the kernel* ("on
    /// register"), so only i8 ever reaches global memory — the in-place
    /// optimization of Sec. 4.3.
    ///
    /// Functionally equivalent to `execute` followed by `add_bias` and
    /// `requantize` (tested), but expressed at the fidelity the paper
    /// describes.
    pub fn execute_with_epilogue(
        &self,
        input: &QTensor,
        weights: &QTensor,
        bias: &[i32],
        requant: &RequantParams,
    ) -> QTensor {
        assert_eq!(bias.len(), self.shape.c_out, "one bias per output channel");
        let (acc, _) = self.execute_traced(input, weights);
        // The functional walk stores whole tiles; the epilogue maps each
        // element before it would leave the registers.
        let (n, c, h, w) = acc.dims();
        let mut out: Tensor<i8> = Tensor::zeros((n, c, h, w), Layout::Nhwc);
        for b in 0..n {
            for (co, &bias_c) in bias.iter().enumerate() {
                for y in 0..h {
                    for x in 0..w {
                        let v = acc.get((b, co, y, x)) + bias_c;
                        out.set((b, co, y, x), requant.apply(v));
                    }
                }
            }
        }
        QTensor::new(out, requant.bits, 1.0)
    }

    /// [`ConvGpuPlan::execute`] plus the execution trace.
    pub fn execute_traced(&self, input: &QTensor, weights: &QTensor) -> (Tensor<i32>, ExecTrace) {
        let shape = &self.shape;
        assert_eq!(input.layout(), Layout::Nhwc, "GPU path expects NHWC");
        assert_eq!(weights.layout(), Layout::Nhwc, "weights must be OHWI");
        assert_eq!(
            weights.dims(),
            (shape.c_out, shape.c_in, shape.kh, shape.kw)
        );
        if self.precision == Precision::TensorCoreInt4 {
            let ok = |v: i8| (-8..=7).contains(&v);
            assert!(
                input.data().iter().copied().all(ok)
                    && weights.data().iter().copied().all(ok),
                "int4 path requires 4-bit operands"
            );
        }
        let (m, n, k) = self.gemm_dims();
        let cfg = &self.cfg;
        let k_mma = TileConfig::k_mma(self.precision);
        let k_pad = k.next_multiple_of(cfg.k_tile);
        let pc = Precomp::new(shape);
        // B[k][n] with k ordered (kr, kc, ci) to match the precomp taps.
        let b_at = |kk: usize, co: usize| -> i8 {
            if kk >= k {
                return 0;
            }
            let kr = kk / (shape.kw * shape.c_in);
            let kc = (kk / shape.c_in) % shape.kw;
            let ci = kk % shape.c_in;
            weights.get((co, ci, kr, kc))
        };

        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out: Tensor<i32> = Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nhwc);
        let (frag_m, frag_n) = cfg.warp_frag();
        let mut trace = ExecTrace::default();

        let mut smem_a = vec![0i8; cfg.m_tile * cfg.k_tile];
        let mut smem_b = vec![0i8; cfg.k_tile * cfg.n_tile];
        for bm in 0..m.div_ceil(cfg.m_tile) {
            for bn in 0..n.div_ceil(cfg.n_tile) {
                trace.blocks += 1;
                let mut c_tile = vec![0i32; cfg.m_tile * cfg.n_tile];
                for k0 in (0..k_pad).step_by(cfg.k_tile) {
                    trace.smem_staged_elems +=
                        ((cfg.m_tile + cfg.n_tile) * cfg.k_tile) as u64;
                    // Stage A via the precomputed offsets, B directly
                    // (Alg. 2 lines 3-4).
                    for r in 0..cfg.m_tile {
                        let mm = bm * cfg.m_tile + r;
                        for kk in 0..cfg.k_tile {
                            smem_a[r * cfg.k_tile + kk] = if mm < m && k0 + kk < k {
                                pc.gather(input, mm, k0 + kk)
                            } else {
                                0
                            };
                        }
                    }
                    for kk in 0..cfg.k_tile {
                        for c in 0..cfg.n_tile {
                            let nn = bn * cfg.n_tile + c;
                            smem_b[kk * cfg.n_tile + c] =
                                if nn < n { b_at(k0 + kk, nn) } else { 0 };
                        }
                    }
                    // Warp loop (Alg. 2 lines 6-14).
                    for ks in (0..cfg.k_tile).step_by(cfg.k_step) {
                        for wm in 0..cfg.warps_m {
                            for wn in 0..cfg.warps_n {
                                for fr in (0..frag_m).step_by(8) {
                                    for fc in (0..frag_n).step_by(8) {
                                        let row0 = wm * frag_m + fr;
                                        let col0 = wn * frag_n + fc;
                                        for kf in (0..cfg.k_step).step_by(k_mma) {
                                            let kbase = ks + kf;
                                            trace.mma_calls += 1;
                                            self.mma_fragment(
                                                &smem_a, &smem_b, &mut c_tile, row0, col0,
                                                kbase, k_mma,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                // Epilogue: store the fragment (requant/bias are applied by
                // the fusion layer on top of these exact accumulators).
                for r in 0..cfg.m_tile {
                    let mm = bm * cfg.m_tile + r;
                    if mm >= m {
                        break;
                    }
                    let (b, oy, ox) = pc.row_coords(mm);
                    for c in 0..cfg.n_tile {
                        let nn = bn * cfg.n_tile + c;
                        if nn >= n {
                            break;
                        }
                        trace.c_writes += 1;
                        out.set((b, nn, oy, ox), c_tile[r * cfg.n_tile + c]);
                    }
                }
            }
        }
        (out, trace)
    }

    /// One warp-level `mma` on the staged tiles.
    #[allow(clippy::too_many_arguments)]
    fn mma_fragment(
        &self,
        smem_a: &[i8],
        smem_b: &[i8],
        c_tile: &mut [i32],
        row0: usize,
        col0: usize,
        kbase: usize,
        k_mma: usize,
    ) {
        let cfg = &self.cfg;
        match self.precision {
            Precision::TensorCoreInt4 => {
                let mut a = [0i8; 256];
                let mut b = [0i8; 256];
                for r in 0..8 {
                    for kk in 0..32 {
                        a[r * 32 + kk] = smem_a[(row0 + r) * cfg.k_tile + kbase + kk];
                    }
                }
                for c in 0..8 {
                    for kk in 0..32 {
                        b[c * 32 + kk] = smem_b[(kbase + kk) * cfg.n_tile + col0 + c];
                    }
                }
                let mut frag = [0i32; 64];
                mma_m8n8k32_s4(&a, &b, &mut frag);
                for r in 0..8 {
                    for c in 0..8 {
                        c_tile[(row0 + r) * cfg.n_tile + col0 + c] += frag[r * 8 + c];
                    }
                }
            }
            _ => {
                debug_assert_eq!(k_mma, 16);
                let mut a = [0i8; 128];
                let mut b = [0i8; 128];
                for r in 0..8 {
                    for kk in 0..16 {
                        a[r * 16 + kk] = smem_a[(row0 + r) * cfg.k_tile + kbase + kk];
                    }
                }
                for c in 0..8 {
                    for kk in 0..16 {
                        b[c * 16 + kk] = smem_b[(kbase + kk) * cfg.n_tile + col0 + c];
                    }
                }
                let mut frag = [0i32; 64];
                mma_m8n8k16_s8(&a, &b, &mut frag);
                for r in 0..8 {
                    for c in 0..8 {
                        c_tile[(row0 + r) * cfg.n_tile + col0 + c] += frag[r * 8 + c];
                    }
                }
            }
        }
    }

    /// Selects the Tensor Core precision for a bit width (the GPU path
    /// supports exactly 4- and 8-bit, Sec. 2.3).
    pub fn precision_for_bits(bits: BitWidth) -> Option<Precision> {
        match bits.bits() {
            4 => Some(Precision::TensorCoreInt4),
            8 => Some(Precision::TensorCoreInt8),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::default_config;

    /// NHWC direct convolution oracle.
    fn direct_nhwc(input: &QTensor, weights: &QTensor, shape: &ConvShape) -> Tensor<i32> {
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out: Tensor<i32> =
            Tensor::zeros((shape.batch, shape.c_out, oh, ow), Layout::Nhwc);
        for b in 0..shape.batch {
            for co in 0..shape.c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0i32;
                        for kr in 0..shape.kh {
                            let iy = (oy * shape.stride + kr) as isize - shape.pad as isize;
                            if iy < 0 || iy >= shape.h as isize {
                                continue;
                            }
                            for kc in 0..shape.kw {
                                let ix =
                                    (ox * shape.stride + kc) as isize - shape.pad as isize;
                                if ix < 0 || ix >= shape.w as isize {
                                    continue;
                                }
                                for ci in 0..shape.c_in {
                                    acc += input.get((b, ci, iy as usize, ix as usize)) as i32
                                        * weights.get((co, ci, kr, kc)) as i32;
                                }
                            }
                        }
                        out.set((b, co, oy, ox), acc);
                    }
                }
            }
        }
        out
    }

    fn case(shape: ConvShape, bits: BitWidth, seed: u64) {
        let precision = ConvGpuPlan::precision_for_bits(bits).unwrap();
        let input = QTensor::random(
            (shape.batch, shape.c_in, shape.h, shape.w),
            Layout::Nhwc,
            bits,
            seed,
        );
        let weights = QTensor::random(
            (shape.c_out, shape.c_in, shape.kh, shape.kw),
            Layout::Nhwc,
            bits,
            seed + 1,
        );
        // A small config keeps the functional walk affordable while still
        // exercising multi-block, multi-warp, multi-k-tile structure.
        let cfg = TileConfig {
            m_tile: 32,
            n_tile: 16,
            k_tile: 64,
            k_step: 32,
            warps_m: 2,
            warps_n: 1,
        };
        let plan = ConvGpuPlan::new(shape, cfg, precision);
        let got = plan.execute(&input, &weights);
        let want = direct_nhwc(&input, &weights, &shape);
        assert_eq!(got.data(), want.data(), "{shape} {bits}");
    }

    #[test]
    fn int8_matches_direct_conv() {
        case(ConvShape::new(1, 19, 9, 9, 21, 3, 1, 1), BitWidth::W8, 7);
    }

    #[test]
    fn int4_matches_direct_conv() {
        case(ConvShape::new(1, 13, 8, 8, 10, 3, 1, 1), BitWidth::W4, 8);
    }

    #[test]
    fn strided_batched_pointwise_matches() {
        case(ConvShape::new(2, 17, 7, 7, 9, 1, 2, 0), BitWidth::W8, 9);
        case(ConvShape::new(2, 6, 10, 7, 5, 3, 2, 1), BitWidth::W4, 10);
    }

    #[test]
    fn default_config_executes_correctly_too() {
        let shape = ConvShape::new(1, 8, 6, 6, 12, 3, 1, 1);
        let precision = Precision::TensorCoreInt8;
        let input = QTensor::random((1, 8, 6, 6), Layout::Nhwc, BitWidth::W8, 11);
        let weights = QTensor::random((12, 8, 3, 3), Layout::Nhwc, BitWidth::W8, 12);
        let plan = ConvGpuPlan::new(shape, default_config(precision), precision);
        let got = plan.execute(&input, &weights);
        assert_eq!(got.data(), direct_nhwc(&input, &weights, &shape).data());
    }

    #[test]
    fn int4_rejects_wide_operands() {
        let shape = ConvShape::new(1, 8, 6, 6, 8, 1, 1, 0);
        let input = QTensor::random((1, 8, 6, 6), Layout::Nhwc, BitWidth::W8, 13);
        let weights = QTensor::random((8, 8, 1, 1), Layout::Nhwc, BitWidth::W8, 14);
        let cfg = TileConfig { m_tile: 16, n_tile: 8, k_tile: 32, k_step: 32, warps_m: 2, warps_n: 1 };
        let plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt4);
        let result = std::panic::catch_unwind(|| plan.execute(&input, &weights));
        assert!(result.is_err(), "8-bit data into the int4 path must panic");
    }

    #[test]
    fn epilogue_equals_unfused_bias_then_requant() {
        use lowbit_qnn::{add_bias, requantize, RequantParams};
        let shape = ConvShape::new(1, 8, 6, 6, 5, 3, 1, 1);
        let cfg = TileConfig {
            m_tile: 16, n_tile: 8, k_tile: 32, k_step: 16, warps_m: 2, warps_n: 1,
        };
        let plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8);
        let input = QTensor::random((1, 8, 6, 6), Layout::Nhwc, BitWidth::W8, 61);
        let weights = QTensor::random((5, 8, 3, 3), Layout::Nhwc, BitWidth::W8, 62);
        let bias = vec![100, -250, 0, 7, 99999];
        let rq = RequantParams::new(BitWidth::W8, 0.004).with_relu();

        let fused = plan.execute_with_epilogue(&input, &weights, &bias, &rq);
        let mut acc = plan.execute(&input, &weights);
        add_bias(&mut acc, &bias, false);
        let unfused = requantize(&acc, &rq);
        assert_eq!(fused.data(), unfused.data());
        // With the ReLU-fused truncation nothing is negative.
        assert!(fused.data().iter().all(|&v| v >= 0));
    }

    #[test]
    fn execution_trace_reconciles_with_the_analytic_descriptor() {
        // The GPU analog of the ARM emit-vs-counts invariant: what the
        // functional walk did must equal what the cost model priced.
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 12, 9, 9, 10, 3, 1, 1);
        for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
            let bits = if precision == Precision::TensorCoreInt4 {
                BitWidth::W4
            } else {
                BitWidth::W8
            };
            let cfg = TileConfig {
                m_tile: 32, n_tile: 16, k_tile: 64, k_step: 32, warps_m: 2, warps_n: 1,
            };
            let plan = ConvGpuPlan::new(shape, cfg, precision);
            let input = QTensor::random(
                (shape.batch, shape.c_in, shape.h, shape.w),
                Layout::Nhwc,
                bits,
                51,
            );
            let weights = QTensor::random(
                (shape.c_out, shape.c_in, shape.kh, shape.kw),
                Layout::Nhwc,
                bits,
                52,
            );
            let (_, trace) = plan.execute_traced(&input, &weights);
            let desc = plan.kernel_desc(&d);
            assert_eq!(trace.blocks, desc.grid_blocks, "{precision:?} blocks");
            // Every mma covers 8x8xK_mma MACs; the descriptor prices padded
            // tile volume.
            let k_mma = TileConfig::k_mma(precision) as u64;
            assert_eq!(
                trace.mma_calls * 64 * k_mma,
                desc.macs_per_block * desc.grid_blocks,
                "{precision:?} mma work"
            );
            // Staged elements match the descriptor's per-stage byte count
            // (element-for-byte at int8; halved at int4).
            let staged_bytes = Precision::operand_bytes(precision, trace.smem_staged_elems);
            let k_iters = shape.gemm_k().next_multiple_of(cfg.k_tile) as u64
                / cfg.k_tile as u64;
            assert_eq!(
                staged_bytes,
                cfg.smem_stage_bytes(precision) as u64 * k_iters * desc.grid_blocks,
                "{precision:?} staging"
            );
            // Every logical output is written exactly once.
            assert_eq!(trace.c_writes, shape.output_len() as u64);
        }
    }

    #[test]
    fn memory_opts_shape_the_descriptor() {
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
        let mut plan = ConvGpuPlan::new(
            shape,
            default_config(Precision::TensorCoreInt8),
            Precision::TensorCoreInt8,
        );
        let base = plan.kernel_desc(&d);
        plan.opts.smem_reordered = false;
        let no_reorder = plan.kernel_desc(&d);
        assert!(no_reorder.smem_insts_per_block > 2 * base.smem_insts_per_block);
        plan.opts.smem_reordered = true;
        plan.opts.vector_loads = false;
        let scalar_loads = plan.kernel_desc(&d);
        assert!(scalar_loads.coalescing_factor < base.coalescing_factor);
        plan.opts.vector_loads = true;
        plan.opts.in_place_epilogue = false;
        let fat_output = plan.kernel_desc(&d);
        assert!(fat_output.dram_bytes > base.dram_bytes);
    }

    #[test]
    fn every_memory_optimization_helps_modeled_time() {
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1);
        let mut plan = ConvGpuPlan::new(
            shape,
            default_config(Precision::TensorCoreInt8),
            Precision::TensorCoreInt8,
        );
        let full = plan.time(&d).total_s;
        for toggle in 0..4 {
            let mut opts = MemOpts::default();
            match toggle {
                0 => opts.vector_loads = false,
                1 => opts.smem_reordered = false,
                2 => opts.double_buffered = false,
                _ => opts.in_place_epilogue = false,
            }
            plan.opts = opts;
            let degraded = plan.time(&d).total_s;
            assert!(
                degraded >= full,
                "disabling optimization {toggle} should not speed things up"
            );
        }
    }

    #[test]
    fn int4_models_faster_than_int8() {
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1);
        let p8 = ConvGpuPlan::new(
            shape,
            default_config(Precision::TensorCoreInt8),
            Precision::TensorCoreInt8,
        );
        let p4 = ConvGpuPlan::new(
            shape,
            default_config(Precision::TensorCoreInt4),
            Precision::TensorCoreInt4,
        );
        assert!(p4.time(&d).total_s < p8.time(&d).total_s);
    }
}
