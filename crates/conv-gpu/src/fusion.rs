//! Quantization fusion (paper Sec. 4.4, Fig. 12).
//!
//! Around every conv sits the representation plumbing
//! `… conv(+requant) → dequantize → quantize → ReLU → dequantize`. Each
//! elementwise stage is a full kernel launch plus a round trip through
//! global memory; the two fusions eliminate them:
//!
//! * **conv + dequantization** — the epilogue converts i32 accumulators to
//!   f32 in registers and writes f32 once (no intermediate i8 tensor, one
//!   kernel fewer),
//! * **conv + ReLU** — the re-quantization truncation range is clamped at 0
//!   ([`lowbit_qnn::RequantParams::with_relu`]), which deletes the whole
//!   `dequantize → quantize → ReLU` sandwich.

use crate::implicit_gemm::ConvGpuPlan;
use lowbit_qnn::{dequantize_i32, requantize, RequantParams};
use lowbit_tensor::{QTensor, Tensor};
use turing_sim::kernel::elementwise_time;
use turing_sim::Device;

/// Which fusion the conv kernel's epilogue performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FusionMode {
    /// Plain conv with i8 re-quantized output; downstream stages run as
    /// separate kernels.
    None,
    /// Conv + dequantization: f32 output directly from registers.
    Dequant,
    /// Conv + ReLU: re-quantization truncates at zero (then a single
    /// dequantize follows if float output is needed).
    Relu,
}

/// Modeled time of the *conv + dequantize* sequence (Fig. 12, first group).
///
/// Returns `(unfused_seconds, fused_seconds)`.
pub fn dequant_fusion_times(plan: &ConvGpuPlan, device: &Device) -> (f64, f64) {
    let out_elems = plan.shape.output_len() as u64;
    // Unfused: conv writes i8 (in-place requant), then a dequantize kernel
    // reads i8 and writes f32.
    let conv_i8 = plan.time(device).total_s;
    let dequant = elementwise_time(device, out_elems, 4 * out_elems);
    let unfused = conv_i8 + dequant;
    // Fused: the conv epilogue writes f32 directly (4x output traffic, no
    // second kernel).
    let mut fused_plan = plan.clone();
    fused_plan.opts.in_place_epilogue = false; // f32 output = 4 B/elem
    let fused = fused_plan.time(device).total_s;
    (unfused, fused)
}

/// Modeled time of the *conv … ReLU* block (Fig. 12, second group).
///
/// Unfused: `conv(+requant) → dequantize → quantize → ReLU → dequantize`;
/// fused: `conv(+requant clamped at 0) → dequantize`.
/// Returns `(unfused_seconds, fused_seconds)`.
pub fn relu_fusion_times(plan: &ConvGpuPlan, device: &Device) -> (f64, f64) {
    let out = plan.shape.output_len() as u64;
    let conv = plan.time(device).total_s;
    let dequant = elementwise_time(device, out, 4 * out); // i8 -> f32
    let quant = elementwise_time(device, 4 * out, out); // f32 -> i8
    let relu = elementwise_time(device, out, out); // i8 -> i8
    let unfused = conv + dequant + quant + relu + dequant;
    let fused = conv + dequant; // ReLU folded into the conv's truncation
    (unfused, fused)
}

/// Functional fused execution: conv accumulators through the fused epilogue.
///
/// * `FusionMode::None` → re-quantized i8 tensor (dequantized here only for
///   comparison convenience),
/// * `FusionMode::Dequant` → f32 tensor,
/// * `FusionMode::Relu` → f32 tensor after the clamped re-quantization and
///   final dequantize.
pub fn execute_fused(
    plan: &ConvGpuPlan,
    input: &QTensor,
    weights: &QTensor,
    requant: &RequantParams,
    out_scale: f32,
    mode: FusionMode,
) -> Tensor<f32> {
    let acc = plan.execute(input, weights);
    match mode {
        FusionMode::None => {
            // conv(+requant) then separate dequantize kernel.
            let q = requantize(&acc, requant);
            let data: Vec<f32> = q.data().iter().map(|&v| v as f32 * out_scale).collect();
            Tensor::from_vec(q.dims(), q.layout(), data)
        }
        FusionMode::Dequant => {
            // i32 -> f32 directly with the combined scale.
            dequantize_i32(&acc, input.scale() * weights.scale())
        }
        FusionMode::Relu => {
            let q = requantize(&acc, &requant.with_relu());
            let data: Vec<f32> = q.data().iter().map(|&v| v as f32 * out_scale).collect();
            Tensor::from_vec(q.dims(), q.layout(), data)
        }
    }
}

/// Prices a whole [`lowbit_qnn::Graph`] on the device model: each node is
/// one kernel launch (convolutions through `plan`, elementwise stages as
/// streaming kernels). This is how the Sec. 4.4 fusion rewrites turn into
/// wall-time: `fuse(graph)` must never price higher than `graph`.
pub fn graph_time(graph: &lowbit_qnn::Graph, plan: &ConvGpuPlan, device: &Device) -> f64 {
    use lowbit_qnn::Op;
    let in_elems = plan.shape.input_len() as u64;
    let out_elems = plan.shape.output_len() as u64;
    let mut total = 0.0;
    for node in &graph.nodes {
        total += match node.op {
            Op::Quantize => elementwise_time(device, 4 * in_elems, in_elems),
            // The fused residual read happens from registers in the conv
            // epilogue; its cost is the conv's.
            Op::Conv | Op::ConvRelu | Op::ConvAdd => plan.time(device).total_s,
            Op::ConvDequant => {
                let mut p = plan.clone();
                p.opts.in_place_epilogue = false; // f32 output
                p.time(device).total_s
            }
            Op::Dequantize => elementwise_time(device, out_elems, 4 * out_elems),
            Op::Relu => elementwise_time(device, out_elems, out_elems),
            // Residual add reads two operands and writes one.
            Op::Add => elementwise_time(device, 2 * out_elems, out_elems),
            // Concat/split are pure data movement over the output tensor.
            Op::Concat | Op::Split => elementwise_time(device, out_elems, out_elems),
        };
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::default_config;
    use lowbit_qnn::relu_f32;
    use lowbit_tensor::{BitWidth, ConvShape, Layout};
    use turing_sim::Precision;

    fn plan_for(shape: ConvShape) -> ConvGpuPlan {
        ConvGpuPlan::new(
            shape,
            default_config(Precision::TensorCoreInt8),
            Precision::TensorCoreInt8,
        )
    }

    #[test]
    fn dequant_fusion_speeds_up_the_block() {
        let d = Device::rtx2080ti();
        let plan = plan_for(ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1));
        let (unfused, fused) = dequant_fusion_times(&plan, &d);
        let speedup = unfused / fused;
        assert!(
            (1.02..=1.8).contains(&speedup),
            "Fig. 12 band for conv+dequant is ~1.18x, got {speedup}"
        );
    }

    #[test]
    fn relu_fusion_speeds_up_more_than_dequant_fusion() {
        let d = Device::rtx2080ti();
        let plan = plan_for(ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1));
        let (u_d, f_d) = dequant_fusion_times(&plan, &d);
        let (u_r, f_r) = relu_fusion_times(&plan, &d);
        assert!(
            u_r / f_r > u_d / f_d,
            "ReLU fusion removes three kernels, dequant fusion one"
        );
        assert!((1.2..=2.5).contains(&(u_r / f_r)), "got {}", u_r / f_r);
    }

    #[test]
    fn graph_fusion_rewrites_never_price_higher() {
        use lowbit_qnn::{fuse, Graph};
        let d = Device::rtx2080ti();
        let plan = plan_for(ConvShape::new(1, 64, 28, 28, 64, 3, 1, 1));
        let reference = Graph::reference_block();
        let fused = fuse(&reference);
        let t_ref = graph_time(&reference, &plan, &d);
        let t_fused = graph_time(&fused, &plan, &d);
        assert!(
            t_fused < t_ref,
            "fusion must help: {:.2}us vs {:.2}us",
            t_fused * 1e6,
            t_ref * 1e6
        );
        // The block collapses from 6 kernels to 2; at batch-1 sizes launch
        // overhead dominates the removed stages, so expect a solid win.
        assert!(t_ref / t_fused > 1.2, "ratio {}", t_ref / t_fused);
    }

    #[test]
    fn graph_time_is_additive_over_ops() {
        use lowbit_qnn::{Graph, Op};
        let d = Device::rtx2080ti();
        let plan = plan_for(ConvShape::new(1, 16, 14, 14, 16, 3, 1, 1));
        let single = graph_time(&Graph::chain(&[Op::Relu]), &plan, &d);
        let triple = graph_time(&Graph::chain(&[Op::Relu; 3]), &plan, &d);
        assert!((triple - 3.0 * single).abs() < 1e-12);
    }

    #[test]
    fn fused_relu_equals_unfused_sequence() {
        // Functional equivalence of the Sec. 4.4 rewrite: requant-with-clamp
        // == requant -> relu, elementwise, for the full conv block.
        let shape = ConvShape::new(1, 8, 6, 6, 8, 3, 1, 1);
        let cfg = crate::tiling::TileConfig {
            m_tile: 16, n_tile: 8, k_tile: 32, k_step: 16, warps_m: 2, warps_n: 1,
        };
        let plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8);
        let input = QTensor::random((1, 8, 6, 6), Layout::Nhwc, BitWidth::W8, 31);
        let weights = QTensor::random((8, 8, 3, 3), Layout::Nhwc, BitWidth::W8, 32);
        let rq = RequantParams::new(BitWidth::W8, 0.01);
        let out_scale = 0.33;

        let fused = execute_fused(&plan, &input, &weights, &rq, out_scale, FusionMode::Relu);
        let unfused = {
            let base = execute_fused(&plan, &input, &weights, &rq, out_scale, FusionMode::None);
            relu_f32(&base)
        };
        assert_eq!(fused.data(), unfused.data());
    }

    #[test]
    fn fused_dequant_equals_plain_dequantized_accumulators() {
        let shape = ConvShape::new(1, 4, 5, 5, 6, 1, 1, 0);
        let cfg = crate::tiling::TileConfig {
            m_tile: 16, n_tile: 8, k_tile: 32, k_step: 16, warps_m: 2, warps_n: 1,
        };
        let plan = ConvGpuPlan::new(shape, cfg, Precision::TensorCoreInt8);
        let input = QTensor::random((1, 4, 5, 5), Layout::Nhwc, BitWidth::W8, 41);
        let weights = QTensor::random((6, 4, 1, 1), Layout::Nhwc, BitWidth::W8, 42);
        let rq = RequantParams::new(BitWidth::W8, 1.0);
        let fused =
            execute_fused(&plan, &input, &weights, &rq, 1.0, FusionMode::Dequant);
        let acc = plan.execute(&input, &weights);
        let want = dequantize_i32(&acc, input.scale() * weights.scale());
        assert_eq!(fused.data(), want.data());
    }
}
