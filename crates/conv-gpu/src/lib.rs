//! GPU-side extremely low-bit convolution (paper Sec. 4) on the
//! `turing-sim` substrate.
//!
//! The pipeline is the implicit-precomp-GEMM convolution of Alg. 2:
//!
//! * [`precomp`] — the precomputed offset buffer (Sec. 4.2: offsets, not
//!   pointers, computed once per shape; 0.5–50 KB),
//! * [`tiling`] — the data-partition parameters (`MTile`, `NTile`, `KTile`,
//!   `KStep`, `blockRow/ColWarpNum`) mapping the GEMM onto grid, block and
//!   warp (Fig. 4),
//! * [`implicit_gemm`] — the kernel itself: a functional execution path
//!   driven by `mma` fragment semantics, and an analytic
//!   [`turing_sim::KernelDesc`] carrying the memory-optimization choices of
//!   Sec. 4.3 (coalesced `int4` vector loads, Fig. 5 shared-memory
//!   reordering, Fig. 6 register double-buffering, in-place bias +
//!   re-quantization),
//! * [`tuning`] — profile-run auto-search over tiling parameters (Fig. 11),
//! * [`fusion`] — the Sec. 4.4 quantization fusions (Fig. 12),
//! * [`baselines`] — cuDNN-like (dp4a) and TensorRT-like (tuned int8 Tensor
//!   Core) comparison models.

#![forbid(unsafe_code)]

pub mod access;
pub mod baselines;
pub mod fusion;
pub mod implicit_gemm;
pub mod precomp;
pub mod tiling;
pub mod tuning;

pub use access::{GpuAccessStream, TileSpan, TilingLevels};
pub use implicit_gemm::{ConvGpuPlan, MemOpts};
pub use precomp::Precomp;
pub use tiling::{TileConfig, TileRejection};
pub use tuning::{
    auto_search, default_config, search_space, search_space_stats, SearchStats, TuningCache,
};
