//! The data-partition parameters of Sec. 4.2 / Fig. 4.

use turing_sim::Precision;

/// Tiling parameters mapping the implicit GEMM onto the thread hierarchy:
/// the grid tiles `C` into `MTile x NTile` blocks, each block's warps tile
/// their fragment, and `KTile`/`KStep` stage the reduction through shared
/// memory and registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TileConfig {
    /// Rows of C per thread block (`MTile`).
    pub m_tile: usize,
    /// Columns of C per thread block (`NTile`).
    pub n_tile: usize,
    /// K elements staged in shared memory per iteration (`KTile`).
    pub k_tile: usize,
    /// K elements held in registers per inner step (`KStep`).
    pub k_step: usize,
    /// Warp rows per block (`blockRowWarpNum`).
    pub warps_m: usize,
    /// Warp columns per block (`blockColWarpNum`).
    pub warps_n: usize,
}

impl TileConfig {
    /// Threads per block (32 per warp).
    pub fn threads(&self) -> usize {
        32 * self.warps_m * self.warps_n
    }

    /// The `mma` K depth for a precision (`m8n8k16` / `m8n8k32`).
    pub fn k_mma(precision: Precision) -> usize {
        match precision {
            Precision::TensorCoreInt4 => 32,
            _ => 16,
        }
    }

    /// Shared memory for one stage of A and B tiles, in bytes.
    pub fn smem_stage_bytes(&self, precision: Precision) -> usize {
        let elems = (self.m_tile + self.n_tile) * self.k_tile;
        Precision::operand_bytes(precision, elems as u64) as usize
    }

    /// Per-warp C fragment dimensions.
    pub fn warp_frag(&self) -> (usize, usize) {
        (self.m_tile / self.warps_m, self.n_tile / self.warps_n)
    }

    /// Estimated registers per thread: the C fragment lives entirely in
    /// registers, plus operand fragments and the Fig. 6 staging buffer.
    pub fn regs_per_thread(&self, double_buffered: bool) -> u32 {
        let (fm, fn_) = self.warp_frag();
        let acc = (fm * fn_ / 32) as u32;
        let frags = ((fm + fn_) * self.k_step / 32 / 4) as u32;
        let staging = if double_buffered { 16 } else { 0 };
        32 + acc + frags + staging
    }

    /// `true` when the configuration is executable for `precision`:
    /// divisibility down the hierarchy and hardware limits.
    pub fn valid(&self, precision: Precision, smem_limit: usize) -> bool {
        let k_mma = Self::k_mma(precision);
        let (fm, fn_) = if self.warps_m == 0 || self.warps_n == 0 {
            return false;
        } else {
            (self.m_tile / self.warps_m.max(1), self.n_tile / self.warps_n.max(1))
        };
        self.m_tile.is_multiple_of(8 * self.warps_m)
            && self.n_tile.is_multiple_of(8 * self.warps_n)
            && self.k_tile.is_multiple_of(self.k_step)
            && self.k_step.is_multiple_of(k_mma)
            && self.threads() <= 1024
            && fm >= 8
            && fn_ >= 8
            && self.smem_stage_bytes(precision) * 2 <= smem_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMEM: usize = 64 * 1024;

    fn cfg(m: usize, n: usize, k: usize, ks: usize, wm: usize, wn: usize) -> TileConfig {
        TileConfig { m_tile: m, n_tile: n, k_tile: k, k_step: ks, warps_m: wm, warps_n: wn }
    }

    #[test]
    fn canonical_config_is_valid() {
        let c = cfg(128, 128, 64, 32, 2, 2);
        assert!(c.valid(Precision::TensorCoreInt8, SMEM));
        assert_eq!(c.threads(), 128);
        assert_eq!(c.warp_frag(), (64, 64));
    }

    #[test]
    fn int4_requires_k_step_multiple_of_32() {
        let c = cfg(64, 64, 64, 16, 2, 2);
        assert!(c.valid(Precision::TensorCoreInt8, SMEM));
        assert!(!c.valid(Precision::TensorCoreInt4, SMEM));
        let c32 = cfg(64, 64, 64, 32, 2, 2);
        assert!(c32.valid(Precision::TensorCoreInt4, SMEM));
    }

    #[test]
    fn smem_limit_rejects_oversized_stages() {
        // (256 + 256) * 128 bytes * 2 stages = 128 KB > 64 KB.
        let c = cfg(256, 256, 128, 32, 4, 4);
        assert!(!c.valid(Precision::TensorCoreInt8, SMEM));
        // At int4 the same stage halves and fits.
        assert!(c.valid(Precision::TensorCoreInt4, SMEM));
    }

    #[test]
    fn warp_fragment_must_cover_an_mma_tile() {
        // 16x16 tile with 4x4 warps would give 4x4 fragments < 8x8.
        let c = cfg(16, 16, 64, 16, 4, 4);
        assert!(!c.valid(Precision::TensorCoreInt8, SMEM));
    }

    #[test]
    fn int4_halves_smem_stage() {
        let c = cfg(128, 128, 64, 32, 2, 2);
        assert_eq!(
            c.smem_stage_bytes(Precision::TensorCoreInt4) * 2,
            c.smem_stage_bytes(Precision::TensorCoreInt8)
        );
    }

    #[test]
    fn register_estimate_scales_with_fragment_area() {
        let small = cfg(64, 64, 64, 16, 2, 2);
        let big = cfg(256, 128, 64, 16, 2, 2);
        assert!(
            big.regs_per_thread(true) > small.regs_per_thread(true),
            "bigger fragments need more registers"
        );
    }
}
