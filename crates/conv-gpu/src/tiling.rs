//! The data-partition parameters of Sec. 4.2 / Fig. 4.

use turing_sim::{Precision, MAX_REGS_PER_THREAD, MAX_THREADS_PER_BLOCK, REGS_PER_SM};

/// Why a [`TileConfig`] is not executable: the typed rejection reason
/// returned by [`TileConfig::validate`] (and tallied by the tuner's search
/// logs, so a shrinking search space is explainable instead of silent).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TileRejection {
    /// `warps_m`/`warps_n` must both be positive.
    ZeroWarps,
    /// The block tile does not split evenly into `8`-row/column warp
    /// fragments (`m_tile % (8 * warps_m)` or the `n` analogue is nonzero).
    WarpShape {
        /// The offending dimension, `'m'` or `'n'`.
        dim: char,
        /// The tile extent in that dimension.
        tile: usize,
        /// The warp count in that dimension.
        warps: usize,
    },
    /// A warp fragment smaller than one 8x8 `mma` tile.
    FragmentTooSmall {
        /// Fragment rows per warp.
        frag_m: usize,
        /// Fragment columns per warp.
        frag_n: usize,
    },
    /// `k_tile` is not a multiple of `k_step`.
    KStepMisfit {
        /// K elements staged in shared memory.
        k_tile: usize,
        /// K elements held in registers per step.
        k_step: usize,
    },
    /// `k_step` is not a multiple of the precision's `mma` K depth, so the
    /// operand fragments are illegal for `m8n8k16.s8`/`m8n8k32.s4`.
    MmaShape {
        /// K elements per register step.
        k_step: usize,
        /// The `mma` K depth the precision requires.
        k_mma: usize,
    },
    /// More threads than a block may launch.
    TooManyThreads {
        /// `32 * warps_m * warps_n`.
        threads: usize,
    },
    /// The double-buffered shared-memory stages exceed the device limit.
    SmemOverLimit {
        /// Bytes both stages need.
        need: usize,
        /// The per-SM capacity.
        limit: usize,
    },
    /// The per-thread register estimate exceeds the ISA limit of 255 —
    /// such a kernel spills (or fails to compile) rather than running at
    /// the modeled speed.
    RegisterPressure {
        /// Estimated registers per thread.
        regs: u32,
    },
    /// The block's total register footprint exceeds the SM register file,
    /// so not even one block can become resident.
    BlockRegisters {
        /// `regs_per_thread x threads`.
        regs: u32,
        /// The register-file size.
        limit: u32,
    },
}

impl TileRejection {
    /// Short stable tag for tallying rejections in tuning logs.
    pub fn kind(&self) -> &'static str {
        match self {
            TileRejection::ZeroWarps => "zero-warps",
            TileRejection::WarpShape { .. } => "warp-shape",
            TileRejection::FragmentTooSmall { .. } => "fragment-too-small",
            TileRejection::KStepMisfit { .. } => "k-step-misfit",
            TileRejection::MmaShape { .. } => "mma-shape",
            TileRejection::TooManyThreads { .. } => "too-many-threads",
            TileRejection::SmemOverLimit { .. } => "smem-over-limit",
            TileRejection::RegisterPressure { .. } => "register-pressure",
            TileRejection::BlockRegisters { .. } => "block-registers",
        }
    }
}

impl std::fmt::Display for TileRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileRejection::ZeroWarps => write!(f, "warp grid has a zero dimension"),
            TileRejection::WarpShape { dim, tile, warps } => write!(
                f,
                "{dim}_tile {tile} does not split into {warps} warps of 8-aligned fragments"
            ),
            TileRejection::FragmentTooSmall { frag_m, frag_n } => write!(
                f,
                "warp fragment {frag_m}x{frag_n} smaller than one 8x8 mma tile"
            ),
            TileRejection::KStepMisfit { k_tile, k_step } => {
                write!(f, "k_tile {k_tile} is not a multiple of k_step {k_step}")
            }
            TileRejection::MmaShape { k_step, k_mma } => write!(
                f,
                "k_step {k_step} is not a multiple of the mma K depth {k_mma}"
            ),
            TileRejection::TooManyThreads { threads } => {
                write!(f, "{threads} threads exceed the 1024-thread block limit")
            }
            TileRejection::SmemOverLimit { need, limit } => write!(
                f,
                "double-buffered stages need {need} B of shared memory, limit {limit} B"
            ),
            TileRejection::RegisterPressure { regs } => write!(
                f,
                "estimated {regs} registers per thread exceeds the ISA limit of {MAX_REGS_PER_THREAD}"
            ),
            TileRejection::BlockRegisters { regs, limit } => write!(
                f,
                "block needs {regs} registers, more than the {limit}-register SM file"
            ),
        }
    }
}

impl std::error::Error for TileRejection {}

/// Tiling parameters mapping the implicit GEMM onto the thread hierarchy:
/// the grid tiles `C` into `MTile x NTile` blocks, each block's warps tile
/// their fragment, and `KTile`/`KStep` stage the reduction through shared
/// memory and registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TileConfig {
    /// Rows of C per thread block (`MTile`).
    pub m_tile: usize,
    /// Columns of C per thread block (`NTile`).
    pub n_tile: usize,
    /// K elements staged in shared memory per iteration (`KTile`).
    pub k_tile: usize,
    /// K elements held in registers per inner step (`KStep`).
    pub k_step: usize,
    /// Warp rows per block (`blockRowWarpNum`).
    pub warps_m: usize,
    /// Warp columns per block (`blockColWarpNum`).
    pub warps_n: usize,
}

impl TileConfig {
    /// Threads per block (32 per warp).
    pub fn threads(&self) -> usize {
        32 * self.warps_m * self.warps_n
    }

    /// The `mma` K depth for a precision (`m8n8k16` / `m8n8k32`).
    pub fn k_mma(precision: Precision) -> usize {
        match precision {
            Precision::TensorCoreInt4 => 32,
            _ => 16,
        }
    }

    /// Shared memory for one stage of A and B tiles, in bytes.
    pub fn smem_stage_bytes(&self, precision: Precision) -> usize {
        let elems = (self.m_tile + self.n_tile) * self.k_tile;
        Precision::operand_bytes(precision, elems as u64) as usize
    }

    /// Per-warp C fragment dimensions.
    pub fn warp_frag(&self) -> (usize, usize) {
        (self.m_tile / self.warps_m, self.n_tile / self.warps_n)
    }

    /// Estimated registers per thread: the C fragment lives entirely in
    /// registers, plus operand fragments and the Fig. 6 staging buffer.
    pub fn regs_per_thread(&self, double_buffered: bool) -> u32 {
        let (fm, fn_) = self.warp_frag();
        let acc = (fm * fn_ / 32) as u32;
        let frags = ((fm + fn_) * self.k_step / 32 / 4) as u32;
        let staging = if double_buffered { 16 } else { 0 };
        32 + acc + frags + staging
    }

    /// Checks that the configuration is executable for `precision`:
    /// divisibility down the hierarchy and hardware limits. Returns the
    /// first violated constraint as a typed [`TileRejection`].
    pub fn validate(&self, precision: Precision, smem_limit: usize) -> Result<(), TileRejection> {
        let k_mma = Self::k_mma(precision);
        if self.warps_m == 0 || self.warps_n == 0 {
            return Err(TileRejection::ZeroWarps);
        }
        if !self.m_tile.is_multiple_of(8 * self.warps_m) {
            return Err(TileRejection::WarpShape { dim: 'm', tile: self.m_tile, warps: self.warps_m });
        }
        if !self.n_tile.is_multiple_of(8 * self.warps_n) {
            return Err(TileRejection::WarpShape { dim: 'n', tile: self.n_tile, warps: self.warps_n });
        }
        if self.k_step == 0 || !self.k_tile.is_multiple_of(self.k_step) {
            return Err(TileRejection::KStepMisfit { k_tile: self.k_tile, k_step: self.k_step });
        }
        if !self.k_step.is_multiple_of(k_mma) {
            return Err(TileRejection::MmaShape { k_step: self.k_step, k_mma });
        }
        if self.threads() > MAX_THREADS_PER_BLOCK as usize {
            return Err(TileRejection::TooManyThreads { threads: self.threads() });
        }
        let (fm, fn_) = self.warp_frag();
        if fm < 8 || fn_ < 8 {
            return Err(TileRejection::FragmentTooSmall { frag_m: fm, frag_n: fn_ });
        }
        let need = self.smem_stage_bytes(precision) * 2;
        if need > smem_limit {
            return Err(TileRejection::SmemOverLimit { need, limit: smem_limit });
        }
        let regs = self.regs_per_thread(true);
        if regs > MAX_REGS_PER_THREAD {
            return Err(TileRejection::RegisterPressure { regs });
        }
        let block_regs = regs * self.threads() as u32;
        if block_regs > REGS_PER_SM {
            return Err(TileRejection::BlockRegisters { regs: block_regs, limit: REGS_PER_SM });
        }
        Ok(())
    }

    /// `true` when [`TileConfig::validate`] accepts the configuration.
    pub fn valid(&self, precision: Precision, smem_limit: usize) -> bool {
        self.validate(precision, smem_limit).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMEM: usize = 64 * 1024;

    fn cfg(m: usize, n: usize, k: usize, ks: usize, wm: usize, wn: usize) -> TileConfig {
        TileConfig { m_tile: m, n_tile: n, k_tile: k, k_step: ks, warps_m: wm, warps_n: wn }
    }

    #[test]
    fn canonical_config_is_valid() {
        let c = cfg(128, 128, 64, 32, 2, 2);
        assert!(c.valid(Precision::TensorCoreInt8, SMEM));
        assert_eq!(c.threads(), 128);
        assert_eq!(c.warp_frag(), (64, 64));
    }

    #[test]
    fn int4_requires_k_step_multiple_of_32() {
        let c = cfg(64, 64, 64, 16, 2, 2);
        assert!(c.valid(Precision::TensorCoreInt8, SMEM));
        assert!(!c.valid(Precision::TensorCoreInt4, SMEM));
        let c32 = cfg(64, 64, 64, 32, 2, 2);
        assert!(c32.valid(Precision::TensorCoreInt4, SMEM));
    }

    #[test]
    fn smem_limit_rejects_oversized_stages() {
        // (64 + 64) * 512 bytes * 2 stages = 128 KB > 64 KB.
        let c = cfg(64, 64, 512, 32, 2, 2);
        assert!(!c.valid(Precision::TensorCoreInt8, SMEM));
        // At int4 the same stage halves and exactly fits.
        assert!(c.valid(Precision::TensorCoreInt4, SMEM));
    }

    #[test]
    fn warp_fragment_must_cover_an_mma_tile() {
        // 16x16 tile with 4x4 warps would give 4x4 fragments < 8x8.
        let c = cfg(16, 16, 64, 16, 4, 4);
        assert!(!c.valid(Precision::TensorCoreInt8, SMEM));
    }

    #[test]
    fn int4_halves_smem_stage() {
        let c = cfg(128, 128, 64, 32, 2, 2);
        assert_eq!(
            c.smem_stage_bytes(Precision::TensorCoreInt4) * 2,
            c.smem_stage_bytes(Precision::TensorCoreInt8)
        );
    }

    #[test]
    fn rejection_reasons_are_typed() {
        let p = Precision::TensorCoreInt8;
        assert_eq!(
            cfg(128, 128, 64, 32, 0, 2).validate(p, SMEM),
            Err(TileRejection::ZeroWarps)
        );
        assert_eq!(
            cfg(100, 128, 64, 32, 2, 2).validate(p, SMEM),
            Err(TileRejection::WarpShape { dim: 'm', tile: 100, warps: 2 })
        );
        assert_eq!(
            cfg(128, 128, 48, 32, 2, 2).validate(p, SMEM),
            Err(TileRejection::KStepMisfit { k_tile: 48, k_step: 32 })
        );
        assert_eq!(
            cfg(64, 64, 64, 16, 2, 2).validate(Precision::TensorCoreInt4, SMEM),
            Err(TileRejection::MmaShape { k_step: 16, k_mma: 32 })
        );
        assert_eq!(
            cfg(512, 512, 64, 32, 8, 8).validate(p, SMEM),
            Err(TileRejection::TooManyThreads { threads: 2048 })
        );
        // Divisibility by 8*warps implies fragments of at least 8, so the
        // fragment check only catches degenerate zero-extent tiles.
        assert_eq!(
            cfg(0, 64, 64, 16, 1, 1).validate(p, SMEM),
            Err(TileRejection::FragmentTooSmall { frag_m: 0, frag_n: 64 })
        );
        assert_eq!(
            cfg(16, 16, 64, 16, 4, 4).validate(p, SMEM),
            Err(TileRejection::WarpShape { dim: 'm', tile: 16, warps: 4 })
        );
        assert_eq!(
            cfg(256, 256, 128, 32, 4, 4).validate(p, SMEM),
            Err(TileRejection::SmemOverLimit { need: 128 * 1024, limit: SMEM })
        );
        // A giant per-warp fragment: the C accumulators alone blow the
        // 255-register encoding limit, so the config must be rejected even
        // though every divisibility constraint holds.
        let fat = cfg(256, 256, 32, 16, 1, 1);
        assert!(matches!(
            fat.validate(p, SMEM),
            Err(TileRejection::RegisterPressure { .. })
        ));
        // Each rejection renders a human-readable reason with a stable tag.
        let r = fat.validate(p, SMEM).unwrap_err();
        assert_eq!(r.kind(), "register-pressure");
        assert!(r.to_string().contains("registers per thread"));
        // Per-thread registers fit, but 16 warps of them cannot co-reside:
        // not even one such block fits the 64K-register file.
        let wide = cfg(256, 256, 32, 32, 4, 4);
        assert!(matches!(
            wide.validate(Precision::TensorCoreInt4, SMEM),
            Err(TileRejection::BlockRegisters { regs, limit: 65536 }) if regs > 65536
        ));
        assert_eq!(
            wide.validate(Precision::TensorCoreInt4, SMEM).unwrap_err().kind(),
            "block-registers"
        );
    }

    #[test]
    fn register_estimate_scales_with_fragment_area() {
        let small = cfg(64, 64, 64, 16, 2, 2);
        let big = cfg(256, 128, 64, 16, 2, 2);
        assert!(
            big.regs_per_thread(true) > small.regs_per_thread(true),
            "bigger fragments need more registers"
        );
    }
}
