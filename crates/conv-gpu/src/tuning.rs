//! Tiling-parameter auto-search via profile runs (Sec. 5.1, Fig. 11).
//!
//! The paper generates kernels for many tiling-parameter combinations with
//! C++ templates and picks the fastest by profiling each shape once. Here the
//! "profile run" evaluates the analytic launch model — the same model that
//! times the chosen kernel — so searched configurations are exactly
//! comparable.

use crate::implicit_gemm::ConvGpuPlan;
use crate::tiling::TileConfig;
use lowbit_tensor::ConvShape;
use turing_sim::{Device, KernelTime, Precision};

/// The "programmer experience" default of Fig. 11's `w/o profile` bars: a
/// large square tile that is excellent for big GEMMs and poor for batch-1
/// ResNet shapes.
pub fn default_config(precision: Precision) -> TileConfig {
    TileConfig {
        m_tile: 128,
        n_tile: 128,
        k_tile: 64,
        k_step: TileConfig::k_mma(precision) * 2,
        warps_m: 2,
        warps_n: 2,
    }
}

/// What the tuner's candidate enumeration saw: how many template
/// instantiations survived and why the rest were rejected, tallied by
/// [`crate::tiling::TileRejection::kind`]. Surfaced in tuning logs and the
/// `lowbit-verify --gpu` report so a shrinking search space is explainable.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SearchStats {
    /// Configurations that entered the search.
    pub accepted: usize,
    /// Rejection tallies, keyed by the typed reason's stable tag.
    pub rejected: std::collections::BTreeMap<&'static str, usize>,
}

impl SearchStats {
    /// Total configurations enumerated (accepted + rejected).
    pub fn enumerated(&self) -> usize {
        self.accepted + self.rejected.values().sum::<usize>()
    }
}

impl std::fmt::Display for SearchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} configs valid", self.accepted, self.enumerated())?;
        for (kind, n) in &self.rejected {
            write!(f, ", {n} {kind}")?;
        }
        Ok(())
    }
}

/// Enumerates the valid search space for a precision (the template
/// instantiations of Sec. 5.1).
pub fn search_space(precision: Precision) -> Vec<TileConfig> {
    search_space_stats(precision).0
}

/// [`search_space`] plus the typed rejection tally for everything the
/// enumeration filtered out.
pub fn search_space_stats(precision: Precision) -> (Vec<TileConfig>, SearchStats) {
    let mut out = Vec::new();
    let mut stats = SearchStats::default();
    let k_mma = TileConfig::k_mma(precision);
    for &m_tile in &[16, 32, 64, 128, 256] {
        for &n_tile in &[16, 32, 64, 128, 256] {
            for &k_tile in &[32, 64, 128] {
                for &(warps_m, warps_n) in
                    &[(1, 1), (1, 2), (2, 1), (2, 2), (2, 4), (4, 2), (4, 4)]
                {
                    for &k_step in &[k_mma, 2 * k_mma] {
                        let cfg = TileConfig {
                            m_tile,
                            n_tile,
                            k_tile,
                            k_step,
                            warps_m,
                            warps_n,
                        };
                        match cfg.validate(precision, 64 * 1024) {
                            Ok(()) => {
                                stats.accepted += 1;
                                out.push(cfg);
                            }
                            Err(r) => *stats.rejected.entry(r.kind()).or_insert(0) += 1,
                        }
                    }
                }
            }
        }
    }
    (out, stats)
}

/// Profile-run auto-search: returns the best configuration and its modeled
/// time for one shape. Deterministic; run once per shape (the paper notes
/// the overhead is negligible and amortized).
///
/// ```
/// use lowbit_conv_gpu::{auto_search, default_config, ConvGpuPlan};
/// use lowbit_tensor::ConvShape;
/// use turing_sim::{Device, Precision};
///
/// let device = Device::rtx2080ti();
/// let shape = ConvShape::new(1, 512, 7, 7, 512, 3, 1, 1); // batch-1 late layer
/// let (cfg, tuned) = auto_search(&shape, Precision::TensorCoreInt8, &device);
/// let default = ConvGpuPlan::new(shape, default_config(Precision::TensorCoreInt8),
///                                Precision::TensorCoreInt8).time(&device);
/// assert!(tuned.total_s <= default.total_s); // Fig. 11's whole point
/// assert!(cfg.m_tile <= 128);
/// ```
pub fn auto_search(
    shape: &ConvShape,
    precision: Precision,
    device: &Device,
) -> (TileConfig, KernelTime) {
    let mut best: Option<(TileConfig, KernelTime)> = None;
    for cfg in search_space(precision) {
        let plan = ConvGpuPlan::new(*shape, cfg, precision);
        let t = plan.time(device);
        if best
            .as_ref()
            .map(|(_, bt)| t.total_s < bt.total_s)
            .unwrap_or(true)
        {
            best = Some((cfg, t));
        }
    }
    best.expect("search space is never empty")
}

/// A per-shape cache of tuning results — the paper's "optimal tiling
/// parameters only need to be determined once per convolution shape"
/// (Sec. 5.1). Deployments persist it next to the model; the text format is
/// intentionally trivial (one line per entry) so it stays diffable.
#[derive(Clone, Debug, Default)]
pub struct TuningCache {
    entries: std::collections::HashMap<(ConvShape, Precision), TileConfig>,
}

impl TuningCache {
    /// Empty cache.
    pub fn new() -> TuningCache {
        TuningCache::default()
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the cached config, or runs the profile search and caches it.
    pub fn get_or_search(
        &mut self,
        shape: &ConvShape,
        precision: Precision,
        device: &Device,
    ) -> TileConfig {
        if let Some(cfg) = self.entries.get(&(*shape, precision)) {
            return *cfg;
        }
        let (cfg, _) = auto_search(shape, precision, device);
        self.entries.insert((*shape, precision), cfg);
        cfg
    }

    /// Serializes to the one-line-per-entry text format.
    pub fn to_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|((s, p), c)| {
                format!(
                    "{} {} {} {} {} {} {} {} {} {:?} {} {} {} {} {} {}",
                    s.batch, s.c_in, s.h, s.w, s.c_out, s.kh, s.kw, s.stride, s.pad,
                    p, c.m_tile, c.n_tile, c.k_tile, c.k_step, c.warps_m, c.warps_n
                )
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Parses the text format (inverse of [`TuningCache::to_text`]).
    pub fn from_text(text: &str) -> Result<TuningCache, String> {
        let mut cache = TuningCache::new();
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split_whitespace().collect();
            if f.len() != 16 {
                return Err(format!("line {}: expected 16 fields, got {}", ln + 1, f.len()));
            }
            let num = |i: usize| -> Result<usize, String> {
                f[i].parse().map_err(|_| format!("line {}: bad number {}", ln + 1, f[i]))
            };
            let shape = ConvShape {
                batch: num(0)?,
                c_in: num(1)?,
                h: num(2)?,
                w: num(3)?,
                c_out: num(4)?,
                kh: num(5)?,
                kw: num(6)?,
                stride: num(7)?,
                pad: num(8)?,
            };
            let precision = match f[9] {
                "TensorCoreInt4" => Precision::TensorCoreInt4,
                "TensorCoreInt8" => Precision::TensorCoreInt8,
                "Dp4aInt8" => Precision::Dp4aInt8,
                other => return Err(format!("line {}: unknown precision {other}", ln + 1)),
            };
            let cfg = TileConfig {
                m_tile: num(10)?,
                n_tile: num(11)?,
                k_tile: num(12)?,
                k_step: num(13)?,
                warps_m: num(14)?,
                warps_n: num(15)?,
            };
            cache.entries.insert((shape, precision), cfg);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_space_is_nonempty_and_valid() {
        for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
            let space = search_space(precision);
            assert!(space.len() > 50, "need a meaningful space to search");
            assert!(space.iter().all(|c| c.valid(precision, 64 * 1024)));
        }
    }

    #[test]
    fn searched_config_never_loses_to_default() {
        let d = Device::rtx2080ti();
        for shape in [
            ConvShape::new(1, 64, 56, 56, 64, 1, 1, 0),
            ConvShape::new(1, 512, 7, 7, 2048, 1, 1, 0),
            ConvShape::new(16, 64, 56, 56, 64, 3, 1, 1),
        ] {
            let (best, t_best) = auto_search(&shape, Precision::TensorCoreInt8, &d);
            let t_default = ConvGpuPlan::new(
                shape,
                default_config(Precision::TensorCoreInt8),
                Precision::TensorCoreInt8,
            )
            .time(&d);
            assert!(
                t_best.total_s <= t_default.total_s + 1e-12,
                "auto-search must dominate the default on {shape} (best {best:?})"
            );
        }
    }

    #[test]
    fn batch_one_prefers_smaller_tiles_than_batch_sixteen() {
        // The Fig. 11 mechanism: at batch 1 the GEMM M dimension is tiny, so
        // big default tiles strand SMs.
        let d = Device::rtx2080ti();
        let small = ConvShape::new(1, 512, 7, 7, 512, 3, 1, 1);
        let big = small.with_batch(16);
        let (cfg1, _) = auto_search(&small, Precision::TensorCoreInt8, &d);
        let (cfg16, _) = auto_search(&big, Precision::TensorCoreInt8, &d);
        assert!(
            cfg1.m_tile <= cfg16.m_tile,
            "batch 1 chose {cfg1:?}, batch 16 chose {cfg16:?}"
        );
    }

    #[test]
    fn cache_avoids_repeated_searches_and_round_trips() {
        let d = Device::rtx2080ti();
        let mut cache = TuningCache::new();
        let shape = ConvShape::new(1, 64, 28, 28, 64, 3, 1, 1);
        let c1 = cache.get_or_search(&shape, Precision::TensorCoreInt8, &d);
        assert_eq!(cache.len(), 1);
        let c2 = cache.get_or_search(&shape, Precision::TensorCoreInt8, &d);
        assert_eq!(c1, c2);
        assert_eq!(cache.len(), 1);
        // Different precision is a different entry.
        cache.get_or_search(&shape, Precision::TensorCoreInt4, &d);
        assert_eq!(cache.len(), 2);
        // Text round trip preserves every entry.
        let text = cache.to_text();
        let back = TuningCache::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        let mut back = back;
        assert_eq!(back.get_or_search(&shape, Precision::TensorCoreInt8, &d), c1);
    }

    #[test]
    fn cache_parser_rejects_garbage() {
        assert!(TuningCache::from_text("1 2 3").is_err());
        assert!(TuningCache::from_text(
            "1 64 28 28 64 3 3 1 1 NotAPrecision 64 64 64 16 2 2"
        )
        .is_err());
        assert!(TuningCache::from_text("").unwrap().is_empty());
    }

    #[test]
    fn profile_runs_gain_is_large_at_batch_one() {
        // Fig. 11: 2.29x (4-bit) / 2.91x (8-bit) average over ResNet-50
        // layers; individual layers can be higher. Use a representative
        // late layer.
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 512, 7, 7, 512, 3, 1, 1);
        for precision in [Precision::TensorCoreInt8, Precision::TensorCoreInt4] {
            let (_, best) = auto_search(&shape, precision, &d);
            let default =
                ConvGpuPlan::new(shape, default_config(precision), precision).time(&d);
            let gain = default.total_s / best.total_s;
            assert!(
                gain > 1.3,
                "{precision:?}: expected a substantial profile-run gain, got {gain}"
            );
        }
    }
}
