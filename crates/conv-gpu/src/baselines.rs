//! The GPU comparison baselines of Sec. 5.3.
//!
//! * **cuDNN-like** — the 8-bit implicit-precomp GEMM with `dp4a` (cuDNN did
//!   not expose int8 Tensor Core convolution at the time): CUDA-core MAC
//!   rate, one generic large tile, no per-shape auto-search, no register
//!   double-buffering.
//! * **TensorRT-like** — int8 Tensor Core kernels with heavily tuned SASS
//!   (higher issue efficiency than ours) but a fixed menu of tile
//!   configurations selected per shape — coarser than our profile-run
//!   search, which is exactly where the paper's wins at batch 1 and unusual
//!   shapes come from.

use crate::implicit_gemm::{ConvGpuPlan, MemOpts};
use crate::tiling::TileConfig;
use lowbit_tensor::ConvShape;
use turing_sim::{Device, KernelTime, Precision};

/// Issue efficiency of our generated kernels (calibrated once).
pub const OUR_EFFICIENCY: f64 = 0.45;
/// TensorRT's SASS-level tuning advantage on its *tuned* shape family
/// (Sec. 5.3's Nsight observation of higher IPC/SM utilization).
pub const TENSORRT_EFFICIENCY: f64 = 0.60;
/// TensorRT's fallback kernels on shapes outside its tuning radar
/// (Sec. 5.5: unusual channel counts like SCR's 736).
pub const TENSORRT_FALLBACK_EFFICIENCY: f64 = 0.42;
/// cuDNN's generic dp4a kernel efficiency.
pub const CUDNN_EFFICIENCY: f64 = 0.50;

/// Models the cuDNN 8-bit dp4a convolution (the Fig. 10 baseline): generic
/// kernel selection between two tile sizes, no double buffering, CUDA-core
/// arithmetic.
pub fn cudnn_like(shape: &ConvShape, device: &Device) -> KernelTime {
    let mut best: Option<KernelTime> = None;
    for (m_tile, n_tile) in [(128, 128), (64, 64)] {
        let cfg = TileConfig {
            m_tile,
            n_tile,
            k_tile: 64,
            k_step: 32,
            warps_m: 2,
            warps_n: 2,
        };
        let mut plan = ConvGpuPlan::new(*shape, cfg, Precision::Dp4aInt8);
        plan.compute_efficiency = CUDNN_EFFICIENCY;
        plan.opts = MemOpts {
            vector_loads: true,
            smem_reordered: true,
            double_buffered: false,
            in_place_epilogue: true,
        };
        let t = plan.time(device);
        if best.map(|b| t.total_s < b.total_s).unwrap_or(true) {
            best = Some(t);
        }
    }
    best.expect("menu is non-empty")
}

/// TensorRT's fixed kernel menu.
fn tensorrt_menu() -> Vec<TileConfig> {
    [(256, 128), (128, 128), (128, 64), (64, 64)]
        .into_iter()
        .map(|(m_tile, n_tile)| TileConfig {
            m_tile,
            n_tile,
            k_tile: 64,
            k_step: 32,
            warps_m: 2,
            warps_n: 2,
        })
        .collect()
}

/// `true` for the shape family TensorRT's heavily-tuned SASS kernels cover
/// (64-aligned channel counts — the standard ImageNet-backbone grid).
pub fn tensorrt_tuned_shape(shape: &ConvShape) -> bool {
    shape.c_in.is_multiple_of(64) && shape.c_out.is_multiple_of(64)
}

/// Models the TensorRT 8-bit Tensor Core convolution.
pub fn tensorrt_like(shape: &ConvShape, device: &Device) -> KernelTime {
    let efficiency = if tensorrt_tuned_shape(shape) {
        TENSORRT_EFFICIENCY
    } else {
        TENSORRT_FALLBACK_EFFICIENCY
    };
    let mut best: Option<KernelTime> = None;
    for cfg in tensorrt_menu() {
        if !cfg.valid(Precision::TensorCoreInt8, 64 * 1024) {
            continue;
        }
        let mut plan = ConvGpuPlan::new(*shape, cfg, Precision::TensorCoreInt8);
        plan.compute_efficiency = efficiency;
        let t = plan.time(device);
        if best.map(|b| t.total_s < b.total_s).unwrap_or(true) {
            best = Some(t);
        }
    }
    best.expect("menu always has a valid config")
}

/// Our kernel at a chosen precision with profile-run auto-search.
pub fn ours(shape: &ConvShape, precision: Precision, device: &Device) -> KernelTime {
    let (_, t) = crate::tuning::auto_search(shape, precision, device);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_core_kernels_beat_cudnn_dp4a_at_batch_one() {
        // Fig. 10 headline: 4-bit 5.26x / 8-bit 4.31x average at batch 1.
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1);
        let base = cudnn_like(&shape, &d).total_s;
        let s8 = base / ours(&shape, Precision::TensorCoreInt8, &d).total_s;
        let s4 = base / ours(&shape, Precision::TensorCoreInt4, &d).total_s;
        assert!(s8 > 2.0, "8-bit vs cuDNN should be severalfold, got {s8}");
        assert!(s4 > s8, "4-bit ({s4}) must beat 8-bit ({s8})");
        assert!(s4 < 40.0, "sanity upper bound");
    }

    #[test]
    fn batch_sixteen_compresses_the_advantage() {
        // Fig. 10: speedups shrink from 4-5x (batch 1) to 2-3.5x (batch 16)
        // as cuDNN's big tiles stop stranding SMs.
        let d = Device::rtx2080ti();
        let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1);
        let b1 = cudnn_like(&shape, &d).total_s
            / ours(&shape, Precision::TensorCoreInt8, &d).total_s;
        let s16 = shape.with_batch(16);
        let b16 = cudnn_like(&s16, &d).total_s
            / ours(&s16, Precision::TensorCoreInt8, &d).total_s;
        assert!(
            b16 < b1,
            "batch-16 speedup ({b16}) should be below batch-1 ({b1})"
        );
        assert!(b16 > 1.0, "we should still win at batch 16");
    }

    #[test]
    fn tensorrt_is_the_stronger_baseline() {
        let d = Device::rtx2080ti();
        for shape in [
            ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1),
            ConvShape::new(16, 64, 56, 56, 256, 1, 1, 0),
        ] {
            let trt = tensorrt_like(&shape, &d).total_s;
            let cudnn = cudnn_like(&shape, &d).total_s;
            assert!(trt < cudnn, "TensorRT must beat cuDNN dp4a on {shape}");
        }
    }

    #[test]
    fn we_beat_tensorrt_at_batch_one_on_unusual_shapes() {
        // Sec. 5.5: shapes outside TensorRT's tuning radar (e.g. the
        // 1x14x14x736 DenseNet layer) favor our auto-search.
        let d = Device::rtx2080ti();
        let odd = ConvShape::new(1, 736, 14, 14, 128, 1, 1, 0);
        let trt = tensorrt_like(&odd, &d).total_s;
        let us = ours(&odd, Precision::TensorCoreInt8, &d).total_s;
        assert!(us < trt, "auto-search should win on odd shapes");
    }

    #[test]
    fn tensorrt_can_win_at_large_batch_on_common_shapes() {
        // Sec. 5.3: with large batches the SASS advantage dominates; our
        // model must allow TensorRT wins somewhere (it wins 7/19 layers at
        // batch 16 in the paper).
        let d = Device::rtx2080ti();
        let big = ConvShape::new(64, 128, 28, 28, 128, 3, 1, 1);
        let trt = tensorrt_like(&big, &d).total_s;
        let us = ours(&big, Precision::TensorCoreInt8, &d).total_s;
        assert!(
            trt < us * 1.35,
            "TensorRT should be at least competitive at scale (trt {trt}, us {us})"
        );
    }
}
