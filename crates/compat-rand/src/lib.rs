//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer and float (inclusive and half-open)
//! ranges.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the same crate name. The
//! generator is a deterministic SplitMix64 — statistically fine for test
//! fixtures, not a reimplementation of the upstream ChaCha-based `StdRng`
//! stream (seeds produce different values than real `rand`, which no test
//! here depends on).

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG trait: everything derives from a uniform `u64` stream.
pub trait RngCore {
    /// Next raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry point (only the `seed_from_u64` constructor is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can draw from a range expression.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing sampling trait (blanket-implemented for every core RNG).
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so that small consecutive seeds diverge immediately.
            StdRng { state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x1234_5678_9ABC_DEF0) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i8 = rng.gen_range(-8i8..8);
            assert!((-8..8).contains(&v));
            let v = rng.gen_range(-127i32..=127);
            assert!((-127..=127).contains(&v));
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[rng.gen_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
