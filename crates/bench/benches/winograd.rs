//! Winograd F(2x2,3x3) vs GEMM convolution: functional host wall-clock at
//! 4-bit on a mid-size 3x3 layer (the modeled comparison is Fig. 8).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lowbit_conv_arm::{gemm_conv, winograd_conv};
use lowbit_tensor::{BitWidth, ConvShape, Layout, QTensor};

fn bench_winograd(c: &mut Criterion) {
    let shape = ConvShape::new(1, 16, 28, 28, 16, 3, 1, 1);
    let input = QTensor::random(
        (shape.batch, shape.c_in, shape.h, shape.w),
        Layout::Nchw,
        BitWidth::W4,
        4,
    );
    let weights = QTensor::random(
        (shape.c_out, shape.c_in, 3, 3),
        Layout::Nchw,
        BitWidth::W4,
        5,
    );
    let mut group = c.benchmark_group("winograd_vs_gemm_4bit");
    group.sample_size(10);
    group.throughput(Throughput::Elements(shape.macs()));
    group.bench_function("gemm_conv", |b| {
        b.iter(|| gemm_conv(&input, &weights, &shape).acc.data()[0])
    });
    group.bench_function("winograd_conv", |b| {
        b.iter(|| winograd_conv(&input, &weights, &shape).acc.data()[0])
    });
    group.finish();
}

criterion_group!(benches, bench_winograd);
criterion_main!(benches);
