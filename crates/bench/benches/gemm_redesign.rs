//! Re-designed vs traditional GEMM (paper Fig. 1 / Eq. 1-4): functional
//! host wall-clock, plus the modeled LD/CAL ablation printed up front.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lowbit_qgemm::gemm::{schedule_gemm, LoadArithmeticProfile};
use lowbit_qgemm::traditional::{schedule_traditional, traditional_gemm};
use lowbit_qgemm::{gemm, Scheme};
use lowbit_tensor::BitWidth;
use neon_sim::CortexA53;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_redesign(c: &mut Criterion) {
    let (m, k, n) = (64, 256, 64);
    // Print the Eq. 1-4 ablation that motivates the redesign.
    let model = CortexA53::cost_model();
    let ours = schedule_gemm(&Scheme::for_bits(BitWidth::W4), m, k, n);
    let trad = schedule_traditional(m, k, n);
    let po = LoadArithmeticProfile::of(&ours);
    let pt = LoadArithmeticProfile::of(&trad);
    eprintln!("redesigned: LD={} CAL={} CAL/LD={:.2} modeled={:.0}cyc", po.loads, po.macs, po.cal_per_ld(), ours.cycles(&model));
    eprintln!("traditional: LD={} CAL={} CAL/LD={:.2} modeled={:.0}cyc", pt.loads, pt.macs, pt.cal_per_ld(), trad.cycles(&model));

    let mut rng = StdRng::seed_from_u64(2);
    let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-8..8)).collect();
    let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-8..8)).collect();
    let mut group = c.benchmark_group("gemm_redesign");
    group.sample_size(10);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    let scheme = Scheme::for_bits(BitWidth::W4);
    group.bench_function("redesigned", |bench| {
        bench.iter(|| gemm(&scheme, &a, &b, m, k, n).c[0])
    });
    group.bench_function("traditional", |bench| {
        bench.iter(|| traditional_gemm(&a, &b, m, k, n).c[0])
    });
    group.finish();
}

criterion_group!(benches, bench_redesign);
criterion_main!(benches);
