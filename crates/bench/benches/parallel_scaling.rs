//! Wall-clock thread scaling of the parallel GEMM-conv engine on the
//! ResNet-50 layer set: serial (1 thread) vs. 2 and 4 threads, through the
//! warm `ArmEngine` path (weights prepacked, workspace reused — each
//! iteration is an allocation-free steady-state convolution).
//!
//! On single-core CI hosts the scoped threads time-slice one core, so the
//! wall-clock curve is flat there; `BENCH_parallel.json` (see
//! `lowbit_bench::export`) carries the modeled Amdahl speedups alongside the
//! measured numbers for exactly that reason.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_models::resnet50;

fn bench_parallel_conv(c: &mut Criterion) {
    // A small but representative slice of the table: one 3x3 and one 1x1
    // from the late stages keep release-mode iteration times reasonable.
    let table = resnet50();
    let layers: Vec<_> = table
        .iter()
        .filter(|l| matches!(l.name, "conv15" | "conv17"))
        .collect();
    for layer in layers {
        let s = &layer.shape;
        let macs = s.c_out * s.c_in * s.kh * s.kw * s.out_h() * s.out_w();
        let input = QTensor::random((s.batch, s.c_in, s.h, s.w), Layout::Nchw, BitWidth::W4, 1);
        let weights =
            QTensor::random((s.c_out, s.c_in, s.kh, s.kw), Layout::Nchw, BitWidth::W4, 2);
        let mut group = c.benchmark_group(format!("gemm_conv_{}_by_threads", layer.name));
        group.sample_size(10);
        group.throughput(Throughput::Elements(macs as u64));
        for threads in [1usize, 2, 4] {
            let engine = ArmEngine::cortex_a53().with_threads(threads);
            // Warm up outside the timed region: pack the weights once and
            // grow the workspace to its high-water mark.
            engine.conv(&input, &weights, s, ArmAlgo::Gemm);
            group.bench_with_input(
                BenchmarkId::from_parameter(threads),
                &threads,
                |bench, _| bench.iter(|| engine.conv(&input, &weights, s, ArmAlgo::Gemm).acc),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_parallel_conv);
criterion_main!(benches);
