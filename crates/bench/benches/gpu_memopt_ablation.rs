//! Ablation A3: the Sec. 4.3 memory-optimization stack. Prints the modeled
//! per-optimization impact on a representative layer, then benchmarks the
//! functional mma path and the profile-run search cost (which the paper
//! calls negligible).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lowbit_conv_gpu::{auto_search, default_config, ConvGpuPlan, MemOpts};
use lowbit_tensor::{BitWidth, ConvShape, Layout, QTensor};
use turing_sim::mma::mma_m8n8k16_s8;
use turing_sim::{Device, Precision};

fn bench_gpu(c: &mut Criterion) {
    let device = Device::rtx2080ti();
    let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 1, 1);
    let base_plan = ConvGpuPlan::new(
        shape,
        default_config(Precision::TensorCoreInt8),
        Precision::TensorCoreInt8,
    );
    let mut plan = base_plan.clone();
    let full = plan.time(&device).total_us();
    eprintln!("memory-optimization ablation on {shape} (modeled, batch 1):");
    eprintln!("  all optimizations on : {full:.2} us");
    for (name, f) in [
        ("no int4-vector loads", Box::new(|o: &mut MemOpts| o.vector_loads = false) as Box<dyn Fn(&mut MemOpts)>),
        ("no smem reordering  ", Box::new(|o: &mut MemOpts| o.smem_reordered = false)),
        ("no double buffering ", Box::new(|o: &mut MemOpts| o.double_buffered = false)),
        ("no in-place epilogue", Box::new(|o: &mut MemOpts| o.in_place_epilogue = false)),
    ] {
        let mut opts = MemOpts::default();
        f(&mut opts);
        plan.opts = opts;
        let t = plan.time(&device).total_us();
        eprintln!("  {name}: {t:.2} us ({:.2}x slower)", t / full);
    }
    let _ = plan;

    // Functional mma fragment throughput.
    let a = [7i8; 128];
    let b = [-3i8; 128];
    let mut group = c.benchmark_group("gpu_kernels");
    group.sample_size(10);
    group.throughput(Throughput::Elements(8 * 8 * 16));
    group.bench_function("mma_m8n8k16_s8", |bench| {
        bench.iter(|| {
            let mut acc = [0i32; 64];
            mma_m8n8k16_s8(&a, &b, &mut acc);
            acc[0]
        })
    });
    group.finish();

    let small = ConvShape::new(1, 16, 8, 8, 16, 3, 1, 1);
    let input = QTensor::random((1, 16, 8, 8), Layout::Nhwc, BitWidth::W8, 6);
    let weights = QTensor::random((16, 16, 3, 3), Layout::Nhwc, BitWidth::W8, 7);
    let exec_plan = ConvGpuPlan::new(
        small,
        lowbit_conv_gpu::TileConfig { m_tile: 16, n_tile: 16, k_tile: 48, k_step: 16, warps_m: 1, warps_n: 1 },
        Precision::TensorCoreInt8,
    );
    let mut group = c.benchmark_group("gpu_functional");
    group.sample_size(10);
    group.throughput(Throughput::Elements(small.macs()));
    group.bench_function("implicit_gemm_execute", |bench| {
        bench.iter(|| exec_plan.execute(&input, &weights).data()[0])
    });
    group.bench_function("profile_run_search", |bench| {
        bench.iter(|| auto_search(&shape, Precision::TensorCoreInt8, &device).1.total_s)
    });
    group.finish();
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
