//! Ablation A1: sensitivity of the SMLAL scheme to the drain ratio. Sweeps
//! the SADDW cadence at fixed 4-bit operands; the published ratio (511) is
//! the largest safe value, and smaller ratios pay measurably more drains.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lowbit_qgemm::{gemm, Scheme, SchemeKind};
use lowbit_tensor::BitWidth;
use neon_sim::CortexA53;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_ratio(c: &mut Criterion) {
    let (m, k, n) = (64, 512, 64);
    let bits = BitWidth::W4;
    let mut rng = StdRng::seed_from_u64(3);
    let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
    let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();

    // Modeled cycles per forced ratio (printed as the ablation table).
    let model = CortexA53::cost_model();
    eprintln!("4-bit GEMM, forced SMLAL:SADDW ratio vs modeled cycles:");
    for ratio in [2usize, 8, 31, 127, 511] {
        // for_product_bound(32767/ratio) yields exactly `ratio`.
        let scheme = Scheme::for_product_bound(SchemeKind::Smlal8, (i16::MAX as i32) / ratio as i32);
        assert_eq!(scheme.ratio(), ratio);
        let sched = lowbit_qgemm::gemm::schedule_gemm(&scheme, m, k, n);
        eprintln!("  ratio {ratio:>4}: {:.0} cycles", sched.cycles(&model));
    }

    let mut group = c.benchmark_group("ratio_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    for ratio in [2usize, 31, 511] {
        let scheme = Scheme::for_product_bound(SchemeKind::Smlal8, (i16::MAX as i32) / ratio as i32);
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |bench, _| {
            bench.iter(|| gemm(&scheme, &a, &b, m, k, n).c[0])
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ratio);
criterion_main!(benches);
