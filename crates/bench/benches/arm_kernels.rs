//! Host wall-clock throughput of the functional ARM micro-kernels per bit
//! width. The drain cadence (SADDW ratio) is visible in real time, not just
//! in the model: lower bit widths drain less and run faster per MAC.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lowbit_qgemm::{gemm, Scheme};
use lowbit_tensor::BitWidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_micro_kernels(c: &mut Criterion) {
    let (m, k, n) = (64, 512, 64);
    let mut group = c.benchmark_group("arm_gemm_by_bits");
    group.sample_size(10);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    let mut rng = StdRng::seed_from_u64(1);
    for bits in BitWidth::ALL {
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(bits.qmin()..=bits.qmax())).collect();
        let scheme = Scheme::for_bits(bits);
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| gemm(&scheme, &a, &b, m, k, n).c[0])
        });
    }
    group.finish();

    let mut group = c.benchmark_group("arm_baselines_and_extensions");
    group.sample_size(10);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-127..=127)).collect();
    let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-127..=127)).collect();
    group.bench_function("ncnn16", |bench| {
        bench.iter(|| lowbit_qgemm::gemm::gemm_ncnn(&a, &b, m, k, n).c[0])
    });
    let scheme8 = Scheme::for_bits(BitWidth::W8);
    group.bench_function("narrow_8x4_w8", |bench| {
        bench.iter(|| lowbit_qgemm::gemm_narrow(&scheme8, &a, &b, m, k, n).c[0])
    });
    group.bench_function("sdot_v82_w8", |bench| {
        bench.iter(|| lowbit_qgemm::gemm_sdot(&a, &b, m, k, n).c[0])
    });
    group.finish();
}

criterion_group!(benches, bench_micro_kernels);
criterion_main!(benches);
