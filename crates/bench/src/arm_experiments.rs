//! ARM-side experiments: Fig. 7/8/9/13/14/15.

use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_models::{winograd_layers, LayerDef};
use lowbit_tensor::SpaceOverhead;
use lowbit_qgemm::{NA, NB};

/// Per-layer low-bit speedups over the ncnn 8-bit baseline (Fig. 7/14/15).
#[derive(Clone, Debug)]
pub struct LowbitVsNcnn {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// Baseline (ncnn 8-bit) modeled milliseconds per layer.
    pub baseline_ms: Vec<f64>,
    /// Bit widths evaluated (2..=8).
    pub bits: Vec<BitWidth>,
    /// `speedups[b][l]` = baseline / ours at `bits[b]`, layer `l`.
    pub speedups: Vec<Vec<f64>>,
}

impl LowbitVsNcnn {
    /// The paper's per-bit-width summary: (average over winning layers,
    /// number of winning layers).
    pub fn summary(&self, bit_idx: usize) -> (f64, usize) {
        crate::harness::winning_summary(&self.speedups[bit_idx])
    }
}

/// Runs the Fig. 7-style comparison on a layer table. The low-bit kernels
/// use the paper's algorithm policy (`ArmAlgo::Auto` would switch to
/// Winograd at 4–6 bit; Fig. 7 isolates the GEMM path, so `Gemm` is forced).
///
/// All figure experiments price *cold* one-shot convolutions
/// ([`ArmEngine::estimate_millis_cold`]): the paper's per-layer kernel
/// measurements include the weight pack that the engine's prepack cache
/// amortizes away during network inference.
pub fn lowbit_vs_ncnn(table: &[LayerDef]) -> LowbitVsNcnn {
    let engine = ArmEngine::cortex_a53();
    let bits: Vec<BitWidth> = BitWidth::ALL.to_vec();
    let layers: Vec<&'static str> = table.iter().map(|l| l.name).collect();
    let baseline_ms: Vec<f64> = table
        .iter()
        .map(|l| engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::NcnnBaseline))
        .collect();
    let speedups: Vec<Vec<f64>> = bits
        .iter()
        .map(|&b| {
            table
                .iter()
                .zip(&baseline_ms)
                .map(|(l, &base)| base / engine.estimate_millis_cold(b, &l.shape, ArmAlgo::Gemm))
                .collect()
        })
        .collect();
    LowbitVsNcnn {
        layers,
        baseline_ms,
        bits,
        speedups,
    }
}

/// Per-layer Winograd-vs-GEMM rows (Fig. 8): speedups of both algorithms
/// over the ncnn 8-bit baseline at 4–6 bit, restricted to the 3x3/s1 layers.
#[derive(Clone, Debug)]
pub struct WinogradFigure {
    /// Layer names (Winograd-applicable subset).
    pub layers: Vec<&'static str>,
    /// ncnn 8-bit baseline ms.
    pub baseline_ms: Vec<f64>,
    /// Bit widths (4, 5, 6).
    pub bits: Vec<BitWidth>,
    /// `gemm[b][l]` speedup of the GEMM path over baseline.
    pub gemm: Vec<Vec<f64>>,
    /// `winograd[b][l]` speedup of the Winograd path over baseline.
    pub winograd: Vec<Vec<f64>>,
}

/// Runs the Fig. 8 comparison.
pub fn winograd_figure(table: &[LayerDef]) -> WinogradFigure {
    let engine = ArmEngine::cortex_a53();
    let layers = winograd_layers(table);
    let bits = vec![BitWidth::W4, BitWidth::W5, BitWidth::W6];
    let baseline_ms: Vec<f64> = layers
        .iter()
        .map(|l| engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::NcnnBaseline))
        .collect();
    let run = |algo: ArmAlgo| -> Vec<Vec<f64>> {
        bits.iter()
            .map(|&b| {
                layers
                    .iter()
                    .zip(&baseline_ms)
                    .map(|(l, &base)| base / engine.estimate_millis_cold(b, &l.shape, algo))
                    .collect()
            })
            .collect()
    };
    let gemm = run(ArmAlgo::Gemm);
    let winograd = run(ArmAlgo::Winograd);
    let _ = &run;
    WinogradFigure {
        layers: layers.iter().map(|l| l.name).collect(),
        baseline_ms,
        bits,
        gemm,
        winograd,
    }
}

/// Per-layer ours-vs-TVM rows (Fig. 9, A2W2).
#[derive(Clone, Debug)]
pub struct TvmFigure {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// TVM popcount baseline ms.
    pub baseline_ms: Vec<f64>,
    /// Our 2-bit GEMM speedup over TVM per layer.
    pub speedups: Vec<f64>,
}

/// Runs the Fig. 9 comparison.
pub fn tvm_figure(table: &[LayerDef]) -> TvmFigure {
    let engine = ArmEngine::cortex_a53();
    let baseline_ms: Vec<f64> = table
        .iter()
        .map(|l| engine.estimate_millis(BitWidth::W2, &l.shape, ArmAlgo::BitserialBaseline))
        .collect();
    let speedups = table
        .iter()
        .zip(&baseline_ms)
        .map(|(l, &base)| {
            base / engine.estimate_millis_cold(BitWidth::W2, &l.shape, ArmAlgo::Gemm)
        })
        .collect();
    TvmFigure {
        layers: table.iter().map(|l| l.name).collect(),
        baseline_ms,
        speedups,
    }
}

/// Thread-scaling rows for the parallel execution engine (extension; not a
/// paper figure — the paper reports single-core kernel times).
///
/// Modeled speedups follow Amdahl's law over the warm (prepacked) analytic
/// schedule: im2col and requantization stay serial while pack-B and the GEMM
/// inner loops split across per-thread column blocks
/// ([`lowbit::conv_arm::parallel_cycle_split`]).
#[derive(Clone, Debug)]
pub struct ParallelScaling {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// Thread counts evaluated.
    pub threads: Vec<usize>,
    /// Serial fraction of each layer's warm schedule (im2col + requantize).
    pub serial_fraction: Vec<f64>,
    /// `modeled[t][l]` = Amdahl speedup at `threads[t]`, layer `l`.
    pub modeled: Vec<Vec<f64>>,
    /// `measured_ms[t][l]` = host wall-clock ms per steady-state conv
    /// (empty unless measurement was requested; host-dependent, the modeled
    /// numbers are the tracked quantity).
    pub measured_ms: Vec<Vec<f64>>,
    /// Workspace allocation events summed over every timed steady-state
    /// call — zero when the arena reuse works.
    pub steady_allocs: u64,
}

/// Runs the thread-scaling experiment at 4 bit. `measure` additionally runs
/// real convolutions per thread count under the harness
/// [`MeasurePolicy`](crate::harness::MeasurePolicy) (warm-up iterations,
/// min-of-N timed repeats) — keep the table small when measuring in debug
/// builds.
pub fn parallel_scaling(table: &[LayerDef], threads: &[usize], measure: bool) -> ParallelScaling {
    use lowbit::conv_arm::{parallel_cycle_split, schedule_gemm_conv_prepacked};
    use lowbit_qgemm::Scheme;
    let engine = ArmEngine::cortex_a53();
    let scheme = Scheme::for_bits(BitWidth::W4);
    let split: Vec<(f64, f64)> = table
        .iter()
        .map(|l| {
            let sched = schedule_gemm_conv_prepacked(&scheme, &l.shape);
            parallel_cycle_split(&sched, engine.model())
        })
        .collect();
    let serial_fraction = split.iter().map(|&(s, p)| s / (s + p)).collect();
    let modeled: Vec<Vec<f64>> = threads
        .iter()
        .map(|&t| {
            split
                .iter()
                .map(|&(s, p)| (s + p) / (s + p / t as f64))
                .collect()
        })
        .collect();

    let mut measured_ms = Vec::new();
    let mut steady_allocs = 0;
    if measure {
        for &t in threads {
            let eng = ArmEngine::cortex_a53().with_threads(t);
            let mut row = Vec::new();
            for l in table {
                let s = &l.shape;
                let input =
                    QTensor::random((s.batch, s.c_in, s.h, s.w), Layout::Nchw, BitWidth::W4, 1);
                let weights =
                    QTensor::random((s.c_out, s.c_in, s.kh, s.kw), Layout::Nchw, BitWidth::W4, 2);
                // Warm-up packs the weights, sizes the arena and settles the
                // host (caches, frequency); the timed repeats are the
                // allocation-free steady state and the minimum is reported.
                let policy = crate::harness::MeasurePolicy::default();
                for _ in 0..policy.warmup {
                    eng.conv(&input, &weights, s, ArmAlgo::Gemm);
                }
                let before = eng.workspace_stats().alloc_events;
                let ms = crate::harness::MeasurePolicy { warmup: 0, ..policy }
                    .measure_min_ms(|| {
                        eng.conv(&input, &weights, s, ArmAlgo::Gemm);
                    });
                row.push(ms);
                steady_allocs += eng.workspace_stats().alloc_events - before;
            }
            measured_ms.push(row);
        }
    }
    ParallelScaling {
        layers: table.iter().map(|l| l.name).collect(),
        threads: threads.to_vec(),
        serial_fraction,
        modeled,
        measured_ms,
        steady_allocs,
    }
}

/// Per-layer space-overhead rows (Fig. 13).
#[derive(Clone, Debug)]
pub struct SpaceFigure {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// im2col factor over the activation+weight baseline.
    pub im2col: Vec<f64>,
    /// padding+packing factor over im2col.
    pub packing: Vec<f64>,
    /// total factor over the baseline.
    pub total: Vec<f64>,
}

/// Runs the Fig. 13 accounting (pure arithmetic — matches the paper
/// exactly up to layer-table reconstruction).
pub fn space_figure(table: &[LayerDef]) -> SpaceFigure {
    let mut fig = SpaceFigure {
        layers: Vec::new(),
        im2col: Vec::new(),
        packing: Vec::new(),
        total: Vec::new(),
    };
    for l in table {
        let so = SpaceOverhead::for_shape(&l.shape, NA, NB);
        fig.layers.push(l.name);
        fig.im2col.push(so.im2col_factor());
        fig.packing.push(so.packing_factor());
        fig.total.push(so.total_factor());
    }
    fig
}

/// Prints a Fig. 7/14/15-style table plus the paper-style summary lines.
pub fn print_lowbit_vs_ncnn(title: &str, fig: &LowbitVsNcnn) {
    use crate::harness::Table;
    println!("{title}");
    println!("(speedup over the ncnn-like 8-bit baseline; baseline modeled ms shown)");
    let mut headers = vec!["layer".to_string(), "ncnn8 ms".to_string()];
    headers.extend(fig.bits.iter().map(|b| format!("{b}")));
    let mut table = Table::new(headers);
    for l in 0..fig.layers.len() {
        let mut row = vec![fig.layers[l].to_string(), format!("{:.3}", fig.baseline_ms[l])];
        row.extend((0..fig.bits.len()).map(|b| format!("{:.2}x", fig.speedups[b][l])));
        table.push_row(row);
    }
    table.print();
    for (b, bits) in fig.bits.iter().enumerate() {
        let (avg, wins) = fig.summary(b);
        println!(
            "{bits}: faster than ncnn on {wins}/{} layers, avg speedup {:.2}x over those",
            fig.layers.len(),
            if wins > 0 { avg } else { f64::NAN }
        );
    }
    println!();
}

/// Prints a Fig. 10/16/17-style summary paragraph for one figure.
pub fn paper_summary_line(name: &str, speedups: &[f64]) {
    let (avg, wins) = crate::harness::winning_summary(speedups);
    println!(
        "{name}: wins {wins}/{} layers, avg {:.2}x over winning layers (geomean {:.2}x overall)",
        speedups.len(),
        avg,
        crate::harness::geomean(speedups)
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::mean;
    use lowbit_models::resnet50;

    #[test]
    fn fig7_bands_match_the_paper() {
        let fig = lowbit_vs_ncnn(&resnet50());
        // Paper averages over winning layers: 1.60/1.54/1.38/1.38/1.34/
        // 1.27/1.03 for 2..=8 bit. Accept the band around each.
        let expect = [
            (1.3, 2.3), // 2-bit
            (1.3, 2.3), // 3-bit
            (1.1, 1.9), // 4-bit
            (1.1, 1.9), // 5-bit
            (1.1, 1.9), // 6-bit
            (1.0, 1.7), // 7-bit
            (0.9, 1.3), // 8-bit (near parity)
        ];
        for (i, (lo, hi)) in expect.iter().enumerate() {
            let (avg, wins) = fig.summary(i);
            if wins > 0 {
                assert!(
                    (*lo..=*hi).contains(&avg),
                    "{}-bit avg {avg} outside [{lo}, {hi}]",
                    fig.bits[i]
                );
            }
            if i < 5 {
                assert!(wins >= 12, "{}-bit should win most layers", fig.bits[i]);
            }
        }
        // Monotone trend 2-bit >= ... >= 8-bit on the per-layer geomean.
        let g2 = crate::harness::geomean(&fig.speedups[0]);
        let g8 = crate::harness::geomean(&fig.speedups[6]);
        assert!(g2 > 1.4 * g8);
    }

    #[test]
    fn fig8_winograd_beats_gemm_on_all_rows() {
        let fig = winograd_figure(&resnet50());
        assert_eq!(fig.layers.len(), 4);
        for (b, _) in fig.bits.iter().enumerate() {
            let mut wins = 0;
            for l in 0..fig.layers.len() {
                // Known deviation (EXPERIMENTS.md): the 7x7 conv17 layer
                // loses ~12% to F(2x2,3x3) tile-padding waste in our model,
                // where the paper still measures a small win.
                assert!(
                    fig.winograd[b][l] > fig.gemm[b][l] * 0.85,
                    "winograd should be at least competitive on {} at {}",
                    fig.layers[l],
                    fig.bits[b]
                );
                if fig.winograd[b][l] > fig.gemm[b][l] {
                    wins += 1;
                }
            }
            assert!(wins >= 3, "winograd must win most 3x3 layers at {}", fig.bits[b]);
        }
        // Average band vs paper 1.50/1.44/1.34.
        let avg4 = mean(&fig.winograd[0]);
        assert!((1.2..=2.2).contains(&avg4), "4-bit winograd avg {avg4}");
    }

    #[test]
    fn fig9_we_win_most_layers() {
        let fig = tvm_figure(&resnet50());
        let (avg, wins) = crate::harness::winning_summary(&fig.speedups);
        assert!(wins >= 14, "paper: 16/19 winning layers, got {wins}");
        assert!((1.3..=2.4).contains(&avg), "paper avg 1.78, got {avg}");
    }

    #[test]
    fn parallel_engine_models_two_x_at_four_threads() {
        let fig = parallel_scaling(&resnet50(), &[1, 2, 4], false);
        // 1 thread is exactly the serial schedule.
        for (l, &s) in fig.modeled[0].iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-12, "{}: 1-thread speedup {s}", fig.layers[l]);
        }
        // Speedup grows with threads on every layer and the 4-thread average
        // clears the 2x target (serial im2col bounds it via Amdahl).
        for l in 0..fig.layers.len() {
            assert!(fig.modeled[1][l] > 1.0 && fig.modeled[2][l] > fig.modeled[1][l]);
            assert!(fig.serial_fraction[l] < 0.5, "{}: serial fraction", fig.layers[l]);
        }
        let avg4 = mean(&fig.modeled[2]);
        assert!(avg4 >= 2.0, "modeled 4-thread avg speedup {avg4} below 2x");
    }

    #[test]
    fn parallel_engine_measured_runs_do_not_allocate() {
        // A small layer so the measured path stays fast in debug builds.
        let table = [lowbit_models::LayerDef {
            name: "tiny3x3",
            shape: ConvShape::new(1, 8, 14, 14, 16, 3, 1, 1),
        }];
        let fig = parallel_scaling(&table, &[1, 2], true);
        assert_eq!(fig.measured_ms.len(), 2);
        assert!(fig.measured_ms.iter().all(|row| row.iter().all(|&ms| ms > 0.0)));
        assert_eq!(fig.steady_allocs, 0, "steady-state convs must not allocate");
    }

    #[test]
    fn fig13_reproduces_the_reported_extremes() {
        let fig = space_figure(&resnet50());
        let avg_im2col = mean(&fig.im2col);
        let min_im2col = fig.im2col.iter().cloned().fold(f64::MAX, f64::min);
        // Paper: min 1.0218, max 8.6034 (conv2), avg 1.9445. Our conv2 hits
        // the published maximum exactly; the stem (conv1) exceeds it in our
        // reconstruction (see EXPERIMENTS.md), and weight-heavy pointwise
        // layers sit at the published minimum.
        let conv2 = fig.im2col[fig.layers.iter().position(|&n| n == "conv2").unwrap()];
        assert!((conv2 - 8.6034).abs() < 5e-4, "conv2 {conv2}");
        assert!((1.0..1.1).contains(&min_im2col), "min {min_im2col}");
        assert!((1.8..=3.2).contains(&avg_im2col), "avg {avg_im2col}");
        // Packing adds at most fractions of a percent (paper <= 1.0058).
        for (i, &p) in fig.packing.iter().enumerate() {
            assert!(
                (1.0..1.02).contains(&p),
                "{}: packing factor {p}",
                fig.layers[i]
            );
        }
    }
}
