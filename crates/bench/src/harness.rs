//! Table formatting and summary statistics shared by the `fig*` binaries.

/// A printable results table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table from headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cells[i].len());
                if i == 0 {
                    line.push_str(&cells[i]);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[i]);
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders as CSV (headers + rows, comma-separated, quotes around cells
    /// containing commas).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV under `dir/name.csv`, creating the directory.
    pub fn save_csv(&self, dir: &std::path::Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Wall-clock measurement policy: warm-up iterations (discarded — they pay
/// cold caches, lazy allocations and prepacking) followed by min-of-N timed
/// repeats. The minimum, not the mean, estimates the workload's intrinsic
/// cost: scheduler preemptions and frequency ramps only ever add time, so
/// the smallest observation is the least-contaminated one. This is the fix
/// for the BENCH_parallel measured-scaling anomaly, where a single cold
/// timed call charged one thread configuration with all the warm-up cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasurePolicy {
    /// Untimed warm-up calls before measuring.
    pub warmup: usize,
    /// Timed repeats; the minimum wall time is reported.
    pub repeats: usize,
}

impl Default for MeasurePolicy {
    fn default() -> MeasurePolicy {
        MeasurePolicy { warmup: 3, repeats: 5 }
    }
}

impl MeasurePolicy {
    /// Runs `f` through warm-up then timed repeats, returning the minimum
    /// wall milliseconds over the repeats (at least one repeat always runs).
    pub fn measure_min_ms(&self, mut f: impl FnMut()) -> f64 {
        for _ in 0..self.warmup {
            f();
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.repeats.max(1) {
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    }
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// The paper's summary style: mean speedup over the layers where the
/// candidate wins, plus the win count.
pub fn winning_summary(speedups: &[f64]) -> (f64, usize) {
    let wins: Vec<f64> = speedups.iter().copied().filter(|&s| s > 1.0).collect();
    (mean(&wins), wins.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["layer", "ms"]);
        t.push_row(vec!["conv1".into(), "1.25".into()]);
        t.push_row(vec!["conv10".into(), "0.5".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("conv1 "));
        assert!(lines[3].starts_with("conv10"));
        // Numeric column right-aligned.
        assert!(lines[2].ends_with("1.25"));
        assert!(lines[3].ends_with(" 0.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = Table::new(vec!["layer", "ms"]);
        t.push_row(vec!["conv1".into(), "1.5".into()]);
        let dir = std::env::temp_dir().join("lowbit_csv_test");
        let path = t.save_csv(&dir, "probe").unwrap();
        let back = std::fs::read_to_string(path).unwrap();
        assert!(back.starts_with("layer,ms"));
    }

    #[test]
    fn measure_policy_runs_warmup_and_reports_the_minimum() {
        let mut calls = 0u32;
        let policy = MeasurePolicy { warmup: 2, repeats: 3 };
        let ms = policy.measure_min_ms(|| calls += 1);
        assert_eq!(calls, 5, "2 warm-up + 3 timed");
        assert!(ms >= 0.0 && ms.is_finite());
        // Zero repeats still measures once.
        let mut calls = 0u32;
        let ms = MeasurePolicy { warmup: 0, repeats: 0 }.measure_min_ms(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(ms.is_finite());
    }

    #[test]
    fn summary_stats() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        let (avg, wins) = winning_summary(&[0.9, 1.5, 2.5]);
        assert_eq!(wins, 2);
        assert!((avg - 2.0).abs() < 1e-12);
    }
}
