//! `lowbit-plan` — print a network's compiled execution plan.
//!
//! Compiles a network (`--model demo|dense-block|residual-block`) with the
//! cost-driven planner and prints the resulting plan: per-node backend,
//! algorithm, predicted milliseconds, prepack fingerprint, workspace and
//! activation-arena sizing — as an aligned table and as deterministic JSON.
//! `--check` diffs the JSON against a golden file (the CI hook that makes
//! planner regressions visible in review).
//!
//! ```sh
//! cargo run --release -p lowbit-bench --bin lowbit-plan -- --bits 4
//! cargo run --release -p lowbit-bench --bin lowbit-plan -- --json
//! cargo run --release -p lowbit-bench --bin lowbit-plan -- --check tests/golden/plan_demo.json
//! cargo run --release -p lowbit-bench --bin lowbit-plan -- --model dense-block --check tests/golden/plan_dense_block.json
//! ```

use lowbit::prelude::*;

struct Args {
    bits: BitWidth,
    hw: usize,
    seed: u64,
    model: String,
    backend: String,
    json_only: bool,
    check: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: lowbit-plan [--bits 2..8] [--hw N] [--seed N] \
         [--model demo|dense-block|residual-block] \
         [--backend arm|gpu|both] [--json] [--check <golden.json>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        bits: BitWidth::W4,
        hw: 12,
        seed: 9,
        model: "demo".to_string(),
        backend: "arm".to_string(),
        json_only: false,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage()
        });
        match flag.as_str() {
            "--bits" => {
                let n: u8 = value("--bits").parse().unwrap_or_else(|_| usage());
                out.bits = BitWidth::new(n).unwrap_or_else(|_| usage());
            }
            "--hw" => out.hw = value("--hw").parse().unwrap_or_else(|_| usage()),
            "--seed" => out.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--model" => out.model = value("--model"),
            "--backend" => out.backend = value("--backend"),
            "--json" => out.json_only = true,
            "--check" => out.check = Some(value("--check")),
            _ => usage(),
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let net = match args.model.as_str() {
        "demo" => Network::demo(args.bits, args.hw, args.seed),
        "dense-block" => Network::from_graph_defs(
            &lowbit::models::densenet121_dense_block(args.hw),
            args.bits,
            args.seed,
        )
        .expect("dense-block graph def is valid"),
        "residual-block" => Network::from_graph_defs(
            &lowbit::models::resnet50_residual_block(args.hw),
            args.bits,
            args.seed,
        )
        .expect("residual-block graph def is valid"),
        _ => usage(),
    };
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    let planner = match args.backend.as_str() {
        "arm" => Planner::for_arm(&arm),
        "gpu" => Planner::for_gpu(&gpu, Tuning::Default),
        "both" => Planner::for_arm(&arm).with_gpu(&gpu, Tuning::Default),
        _ => usage(),
    };
    let plan = match planner.compile(&net) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("plan compilation failed: {e}");
            std::process::exit(1);
        }
    };
    let json = plan.to_json();

    if let Some(golden_path) = args.check {
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            eprintln!("cannot read golden file {golden_path}: {e}");
            std::process::exit(2);
        });
        if golden == json {
            println!("plan matches golden file {golden_path}");
            return;
        }
        eprintln!("plan DIVERGES from golden file {golden_path}");
        for (i, (g, n)) in golden.lines().zip(json.lines()).enumerate() {
            if g != n {
                eprintln!("line {}:\n  golden:  {g}\n  current: {n}", i + 1);
            }
        }
        let (gl, nl) = (golden.lines().count(), json.lines().count());
        if gl != nl {
            eprintln!("line counts differ: golden {gl}, current {nl}");
        }
        eprintln!(
            "\nif the change is intended, regenerate with:\n  cargo run --release -p lowbit-bench --bin lowbit-plan -- --model {} --json > {golden_path}",
            args.model
        );
        std::process::exit(1);
    }

    if args.json_only {
        print!("{json}");
        return;
    }
    println!(
        "{} network: {} @ {}x{} (seed {}), backend: {}\n",
        args.model, args.bits, args.hw, args.hw, args.seed, args.backend
    );
    print!("{}", plan.table());
    println!("\n{json}");
}
