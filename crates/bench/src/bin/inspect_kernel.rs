//! Developer tool: disassemble an emitted micro-kernel and schedule it on
//! the latency-aware pipeline model.
//!
//! ```sh
//! cargo run --release -p lowbit-bench --bin inspect_kernel -- 4 8
//! #                                                       bits k
//! ```
use lowbit::qgemm::micro::emit_tile;
use lowbit::qgemm::narrow::emit_tile_narrow;
use lowbit::qgemm::sdot::emit_tile_sdot;
use lowbit::qgemm::Scheme;
use lowbit_tensor::BitWidth;
use neon_sim::{pipeline_schedule, program_listing, PipelineModel};

fn main() {
    let mut args = std::env::args().skip(1);
    let bits = BitWidth::new(args.next().map(|a| a.parse().unwrap()).unwrap_or(4)).unwrap();
    let k: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(8);
    let scheme = Scheme::for_bits(bits);

    let kernels: Vec<(&str, Vec<neon_sim::Inst>)> = {
        let mut v = vec![(
            "16x4 (paper Alg. 1)",
            emit_tile(&scheme, k, 0, 4096, 8192),
        )];
        if !bits.uses_mla_scheme() {
            v.push(("8x4 narrow (extension)", emit_tile_narrow(&scheme, k, 0, 4096, 8192)));
        }
        v.push(("SDOT 16x4 (ARMv8.2 extension)", emit_tile_sdot(k, 0, 4096, 8192)));
        v
    };
    for (name, prog) in kernels {
        println!("=== {bits} {name}, K = {k} ===");
        println!("{}", program_listing(&prog));
        let r = pipeline_schedule(&prog, &PipelineModel::cortex_a53());
        println!(
            "pipeline: {} cycles, IPC {:.2}, {} stall cycles, {} dual-issue cycles\n",
            r.cycles,
            r.ipc(),
            r.stall_cycles,
            r.dual_issue_cycles
        );
    }
}
