//! Prints Tab. 1: the modeled hardware/software configuration of both
//! platforms (substituted by the two substrate simulators).
use neon_sim::CortexA53;
use turing_sim::{Device, Precision};

fn main() {
    let arm = CortexA53::cost_model();
    let gpu = Device::rtx2080ti();
    println!("Tab. 1 - platform configurations (simulated substrates)");
    println!();
    println!("ARM CPU  : Raspberry Pi 3B model (Cortex-A53 @ {:.1} GHz)", arm.clock_hz / 1e9);
    println!("           NEON issue {} slot/inst, LS {} slots/inst + {:.3} cyc/B stall",
        arm.neon_slots, arm.ls_slots, arm.stall_per_byte);
    println!("           bulk reshape {:.2} cyc/B, dual-issue overlap penalty {:.2}",
        arm.bulk_move_per_byte, arm.overlap_penalty);
    println!();
    println!("NVIDIA GPU: RTX 2080 Ti model (Turing TU102)");
    println!("           {} SMs @ {:.3} GHz, {:.0} GB/s DRAM, {} KB smem/SM, L2 {} KB",
        gpu.sm_count, gpu.clock_hz / 1e9, gpu.dram_bytes_per_sec / 1e9,
        gpu.smem_per_sm / 1024, gpu.l2_bytes / 1024);
    println!("           MAC/SM/cycle: int4 TC {}, int8 TC {}, dp4a {}",
        gpu.mac_rate(Precision::TensorCoreInt4),
        gpu.mac_rate(Precision::TensorCoreInt8),
        gpu.mac_rate(Precision::Dp4aInt8));
    println!("           launch overhead {:.1} us", gpu.launch_overhead_s * 1e6);
}
