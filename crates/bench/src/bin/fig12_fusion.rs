//! Regenerates Fig. 12: quantization fusion gains (8-bit, batch 1).
//! Paper: conv+dequantization 1.18x, conv+ReLU 1.51x average.
use lowbit_bench::harness::{mean, Table};

fn main() {
    let fig = lowbit_bench::gpu_experiments::fusion(&lowbit_models::resnet50());
    println!("Fig. 12 - quantization fusion speedups (8-bit, batch 1)");
    let mut table = Table::new(vec!["layer", "conv+dequant", "conv+relu"]);
    for l in 0..fig.layers.len() {
        table.push_row(vec![
            fig.layers[l].to_string(),
            format!("{:.2}x", fig.dequant[l]),
            format!("{:.2}x", fig.relu[l]),
        ]);
    }
    table.print();
    println!(
        "avg: conv+dequant {:.2}x (paper 1.18x), conv+ReLU {:.2}x (paper 1.51x)",
        mean(&fig.dequant),
        mean(&fig.relu)
    );
}
