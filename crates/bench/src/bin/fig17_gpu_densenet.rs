//! Regenerates Fig. 17: GPU comparison on DenseNet-121 (batch 1).
//! Paper: 4-bit 3.29x / 8-bit 2.53x vs TensorRT.
use lowbit_bench::arm_experiments::paper_summary_line;
use lowbit_bench::gpu_experiments::gpu_vs_baselines;

fn main() {
    let fig = gpu_vs_baselines(&lowbit_models::densenet121(), 1);
    println!("Fig. 17 - DenseNet-121 on the RTX 2080 Ti model, batch 1");
    for l in 0..fig.layers.len() {
        println!(
            "{:7} cudnn {:8.1}us  trt {:7.1}us  ours8 {:7.1}us  ours4 {:7.1}us",
            fig.layers[l], fig.cudnn_us[l], fig.tensorrt_us[l], fig.ours8_us[l], fig.ours4_us[l]
        );
    }
    paper_summary_line("8-bit vs TensorRT (paper 2.53x)", &fig.speedup_vs_tensorrt(&fig.ours8_us));
    paper_summary_line("4-bit vs TensorRT (paper 3.29x)", &fig.speedup_vs_tensorrt(&fig.ours4_us));
}
