//! Regenerates Fig. 14: 2-8-bit convolution vs ncnn on DenseNet-121.
use lowbit_bench::arm_experiments::{lowbit_vs_ncnn, print_lowbit_vs_ncnn};

fn main() {
    let fig = lowbit_vs_ncnn(&lowbit_models::densenet121());
    print_lowbit_vs_ncnn(
        "Fig. 14 - DenseNet-121 on the Cortex-A53 model (paper avgs: 1.79/1.74/1.56/1.50/1.51/1.37/1.09)",
        &fig,
    );
}
