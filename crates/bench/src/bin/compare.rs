//! Developer tool: compare every ARM algorithm (and the GPU paths where the
//! bit width allows) on one convolution shape, with per-stage breakdowns.
//!
//! ```sh
//! cargo run --release -p lowbit-bench --bin compare -- 64 56 64 3 1 1 4
//! #                                  c_in hw c_out k stride pad bits
//! ```
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::harness::Table;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args"))
        .collect();
    let (c_in, hw, c_out, k, stride, pad, bits) = match args.as_slice() {
        [a, b, c, d, e, f, g] => (*a, *b, *c, *d, *e, *f, *g as u8),
        [] => (64, 56, 64, 3, 1, 1, 4),
        _ => panic!("usage: compare [c_in hw c_out k stride pad bits]"),
    };
    let bits = BitWidth::new(bits).expect("bits in 2..=8");
    let shape = ConvShape::new(1, c_in, hw, hw, c_out, k, stride, pad);
    let engine = ArmEngine::cortex_a53();
    let model = *engine.model();

    println!("Shape {shape} at {bits} (batch 1)\n");
    println!("ARM algorithms (Cortex-A53 model):");
    let mut table = Table::new(vec!["algorithm", "modeled ms", "stage breakdown"]);
    let algos: Vec<(ArmAlgo, bool)> = vec![
        (ArmAlgo::Gemm, true),
        (ArmAlgo::GemmNarrow, !bits.uses_mla_scheme()),
        (ArmAlgo::GemmSdot, true),
        (
            ArmAlgo::Winograd,
            shape.winograd_applicable() && lowbit::conv_arm::winograd_supported(bits),
        ),
        (ArmAlgo::NcnnBaseline, true),
        (ArmAlgo::BitserialBaseline, bits == BitWidth::W2),
    ];
    for (algo, applicable) in algos {
        if !applicable {
            table.push_row(vec![format!("{algo:?}"), "n/a".into(), "-".into()]);
            continue;
        }
        let sched = match algo {
            ArmAlgo::Gemm => lowbit::conv_arm::schedule_gemm_conv(
                &lowbit::qgemm::Scheme::for_bits(bits),
                &shape,
            ),
            ArmAlgo::GemmNarrow => lowbit::conv_arm::schedule_gemm_conv_narrow(
                &lowbit::qgemm::Scheme::for_bits(bits),
                &shape,
            ),
            ArmAlgo::GemmSdot => lowbit::conv_arm::schedule_gemm_conv_sdot(&shape),
            ArmAlgo::Winograd => lowbit::conv_arm::schedule_winograd_conv(bits, &shape),
            ArmAlgo::NcnnBaseline => lowbit::conv_arm::schedule_ncnn_conv(&shape),
            ArmAlgo::BitserialBaseline => lowbit::conv_arm::schedule_bitserial_conv(&shape),
            ArmAlgo::Auto => unreachable!(),
        };
        let breakdown: Vec<String> = sched
            .stages
            .iter()
            .map(|s| format!("{} {:.2}", s.name, model.millis(s.cycles(&model))))
            .collect();
        table.push_row(vec![
            format!("{algo:?}"),
            format!("{:.3}", sched.millis(&model)),
            breakdown.join(", "),
        ]);
    }
    table.print();

    if let Some(precision) = GpuEngine::precision_for(bits) {
        let gpu = GpuEngine::rtx2080ti();
        println!("\nGPU (RTX 2080 Ti model, {precision:?}):");
        let default = gpu.estimate(&shape, bits, Tuning::Default);
        let tuned = gpu.estimate(&shape, bits, Tuning::AutoSearch);
        println!("  default tiling : {:.2} us", default.total_us());
        println!(
            "  auto-searched  : {:.2} us ({:.2}x, {} blocks/SM, {} waves)",
            tuned.total_us(),
            default.total_s / tuned.total_s,
            tuned.blocks_per_sm,
            tuned.waves
        );
    } else {
        println!("\nGPU: {bits} has no Tensor Core path (only 4/8-bit, Sec. 2.3)");
    }
}
