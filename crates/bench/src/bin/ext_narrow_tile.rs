//! Extension experiment: the narrow 8x4 spill-free tile vs the paper's
//! 16x4 Alg. 1 tile, per bit width, on a representative layer — showing
//! the register-allocation crossover at tight drain ratios.
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::harness::Table;

fn main() {
    let engine = ArmEngine::cortex_a53();
    let shape = ConvShape::new(1, 64, 56, 56, 64, 3, 1, 1);
    println!("Narrow 8x4 tile vs the paper's 16x4 tile on {shape}\n");
    let mut table = Table::new(vec!["bits", "ratio", "16x4 ms", "8x4 ms", "winner"]);
    for bits in [BitWidth::W4, BitWidth::W5, BitWidth::W6, BitWidth::W7, BitWidth::W8] {
        let wide = engine.estimate_millis(bits, &shape, ArmAlgo::Gemm);
        let narrow = engine.estimate_millis(bits, &shape, ArmAlgo::GemmNarrow);
        table.push_row(vec![
            bits.to_string(),
            lowbit::qgemm::Scheme::for_bits(bits).ratio().to_string(),
            format!("{wide:.2}"),
            format!("{narrow:.2}"),
            if narrow < wide { "8x4 (no spills)" } else { "16x4 (paper)" }.to_string(),
        ]);
    }
    table.print();
    println!("\nAt loose drain ratios the wide tile's operand reuse wins; at ratio 2");
    println!("(8-bit) the spill MOVs around every drain flip the verdict.");
}
