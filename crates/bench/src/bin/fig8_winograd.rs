//! Regenerates Fig. 8: Winograd vs GEMM at 4-6 bit on the 3x3/s1 ResNet-50
//! layers, both normalized to the ncnn 8-bit baseline.
use lowbit_bench::harness::{mean, Table};

fn main() {
    let fig = lowbit_bench::arm_experiments::winograd_figure(&lowbit_models::resnet50());
    println!("Fig. 8 - Winograd vs GEMM (paper winograd avgs: 1.50/1.44/1.34 at 4/5/6-bit)");
    let mut headers = vec!["layer".to_string(), "ncnn8 ms".to_string()];
    for b in &fig.bits {
        headers.push(format!("gemm {b}"));
        headers.push(format!("wino {b}"));
    }
    let mut table = Table::new(headers);
    for l in 0..fig.layers.len() {
        let mut row = vec![fig.layers[l].to_string(), format!("{:.3}", fig.baseline_ms[l])];
        for b in 0..fig.bits.len() {
            row.push(format!("{:.2}x", fig.gemm[b][l]));
            row.push(format!("{:.2}x", fig.winograd[b][l]));
        }
        table.push_row(row);
    }
    table.print();
    for (b, bits) in fig.bits.iter().enumerate() {
        println!(
            "{bits}: winograd avg {:.2}x vs ncnn (gemm avg {:.2}x)",
            mean(&fig.winograd[b]),
            mean(&fig.gemm[b])
        );
    }
}
