//! Regenerates Fig. 11: speedup of profile-run tiling auto-search over the
//! default parameters (batch 1). Paper: 2.29x (4-bit), 2.91x (8-bit) avg.
use lowbit_bench::harness::{mean, Table};

fn main() {
    let fig = lowbit_bench::gpu_experiments::profile_runs(&lowbit_models::resnet50());
    println!("Fig. 11 - tiling auto-search gain (w/ profile vs w/o profile, batch 1)");
    let mut table = Table::new(vec!["layer", "4-bit gain", "8-bit gain"]);
    for l in 0..fig.layers.len() {
        table.push_row(vec![
            fig.layers[l].to_string(),
            format!("{:.2}x", fig.gain4[l]),
            format!("{:.2}x", fig.gain8[l]),
        ]);
    }
    table.print();
    println!(
        "avg: 4-bit {:.2}x (paper 2.29x), 8-bit {:.2}x (paper 2.91x)",
        mean(&fig.gain4),
        mean(&fig.gain8)
    );
}
