//! Regenerates Fig. 9: our 2-bit GEMM vs the TVM-like popcount baseline
//! (A2W2) on ResNet-50.
use lowbit_bench::arm_experiments::paper_summary_line;
use lowbit_bench::harness::Table;

fn main() {
    let fig = lowbit_bench::arm_experiments::tvm_figure(&lowbit_models::resnet50());
    println!("Fig. 9 - 2-bit GEMM vs TVM popcount (paper: wins 16/19, avg 1.78x, max 2.11x)");
    let mut table = Table::new(vec!["layer", "tvm ms", "ours vs tvm"]);
    for l in 0..fig.layers.len() {
        table.push_row(vec![
            fig.layers[l].to_string(),
            format!("{:.3}", fig.baseline_ms[l]),
            format!("{:.2}x", fig.speedups[l]),
        ]);
    }
    table.print();
    paper_summary_line("ours vs TVM", &fig.speedups);
}
