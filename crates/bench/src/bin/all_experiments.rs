//! Runs every figure/table regenerator in sequence (the EXPERIMENTS.md
//! source of truth).
use lowbit_bench::arm_experiments::*;
use lowbit_bench::gpu_experiments::*;
use lowbit_bench::harness::{mean, Table};
use lowbit_models::{densenet121, resnet50, scr_resnet50};

fn main() {
    print_lowbit_vs_ncnn("=== Fig. 7: ResNet-50, ARM ===", &lowbit_vs_ncnn(&resnet50()));

    println!("=== Fig. 8: Winograd vs GEMM, ARM ===");
    let fig = winograd_figure(&resnet50());
    for (b, bits) in fig.bits.iter().enumerate() {
        println!(
            "{bits}: winograd avg {:.2}x vs ncnn, gemm avg {:.2}x (paper winograd: 1.50/1.44/1.34)",
            mean(&fig.winograd[b]),
            mean(&fig.gemm[b])
        );
    }
    println!();

    println!("=== Fig. 9: 2-bit vs TVM popcount, ARM ===");
    let fig = tvm_figure(&resnet50());
    paper_summary_line("ours vs TVM (paper: 16/19 wins, avg 1.78x)", &fig.speedups);
    println!();

    for batch in [1usize, 16] {
        println!("=== Fig. 10: GPU vs cuDNN/TensorRT, ResNet-50, batch {batch} ===");
        let fig = gpu_vs_baselines(&resnet50(), batch);
        paper_summary_line("8-bit vs cuDNN", &fig.speedup_vs_cudnn(&fig.ours8_us));
        paper_summary_line("4-bit vs cuDNN", &fig.speedup_vs_cudnn(&fig.ours4_us));
        paper_summary_line("8-bit vs TRT  ", &fig.speedup_vs_tensorrt(&fig.ours8_us));
        paper_summary_line("4-bit vs TRT  ", &fig.speedup_vs_tensorrt(&fig.ours4_us));
        println!();
    }

    println!("=== Fig. 11: profile-run auto-search, batch 1 ===");
    let fig = profile_runs(&resnet50());
    println!(
        "avg gain: 4-bit {:.2}x (paper 2.29x), 8-bit {:.2}x (paper 2.91x)",
        mean(&fig.gain4),
        mean(&fig.gain8)
    );
    println!();

    println!("=== Fig. 12: quantization fusion, batch 1 ===");
    let fig = fusion(&resnet50());
    println!(
        "conv+dequant {:.2}x (paper 1.18x), conv+ReLU {:.2}x (paper 1.51x)",
        mean(&fig.dequant),
        mean(&fig.relu)
    );
    println!();

    println!("=== Fig. 13: ARM space overhead ===");
    let fig = space_figure(&resnet50());
    let mut t = Table::new(vec!["metric", "min", "max", "avg", "paper"]);
    let stats = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::MAX, f64::min),
            v.iter().cloned().fold(0.0, f64::max),
            mean(v),
        )
    };
    let (lo, hi, avg) = stats(&fig.im2col);
    t.push_row(vec![
        "im2col".into(),
        format!("{lo:.4}"),
        format!("{hi:.4}"),
        format!("{avg:.4}"),
        "1.0218/8.6034/1.9445".into(),
    ]);
    let (lo, hi, avg) = stats(&fig.packing);
    t.push_row(vec![
        "pad+pack".into(),
        format!("{lo:.4}"),
        format!("{hi:.4}"),
        format!("{avg:.4}"),
        "1.0/1.0058/1.0010".into(),
    ]);
    t.print();
    println!();

    print_lowbit_vs_ncnn("=== Fig. 14: DenseNet-121, ARM ===", &lowbit_vs_ncnn(&densenet121()));
    print_lowbit_vs_ncnn("=== Fig. 15: SCR-ResNet-50, ARM ===", &lowbit_vs_ncnn(&scr_resnet50()));

    for (name, table, p8, p4) in [
        ("Fig. 16: SCR-ResNet-50, GPU", scr_resnet50(), "2.22x", "3.53x"),
        ("Fig. 17: DenseNet-121, GPU", densenet121(), "2.53x", "3.29x"),
    ] {
        println!("=== {name}, batch 1 ===");
        let fig = gpu_vs_baselines(&table, 1);
        paper_summary_line(&format!("8-bit vs TRT (paper {p8})"), &fig.speedup_vs_tensorrt(&fig.ours8_us));
        paper_summary_line(&format!("4-bit vs TRT (paper {p4})"), &fig.speedup_vs_tensorrt(&fig.ours4_us));
        println!();
    }

    println!("=== Thread scaling (extension): parallel GEMM-conv engine ===");
    let fig = parallel_scaling(&resnet50(), &[1, 2, 4], false);
    for (t, &threads) in fig.threads.iter().enumerate() {
        println!(
            "{threads} thread(s): modeled avg speedup {:.2}x over the serial schedule",
            mean(&fig.modeled[t])
        );
    }
    println!();

    let dir = std::path::Path::new("target/experiments");
    match lowbit_bench::export::save_all(dir) {
        Ok(paths) => println!("wrote {} per-figure CSVs under {}", paths.len(), dir.display()),
        Err(e) => eprintln!("CSV export failed: {e}"),
    }
    match lowbit_bench::export::save_parallel_json(dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("parallel JSON export failed: {e}"),
    }
    match lowbit_bench::export::save_trace_json(dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("trace JSON export failed: {e}"),
    }
    match lowbit_bench::export::save_graph_json(dir) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("graph JSON export failed: {e}"),
    }
}
