//! Regenerates Fig. 13: space overhead of im2col + padding/packing per
//! ResNet-50 layer (pure arithmetic; paper: im2col 1.0218-8.6034x,
//! avg 1.9445x; packing <= 1.0058x).
use lowbit_bench::harness::{mean, Table};

fn main() {
    let fig = lowbit_bench::arm_experiments::space_figure(&lowbit_models::resnet50());
    println!("Fig. 13 - ARM space overhead (baseline: activation + weight)");
    let mut table = Table::new(vec!["layer", "im2col", "pad+pack", "total"]);
    for l in 0..fig.layers.len() {
        table.push_row(vec![
            fig.layers[l].to_string(),
            format!("{:.4}x", fig.im2col[l]),
            format!("{:.4}x", fig.packing[l]),
            format!("{:.4}x", fig.total[l]),
        ]);
    }
    table.print();
    let max = fig.im2col.iter().cloned().fold(0.0, f64::max);
    let min = fig.im2col.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "im2col: min {:.4}x, max {:.4}x, avg {:.4}x (paper: 1.0218 / 8.6034 / 1.9445)",
        min, max, mean(&fig.im2col)
    );
    let pmax = fig.packing.iter().cloned().fold(0.0, f64::max);
    println!("pad+pack: max {:.4}x (paper: 1.0058)", pmax);
}
