//! Extension experiment: the same Fig. 7 sweep on a Cortex-A72-class model.
//! On a bigger core the bulk-reshape overhead shrinks and loads stop
//! limiting the MLA scheme, so the low-bit advantage *grows* — evidence the
//! paper's Raspberry Pi 3B results are a conservative floor.
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::harness::{mean, Table};
use lowbit_models::resnet50;
use neon_sim::CortexA72;

fn main() {
    let a53 = ArmEngine::cortex_a53();
    let a72 = ArmEngine::with_model(CortexA72::cost_model());
    println!("Fig. 7 sweep on Cortex-A53 (paper target) vs Cortex-A72-class model\n");
    let mut table = Table::new(vec!["bits", "A53 avg speedup", "A72 avg speedup"]);
    for bits in BitWidth::ALL {
        let speedups = |engine: &ArmEngine| -> Vec<f64> {
            resnet50()
                .iter()
                .map(|l| {
                    engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::NcnnBaseline)
                        / engine.estimate_millis(bits, &l.shape, ArmAlgo::Gemm)
                })
                .collect()
        };
        table.push_row(vec![
            bits.to_string(),
            format!("{:.2}x", mean(&speedups(&a53))),
            format!("{:.2}x", mean(&speedups(&a72))),
        ]);
    }
    table.print();
}
