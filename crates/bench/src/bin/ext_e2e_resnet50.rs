//! Extension experiment: end-to-end ResNet-50 convolution time (all 52
//! counted layers, batch 1) per bit width on both platforms — the network
//! view the paper's per-layer figures imply but never total.
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::harness::Table;
use lowbit_models::resnet50_with_counts;

fn main() {
    let arm = ArmEngine::cortex_a53();
    let gpu = GpuEngine::rtx2080ti();
    println!("End-to-end ResNet-50 convolution stack (52 layers, batch 1)\n");
    let mut table = Table::new(vec![
        "bits", "ARM auto ms", "vs ncnn8", "GPU tuned us", "vs cuDNN8",
    ]);
    let layers = resnet50_with_counts();
    let ncnn_total: f64 = layers
        .iter()
        .map(|(l, c)| *c as f64 * arm.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::NcnnBaseline))
        .sum();
    let cudnn_total: f64 = layers
        .iter()
        .map(|(l, c)| {
            *c as f64
                * lowbit::conv_gpu::baselines::cudnn_like(&l.shape, gpu.device()).total_us()
        })
        .sum();
    for bits in BitWidth::ALL {
        let arm_total: f64 = layers
            .iter()
            .map(|(l, c)| *c as f64 * arm.estimate_millis(bits, &l.shape, ArmAlgo::Auto))
            .sum();
        let gpu_total = GpuEngine::precision_for(bits).map(|_| {
            layers
                .iter()
                .map(|(l, c)| {
                    *c as f64 * gpu.estimate(&l.shape, bits, Tuning::AutoSearch).total_us()
                })
                .sum::<f64>()
        });
        table.push_row(vec![
            bits.to_string(),
            format!("{arm_total:.1}"),
            format!("{:.2}x", ncnn_total / arm_total),
            gpu_total.map(|t| format!("{t:.0}")).unwrap_or_else(|| "n/a".into()),
            gpu_total
                .map(|t| format!("{:.2}x", cudnn_total / t))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table.print();
    println!("\nBaselines: ncnn-8bit {ncnn_total:.1} ms (ARM), cuDNN-dp4a {cudnn_total:.0} us (GPU).");
    println!("(The ARM Auto policy switches the four 3x3/s1 shapes to Winograd at 4-6 bit.)");
}
