//! Regenerates Fig. 10: our 4/8-bit Tensor Core convolutions vs cuDNN dp4a
//! and TensorRT int8 on ResNet-50 (RTX 2080 Ti model, batch 1 and 16).
use lowbit_bench::arm_experiments::paper_summary_line;
use lowbit_bench::gpu_experiments::gpu_vs_baselines;
use lowbit_bench::harness::Table;

fn main() {
    for batch in [1usize, 16] {
        let fig = gpu_vs_baselines(&lowbit_models::resnet50(), batch);
        println!("Fig. 10 - ResNet-50 on the RTX 2080 Ti model, batch {batch}");
        let mut table = Table::new(vec![
            "layer", "cudnn us", "trt us", "ours8 us", "ours4 us", "s8 vs cudnn", "s4 vs cudnn",
        ]);
        let s8 = fig.speedup_vs_cudnn(&fig.ours8_us);
        let s4 = fig.speedup_vs_cudnn(&fig.ours4_us);
        for l in 0..fig.layers.len() {
            table.push_row(vec![
                fig.layers[l].to_string(),
                format!("{:.1}", fig.cudnn_us[l]),
                format!("{:.1}", fig.tensorrt_us[l]),
                format!("{:.1}", fig.ours8_us[l]),
                format!("{:.1}", fig.ours4_us[l]),
                format!("{:.2}x", s8[l]),
                format!("{:.2}x", s4[l]),
            ]);
        }
        table.print();
        paper_summary_line("  8-bit vs cuDNN", &s8);
        paper_summary_line("  4-bit vs cuDNN", &s4);
        paper_summary_line("  8-bit vs TensorRT", &fig.speedup_vs_tensorrt(&fig.ours8_us));
        paper_summary_line("  4-bit vs TensorRT", &fig.speedup_vs_tensorrt(&fig.ours4_us));
        println!(
            "  (paper batch {batch}: 8-bit {} / 4-bit {} vs cuDNN)",
            if batch == 1 { "4.31x" } else { "2.44x" },
            if batch == 1 { "5.26x" } else { "3.45x" },
        );
        println!();
    }
}
