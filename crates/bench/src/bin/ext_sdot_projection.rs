//! Extension experiment: the ARMv8.2 projection. Re-runs the Fig. 7 layer
//! sweep with the `SDOT` kernel (which ARMv8.1 lacks — the gap that
//! motivates the whole paper) against the same ncnn-like baseline, showing
//! how much of the drain-scheme machinery a newer ISA deletes.
use lowbit::prelude::*;
use lowbit::ArmAlgo;
use lowbit_bench::harness::{mean, Table};
use lowbit_models::resnet50;

fn main() {
    let engine = ArmEngine::cortex_a53();
    println!("ARMv8.2 projection: SDOT conv vs the v8.1 schemes (ResNet-50, batch 1)\n");
    let mut table = Table::new(vec![
        "layer", "ncnn8 ms", "sdot8", "v8.1 8-bit", "v8.1 2-bit",
    ]);
    let mut sdot_speedups = Vec::new();
    for l in resnet50() {
        let ncnn = engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::NcnnBaseline);
        let sdot = engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::GemmSdot);
        let v81_8 = engine.estimate_millis(BitWidth::W8, &l.shape, ArmAlgo::Gemm);
        let v81_2 = engine.estimate_millis(BitWidth::W2, &l.shape, ArmAlgo::Gemm);
        sdot_speedups.push(ncnn / sdot);
        table.push_row(vec![
            l.name.to_string(),
            format!("{ncnn:.3}"),
            format!("{:.2}x", ncnn / sdot),
            format!("{:.2}x", ncnn / v81_8),
            format!("{:.2}x", ncnn / v81_2),
        ]);
    }
    table.print();
    println!(
        "\nSDOT 8-bit avg {:.2}x over ncnn — 8-bit on v8.2 beats even 2-bit on v8.1,",
        mean(&sdot_speedups)
    );
    println!("which is why the paper scopes its schemes to the ARMv8.1 installed base.");
}
