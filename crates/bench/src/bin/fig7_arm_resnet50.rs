//! Regenerates Fig. 7: 2-8-bit convolution vs the ncnn-like 8-bit baseline
//! on the 19 distinct ResNet-50 layers (Raspberry Pi 3B model, batch 1).
use lowbit_bench::arm_experiments::{lowbit_vs_ncnn, print_lowbit_vs_ncnn};

fn main() {
    let fig = lowbit_vs_ncnn(&lowbit_models::resnet50());
    print_lowbit_vs_ncnn(
        "Fig. 7 - ResNet-50 on the Cortex-A53 model (paper avgs: 1.60/1.54/1.38/1.38/1.34/1.27/1.03)",
        &fig,
    );
}
