//! Regenerates Fig. 15: 2-8-bit convolution vs ncnn on SCR-ResNet-50.
use lowbit_bench::arm_experiments::{lowbit_vs_ncnn, print_lowbit_vs_ncnn};

fn main() {
    let fig = lowbit_vs_ncnn(&lowbit_models::scr_resnet50());
    print_lowbit_vs_ncnn(
        "Fig. 15 - SCR-ResNet-50 on the Cortex-A53 model (paper avgs: 3.17/3.00/2.65/2.54/2.54/2.27/1.52)",
        &fig,
    );
}
