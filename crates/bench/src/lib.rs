//! The paper-figure regeneration harness.
//!
//! Every table and figure of the evaluation section has a corresponding
//! experiment function here (consumed by the `fig*` binaries and by
//! integration tests) that produces the same rows/series the paper reports,
//! measured on the substrate cost models. See DESIGN.md's per-experiment
//! index and EXPERIMENTS.md for paper-vs-measured numbers.

#![forbid(unsafe_code)]

pub mod arm_experiments;
pub mod export;
pub mod gpu_experiments;
pub mod harness;
