//! GPU-side experiments: Fig. 10/11/12/16/17.

use lowbit::prelude::*;
use lowbit_conv_gpu::baselines::{cudnn_like, ours, tensorrt_like};
use lowbit_conv_gpu::fusion::{dequant_fusion_times, relu_fusion_times};
use lowbit_conv_gpu::{default_config, ConvGpuPlan};
use lowbit_models::LayerDef;
use turing_sim::Device;

/// Per-layer GPU comparison rows (Fig. 10/16/17).
#[derive(Clone, Debug)]
pub struct GpuFigure {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// cuDNN dp4a baseline microseconds.
    pub cudnn_us: Vec<f64>,
    /// TensorRT int8 microseconds.
    pub tensorrt_us: Vec<f64>,
    /// Our 8-bit microseconds.
    pub ours8_us: Vec<f64>,
    /// Our 4-bit microseconds.
    pub ours4_us: Vec<f64>,
}

impl GpuFigure {
    /// Speedups of a column over the cuDNN baseline.
    pub fn speedup_vs_cudnn(&self, ours: &[f64]) -> Vec<f64> {
        self.cudnn_us.iter().zip(ours).map(|(c, o)| c / o).collect()
    }

    /// Speedups of a column over TensorRT.
    pub fn speedup_vs_tensorrt(&self, ours: &[f64]) -> Vec<f64> {
        self.tensorrt_us
            .iter()
            .zip(ours)
            .map(|(t, o)| t / o)
            .collect()
    }
}

/// Runs the Fig. 10-style comparison at a batch size.
pub fn gpu_vs_baselines(table: &[LayerDef], batch: usize) -> GpuFigure {
    let device = Device::rtx2080ti();
    let mut fig = GpuFigure {
        layers: Vec::new(),
        cudnn_us: Vec::new(),
        tensorrt_us: Vec::new(),
        ours8_us: Vec::new(),
        ours4_us: Vec::new(),
    };
    for l in table {
        let shape = l.shape.with_batch(batch);
        fig.layers.push(l.name);
        fig.cudnn_us.push(cudnn_like(&shape, &device).total_us());
        fig.tensorrt_us
            .push(tensorrt_like(&shape, &device).total_us());
        fig.ours8_us
            .push(ours(&shape, Precision::TensorCoreInt8, &device).total_us());
        fig.ours4_us
            .push(ours(&shape, Precision::TensorCoreInt4, &device).total_us());
    }
    fig
}

/// Per-layer profile-run gains (Fig. 11).
#[derive(Clone, Debug)]
pub struct ProfileRunsFigure {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// 4-bit speedup of searched over default tiling.
    pub gain4: Vec<f64>,
    /// 8-bit speedup of searched over default tiling.
    pub gain8: Vec<f64>,
}

/// Runs the Fig. 11 experiment (batch 1, default vs searched parameters).
pub fn profile_runs(table: &[LayerDef]) -> ProfileRunsFigure {
    let device = Device::rtx2080ti();
    let mut fig = ProfileRunsFigure {
        layers: Vec::new(),
        gain4: Vec::new(),
        gain8: Vec::new(),
    };
    for l in table {
        fig.layers.push(l.name);
        for (precision, out) in [
            (Precision::TensorCoreInt4, &mut fig.gain4),
            (Precision::TensorCoreInt8, &mut fig.gain8),
        ] {
            let default =
                ConvGpuPlan::new(l.shape, default_config(precision), precision).time(&device);
            let best = ours(&l.shape, precision, &device);
            out.push(default.total_s / best.total_s);
        }
    }
    fig
}

/// Per-layer fusion gains (Fig. 12, 8-bit, batch 1).
#[derive(Clone, Debug)]
pub struct FusionFigure {
    /// Layer names.
    pub layers: Vec<&'static str>,
    /// conv+dequantization fusion speedup.
    pub dequant: Vec<f64>,
    /// conv+ReLU fusion speedup.
    pub relu: Vec<f64>,
}

/// Runs the Fig. 12 experiment.
pub fn fusion(table: &[LayerDef]) -> FusionFigure {
    let device = Device::rtx2080ti();
    let mut fig = FusionFigure {
        layers: Vec::new(),
        dequant: Vec::new(),
        relu: Vec::new(),
    };
    for l in table {
        let (cfg, _) = lowbit_conv_gpu::auto_search(&l.shape, Precision::TensorCoreInt8, &device);
        let plan = ConvGpuPlan::new(l.shape, cfg, Precision::TensorCoreInt8);
        let (u, f) = dequant_fusion_times(&plan, &device);
        fig.dequant.push(u / f);
        let (u, f) = relu_fusion_times(&plan, &device);
        fig.relu.push(u / f);
        fig.layers.push(l.name);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{mean, winning_summary};
    use lowbit_models::{densenet121, resnet50, scr_resnet50};

    #[test]
    fn fig10_batch1_bands() {
        let fig = gpu_vs_baselines(&resnet50(), 1);
        let s8 = fig.speedup_vs_cudnn(&fig.ours8_us);
        let s4 = fig.speedup_vs_cudnn(&fig.ours4_us);
        let (avg8, wins8) = winning_summary(&s8);
        let (avg4, wins4) = winning_summary(&s4);
        // Paper: 4.31x / 5.26x average, winning 18/19.
        assert!(wins8 >= 16, "8-bit should win nearly all layers, got {wins8}");
        assert!(wins4 >= 16);
        assert!((2.5..=8.0).contains(&avg8), "8-bit avg {avg8}");
        assert!((3.0..=10.0).contains(&avg4), "4-bit avg {avg4}");
        assert!(avg4 > avg8, "4-bit must beat 8-bit on average");
        // vs TensorRT: paper 1.44x avg, winning 15/19.
        let t8 = fig.speedup_vs_tensorrt(&fig.ours8_us);
        let (avg_t8, wins_t8) = winning_summary(&t8);
        assert!(wins_t8 >= 10, "should beat TRT on most layers, got {wins_t8}");
        assert!((1.05..=2.5).contains(&avg_t8), "vs TRT avg {avg_t8}");
    }

    #[test]
    fn fig10_batch16_compresses() {
        let fig1 = gpu_vs_baselines(&resnet50(), 1);
        let fig16 = gpu_vs_baselines(&resnet50(), 16);
        let avg1 = mean(&fig1.speedup_vs_cudnn(&fig1.ours8_us));
        let avg16 = mean(&fig16.speedup_vs_cudnn(&fig16.ours8_us));
        assert!(
            avg16 < avg1,
            "batch-16 advantage ({avg16}) must be below batch-1 ({avg1})"
        );
        assert!(avg16 > 1.3, "still well ahead of dp4a at batch 16");
    }

    #[test]
    fn fig11_profile_run_gains() {
        let fig = profile_runs(&resnet50());
        // Paper: 2.29x (4-bit) and 2.91x (8-bit) on average.
        let a4 = mean(&fig.gain4);
        let a8 = mean(&fig.gain8);
        // Our reconstructed "default" differs from the paper's unnamed one,
        // so accept a wide band around the published 2.29x/2.91x.
        assert!((1.5..=5.5).contains(&a4), "4-bit profile gain {a4}");
        assert!((1.5..=5.5).contains(&a8), "8-bit profile gain {a8}");
        // Auto-search never loses.
        assert!(fig.gain4.iter().chain(&fig.gain8).all(|&g| g >= 1.0 - 1e-12));
    }

    #[test]
    fn fig12_fusion_bands() {
        let fig = fusion(&resnet50());
        let d = mean(&fig.dequant);
        let r = mean(&fig.relu);
        // Paper: 1.18x and 1.51x.
        assert!((1.05..=1.55).contains(&d), "dequant fusion avg {d}");
        assert!((1.2..=2.0).contains(&r), "relu fusion avg {r}");
        assert!(r > d, "ReLU fusion removes more kernels");
    }

    #[test]
    fn fig16_17_wider_nets_prefer_us_vs_tensorrt() {
        // Sec. 5.5: unusual SCR/DenseNet shapes favor auto-search even more
        // than ResNet-50 does.
        for table in [scr_resnet50(), densenet121()] {
            let fig = gpu_vs_baselines(&table, 1);
            let t8 = fig.speedup_vs_tensorrt(&fig.ours8_us);
            let (avg, wins) = winning_summary(&t8);
            assert!(wins as f64 >= 0.6 * table.len() as f64, "wins {wins}");
            assert!(avg > 1.05, "avg vs TRT {avg}");
        }
    }
}
