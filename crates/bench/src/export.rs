//! CSV export of every figure's raw data (for plotting the paper's charts
//! from this reproduction).

use crate::arm_experiments::*;
use crate::gpu_experiments::*;
use crate::harness::Table;
use lowbit_models::{densenet121, resnet50, scr_resnet50};
use std::path::{Path, PathBuf};

fn arm_table(fig: &LowbitVsNcnn) -> Table {
    let mut headers = vec!["layer".to_string(), "ncnn8_ms".to_string()];
    headers.extend(fig.bits.iter().map(|b| format!("speedup_{}", b.bits())));
    let mut t = Table::new(headers);
    for l in 0..fig.layers.len() {
        let mut row = vec![fig.layers[l].to_string(), format!("{:.6}", fig.baseline_ms[l])];
        row.extend((0..fig.bits.len()).map(|b| format!("{:.4}", fig.speedups[b][l])));
        t.push_row(row);
    }
    t
}

fn gpu_table(fig: &GpuFigure) -> Table {
    let mut t = Table::new(vec!["layer", "cudnn_us", "tensorrt_us", "ours8_us", "ours4_us"]);
    for l in 0..fig.layers.len() {
        t.push_row(vec![
            fig.layers[l].to_string(),
            format!("{:.3}", fig.cudnn_us[l]),
            format!("{:.3}", fig.tensorrt_us[l]),
            format!("{:.3}", fig.ours8_us[l]),
            format!("{:.3}", fig.ours4_us[l]),
        ]);
    }
    t
}

/// Writes one CSV per paper figure under `dir` and returns the paths.
pub fn save_all(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    paths.push(arm_table(&lowbit_vs_ncnn(&resnet50())).save_csv(dir, "fig7_arm_resnet50")?);
    paths.push(arm_table(&lowbit_vs_ncnn(&densenet121())).save_csv(dir, "fig14_arm_densenet121")?);
    paths.push(arm_table(&lowbit_vs_ncnn(&scr_resnet50())).save_csv(dir, "fig15_arm_scr_resnet50")?);

    let wf = winograd_figure(&resnet50());
    let mut t = Table::new(vec![
        "layer", "ncnn8_ms", "gemm4", "wino4", "gemm5", "wino5", "gemm6", "wino6",
    ]);
    for l in 0..wf.layers.len() {
        let mut row = vec![wf.layers[l].to_string(), format!("{:.6}", wf.baseline_ms[l])];
        for b in 0..wf.bits.len() {
            row.push(format!("{:.4}", wf.gemm[b][l]));
            row.push(format!("{:.4}", wf.winograd[b][l]));
        }
        t.push_row(row);
    }
    paths.push(t.save_csv(dir, "fig8_winograd")?);

    let tf = tvm_figure(&resnet50());
    let mut t = Table::new(vec!["layer", "tvm_ms", "speedup"]);
    for l in 0..tf.layers.len() {
        t.push_row(vec![
            tf.layers[l].to_string(),
            format!("{:.6}", tf.baseline_ms[l]),
            format!("{:.4}", tf.speedups[l]),
        ]);
    }
    paths.push(t.save_csv(dir, "fig9_tvm_popcount")?);

    for (batch, name) in [(1usize, "fig10_gpu_resnet50_b1"), (16, "fig10_gpu_resnet50_b16")] {
        paths.push(gpu_table(&gpu_vs_baselines(&resnet50(), batch)).save_csv(dir, name)?);
    }
    paths.push(gpu_table(&gpu_vs_baselines(&scr_resnet50(), 1)).save_csv(dir, "fig16_gpu_scr")?);
    paths.push(gpu_table(&gpu_vs_baselines(&densenet121(), 1)).save_csv(dir, "fig17_gpu_densenet")?);

    let pf = profile_runs(&resnet50());
    let mut t = Table::new(vec!["layer", "gain4", "gain8"]);
    for l in 0..pf.layers.len() {
        t.push_row(vec![
            pf.layers[l].to_string(),
            format!("{:.4}", pf.gain4[l]),
            format!("{:.4}", pf.gain8[l]),
        ]);
    }
    paths.push(t.save_csv(dir, "fig11_profile_runs")?);

    let ff = fusion(&resnet50());
    let mut t = Table::new(vec!["layer", "dequant_fusion", "relu_fusion"]);
    for l in 0..ff.layers.len() {
        t.push_row(vec![
            ff.layers[l].to_string(),
            format!("{:.4}", ff.dequant[l]),
            format!("{:.4}", ff.relu[l]),
        ]);
    }
    paths.push(t.save_csv(dir, "fig12_fusion")?);

    let sf = space_figure(&resnet50());
    let mut t = Table::new(vec!["layer", "im2col", "padding_packing", "total"]);
    for l in 0..sf.layers.len() {
        t.push_row(vec![
            sf.layers[l].to_string(),
            format!("{:.4}", sf.im2col[l]),
            format!("{:.4}", sf.packing[l]),
            format!("{:.4}", sf.total[l]),
        ]);
    }
    paths.push(t.save_csv(dir, "fig13_space_overhead")?);
    Ok(paths)
}

fn json_f64_list(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{v:.6}")).collect();
    format!("[{}]", items.join(","))
}

fn json_str_list(vals: &[&str]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("\"{v}\"")).collect();
    format!("[{}]", items.join(","))
}

/// Writes `BENCH_parallel.json` under `dir`: the modeled Amdahl thread
/// scaling over the full ResNet-50 table plus a measured steady-state run on
/// a small layer (so the file regenerates quickly even in debug builds).
/// This is the perf-trajectory record for the parallel execution engine.
pub fn save_parallel_json(dir: &Path) -> std::io::Result<PathBuf> {
    use crate::arm_experiments::parallel_scaling;
    use lowbit_models::LayerDef;
    use lowbit_tensor::ConvShape;

    let threads = [1usize, 2, 4];
    let modeled = parallel_scaling(&resnet50(), &threads, false);
    let small = [LayerDef {
        name: "tiny3x3",
        shape: ConvShape::new(1, 8, 14, 14, 16, 3, 1, 1),
    }];
    let measured = parallel_scaling(&small, &threads, true);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"parallel_gemm_conv_scaling\",\n");
    s.push_str("  \"bits\": 4,\n");
    s.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads.map(|t| t.to_string()).join(",")
    ));
    s.push_str("  \"modeled\": {\n");
    s.push_str(&format!(
        "    \"layers\": {},\n",
        json_str_list(&modeled.layers)
    ));
    s.push_str(&format!(
        "    \"serial_fraction\": {},\n",
        json_f64_list(&modeled.serial_fraction)
    ));
    let rows: Vec<String> = modeled
        .modeled
        .iter()
        .map(|row| format!("      {}", json_f64_list(row)))
        .collect();
    s.push_str(&format!(
        "    \"amdahl_speedup\": [\n{}\n    ],\n",
        rows.join(",\n")
    ));
    let avgs: Vec<f64> = modeled
        .modeled
        .iter()
        .map(|row| crate::harness::mean(row))
        .collect();
    s.push_str(&format!(
        "    \"avg_speedup\": {}\n",
        json_f64_list(&avgs)
    ));
    s.push_str("  },\n");
    s.push_str("  \"measured\": {\n");
    s.push_str(&format!(
        "    \"layers\": {},\n",
        json_str_list(&measured.layers)
    ));
    let rows: Vec<String> = measured
        .measured_ms
        .iter()
        .map(|row| format!("      {}", json_f64_list(row)))
        .collect();
    s.push_str(&format!(
        "    \"wall_ms\": [\n{}\n    ],\n",
        rows.join(",\n")
    ));
    s.push_str(&format!(
        "    \"steady_alloc_events\": {}\n",
        measured.steady_allocs
    ));
    s.push_str("  }\n");
    s.push_str("}\n");

    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_parallel.json");
    std::fs::write(&path, s)?;
    Ok(path)
}

/// Writes `BENCH_graph.json` under `dir`: the activation-memory record for
/// the DAG planner. For the ResNet-50 residual block and DenseNet-121's
/// first dense block (six growth steps), it compares the liveness arena's
/// certified `activation_high_water_bytes` against the sum of all value
/// bytes — what allocating every activation its own buffer would cost —
/// and reports the reduction factor. A `node_parallel` section then
/// compares each block (plus the genuinely wide ResNet-50 projection
/// block) under the certified parallel node scheduler: wave-makespan
/// (per-wave critical path of modeled layer millis) against the serial
/// predicted total, and the interference-aware arena high-water against
/// the serial placement's. All figures are modeled plan constants, so the
/// file is deterministic and gates the bench-diff CI step (dense-block
/// target: ≥2x reduction).
pub fn save_graph_json(dir: &Path) -> std::io::Result<PathBuf> {
    use lowbit::models::{
        densenet121_dense_block_n, resnet50_projection_block, resnet50_residual_block,
    };
    use lowbit::prelude::*;
    use lowbit::{Network, PlanOp};

    let arm = ArmEngine::cortex_a53();
    let blocks = [
        ("resnet50_residual_block", resnet50_residual_block(12)),
        ("densenet121_dense_block", densenet121_dense_block_n(12, 6)),
    ];

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"graph_liveness_memory_planning\",\n");
    s.push_str("  \"bits\": 4,\n");
    for (name, def) in blocks.iter() {
        let net = Network::from_graph_defs(def, BitWidth::W4, 9)
            .expect("block defs are valid");
        let plan = Planner::for_arm(&arm)
            .compile(&net)
            .expect("ARM serves every bit width");
        let shared = plan.activation_high_water_bytes();
        let unshared: usize = plan.values().iter().map(|v| v.bytes).sum();
        s.push_str(&format!("  \"{name}\": {{\n"));
        s.push_str(&format!("    \"nodes\": {},\n", plan.nodes().len()));
        s.push_str(&format!("    \"conv_layers\": {},\n", plan.layers().len()));
        s.push_str(&format!("    \"sum_of_value_bytes\": {unshared},\n"));
        s.push_str(&format!("    \"activation_high_water_bytes\": {shared},\n"));
        s.push_str(&format!(
            "    \"reduction_factor\": {:.4},\n",
            unshared as f64 / shared as f64
        ));
        s.push_str(&format!(
            "    \"predicted_total_millis\": {:.9}\n",
            plan.predicted_millis()
        ));
        s.push_str("  },\n");
    }

    // Node-parallel section: serial vs certified-parallel makespan and
    // arena footprint. The wave makespan charges each wave its slowest
    // node (Add/Concat glue is modeled free, matching `predicted_millis`
    // which only sums conv layers).
    let mut par_blocks: Vec<(&'static str, lowbit::models::GraphDef)> = blocks.into();
    par_blocks.push(("resnet50_projection_block", resnet50_projection_block(12)));
    s.push_str("  \"node_parallel\": {\n");
    for (i, (name, def)) in par_blocks.iter().enumerate() {
        let net = Network::from_graph_defs(def, BitWidth::W4, 9)
            .expect("block defs are valid");
        let serial = Planner::for_arm(&arm)
            .compile(&net)
            .expect("ARM serves every bit width");
        let parallel = Planner::for_arm(&arm)
            .with_parallel_nodes(true)
            .compile(&net)
            .expect("parallel compilation certifies");
        let schedule = parallel
            .parallel_schedule()
            .expect("parallel plans carry a certificate");
        let node_millis = |n: usize| match parallel.nodes()[n].op {
            PlanOp::Conv { layer, .. } => parallel.layers()[layer].predicted_millis,
            _ => 0.0,
        };
        let makespan: f64 = schedule
            .waves
            .iter()
            .map(|wave| wave.iter().map(|&n| node_millis(n)).fold(0.0, f64::max))
            .sum();
        s.push_str(&format!("    \"{name}\": {{\n"));
        s.push_str(&format!("      \"waves\": {},\n", schedule.waves.len()));
        s.push_str(&format!(
            "      \"max_wave_width\": {},\n",
            schedule.max_wave_width()
        ));
        s.push_str(&format!(
            "      \"interference_edges\": {},\n",
            schedule.interference.len()
        ));
        s.push_str(&format!(
            "      \"serial_makespan_ms\": {:.9},\n",
            serial.predicted_millis()
        ));
        s.push_str(&format!("      \"parallel_makespan_ms\": {makespan:.9},\n"));
        s.push_str(&format!(
            "      \"makespan_speedup\": {:.4},\n",
            serial.predicted_millis() / makespan
        ));
        s.push_str(&format!(
            "      \"serial_arena_bytes\": {},\n",
            serial.activation_high_water_bytes()
        ));
        s.push_str(&format!(
            "      \"parallel_arena_bytes\": {},\n",
            parallel.activation_high_water_bytes()
        ));
        s.push_str(&format!(
            "      \"certificate\": \"{:#018x}\"\n",
            schedule.certificate
        ));
        s.push_str(if i + 1 == par_blocks.len() { "    }\n" } else { "    },\n" });
    }
    s.push_str("  }\n");
    s.push_str("}\n");

    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_graph.json");
    std::fs::write(&path, s)?;
    Ok(path)
}

/// Writes `BENCH_trace.json` under `dir`: the machine-readable summary of a
/// traced steady-state demo-network run (per-span-name aggregation with pipe
/// attribution, counter series, and the GPU stage estimates) — the
/// perf-trajectory record for the observability layer.
pub fn save_trace_json(dir: &Path) -> std::io::Result<PathBuf> {
    use lowbit::prelude::*;
    use lowbit::Network;
    use lowbit_trace::summary::summary_json;

    let net = Network::demo(BitWidth::W4, 12, 9);
    let engine = ArmEngine::cortex_a53().with_threads(2);
    let dims = (1usize, 3usize, 12usize, 12usize);
    let len = dims.0 * dims.1 * dims.2 * dims.3;
    let input = Tensor::from_vec(
        dims,
        Layout::Nchw,
        (0..len).map(|i| (i % 17) as f32 / 8.5 - 1.0).collect(),
    );
    // Warm-up pass: packs weights and grows the arena, so the traced run
    // below records the allocation-free steady state.
    let _ = net.run_arm(&engine, &input);

    let (tracer, sink) = Tracer::recording();
    let (_, reports, total_ms) = net.run_arm_traced(&engine, &input, &tracer);
    let gpu = GpuEngine::rtx2080ti();
    let gpu_layers = net.estimate_gpu_layers_traced(&gpu, Tuning::Default, &tracer);

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"trace_summary\",\n");
    s.push_str("  \"network\": \"demo_w4\",\n");
    s.push_str(&format!("  \"layers\": {},\n", reports.len()));
    s.push_str(&format!("  \"total_modeled_ms\": {total_ms:.9},\n"));
    s.push_str(&format!(
        "  \"steady_prepack_misses\": {},\n",
        reports.iter().map(|r| r.prepack_misses).sum::<u64>()
    ));
    s.push_str(&format!(
        "  \"steady_workspace_growth_bytes\": {},\n",
        reports.iter().map(|r| r.workspace_growth_bytes).sum::<usize>()
    ));
    if let Ok(layers) = gpu_layers {
        let items: Vec<String> = layers
            .iter()
            .map(|l| {
                let t = l.gpu_time.expect("GPU estimates carry a stage breakdown");
                format!(
                    "    {{\"name\":\"{}\",\"total_us\":{:.6},\"mma_us\":{:.6},\"smem_us\":{:.6},\"dram_us\":{:.6}}}",
                    l.name,
                    l.micros(),
                    t.mma_s * 1e6,
                    t.smem_s * 1e6,
                    t.dram_s * 1e6
                )
            })
            .collect();
        s.push_str(&format!("  \"gpu_layers\": [\n{}\n  ],\n", items.join(",\n")));
    }
    s.push_str(&format!("  \"trace\": {}\n", summary_json(&sink.capture())));
    s.push_str("}\n");

    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_trace.json");
    std::fs::write(&path, s)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_every_figure_as_parseable_csv() {
        let dir = std::env::temp_dir().join("lowbit_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let paths = save_all(&dir).unwrap();
        assert_eq!(paths.len(), 12, "one CSV per figure incl. both batches");
        for p in paths {
            let text = std::fs::read_to_string(&p).unwrap();
            let mut lines = text.lines();
            let header_cols = lines.next().unwrap().split(',').count();
            let rows: Vec<&str> = lines.collect();
            assert!(!rows.is_empty(), "{p:?} has no data rows");
            for row in rows {
                assert_eq!(row.split(',').count(), header_cols, "{p:?} ragged");
            }
        }
    }

    #[test]
    fn parallel_json_has_the_tracked_fields() {
        let dir = std::env::temp_dir().join("lowbit_parallel_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = save_parallel_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_parallel.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"experiment\"",
            "\"threads\"",
            "\"amdahl_speedup\"",
            "\"avg_speedup\"",
            "\"wall_ms\"",
            "\"steady_alloc_events\": 0",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // 19 ResNet-50 layers modeled at 3 thread counts.
        assert_eq!(text.matches("\"conv").count(), 19, "modeled layer list");
    }

    #[test]
    fn graph_json_proves_the_dense_block_memory_target() {
        let dir = std::env::temp_dir().join("lowbit_graph_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = save_graph_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_graph.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = lowbit_trace::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("experiment").unwrap().as_str(),
            Some("graph_liveness_memory_planning")
        );
        for block in ["resnet50_residual_block", "densenet121_dense_block"] {
            let b = doc.get(block).unwrap();
            let shared = b.get("activation_high_water_bytes").unwrap().as_num().unwrap();
            let unshared = b.get("sum_of_value_bytes").unwrap().as_num().unwrap();
            assert!(shared > 0.0 && shared <= unshared, "{block}");
            let factor = b.get("reduction_factor").unwrap().as_num().unwrap();
            assert!((factor - unshared / shared).abs() < 1e-3, "{block}");
        }
        // The tentpole target: liveness sharing halves (or better) the
        // dense block's activation footprint vs one-buffer-per-value.
        let factor = doc
            .get("densenet121_dense_block")
            .unwrap()
            .get("reduction_factor")
            .unwrap()
            .as_num()
            .unwrap();
        assert!(factor >= 2.0, "dense-block reduction {factor} below the 2x target");

        // Node-parallel section: every block certifies; makespans and
        // arenas obey the scheduler's invariants (parallel makespan never
        // exceeds serial, the wide projection block strictly beats it and
        // pays for the overlap with a larger arena).
        let np = doc.get("node_parallel").unwrap();
        for block in [
            "resnet50_residual_block",
            "densenet121_dense_block",
            "resnet50_projection_block",
        ] {
            let b = np.get(block).unwrap();
            let serial_ms = b.get("serial_makespan_ms").unwrap().as_num().unwrap();
            let par_ms = b.get("parallel_makespan_ms").unwrap().as_num().unwrap();
            assert!(par_ms > 0.0 && par_ms <= serial_ms + 1e-12, "{block}");
            let serial_arena = b.get("serial_arena_bytes").unwrap().as_num().unwrap();
            let par_arena = b.get("parallel_arena_bytes").unwrap().as_num().unwrap();
            assert!(par_arena >= serial_arena, "{block}: parallel arena shrank?");
        }
        let wide = np.get("resnet50_projection_block").unwrap();
        assert!(wide.get("max_wave_width").unwrap().as_num().unwrap() >= 2.0);
        assert!(wide.get("makespan_speedup").unwrap().as_num().unwrap() > 1.0);
    }

    #[test]
    fn trace_json_is_valid_and_steady_state() {
        let dir = std::env::temp_dir().join("lowbit_trace_json_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = save_trace_json(&dir).unwrap();
        assert!(path.ends_with("BENCH_trace.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = lowbit_trace::json::parse(&text).unwrap();
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("trace_summary"));
        // The traced run happens after warm-up: no packing, no arena growth.
        assert_eq!(doc.get("steady_prepack_misses").unwrap().as_num(), Some(0.0));
        assert_eq!(doc.get("steady_workspace_growth_bytes").unwrap().as_num(), Some(0.0));
        assert!(doc.get("total_modeled_ms").unwrap().as_num().unwrap() > 0.0);
        assert_eq!(doc.get("gpu_layers").unwrap().as_arr().unwrap().len(), 3);
        let trace = doc.get("trace").unwrap();
        assert!(trace.get("spans").unwrap().as_num().unwrap() > 0.0);
        let names: Vec<&str> = trace
            .get("by_name")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("name").unwrap().as_str().unwrap())
            .collect();
        for expected in ["layer", "conv", "gemm", "requantize", "mma"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }
}
