//! The register-tiled micro-kernels (paper Alg. 1 and the 2–3-bit variant).
//!
//! Each micro-kernel exists in **three consistent forms**:
//!
//! 1. [`run_tile`] — a fast functional implementation with the exact lane
//!    semantics of the NEON instructions (wrapping i8/i16 accumulation),
//!    used at full layer scale;
//! 2. [`tile_counts`] — analytic instruction counts for the same shape, fed to
//!    the cost model;
//! 3. [`emit_tile`] — the actual instruction stream for the `neon-sim`
//!    interpreter, used by tests to prove (1) and (2) faithful: the
//!    interpreted output must equal the functional output, and the
//!    interpreter's instruction counters must equal the analytic counts.
//!
//! Register allocation follows the paper:
//!
//! * **SMLAL scheme** (4–8 bit, 16x4 tile): `v0/v1` read A, `v2..v9` read B,
//!   `v10..v17` hold i16 partials, `v18..v31` plus `x0..x3` hold the i32
//!   result (two result registers spill to general registers — the `MOV`
//!   dance of Alg. 1 lines 9–13).
//! * **MLA scheme** (2–3 bit, 16x4 tile): `v0..v3` read A, `v4..v7` read B,
//!   `v8..v11` hold i8 partials, `v12..v19` i16 partials, `v20..v31` plus
//!   `x0..x7` the i32 result.
//! * **ncnn-like baseline** (8x4 tile): pre-widened i16 operands,
//!   `SMLAL vd.4s` accumulates directly into i32 in `v10..v17` — no drains,
//!   no spills.

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use crate::pack::{PackedA, PackedA16, PackedB, PackedB16, NA, NB, NCNN_NA};
use crate::scheme::{Scheme, SchemeKind};
use neon_sim::inst::{Half, Inst};
use neon_sim::InstCounts;

/// Elements in the 16x4 i32 result tile.
pub const TILE_LEN: usize = NA * NB;
/// Elements in the ncnn-like 8x4 result tile.
pub const NCNN_TILE_LEN: usize = NCNN_NA * NB;

/// K-loop operand source for one 16x4 micro-tile.
///
/// The micro-kernels only ever read one 16-row A column and one 4-col B row
/// per K step; abstracting those two reads lets the same drain-exact kernel
/// run against whole packed matrices ([`PackedPairOps`]) or against the
/// per-thread cache-blocked B panels of the parallel driver.
pub trait TileOperands {
    /// Number of K steps this operand view covers.
    fn k_len(&self) -> usize;
    /// The packed A rows for K step `step` (`NA` bytes, or `NA8` for the
    /// narrow tile).
    fn a_slice(&self, step: usize) -> &[i8];
    /// The 4 packed B columns for K step `step` (`NB` bytes).
    fn b_slice(&self, step: usize) -> &[i8];
}

/// [`TileOperands`] over a full packed A/B pair, as used by the serial GEMM.
pub struct PackedPairOps<'a> {
    pub pa: &'a PackedA,
    pub pb: &'a PackedB,
    pub ti: usize,
    pub tj: usize,
}

impl TileOperands for PackedPairOps<'_> {
    fn k_len(&self) -> usize {
        self.pa.k
    }
    fn a_slice(&self, step: usize) -> &[i8] {
        self.pa.slice(self.ti, step)
    }
    fn b_slice(&self, step: usize) -> &[i8] {
        self.pb.slice(self.tj, step)
    }
}

/// Runs one 16x4 micro-tile functionally.
///
/// Output layout is column-major quarters, matching the register store order
/// of the emitter: `out[col * 16 + row]`.
pub fn run_tile(scheme: &Scheme, pa: &PackedA, pb: &PackedB, ti: usize, tj: usize) -> Vec<i32> {
    assert_eq!(pa.k, pb.k, "packed operands disagree on K");
    let mut acc32 = [0i32; TILE_LEN];
    accumulate_tile(scheme, &PackedPairOps { pa, pb, ti, tj }, &mut acc32);
    acc32.to_vec()
}

/// Runs one 16x4 micro-tile over `ops`, adding into `acc32`.
///
/// Drain cadence is relative to the start of this call, so splitting K into
/// blocks and accumulating block partials is bit-exact versus one full-K run:
/// within the published ratios every i8/i16 partial is exact, hence every
/// i32 block partial is the exact sub-sum and i32 addition is associative.
pub fn accumulate_tile<O: TileOperands>(scheme: &Scheme, ops: &O, acc32: &mut [i32; TILE_LEN]) {
    match scheme.kind() {
        SchemeKind::Smlal8 => accumulate_smlal(scheme, ops, acc32),
        SchemeKind::Mla => accumulate_mla(scheme, ops, acc32),
        SchemeKind::Ncnn16 => panic!("Ncnn16 uses run_tile_ncnn on widened operands"),
    }
}

fn accumulate_smlal<O: TileOperands>(scheme: &Scheme, ops: &O, acc32: &mut [i32; TILE_LEN]) {
    let k = ops.k_len();
    let ratio = scheme.ratio();
    let mut acc16 = [0i16; TILE_LEN];
    let mut since_flush = 0usize;
    for kk in 0..k {
        let a = ops.a_slice(kk);
        let b = ops.b_slice(kk);
        for c in 0..NB {
            let bv = b[c] as i16;
            let col = &mut acc16[c * NA..(c + 1) * NA];
            for (acc, &av) in col.iter_mut().zip(a) {
                // SMLAL: widening multiply (always fits i16), wrapping add.
                *acc = acc.wrapping_add(av as i16 * bv);
            }
        }
        since_flush += 1;
        if since_flush == ratio {
            drain16(acc32, &mut acc16);
            since_flush = 0;
        }
    }
    if since_flush > 0 {
        drain16(acc32, &mut acc16);
    }
}

fn accumulate_mla<O: TileOperands>(scheme: &Scheme, ops: &O, acc32: &mut [i32; TILE_LEN]) {
    let k = ops.k_len();
    let (r1, r2) = (scheme.ratio(), scheme.ratio2());
    let mut acc16 = [0i16; TILE_LEN];
    let mut acc8 = [0i8; TILE_LEN];
    let mut since8 = 0usize;
    let mut drains8 = 0usize;
    for kk in 0..k {
        let a = ops.a_slice(kk);
        let b = ops.b_slice(kk);
        for c in 0..NB {
            let bv = b[c];
            let col = &mut acc8[c * NA..(c + 1) * NA];
            for (acc, &av) in col.iter_mut().zip(a) {
                // MLA: non-widening i8 multiply-accumulate, both wrapping.
                *acc = acc.wrapping_add(av.wrapping_mul(bv));
            }
        }
        since8 += 1;
        if since8 == r1 {
            drain8(&mut acc16, &mut acc8);
            since8 = 0;
            drains8 += 1;
            if drains8 == r2 {
                drain16(acc32, &mut acc16);
                drains8 = 0;
            }
        }
    }
    if since8 > 0 {
        drain8(&mut acc16, &mut acc8);
        drains8 += 1;
    }
    if drains8 > 0 {
        drain16(acc32, &mut acc16);
    }
}

/// SADDW level: i16 partials into i32, then clear (MOVI).
fn drain16(acc32: &mut [i32; TILE_LEN], acc16: &mut [i16; TILE_LEN]) {
    for (w, n) in acc32.iter_mut().zip(acc16.iter_mut()) {
        *w = w.wrapping_add(*n as i32);
        *n = 0;
    }
}

/// SADDW level: i8 partials into i16, then clear.
fn drain8(acc16: &mut [i16; TILE_LEN], acc8: &mut [i8; TILE_LEN]) {
    for (h, b) in acc16.iter_mut().zip(acc8.iter_mut()) {
        *h = h.wrapping_add(*b as i16);
        *b = 0;
    }
}

/// Runs one ncnn-like 8x4 micro-tile on pre-widened operands.
///
/// Output layout: `out[col * 8 + row]`.
pub fn run_tile_ncnn(pa: &PackedA16, pb: &PackedB16, ti: usize, tj: usize) -> Vec<i32> {
    assert_eq!(pa.k, pb.k);
    let k = pa.k;
    let mut acc32 = [0i32; NCNN_TILE_LEN];
    for kk in 0..k {
        let a = pa.slice(ti, kk);
        let b = pb.slice(tj, kk);
        for c in 0..NB {
            let bv = b[c] as i32;
            let col = &mut acc32[c * NCNN_NA..(c + 1) * NCNN_NA];
            for (acc, &av) in col.iter_mut().zip(a) {
                *acc = acc.wrapping_add(av as i32 * bv);
            }
        }
    }
    acc32.to_vec()
}

/// Number of first-level drains a K-loop of length `k` performs.
fn drain_count(k: usize, ratio: usize) -> usize {
    if ratio == usize::MAX {
        0
    } else {
        k.div_ceil(ratio)
    }
}

/// Number of second-level drains for the MLA scheme.
fn drain2_count(k: usize, r1: usize, r2: usize) -> usize {
    drain_count(k, r1).div_ceil(r2).max(1)
}

/// Analytic instruction counts for one 16x4 micro-tile with a K-loop of
/// length `k` (must match [`emit_tile`] exactly; enforced by tests).
pub fn tile_counts(scheme: &Scheme, k: usize) -> InstCounts {
    assert!(k > 0);
    let mut c = InstCounts::default();
    match scheme.kind() {
        SchemeKind::Smlal8 => {
            let nf = drain_count(k, scheme.ratio()) as u64;
            c.loads = 2 * k as u64; // LD1 (A) + LD4R (B) per step
            c.load_bytes = 20 * k as u64; // 16 + 4 bytes
            c.neon_mac = 8 * k as u64; // SMLAL/SMULL(2) x 4 columns
            c.neon_alu = 16 * nf; // SADDW(2): one per i32 result register
            c.neon_mov = 8 * nf + 4 + 19; // drains + store restores + zeroing prologue
            c.stores = 16; // ST1 x 16 result registers
            c.store_bytes = 16 * 16;
        }
        SchemeKind::Mla => {
            let nf1 = drain_count(k, scheme.ratio()) as u64;
            let nf2 = drain2_count(k, scheme.ratio(), scheme.ratio2()) as u64;
            c.loads = 2 * k as u64;
            c.load_bytes = 20 * k as u64;
            c.neon_mac = 4 * k as u64; // MLA/MUL x 4 columns (16 lanes each)
            c.neon_alu = 8 * nf1 + 16 * nf2; // SADDW8/SSHLL per drain1, SADDW16 per drain2
            c.neon_mov = 16 * nf2 + 8 + 21; // drain2 spills + restores + zeroing prologue
            c.stores = 16;
            c.store_bytes = 16 * 16;
        }
        SchemeKind::Ncnn16 => {
            c.loads = 2 * k as u64; // LD1 (8 x i16) + LD4R.8h
            c.load_bytes = 24 * k as u64; // 16 + 8 bytes
            c.neon_mac = 8 * k as u64; // SMLAL(2).4s x 4 columns
            c.neon_mov = 8; // accumulator zeroing prologue
            c.stores = 8;
            c.store_bytes = 8 * 16;
        }
    }
    c
}

/// Emits the instruction stream for one 16x4 micro-tile.
///
/// The packed A tile must be at `addr_a` (`k * 16` bytes), the packed B tile
/// at `addr_b` (`k * 4` bytes), and the 256-byte i32 result tile is stored to
/// `addr_c` in the same `out[col*16+row]` layout as [`run_tile`].
pub fn emit_tile(scheme: &Scheme, k: usize, addr_a: u32, addr_b: u32, addr_c: u32) -> Vec<Inst> {
    match scheme.kind() {
        SchemeKind::Smlal8 => emit_tile_smlal(scheme, k, addr_a, addr_b, addr_c),
        SchemeKind::Mla => emit_tile_mla(scheme, k, addr_a, addr_b, addr_c),
        SchemeKind::Ncnn16 => panic!("Ncnn16 uses emit_tile_ncnn"),
    }
}

fn emit_tile_smlal(
    scheme: &Scheme,
    k: usize,
    addr_a: u32,
    addr_b: u32,
    addr_c: u32,
) -> Vec<Inst> {
    assert!(k > 0);
    let ratio = scheme.ratio();
    let mut prog = Vec::new();
    // acc32 register for result index `idx = col*4 + quarter`:
    // idx < 14 lives in v18+idx, idx 14/15 are spilled to x0..x3 and
    // temporarily restored into v0/v1 during drains.
    let acc32_reg = |idx: usize| -> u8 {
        if idx < 14 {
            18 + idx as u8
        } else {
            (idx - 14) as u8 // v0 or v1
        }
    };
    let drain = |prog: &mut Vec<Inst>| {
        // Restore the two spilled result registers into v0/v1.
        for (i, (vd, lane)) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
            prog.push(Inst::MovXToD { vd: *vd, lane: *lane, xn: i as u8 });
        }
        for col in 0..NB {
            let lo = 10 + 2 * col as u8; // i16 rows 0..8
            let hi = 11 + 2 * col as u8; // i16 rows 8..16
            for quarter in 0..4 {
                let vd = acc32_reg(col * 4 + quarter);
                let (vm, half) = match quarter {
                    0 => (lo, Half::Low),
                    1 => (lo, Half::High),
                    2 => (hi, Half::Low),
                    _ => (hi, Half::High),
                };
                prog.push(Inst::Saddw16 { vd, vn: vd, vm, half });
            }
        }
        // Spill back; the i16 partials are *not* cleared — the first product
        // of the next interval uses SMULL, which overwrites them.
        for (i, (vn, lane)) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
            prog.push(Inst::MovDToX { xd: i as u8, vn: *vn, lane: *lane });
        }
    };

    // Prologue: zero the i32 accumulators and the spill registers (the
    // i8/i16 partials need no clearing — the first MAC of each interval
    // overwrites them via SMULL).
    prog.push(Inst::MoviZero { vd: 0 });
    for x in 0..4u8 {
        prog.push(Inst::MovDToX { xd: x, vn: 0, lane: 0 });
    }
    for vd in 18..32u8 {
        prog.push(Inst::MoviZero { vd });
    }

    let mut since_flush = 0usize;
    let mut fresh = true; // partials undefined: first MAC must overwrite
    for kk in 0..k {
        // Alternate the A/B register groups per the paper's prefetch
        // interleave (v0 with v2..v5, v1 with v6..v9).
        let (va, vb0) = if kk % 2 == 0 { (0u8, 2u8) } else { (1u8, 6u8) };
        prog.push(Inst::Ld1 { vt: va, addr: addr_a + (kk * NA) as u32 });
        prog.push(Inst::Ld4r { vt: vb0, addr: addr_b + (kk * NB) as u32 });
        for col in 0..NB {
            let lo = 10 + 2 * col as u8;
            let hi = 11 + 2 * col as u8;
            let vm = vb0 + col as u8;
            if fresh {
                prog.push(Inst::Smull8 { vd: lo, vn: va, vm, half: Half::Low });
                prog.push(Inst::Smull8 { vd: hi, vn: va, vm, half: Half::High });
            } else {
                prog.push(Inst::Smlal8 { vd: lo, vn: va, vm, half: Half::Low });
                prog.push(Inst::Smlal8 { vd: hi, vn: va, vm, half: Half::High });
            }
        }
        fresh = false;
        since_flush += 1;
        if since_flush == ratio {
            drain(&mut prog);
            since_flush = 0;
            fresh = true;
        }
    }
    if since_flush > 0 {
        drain(&mut prog);
    }
    // Store: restore spilled registers, then 16 consecutive ST1.
    for (i, (vd, lane)) in [(0u8, 0u8), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
        prog.push(Inst::MovXToD { vd: *vd, lane: *lane, xn: i as u8 });
    }
    for idx in 0..16 {
        prog.push(Inst::St1 { vt: acc32_reg(idx), addr: addr_c + (idx * 16) as u32 });
    }
    prog
}

fn emit_tile_mla(scheme: &Scheme, k: usize, addr_a: u32, addr_b: u32, addr_c: u32) -> Vec<Inst> {
    assert!(k > 0);
    let (r1, r2) = (scheme.ratio(), scheme.ratio2());
    let mut prog = Vec::new();
    // acc32 index `idx = col*4 + quarter`: idx < 12 in v20+idx, idx 12..16
    // spilled across x0..x7, restored into scratch v0..v3 during drains.
    let acc32_reg = |idx: usize| -> u8 {
        if idx < 12 {
            20 + idx as u8
        } else {
            (idx - 12) as u8 // v0..v3
        }
    };
    let restore_spills = |prog: &mut Vec<Inst>| {
        for s in 0..4u8 {
            prog.push(Inst::MovXToD { vd: s, lane: 0, xn: 2 * s });
            prog.push(Inst::MovXToD { vd: s, lane: 1, xn: 2 * s + 1 });
        }
    };
    // First-level drain: i8 partials into i16. When the i16 partials are
    // fresh (first drain after a level-2 drain) SSHLL overwrites them instead
    // of SADDW accumulating — no explicit clears anywhere.
    let drain1 = |prog: &mut Vec<Inst>, fresh16: bool| {
        for col in 0..NB {
            let acc8 = 8 + col as u8;
            let lo16 = 12 + 2 * col as u8;
            let hi16 = 13 + 2 * col as u8;
            if fresh16 {
                prog.push(Inst::Sshll8 { vd: lo16, vn: acc8, half: Half::Low });
                prog.push(Inst::Sshll8 { vd: hi16, vn: acc8, half: Half::High });
            } else {
                prog.push(Inst::Saddw8 { vd: lo16, vn: lo16, vm: acc8, half: Half::Low });
                prog.push(Inst::Saddw8 { vd: hi16, vn: hi16, vm: acc8, half: Half::High });
            }
        }
    };
    let drain2 = |prog: &mut Vec<Inst>| {
        restore_spills(prog);
        for col in 0..NB {
            let lo16 = 12 + 2 * col as u8;
            let hi16 = 13 + 2 * col as u8;
            for quarter in 0..4 {
                let vd = acc32_reg(col * 4 + quarter);
                let (vm, half) = match quarter {
                    0 => (lo16, Half::Low),
                    1 => (lo16, Half::High),
                    2 => (hi16, Half::Low),
                    _ => (hi16, Half::High),
                };
                prog.push(Inst::Saddw16 { vd, vn: vd, vm, half });
            }
        }
        for s in 0..4u8 {
            prog.push(Inst::MovDToX { xd: 2 * s, vn: s, lane: 0 });
            prog.push(Inst::MovDToX { xd: 2 * s + 1, vn: s, lane: 1 });
        }
    };

    // Prologue: zero the i32 accumulators and the eight spill registers.
    prog.push(Inst::MoviZero { vd: 0 });
    for x in 0..8u8 {
        prog.push(Inst::MovDToX { xd: x, vn: 0, lane: 0 });
    }
    for vd in 20..32u8 {
        prog.push(Inst::MoviZero { vd });
    }

    let mut since8 = 0usize;
    let mut drains8 = 0usize;
    let mut fresh8 = true;
    let mut fresh16 = true;
    for kk in 0..k {
        let va = (kk % 4) as u8; // v0..v3 rotate over the 4-way unroll
        prog.push(Inst::Ld1 { vt: va, addr: addr_a + (kk * NA) as u32 });
        prog.push(Inst::Ld4r { vt: 4, addr: addr_b + (kk * NB) as u32 });
        for col in 0..NB {
            let (vd, vm) = (8 + col as u8, 4 + col as u8);
            if fresh8 {
                prog.push(Inst::Mul8 { vd, vn: va, vm });
            } else {
                prog.push(Inst::Mla8 { vd, vn: va, vm });
            }
        }
        fresh8 = false;
        since8 += 1;
        if since8 == r1 {
            drain1(&mut prog, fresh16);
            fresh16 = false;
            since8 = 0;
            fresh8 = true;
            drains8 += 1;
            if drains8 == r2 {
                drain2(&mut prog);
                drains8 = 0;
                fresh16 = true;
            }
        }
    }
    if since8 > 0 {
        drain1(&mut prog, fresh16);
        drains8 += 1;
    }
    if drains8 > 0 {
        drain2(&mut prog);
    }
    restore_spills(&mut prog);
    for idx in 0..16 {
        prog.push(Inst::St1 { vt: acc32_reg(idx), addr: addr_c + (idx * 16) as u32 });
    }
    prog
}

/// Emits the ncnn-like 8x4 micro-tile on pre-widened i16 operands.
///
/// The packed A tile (i16) must be at `addr_a` (`k * 16` bytes), B (i16) at
/// `addr_b` (`k * 8` bytes); the 128-byte result is stored to `addr_c` in the
/// `out[col*8+row]` layout of [`run_tile_ncnn`].
pub fn emit_tile_ncnn(k: usize, addr_a: u32, addr_b: u32, addr_c: u32) -> Vec<Inst> {
    assert!(k > 0);
    let mut prog = Vec::new();
    for vd in 10..18u8 {
        prog.push(Inst::MoviZero { vd });
    }
    for kk in 0..k {
        prog.push(Inst::Ld1 { vt: 0, addr: addr_a + (kk * 16) as u32 });
        prog.push(Inst::Ld4rH { vt: 2, addr: addr_b + (kk * 8) as u32 });
        for col in 0..NB {
            let lo = 10 + 2 * col as u8; // rows 0..4
            let hi = 11 + 2 * col as u8; // rows 4..8
            let vm = 2 + col as u8;
            prog.push(Inst::Smlal16 { vd: lo, vn: 0, vm, half: Half::Low });
            prog.push(Inst::Smlal16 { vd: hi, vn: 0, vm, half: Half::High });
        }
    }
    for idx in 0..8 {
        prog.push(Inst::St1 { vt: 10 + idx as u8, addr: addr_c + (idx * 16) as u32 });
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_a, pack_a16, pack_b, pack_b16};
    use lowbit_tensor::BitWidth;
    use neon_sim::{CortexA53, Machine};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_operands(
        m: usize,
        k: usize,
        n: usize,
        bits: BitWidth,
        seed: u64,
    ) -> (Vec<i8>, Vec<i8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lo = bits.qmin() as i32;
        let hi = bits.qmax() as i32;
        let a = (0..m * k).map(|_| rng.gen_range(lo..=hi) as i8).collect();
        let b = (0..k * n).map(|_| rng.gen_range(lo..=hi) as i8).collect();
        (a, b)
    }

    #[allow(clippy::too_many_arguments)]
    fn reference_tile(
        a: &[i8],
        b: &[i8],
        m: usize,
        k: usize,
        n: usize,
        ti: usize,
        tj: usize,
        rows: usize,
    ) -> Vec<i32> {
        // Plain i32 dot products over the logical (padded-with-zero) matrices.
        let mut out = vec![0i32; rows * NB];
        for c in 0..NB {
            for r in 0..rows {
                let row = ti * rows + r;
                let col = tj * NB + c;
                let mut acc = 0i32;
                for kk in 0..k {
                    let av = if row < m { a[row * k + kk] as i32 } else { 0 };
                    let bv = if col < n { b[kk * n + col] as i32 } else { 0 };
                    acc += av * bv;
                }
                out[c * rows + r] = acc;
            }
        }
        out
    }

    #[test]
    fn functional_tile_matches_reference_all_bit_widths() {
        for bits in BitWidth::ALL {
            let scheme = Scheme::for_bits(bits);
            let (m, k, n) = (21, 37, 9);
            let (a, b) = random_operands(m, k, n, bits, bits.bits() as u64);
            let pa = pack_a(&a, m, k);
            let pb = pack_b(&b, k, n);
            for ti in 0..pa.tiles() {
                for tj in 0..pb.tiles() {
                    let got = run_tile(&scheme, &pa, &pb, ti, tj);
                    let want = reference_tile(&a, &b, m, k, n, ti, tj, NA);
                    assert_eq!(got, want, "{bits} tile ({ti},{tj})");
                }
            }
        }
    }

    #[test]
    fn functional_tile_exercises_multiple_drains() {
        // K big enough that 8-bit (ratio 2) and 2-bit (ratio 31) both drain
        // many times, and 2-bit crosses a second-level drain boundary.
        for bits in [BitWidth::W2, BitWidth::W8] {
            let scheme = Scheme::for_bits(bits);
            let (m, k, n) = (16, 500, 4);
            let (a, b) = random_operands(m, k, n, bits, 99);
            let pa = pack_a(&a, m, k);
            let pb = pack_b(&b, k, n);
            let got = run_tile(&scheme, &pa, &pb, 0, 0);
            let want = reference_tile(&a, &b, m, k, n, 0, 0, NA);
            assert_eq!(got, want, "{bits}");
        }
    }

    #[test]
    fn ncnn_tile_matches_reference() {
        let (m, k, n) = (11, 29, 7);
        let (a, b) = random_operands(m, k, n, BitWidth::W8, 5);
        let pa = pack_a16(&a, m, k);
        let pb = pack_b16(&b, k, n);
        for ti in 0..pa.tiles() {
            for tj in 0..pb.tiles() {
                let got = run_tile_ncnn(&pa, &pb, ti, tj);
                let want = reference_tile(&a, &b, m, k, n, ti, tj, NCNN_NA);
                assert_eq!(got, want, "tile ({ti},{tj})");
            }
        }
    }

    /// Loads a packed tile into simulator memory, runs the emitted program
    /// and returns (result, interpreter counts).
    fn interpret_tile(
        scheme: &Scheme,
        pa: &PackedA,
        pb: &PackedB,
        ti: usize,
        tj: usize,
    ) -> (Vec<i32>, InstCounts) {
        let k = pa.k;
        let addr_a = 0u32;
        let addr_b = (k * NA) as u32;
        let addr_c = (k * NA + k * NB).next_multiple_of(16) as u32;
        let mem_len = addr_c as usize + TILE_LEN * 4 + 64;
        let mut machine = Machine::new(mem_len, CortexA53::cost_model());
        let a_tile = &pa.data[ti * k * NA..(ti + 1) * k * NA];
        let b_tile = &pb.data[tj * k * NB..(tj + 1) * k * NB];
        machine.write_mem_i8(addr_a as usize, a_tile);
        machine.write_mem_i8(addr_b as usize, b_tile);
        let prog = emit_tile(scheme, k, addr_a, addr_b, addr_c);
        machine.run(&prog);
        (
            machine.read_mem_i32(addr_c as usize, TILE_LEN),
            machine.stats().counts,
        )
    }

    #[test]
    fn emitted_kernel_matches_functional_and_counts() {
        for bits in BitWidth::ALL {
            let scheme = Scheme::for_bits(bits);
            // K chosen to hit drains mid-loop *and* a remainder drain.
            let k = match bits.bits() {
                2 => 70,  // two full level-1 drains + remainder
                3 => 23,  // three full drains + remainder
                _ => (scheme.ratio().min(64) * 2 + 1).min(200),
            };
            let (m, n) = (16, 4);
            let (a, b) = random_operands(m, k, n, bits, 1000 + bits.bits() as u64);
            let pa = pack_a(&a, m, k);
            let pb = pack_b(&b, k, n);
            let functional = run_tile(&scheme, &pa, &pb, 0, 0);
            let (interpreted, counts) = interpret_tile(&scheme, &pa, &pb, 0, 0);
            assert_eq!(interpreted, functional, "{bits}: interpreter vs functional");
            let analytic = tile_counts(&scheme, k);
            assert_eq!(counts, analytic, "{bits}: interpreter vs analytic counts");
        }
    }

    #[test]
    fn emitted_mla_kernel_crosses_second_level_drain() {
        // 3-bit: r1 = 7, r2 = 292 would need K ~ 2044 to cross naturally;
        // shrink r2 artificially via a custom product bound to prove the
        // drain2 plumbing: bound 16 with ratio2 forced small is not
        // constructible through the public API, so use 2-bit with K > 31*r2.
        let scheme = Scheme::for_bits(BitWidth::W2);
        assert!(scheme.ratio2() >= 2);
        let k = scheme.ratio() * scheme.ratio2() + 5; // crosses one drain2 boundary
        let (m, n) = (16, 4);
        let (a, b) = random_operands(m, k, n, BitWidth::W2, 77);
        let pa = pack_a(&a, m, k);
        let pb = pack_b(&b, k, n);
        let functional = run_tile(&scheme, &pa, &pb, 0, 0);
        let want = reference_tile(&a, &b, m, k, n, 0, 0, NA);
        assert_eq!(functional, want);
        let (interpreted, counts) = interpret_tile(&scheme, &pa, &pb, 0, 0);
        assert_eq!(interpreted, functional);
        assert_eq!(counts, tile_counts(&scheme, k));
    }

    #[test]
    fn emitted_ncnn_kernel_matches_functional_and_counts() {
        let (m, k, n) = (8, 33, 4);
        let (a, b) = random_operands(m, k, n, BitWidth::W8, 13);
        let pa = pack_a16(&a, m, k);
        let pb = pack_b16(&b, k, n);
        let functional = run_tile_ncnn(&pa, &pb, 0, 0);

        let addr_a = 0u32;
        let addr_b = (k * 16) as u32;
        let addr_c = (k * 16 + k * 8).next_multiple_of(16) as u32;
        let mut machine = Machine::new(addr_c as usize + 256, CortexA53::cost_model());
        let a_bytes: Vec<u8> = pa.data[..k * NCNN_NA]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let b_bytes: Vec<u8> = pb.data[..k * NB]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        machine.write_mem(addr_a as usize, &a_bytes);
        machine.write_mem(addr_b as usize, &b_bytes);
        machine.run(&emit_tile_ncnn(k, addr_a, addr_b, addr_c));
        assert_eq!(
            machine.read_mem_i32(addr_c as usize, NCNN_TILE_LEN),
            functional
        );
        assert_eq!(
            machine.stats().counts,
            tile_counts(&Scheme::ncnn16(), k)
        );
    }

    #[test]
    fn ratio_violation_wraps_the_intermediate() {
        // Failure injection: force an over-long drain interval and check the
        // i16 partials actually wrap (i.e. the published ratio is load-bearing).
        let bits = BitWidth::W8;
        let bad = Scheme::for_product_bound(SchemeKind::Smlal8, 1).with_unroll(2); // ratio 32767: never drains in-range
        let k = 8;
        let (m, n) = (16, 4);
        // All-max operands: 127*127*8 = 129032 >> i16::MAX.
        let a = vec![bits.qmax(); m * k];
        let b = vec![bits.qmax(); k * n];
        let pa = pack_a(&a, m, k);
        let pb = pack_b(&b, k, n);
        let wrapped = run_tile(&bad, &pa, &pb, 0, 0);
        let correct = run_tile(&Scheme::for_bits(bits), &pa, &pb, 0, 0);
        assert_ne!(wrapped, correct, "overflow must corrupt the result");
        assert_eq!(correct[0], 127 * 127 * k as i32);
    }

    #[test]
    fn emitted_kernel_sustains_high_ipc_on_the_pipeline_model() {
        // Alg. 1's prefetch interleave (alternating v0/v1 and v2-5/v6-9
        // register groups) must hide the load-use latency: the emitted
        // program should run near one instruction per cycle on the
        // latency-aware in-order model.
        use neon_sim::{pipeline_schedule, PipelineModel};
        let scheme = Scheme::for_bits(BitWidth::W4);
        let prog = emit_tile(&scheme, 64, 0, 2048, 4096);
        let report = pipeline_schedule(&prog, &PipelineModel::cortex_a53());
        assert!(
            report.ipc() > 0.8,
            "emitted 4-bit kernel IPC {:.2} ({} stalls over {} cycles)",
            report.ipc(),
            report.stall_cycles,
            report.cycles
        );
        // Loads should mostly pair with MACs.
        assert!(report.dual_issue_cycles as f64 > 0.05 * report.cycles as f64);
    }

    #[test]
    fn tile_counts_scale_with_drains() {
        let s4 = Scheme::for_bits(BitWidth::W4);
        let s8 = Scheme::for_bits(BitWidth::W8);
        let k = 512;
        let c4 = tile_counts(&s4, k);
        let c8 = tile_counts(&s8, k);
        // Same MAC count, but 8-bit drains 256x as often as 4-bit (ratio 2 vs
        // 511) and therefore spends far more ALU instructions.
        assert_eq!(c4.neon_mac, c8.neon_mac);
        assert!(c8.neon_alu > 100 * c4.neon_alu);
    }
}
