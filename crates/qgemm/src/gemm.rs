//! The full tiled GEMM driver (paper Fig. 1(b) + Fig. 2 pipeline).
//!
//! Pipeline stages, mirrored in the analytic [`KernelSchedule`]:
//! 1. pack A (weights) — amortizable across calls, but charged here as the
//!    paper does for its per-layer measurements,
//! 2. pack B (the im2col matrix),
//! 3. the register-tiled inner loop over all `(M/16) x (N/4)` tiles.
//!
//! The functional path and the analytic schedule are produced by the same
//! code so they can never drift apart.

use crate::micro::{run_tile, run_tile_ncnn, tile_counts};
use crate::pack::{pack_a, pack_a16, pack_b, pack_b16, PackedA, PackedB, NA, NB, NCNN_NA};
use crate::scheme::{Scheme, SchemeKind};
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// Result of a GEMM call: the `M x N` i32 matrix plus the analytic schedule.
#[derive(Clone, Debug)]
pub struct GemmOutput {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub n: usize,
    /// Row-major `m x n` accumulator matrix.
    pub c: Vec<i32>,
    /// Analytic cost schedule for the whole call.
    pub schedule: KernelSchedule,
}

/// Computes `C = A x B` with the re-designed low-bit GEMM.
///
/// `a` is row-major `m x k`, `b` is row-major `k x n`; both must already be
/// within the scheme's value range (checked by debug assertions via the
/// overflow-free drain invariant, and by property tests).
///
/// ```
/// use lowbit_qgemm::{gemm, Scheme};
/// use lowbit_tensor::BitWidth;
///
/// // [1 2] x [5 6]   [19 22]
/// // [3 4]   [7 8] = [43 50]
/// let out = gemm(&Scheme::for_bits(BitWidth::W4), &[1, 2, 3, 4], &[5, 6, 7, 8], 2, 2, 2);
/// assert_eq!(out.c, vec![19, 22, 43, 50]);
/// ```
pub fn gemm(scheme: &Scheme, a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> GemmOutput {
    assert!(
        scheme.kind() != SchemeKind::Ncnn16,
        "use gemm_ncnn for the baseline scheme"
    );
    let pa = pack_a(a, m, k);
    let pb = pack_b(b, k, n);
    let mut out = gemm_prepacked(scheme, &pa, &pb);
    out.schedule = schedule_gemm(scheme, m, k, n); // include both packing stages
    out
}

/// GEMM over already-packed operands (skips the packing stages' cost — used
/// when weights are packed once at model-load time).
pub fn gemm_prepacked(scheme: &Scheme, pa: &PackedA, pb: &PackedB) -> GemmOutput {
    let (m, n, k) = (pa.m, pb.n, pa.k);
    let mut c = vec![0i32; m * n];
    for ti in 0..pa.tiles() {
        for tj in 0..pb.tiles() {
            let tile = run_tile(scheme, pa, pb, ti, tj);
            scatter_tile(&mut c, &tile, m, n, ti, tj, NA);
        }
    }
    let mut schedule = schedule_gemm(scheme, m, k, n);
    schedule.stages.retain(|s| s.name == "gemm");
    GemmOutput { m, n, c, schedule }
}

/// Computes `C = A x B` with the ncnn-like 16-bit baseline.
pub fn gemm_ncnn(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> GemmOutput {
    let pa = pack_a16(a, m, k);
    let pb = pack_b16(b, k, n);
    let mut c = vec![0i32; m * n];
    for ti in 0..pa.tiles() {
        for tj in 0..pb.tiles() {
            let tile = run_tile_ncnn(&pa, &pb, ti, tj);
            scatter_tile(&mut c, &tile, m, n, ti, tj, NCNN_NA);
        }
    }
    GemmOutput {
        m,
        n,
        c,
        schedule: schedule_gemm(&Scheme::ncnn16(), m, k, n),
    }
}

/// Scatters a column-major `rows x NB` tile into the row-major result,
/// dropping the zero-padded fringe.
fn scatter_tile(
    c: &mut [i32],
    tile: &[i32],
    m: usize,
    n: usize,
    ti: usize,
    tj: usize,
    rows: usize,
) {
    for col in 0..NB {
        let j = tj * NB + col;
        if j >= n {
            break;
        }
        for r in 0..rows {
            let i = ti * rows + r;
            if i >= m {
                break;
            }
            c[i * n + j] = tile[col * rows + r];
        }
    }
}

/// Analytic schedule for a full GEMM of the given logical dimensions,
/// including both packing stages (paper Fig. 2) and the tiled inner loop.
pub fn schedule_gemm(scheme: &Scheme, m: usize, k: usize, n: usize) -> KernelSchedule {
    let (na, elem) = match scheme.kind() {
        SchemeKind::Ncnn16 => (NCNN_NA, 2u64), // baseline packs widened i16
        _ => (NA, 1u64),
    };
    let m_pad = m.div_ceil(na) * na;
    let n_pad = n.div_ceil(NB) * NB;
    let tiles = (m_pad / na) as u64 * (n_pad / NB) as u64;

    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "pack A",
        (m * k) as u64,
        m_pad as u64 * k as u64 * elem,
    ));
    sched.push(StageCost::bulk_move(
        "pack B",
        (k * n) as u64,
        k as u64 * n_pad as u64 * elem,
    ));
    let mut counts = InstCounts::default();
    counts.add_scaled(&tile_counts(scheme, k), tiles);
    sched.push(StageCost::compute("gemm", counts));
    sched
}

/// Inner-loop utilization summary for the redesign ablation (Eq. 1–4).
///
/// Following the paper's definitions, `CAL` counts multiply-accumulate SIMD
/// instructions (`β2·M·N·K/θ1` in Eq. 2/4) and `LD` counts loads
/// (`β1·M·N·K/θ1` vs `β1·M·N·K/(θ2·θ1)` in Eq. 1/3); drain/reduction
/// instructions are reported separately as `overhead`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LoadArithmeticProfile {
    /// Load instructions in the inner loop (`LD`).
    pub loads: u64,
    /// Multiply-accumulate instructions in the inner loop (`CAL`).
    pub macs: u64,
    /// Drain/reduction/move instructions (the `δ`-like terms).
    pub overhead: u64,
}

impl LoadArithmeticProfile {
    /// Extracts the inner-loop profile from a schedule.
    pub fn of(schedule: &KernelSchedule) -> LoadArithmeticProfile {
        let gemm: InstCounts = schedule
            .stages
            .iter()
            .filter(|s| s.name == "gemm")
            .fold(InstCounts::default(), |mut acc, s| {
                acc.add_scaled(&s.counts, 1);
                acc
            });
        LoadArithmeticProfile {
            loads: gemm.loads,
            macs: gemm.neon_mac,
            overhead: gemm.neon_alu + gemm.neon_mov,
        }
    }

    /// The `CAL / LD` ratio of Sec. 3.2.
    pub fn cal_per_ld(&self) -> f64 {
        self.macs as f64 / self.loads as f64
    }
}

/// Plain i32 reference GEMM used as the correctness oracle throughout the
/// workspace.
pub fn reference_gemm(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv as i32;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::BitWidth;
    use neon_sim::CortexA53;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(len: usize, bits: BitWidth, seed: u64) -> Vec<i8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| rng.gen_range(bits.qmin() as i32..=bits.qmax() as i32) as i8)
            .collect()
    }

    #[test]
    fn gemm_matches_reference_for_all_bit_widths() {
        for bits in BitWidth::ALL {
            let scheme = Scheme::for_bits(bits);
            let (m, k, n) = (33, 45, 13); // awkward, non-multiple dims
            let a = random_mat(m * k, bits, 21);
            let b = random_mat(k * n, bits, 22);
            let out = gemm(&scheme, &a, &b, m, k, n);
            assert_eq!(out.c, reference_gemm(&a, &b, m, k, n), "{bits}");
        }
    }

    #[test]
    fn ncnn_gemm_matches_reference() {
        let bits = BitWidth::W8;
        let (m, k, n) = (17, 40, 11);
        let a = random_mat(m * k, bits, 31);
        let b = random_mat(k * n, bits, 32);
        let out = gemm_ncnn(&a, &b, m, k, n);
        assert_eq!(out.c, reference_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn lower_bits_model_faster_inner_loops() {
        // The core claim of Fig. 7: at fixed shape, modeled GEMM time
        // decreases monotonically from 8-bit down to 2-bit.
        let model = CortexA53::cost_model();
        let (m, k, n) = (64, 576, 3136);
        let mut last = f64::INFINITY;
        for bits in BitWidth::ALL.iter().rev() {
            let sched = schedule_gemm(&Scheme::for_bits(*bits), m, k, n);
            let cycles = sched.stage_cycles("gemm", &model);
            assert!(
                cycles <= last,
                "{bits} inner loop should not be slower than the next width up"
            );
            last = cycles;
        }
    }

    #[test]
    fn eight_bit_redesign_is_not_faster_than_ncnn_inner_loop() {
        // Paper Sec. 5.2: at 8-bit the drain overhead eats the advantage.
        let model = CortexA53::cost_model();
        let (m, k, n) = (64, 576, 3136);
        let ours = schedule_gemm(&Scheme::for_bits(BitWidth::W8), m, k, n)
            .stage_cycles("gemm", &model);
        let ncnn = schedule_gemm(&Scheme::ncnn16(), m, k, n).stage_cycles("gemm", &model);
        assert!(ours >= 0.9 * ncnn, "8-bit should be roughly at parity");
        assert!(ours <= 1.3 * ncnn);
    }

    #[test]
    fn cal_per_ld_is_about_four_times_traditional() {
        // Eq. 3/4: at equal per-instruction lane width (the MLA scheme also
        // moves θ1 = 16 lanes), the redesigned GEMM performs exactly 4x the
        // MACs per load (θ2 = 4, the LD4R replication factor).
        let (m, k, n) = (64, 128, 256); // granule multiples: no pad distortion
        let ours =
            LoadArithmeticProfile::of(&schedule_gemm(&Scheme::for_bits(BitWidth::W2), m, k, n));
        let trad = LoadArithmeticProfile::of(&crate::traditional::schedule_traditional(m, k, n));
        let gain = ours.cal_per_ld() / trad.cal_per_ld();
        assert!(
            (3.9..=4.1).contains(&gain),
            "CAL/LD gain should be ~4x, got {gain}"
        );
        // The SMLAL scheme halves the lanes per MAC (8 vs 16), doubling CAL:
        // its CAL/LD gain is 8x.
        let smlal =
            LoadArithmeticProfile::of(&schedule_gemm(&Scheme::for_bits(BitWidth::W4), m, k, n));
        let gain = smlal.cal_per_ld() / trad.cal_per_ld();
        assert!((7.9..=8.1).contains(&gain), "SMLAL CAL/LD gain {gain}");
    }

    #[test]
    fn prepacked_gemm_matches_packed_path() {
        let bits = BitWidth::W5;
        let scheme = Scheme::for_bits(bits);
        let (m, k, n) = (20, 30, 10);
        let a = random_mat(m * k, bits, 41);
        let b = random_mat(k * n, bits, 42);
        let pa = pack_a(&a, m, k);
        let pb = pack_b(&b, k, n);
        let full = gemm(&scheme, &a, &b, m, k, n);
        let pre = gemm_prepacked(&scheme, &pa, &pb);
        assert_eq!(full.c, pre.c);
        // The prepacked schedule must not charge packing.
        let model = CortexA53::cost_model();
        assert_eq!(pre.schedule.stage_cycles("pack A", &model), 0.0);
        assert!(full.schedule.stage_cycles("pack A", &model) > 0.0);
    }

    #[test]
    fn schedule_mac_count_matches_padded_volume() {
        let (m, k, n) = (30, 50, 70);
        let scheme = Scheme::for_bits(BitWidth::W4);
        let sched = schedule_gemm(&scheme, m, k, n);
        let counts = sched.total_counts();
        let m_pad = 32u64;
        let n_pad = 72u64;
        // 8 SMLAL per k-step per 16x4 tile -> one MAC instruction per 8 MACs.
        let macs = m_pad * n_pad * k as u64;
        assert_eq!(counts.neon_mac, macs / 8);
    }
}
