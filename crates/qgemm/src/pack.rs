//! Data padding and packing (paper Fig. 2).
//!
//! The micro-kernel consumes `n_a = 16` elements from a column of `A` and
//! `n_b = 4` elements from a row of `B` per step, so both matrices are
//! zero-padded to multiples of the granule and re-laid-out so that every
//! load in the inner loop is contiguous:
//!
//! * **A** (`M x K`, row-major in) → row-tiles of height 16; within a tile,
//!   `K` contiguous 16-element column slices (`LD1` feeds 16 rows at once).
//! * **B** (`K x N`, row-major in) → column-tiles of width 4; within a tile,
//!   `K` contiguous 4-element row slices (`LD4R` broadcasts 4 columns).
//!
//! The ncnn-like baseline packs the same shapes but **pre-widened to i16**
//! (its `SMLAL` form consumes 16-bit operands), with an 8-row granule.

/// Micro-kernel rows per A tile (`n_a` in the paper).
pub const NA: usize = 16;
/// Micro-kernel columns per B tile (`n_b` in the paper).
pub const NB: usize = 4;
/// A-tile rows for the ncnn-like 16-bit baseline.
pub const NCNN_NA: usize = 8;

/// Packed representation of the `M x K` weight matrix A.
#[derive(Clone, PartialEq, Debug)]
pub struct PackedA {
    /// Logical rows.
    pub m: usize,
    /// Rows after padding to a multiple of [`NA`].
    pub m_pad: usize,
    /// Shared dimension.
    pub k: usize,
    /// Tile-major storage: tile `i` occupies `k * NA` bytes starting at
    /// `i * k * NA`; within the tile, step `kk` holds rows
    /// `i*NA .. i*NA+NA` of column `kk`.
    pub data: Vec<i8>,
}

impl PackedA {
    /// Number of 16-row tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.m_pad / NA
    }

    /// The 16-element column slice for tile `i`, step `kk`.
    #[inline]
    pub fn slice(&self, i: usize, kk: usize) -> &[i8] {
        let base = (i * self.k + kk) * NA;
        &self.data[base..base + NA]
    }

    /// Logical element `(row, col)` (0 in the padded region).
    pub fn get(&self, row: usize, col: usize) -> i8 {
        let tile = row / NA;
        self.slice(tile, col)[row % NA]
    }
}

/// Packed representation of the `K x N` im2col matrix B.
#[derive(Clone, PartialEq, Debug)]
pub struct PackedB {
    /// Shared dimension.
    pub k: usize,
    /// Logical columns.
    pub n: usize,
    /// Columns after padding to a multiple of [`NB`].
    pub n_pad: usize,
    /// Tile-major storage: tile `j` occupies `k * NB` bytes; within the tile,
    /// step `kk` holds columns `j*NB .. j*NB+NB` of row `kk`.
    pub data: Vec<i8>,
}

impl PackedB {
    /// Number of 4-column tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.n_pad / NB
    }

    /// The 4-element row slice for tile `j`, step `kk`.
    #[inline]
    pub fn slice(&self, j: usize, kk: usize) -> &[i8] {
        let base = (j * self.k + kk) * NB;
        &self.data[base..base + NB]
    }

    /// Logical element `(row, col)` (0 in the padded region).
    pub fn get(&self, row: usize, col: usize) -> i8 {
        let tile = col / NB;
        self.slice(tile, row)[col % NB]
    }
}

/// Packs a row-major `M x K` matrix into 16-row tiles (zero padding `M`).
pub fn pack_a(a: &[i8], m: usize, k: usize) -> PackedA {
    assert_eq!(a.len(), m * k, "A must be M x K row-major");
    let m_pad = m.div_ceil(NA) * NA;
    let mut data = vec![0i8; m_pad * k];
    for tile in 0..m_pad / NA {
        let tile_base = tile * k * NA;
        for kk in 0..k {
            let dst = tile_base + kk * NA;
            for r in 0..NA {
                let row = tile * NA + r;
                if row < m {
                    data[dst + r] = a[row * k + kk];
                }
            }
        }
    }
    PackedA { m, m_pad, k, data }
}

/// Packs a row-major `K x N` matrix into 4-column tiles (zero padding `N`).
pub fn pack_b(b: &[i8], k: usize, n: usize) -> PackedB {
    assert_eq!(b.len(), k * n, "B must be K x N row-major");
    let n_pad = n.div_ceil(NB) * NB;
    let mut data = vec![0i8; k * n_pad];
    for tile in 0..n_pad / NB {
        let tile_base = tile * k * NB;
        for kk in 0..k {
            let dst = tile_base + kk * NB;
            for c in 0..NB {
                let col = tile * NB + c;
                if col < n {
                    data[dst + c] = b[kk * n + col];
                }
            }
        }
    }
    PackedB { k, n, n_pad, data }
}

/// Packed A for the ncnn-like baseline: 8-row tiles, elements widened to i16.
#[derive(Clone, PartialEq, Debug)]
pub struct PackedA16 {
    /// Logical rows.
    pub m: usize,
    /// Rows padded to a multiple of [`NCNN_NA`].
    pub m_pad: usize,
    /// Shared dimension.
    pub k: usize,
    /// Tile-major i16 storage, same scheme as [`PackedA`] with 8-row tiles.
    pub data: Vec<i16>,
}

impl PackedA16 {
    /// Number of 8-row tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.m_pad / NCNN_NA
    }

    /// The 8-element column slice for tile `i`, step `kk`.
    #[inline]
    pub fn slice(&self, i: usize, kk: usize) -> &[i16] {
        let base = (i * self.k + kk) * NCNN_NA;
        &self.data[base..base + NCNN_NA]
    }
}

/// Packed B for the ncnn-like baseline: 4-column tiles widened to i16.
#[derive(Clone, PartialEq, Debug)]
pub struct PackedB16 {
    /// Shared dimension.
    pub k: usize,
    /// Logical columns.
    pub n: usize,
    /// Columns padded to a multiple of [`NB`].
    pub n_pad: usize,
    /// Tile-major i16 storage, same scheme as [`PackedB`].
    pub data: Vec<i16>,
}

impl PackedB16 {
    /// Number of 4-column tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.n_pad / NB
    }

    /// The 4-element row slice for tile `j`, step `kk`.
    #[inline]
    pub fn slice(&self, j: usize, kk: usize) -> &[i16] {
        let base = (j * self.k + kk) * NB;
        &self.data[base..base + NB]
    }
}

/// Packs and widens A for the ncnn-like baseline.
pub fn pack_a16(a: &[i8], m: usize, k: usize) -> PackedA16 {
    assert_eq!(a.len(), m * k);
    let m_pad = m.div_ceil(NCNN_NA) * NCNN_NA;
    let mut data = vec![0i16; m_pad * k];
    for tile in 0..m_pad / NCNN_NA {
        let tile_base = tile * k * NCNN_NA;
        for kk in 0..k {
            let dst = tile_base + kk * NCNN_NA;
            for r in 0..NCNN_NA {
                let row = tile * NCNN_NA + r;
                if row < m {
                    data[dst + r] = a[row * k + kk] as i16;
                }
            }
        }
    }
    PackedA16 { m, m_pad, k, data }
}

/// Packs and widens B for the ncnn-like baseline.
pub fn pack_b16(b: &[i8], k: usize, n: usize) -> PackedB16 {
    assert_eq!(b.len(), k * n);
    let n_pad = n.div_ceil(NB) * NB;
    let mut data = vec![0i16; k * n_pad];
    for tile in 0..n_pad / NB {
        let tile_base = tile * k * NB;
        for kk in 0..k {
            let dst = tile_base + kk * NB;
            for c in 0..NB {
                let col = tile * NB + c;
                if col < n {
                    data[dst + c] = b[kk * n + col] as i16;
                }
            }
        }
    }
    PackedB16 { k, n, n_pad, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<i8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols).map(|_| rng.gen_range(-8..8) as i8).collect()
    }

    #[test]
    fn pack_a_round_trips_logical_elements() {
        let (m, k) = (19, 7); // deliberately not multiples of the granule
        let a = random_matrix(m, k, 1);
        let p = pack_a(&a, m, k);
        assert_eq!(p.m_pad, 32);
        for row in 0..m {
            for col in 0..k {
                assert_eq!(p.get(row, col), a[row * k + col], "({row},{col})");
            }
        }
    }

    #[test]
    fn pack_a_pads_with_zeros() {
        let (m, k) = (5, 3);
        let a = random_matrix(m, k, 2);
        let p = pack_a(&a, m, k);
        for row in m..p.m_pad {
            for col in 0..k {
                assert_eq!(p.get(row, col), 0);
            }
        }
    }

    #[test]
    fn pack_b_round_trips_logical_elements() {
        let (k, n) = (6, 10);
        let b = random_matrix(k, n, 3);
        let p = pack_b(&b, k, n);
        assert_eq!(p.n_pad, 12);
        for row in 0..k {
            for col in 0..n {
                assert_eq!(p.get(row, col), b[row * n + col], "({row},{col})");
            }
        }
        for row in 0..k {
            for col in n..p.n_pad {
                assert_eq!(p.get(row, col), 0);
            }
        }
    }

    #[test]
    fn packed_slices_are_contiguous_tile_steps() {
        let (m, k) = (16, 4);
        let a = random_matrix(m, k, 4);
        let p = pack_a(&a, m, k);
        // Tile 0, step 2 must be column 2 of rows 0..16.
        let col2: Vec<i8> = (0..16).map(|r| a[r * k + 2]).collect();
        assert_eq!(p.slice(0, 2), col2.as_slice());
    }

    #[test]
    fn exact_multiples_need_no_padding() {
        let a = random_matrix(32, 5, 5);
        let p = pack_a(&a, 32, 5);
        assert_eq!(p.m_pad, 32);
        let b = random_matrix(5, 8, 6);
        let pb = pack_b(&b, 5, 8);
        assert_eq!(pb.n_pad, 8);
    }

    #[test]
    fn ncnn_packing_widens_and_pads() {
        let (m, k) = (9, 3);
        let a = random_matrix(m, k, 7);
        let p = pack_a16(&a, m, k);
        assert_eq!(p.m_pad, 16);
        assert_eq!(p.slice(0, 1)[2], a[2 * k + 1] as i16);
        // Padded rows are zero.
        assert_eq!(p.slice(1, 0)[7], 0);

        let b = random_matrix(3, 5, 8);
        let pb = pack_b16(&b, 3, 5);
        assert_eq!(pb.n_pad, 8);
        assert_eq!(pb.slice(0, 2)[1], b[2 * 5 + 1] as i16);
    }
}
