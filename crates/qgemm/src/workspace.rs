//! Reusable GEMM workspace: the scratch memory the parallel driver needs
//! per call (the column-major result buffer plus one packed-B panel per
//! thread), owned by the caller so steady-state inference re-runs the same
//! layer shapes with **zero heap allocations**.
//!
//! Buffer reuse is `clear()` + `resize()`: lengths track the current call,
//! capacities only ever grow. [`WorkspaceStats`] records the capacity
//! high-water mark and counts calls that grew any buffer (`alloc_events`),
//! so tests can assert that repeated runs over a fixed layer set stop
//! allocating after the first pass.

/// Allocation bookkeeping for a workspace arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Peak total capacity (bytes) ever held by the arena's buffers.
    pub high_water_bytes: usize,
    /// Number of calls that had to grow at least one buffer.
    pub alloc_events: u64,
    /// Total calls served.
    pub calls: u64,
}

/// Per-thread scratch: the cache-blocked packed-B panel.
#[derive(Default)]
pub(crate) struct ThreadScratch {
    pub(crate) b_panel: Vec<i8>,
}

/// Caller-owned arena for [`crate::parallel::gemm_parallel_cm`].
#[derive(Default)]
pub struct GemmWorkspace {
    /// Column-major `m x n` result (`c_cm[col * m + row]`), so each worker
    /// thread's column range is one contiguous `&mut [i32]`.
    pub(crate) c_cm: Vec<i32>,
    pub(crate) scratch: Vec<ThreadScratch>,
    stats: WorkspaceStats,
}

impl GemmWorkspace {
    /// An empty arena; the first call sizes it.
    pub fn new() -> GemmWorkspace {
        GemmWorkspace::default()
    }

    /// Allocation statistics accumulated over all calls.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    /// Current total buffer capacity in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.c_cm.capacity() * std::mem::size_of::<i32>()
            + self
                .scratch
                .iter()
                .map(|s| s.b_panel.capacity())
                .sum::<usize>()
    }

    /// Sizes the arena for one call: a zeroed `c_len` result buffer and at
    /// least `threads` scratch slots.
    pub(crate) fn prepare(&mut self, threads: usize, c_len: usize) {
        if self.scratch.len() < threads {
            self.scratch.resize_with(threads, ThreadScratch::default);
        }
        self.c_cm.clear();
        self.c_cm.resize(c_len, 0);
    }

    /// Records one served call given the footprint measured before it.
    pub(crate) fn note_call(&mut self, footprint_before: usize) {
        self.stats.calls += 1;
        let after = self.footprint_bytes();
        if after > footprint_before {
            self.stats.alloc_events += 1;
        }
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(after);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_track_growth_and_steady_state() {
        let mut ws = GemmWorkspace::new();
        let before = ws.footprint_bytes();
        ws.prepare(2, 100);
        ws.scratch[0].b_panel.resize(64, 0);
        ws.note_call(before);
        assert_eq!(ws.stats().calls, 1);
        assert_eq!(ws.stats().alloc_events, 1);
        let hw = ws.stats().high_water_bytes;
        assert!(hw >= 100 * 4 + 64);

        // Same-size call: no growth, high-water unchanged.
        let before = ws.footprint_bytes();
        ws.prepare(2, 80);
        ws.scratch[0].b_panel.clear();
        ws.scratch[0].b_panel.resize(64, 0);
        ws.note_call(before);
        assert_eq!(ws.stats().calls, 2);
        assert_eq!(ws.stats().alloc_events, 1, "steady state must not allocate");
        assert_eq!(ws.stats().high_water_bytes, hw);
    }
}
