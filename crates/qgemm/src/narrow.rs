//! The narrow 8x4 `SMLAL` micro-kernel — an extension of the paper's
//! "register allocation tailored for the instruction scheme" idea.
//!
//! The 16x4 tile of Alg. 1 needs 16 result registers and must spill two of
//! them to general registers around *every* drain. At loose drain ratios
//! (4–6 bit) that cost is negligible; at tight ratios (8-bit: one drain per
//! two k-steps) the spill `MOV`s dominate the drain. An 8x4 tile halves the
//! accumulator footprint: all eight i32 result registers fit (`v20..v27`),
//! the four i16 partial registers fit (`v10..v13`), and drains become eight
//! plain `SADDW`s with **zero** moves — at the price of re-loading the B
//! operand twice as often per MAC.
//!
//! The crossover is verified by tests: the narrow tile models faster at
//! ratio ≤ ~8 (7/8-bit and the ratio-3..8 Winograd domains) and slower at
//! the loose 4–6-bit ratios.

#![allow(clippy::field_reassign_with_default)] // InstCounts builders read clearer this way

use crate::micro::TileOperands;
use crate::pack::{PackedB, NB};
use crate::scheme::{Scheme, SchemeKind};
use neon_sim::inst::{Half, Inst};
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// Rows per narrow A tile.
pub const NA8: usize = 8;
/// Elements in the narrow 8x4 result tile.
pub const NARROW_TILE_LEN: usize = NA8 * NB;

/// Packed A for the narrow kernel: 8-row tiles, same scheme as
/// [`crate::pack::PackedA`].
#[derive(Clone, PartialEq, Debug)]
pub struct PackedANarrow {
    /// Logical rows.
    pub m: usize,
    /// Rows padded to a multiple of [`NA8`].
    pub m_pad: usize,
    /// Shared dimension.
    pub k: usize,
    /// Tile-major storage: tile `i` holds `k` contiguous 8-row column
    /// slices.
    pub data: Vec<i8>,
}

impl PackedANarrow {
    /// Number of 8-row tiles.
    #[inline]
    pub fn tiles(&self) -> usize {
        self.m_pad / NA8
    }

    /// The 8-element column slice for tile `i`, step `kk`.
    #[inline]
    pub fn slice(&self, i: usize, kk: usize) -> &[i8] {
        let base = (i * self.k + kk) * NA8;
        &self.data[base..base + NA8]
    }
}

/// Packs a row-major `M x K` matrix into 8-row tiles.
pub fn pack_a_narrow(a: &[i8], m: usize, k: usize) -> PackedANarrow {
    assert_eq!(a.len(), m * k);
    let m_pad = m.div_ceil(NA8) * NA8;
    let mut data = vec![0i8; m_pad * k];
    for tile in 0..m_pad / NA8 {
        let tile_base = tile * k * NA8;
        for kk in 0..k {
            let dst = tile_base + kk * NA8;
            for r in 0..NA8 {
                let row = tile * NA8 + r;
                if row < m {
                    data[dst + r] = a[row * k + kk];
                }
            }
        }
    }
    PackedANarrow { m, m_pad, k, data }
}

/// [`TileOperands`] over a narrow packed A and a full packed B.
pub struct NarrowPairOps<'a> {
    pub pa: &'a PackedANarrow,
    pub pb: &'a PackedB,
    pub ti: usize,
    pub tj: usize,
}

impl TileOperands for NarrowPairOps<'_> {
    fn k_len(&self) -> usize {
        self.pa.k
    }
    fn a_slice(&self, step: usize) -> &[i8] {
        self.pa.slice(self.ti, step)
    }
    fn b_slice(&self, step: usize) -> &[i8] {
        self.pb.slice(self.tj, step)
    }
}

/// Runs one narrow 8x4 tile functionally (`SMLAL` scheme only).
///
/// Output layout: `out[col * 8 + row]`.
pub fn run_tile_narrow(
    scheme: &Scheme,
    pa: &PackedANarrow,
    pb: &PackedB,
    ti: usize,
    tj: usize,
) -> Vec<i32> {
    assert_eq!(pa.k, pb.k);
    let mut acc32 = [0i32; NARROW_TILE_LEN];
    accumulate_tile_narrow(scheme, &NarrowPairOps { pa, pb, ti, tj }, &mut acc32);
    acc32.to_vec()
}

/// Runs one narrow 8x4 tile over `ops`, adding into `acc32` (same K-blocking
/// exactness argument as [`crate::micro::accumulate_tile`]).
pub fn accumulate_tile_narrow<O: TileOperands>(
    scheme: &Scheme,
    ops: &O,
    acc32: &mut [i32; NARROW_TILE_LEN],
) {
    assert_eq!(scheme.kind(), SchemeKind::Smlal8, "narrow tile is SMLAL-only");
    let k = ops.k_len();
    let ratio = scheme.ratio();
    let mut acc16 = [0i16; NARROW_TILE_LEN];
    let mut since = 0usize;
    for kk in 0..k {
        let a = ops.a_slice(kk);
        let b = ops.b_slice(kk);
        for c in 0..NB {
            let bv = b[c] as i16;
            let col = &mut acc16[c * NA8..(c + 1) * NA8];
            for (acc, &av) in col.iter_mut().zip(a) {
                *acc = acc.wrapping_add(av as i16 * bv);
            }
        }
        since += 1;
        if since == ratio {
            drain(acc32, &mut acc16);
            since = 0;
        }
    }
    if since > 0 {
        drain(acc32, &mut acc16);
    }
}

fn drain(acc32: &mut [i32; NARROW_TILE_LEN], acc16: &mut [i16; NARROW_TILE_LEN]) {
    for (w, n) in acc32.iter_mut().zip(acc16.iter_mut()) {
        *w = w.wrapping_add(*n as i32);
        *n = 0;
    }
}

/// Analytic instruction counts for one narrow tile (must match
/// [`emit_tile_narrow`]; enforced by tests).
pub fn tile_counts_narrow(scheme: &Scheme, k: usize) -> InstCounts {
    assert!(k > 0);
    assert_eq!(scheme.kind(), SchemeKind::Smlal8);
    let nf = k.div_ceil(scheme.ratio()) as u64;
    let mut c = InstCounts::default();
    c.loads = 2 * k as u64; // LD1.8b (A) + LD4R (B)
    c.load_bytes = 12 * k as u64; // 8 + 4 bytes
    c.neon_mac = 4 * k as u64; // one SMLAL/SMULL per column
    c.neon_alu = 8 * nf; // SADDW(2) x 2 per column per drain
    c.neon_mov = 8; // accumulator zeroing prologue only — no spills
    c.stores = 8;
    c.store_bytes = 8 * 16;
    c
}

/// Emits the narrow tile: packed A tile at `addr_a` (`k * 8` bytes), B tile
/// at `addr_b` (`k * 4` bytes), 128-byte result at `addr_c`.
pub fn emit_tile_narrow(
    scheme: &Scheme,
    k: usize,
    addr_a: u32,
    addr_b: u32,
    addr_c: u32,
) -> Vec<Inst> {
    assert!(k > 0);
    assert_eq!(scheme.kind(), SchemeKind::Smlal8);
    let ratio = scheme.ratio();
    let mut prog = Vec::new();
    // acc16: v10..v13 (col c -> v10+c); acc32: v20..v27 (col c -> v20+2c
    // low rows, v21+2c high rows). No spills by construction.
    let drain = |prog: &mut Vec<Inst>| {
        for c in 0..NB {
            let acc16 = 10 + c as u8;
            prog.push(Inst::Saddw16 {
                vd: 20 + 2 * c as u8,
                vn: 20 + 2 * c as u8,
                vm: acc16,
                half: Half::Low,
            });
            prog.push(Inst::Saddw16 {
                vd: 21 + 2 * c as u8,
                vn: 21 + 2 * c as u8,
                vm: acc16,
                half: Half::High,
            });
        }
    };
    for vd in 20..28u8 {
        prog.push(Inst::MoviZero { vd });
    }
    let mut since = 0usize;
    let mut fresh = true;
    for kk in 0..k {
        prog.push(Inst::Ld1B8 { vt: 0, addr: addr_a + (kk * NA8) as u32 });
        prog.push(Inst::Ld4r { vt: 2, addr: addr_b + (kk * NB) as u32 });
        for c in 0..NB {
            let (vd, vm) = (10 + c as u8, 2 + c as u8);
            if fresh {
                prog.push(Inst::Smull8 { vd, vn: 0, vm, half: Half::Low });
            } else {
                prog.push(Inst::Smlal8 { vd, vn: 0, vm, half: Half::Low });
            }
        }
        fresh = false;
        since += 1;
        if since == ratio {
            drain(&mut prog);
            since = 0;
            fresh = true;
        }
    }
    if since > 0 {
        drain(&mut prog);
    }
    for idx in 0..8 {
        prog.push(Inst::St1 { vt: 20 + idx as u8, addr: addr_c + (idx * 16) as u32 });
    }
    prog
}

/// Full GEMM with the narrow tile (functional path + schedule).
pub fn gemm_narrow(
    scheme: &Scheme,
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
) -> crate::gemm::GemmOutput {
    let pa = pack_a_narrow(a, m, k);
    let pb = crate::pack::pack_b(b, k, n);
    let mut c = vec![0i32; m * n];
    for ti in 0..pa.tiles() {
        for tj in 0..pb.tiles() {
            let tile = run_tile_narrow(scheme, &pa, &pb, ti, tj);
            for col in 0..NB {
                let j = tj * NB + col;
                if j >= n {
                    break;
                }
                for r in 0..NA8 {
                    let i = ti * NA8 + r;
                    if i >= m {
                        break;
                    }
                    c[i * n + j] = tile[col * NA8 + r];
                }
            }
        }
    }
    crate::gemm::GemmOutput {
        m,
        n,
        c,
        schedule: schedule_gemm_narrow(scheme, m, k, n),
    }
}

/// Analytic schedule for the narrow-tile GEMM.
pub fn schedule_gemm_narrow(scheme: &Scheme, m: usize, k: usize, n: usize) -> KernelSchedule {
    let m_pad = m.div_ceil(NA8) * NA8;
    let n_pad = n.div_ceil(NB) * NB;
    let tiles = (m_pad / NA8) as u64 * (n_pad / NB) as u64;
    let mut sched = KernelSchedule::new();
    sched.push(StageCost::bulk_move(
        "pack A",
        (m * k) as u64,
        (m_pad * k) as u64,
    ));
    sched.push(StageCost::bulk_move(
        "pack B",
        (k * n) as u64,
        (k * n_pad) as u64,
    ));
    let mut counts = InstCounts::default();
    counts.add_scaled(&tile_counts_narrow(scheme, k), tiles);
    sched.push(StageCost::compute("gemm", counts));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{reference_gemm, schedule_gemm};
    use crate::pack::pack_b;
    use lowbit_tensor::BitWidth;
    use neon_sim::{CortexA53, Machine};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_mat(len: usize, bits: BitWidth, seed: u64) -> Vec<i8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| rng.gen_range(bits.qmin() as i32..=bits.qmax() as i32) as i8)
            .collect()
    }

    #[test]
    fn narrow_gemm_matches_reference_for_smlal_widths() {
        for bits in [BitWidth::W4, BitWidth::W5, BitWidth::W6, BitWidth::W7, BitWidth::W8] {
            let scheme = Scheme::for_bits(bits);
            let (m, k, n) = (19, 37, 11);
            let a = random_mat(m * k, bits, 60 + bits.bits() as u64);
            let b = random_mat(k * n, bits, 70 + bits.bits() as u64);
            let out = gemm_narrow(&scheme, &a, &b, m, k, n);
            assert_eq!(out.c, reference_gemm(&a, &b, m, k, n), "{bits}");
        }
    }

    #[test]
    fn emitted_narrow_kernel_matches_functional_and_counts() {
        let bits = BitWidth::W8; // tight ratio: many drains + remainder
        let scheme = Scheme::for_bits(bits);
        let (m, k, n) = (8, 33, 4);
        let a = random_mat(m * k, bits, 81);
        let b = random_mat(k * n, bits, 82);
        let pa = pack_a_narrow(&a, m, k);
        let pb = pack_b(&b, k, n);
        let functional = run_tile_narrow(&scheme, &pa, &pb, 0, 0);

        let addr_a = 0u32;
        let addr_b = (k * NA8) as u32;
        let addr_c = (k * NA8 + k * NB).next_multiple_of(16) as u32;
        let mut machine = Machine::new(addr_c as usize + 256, CortexA53::cost_model());
        machine.write_mem_i8(addr_a as usize, &pa.data[..k * NA8]);
        machine.write_mem_i8(addr_b as usize, &pb.data[..k * NB]);
        machine.run(&emit_tile_narrow(&scheme, k, addr_a, addr_b, addr_c));
        assert_eq!(
            machine.read_mem_i32(addr_c as usize, NARROW_TILE_LEN),
            functional
        );
        assert_eq!(machine.stats().counts, tile_counts_narrow(&scheme, k));
    }

    #[test]
    fn narrow_tile_has_no_spill_moves() {
        let scheme = Scheme::for_bits(BitWidth::W8);
        let counts = tile_counts_narrow(&scheme, 128);
        assert_eq!(
            counts.neon_mov, 8,
            "only the zeroing prologue — no per-drain spill MOVs"
        );
        let wide = crate::micro::tile_counts(&scheme, 128);
        assert!(wide.neon_mov > 0);
    }

    #[test]
    fn crossover_narrow_wins_at_tight_ratios_wide_at_loose() {
        // The register-allocation trade-off: per-MAC modeled cycles of the
        // inner loop only (packing identical in structure).
        let model = CortexA53::cost_model();
        let (m, k, n) = (128, 512, 128);
        let inner = |sched: &KernelSchedule| sched.stage_cycles("gemm", &model);
        // 8-bit (ratio 2): narrow wins.
        let s8 = Scheme::for_bits(BitWidth::W8);
        let narrow8 = inner(&schedule_gemm_narrow(&s8, m, k, n));
        let wide8 = inner(&schedule_gemm(&s8, m, k, n));
        assert!(
            narrow8 < wide8,
            "narrow ({narrow8:.0}) should beat wide ({wide8:.0}) at ratio 2"
        );
        // 4-bit (ratio 511): wide wins.
        let s4 = Scheme::for_bits(BitWidth::W4);
        let narrow4 = inner(&schedule_gemm_narrow(&s4, m, k, n));
        let wide4 = inner(&schedule_gemm(&s4, m, k, n));
        assert!(
            wide4 < narrow4,
            "wide ({wide4:.0}) should beat narrow ({narrow4:.0}) at ratio 511"
        );
    }

    #[test]
    #[should_panic(expected = "SMLAL-only")]
    fn narrow_tile_rejects_mla_scheme() {
        let scheme = Scheme::for_bits(BitWidth::W2);
        let pa = pack_a_narrow(&[0i8; 8], 8, 1);
        let pb = pack_b(&[0i8; 4], 1, 4);
        let _ = run_tile_narrow(&scheme, &pa, &pb, 0, 0);
    }

    #[test]
    fn padding_rows_stay_zero_in_output_region() {
        let bits = BitWidth::W6;
        let scheme = Scheme::for_bits(bits);
        let (m, k, n) = (5, 10, 3); // m, n both ragged
        let a = random_mat(m * k, bits, 91);
        let b = random_mat(k * n, bits, 92);
        let out = gemm_narrow(&scheme, &a, &b, m, k, n);
        assert_eq!(out.c.len(), m * n);
        assert_eq!(out.c, reference_gemm(&a, &b, m, k, n));
    }
}
