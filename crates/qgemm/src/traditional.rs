//! The traditional GEMM of Fig. 1(a), kept as the ablation baseline for the
//! Eq. 1–4 load/arithmetic analysis.
//!
//! Formulation: each output element is a dot product; the inner loop loads a
//! 16-element slice of a row of A and the matching 16-element slice of a
//! (pre-transposed) column of B, multiplies and accumulates, and reduces at
//! the end. Per Eq. 1 this costs `β1 · M·N·K / θ1` loads — `θ2 = 4` times the
//! loads of the re-designed GEMM (Eq. 3) at the same arithmetic count.

use crate::gemm::GemmOutput;
use neon_sim::{InstCounts, KernelSchedule, StageCost};

/// SIMD elements per load/MAC instruction (`θ1` in the paper's Eq. 1–4).
pub const THETA1: usize = 16;
/// Reduction instructions per dot product (`δ` — constant, `<< K`).
pub const DELTA: u64 = 4;

/// Functional traditional GEMM (row-major `m x k` by `k x n`).
pub fn traditional_gemm(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> GemmOutput {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += a[i * k + kk] as i32 * b[kk * n + j] as i32;
            }
            c[i * n + j] = acc;
        }
    }
    GemmOutput {
        m,
        n,
        c,
        schedule: schedule_traditional(m, k, n),
    }
}

/// Analytic schedule for the traditional GEMM (Eq. 1–2).
pub fn schedule_traditional(m: usize, k: usize, n: usize) -> KernelSchedule {
    let k_vecs = k.div_ceil(THETA1) as u64;
    let dot_products = (m * n) as u64;
    let mut counts = InstCounts::default();
    // β1 = 2 loads per SIMD step (one from each matrix), Eq. 1.
    counts.loads = 2 * dot_products * k_vecs;
    counts.load_bytes = counts.loads * THETA1 as u64;
    // β2 = 1 MAC per SIMD step, plus the δ-instruction reduction, Eq. 2.
    counts.neon_mac = dot_products * k_vecs;
    counts.neon_alu = dot_products * DELTA;
    counts.stores = dot_products.div_ceil(4); // 4 i32 results per ST1
    counts.store_bytes = counts.stores * 16;

    let mut sched = KernelSchedule::new();
    // B must be transposed for contiguous column access — the traditional
    // method's own packing cost.
    sched.push(StageCost::bulk_move("transpose B", (k * n) as u64, (k * n) as u64));
    sched.push(StageCost::compute("gemm", counts));
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{reference_gemm, schedule_gemm, LoadArithmeticProfile};
    use crate::scheme::Scheme;
    use lowbit_tensor::BitWidth;
    use neon_sim::CortexA53;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn functional_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (9, 23, 14);
        let a: Vec<i8> = (0..m * k).map(|_| rng.gen_range(-8..8) as i8).collect();
        let b: Vec<i8> = (0..k * n).map(|_| rng.gen_range(-8..8) as i8).collect();
        let out = traditional_gemm(&a, &b, m, k, n);
        assert_eq!(out.c, reference_gemm(&a, &b, m, k, n));
    }

    #[test]
    fn loads_follow_equation_one() {
        let (m, k, n) = (8, 64, 32);
        let sched = schedule_traditional(m, k, n);
        let counts = sched.total_counts();
        assert_eq!(counts.loads as usize, 2 * m * n * k / THETA1);
    }

    #[test]
    fn redesign_loads_are_one_quarter() {
        // Eq. 3: LD_redesigned = LD_traditional / θ2 with θ2 = 4 (LD4R).
        let (m, k, n) = (64, 256, 128); // multiples: no padding distortion
        let ours = LoadArithmeticProfile::of(&schedule_gemm(
            &Scheme::for_bits(BitWidth::W4),
            m,
            k,
            n,
        ));
        let trad = LoadArithmeticProfile::of(&schedule_traditional(m, k, n));
        let ratio = trad.loads as f64 / ours.loads as f64;
        assert!((3.9..=4.1).contains(&ratio), "load ratio {ratio}");
    }

    #[test]
    fn redesigned_gemm_models_faster_than_traditional() {
        let model = CortexA53::cost_model();
        let (m, k, n) = (64, 576, 1024);
        let ours = schedule_gemm(&Scheme::for_bits(BitWidth::W4), m, k, n).cycles(&model);
        let trad = schedule_traditional(m, k, n).cycles(&model);
        assert!(
            ours < trad,
            "redesigned ({ours:.0} cyc) must beat traditional ({trad:.0} cyc)"
        );
    }
}
