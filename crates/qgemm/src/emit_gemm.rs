//! Whole-GEMM program emission: stitches the micro-tile emitter across all
//! `(M/16) x (N/4)` tiles into one interpreter program.
//!
//! This closes the consistency loop one level above the micro-kernel tests:
//! the interpreted multi-tile program must reproduce the functional driver's
//! full `C` matrix *and* the analytic schedule's instruction counts for the
//! whole `gemm` stage.

use crate::micro::emit_tile;
use crate::pack::{PackedA, PackedB, NA, NB};
use crate::scheme::Scheme;
use neon_sim::inst::Inst;

/// Memory layout of an emitted whole-GEMM program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GemmLayout {
    /// Base address of packed A.
    pub addr_a: u32,
    /// Base address of packed B.
    pub addr_b: u32,
    /// Base address of the tile-major i32 output
    /// (tile `(ti, tj)` at `addr_c + (ti * b_tiles + tj) * 256`).
    pub addr_c: u32,
    /// Total bytes of simulator memory required.
    pub mem_len: usize,
}

/// Emits the full tiled GEMM over packed operands, returning the program and
/// its memory layout.
pub fn emit_gemm(scheme: &Scheme, pa: &PackedA, pb: &PackedB) -> (Vec<Inst>, GemmLayout) {
    assert_eq!(pa.k, pb.k);
    let k = pa.k;
    let addr_a = 0u32;
    let addr_b = (pa.data.len()).next_multiple_of(16) as u32;
    let addr_c = (addr_b as usize + pb.data.len()).next_multiple_of(16) as u32;
    let c_bytes = pa.tiles() * pb.tiles() * NA * NB * 4;
    let layout = GemmLayout {
        addr_a,
        addr_b,
        addr_c,
        mem_len: addr_c as usize + c_bytes + 64,
    };
    let mut prog = Vec::new();
    for ti in 0..pa.tiles() {
        for tj in 0..pb.tiles() {
            let a_tile = addr_a + (ti * k * NA) as u32;
            let b_tile = addr_b + (tj * k * NB) as u32;
            let c_tile = addr_c + ((ti * pb.tiles() + tj) * NA * NB * 4) as u32;
            prog.extend(emit_tile(scheme, k, a_tile, b_tile, c_tile));
        }
    }
    (prog, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, schedule_gemm};
    use crate::pack::{pack_a, pack_b};
    use lowbit_tensor::BitWidth;
    use neon_sim::{CortexA53, Machine};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn interpreted_whole_gemm_matches_driver_and_schedule() {
        for bits in [BitWidth::W2, BitWidth::W4, BitWidth::W8] {
            let scheme = Scheme::for_bits(bits);
            let (m, k, n) = (21, 40, 9); // 2x3 ragged tile grid
            let mut rng = StdRng::seed_from_u64(bits.bits() as u64);
            let a: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(bits.qmin()..=bits.qmax()))
                .collect();
            let b: Vec<i8> = (0..k * n)
                .map(|_| rng.gen_range(bits.qmin()..=bits.qmax()))
                .collect();
            let pa = pack_a(&a, m, k);
            let pb = pack_b(&b, k, n);

            let (prog, layout) = emit_gemm(&scheme, &pa, &pb);
            let mut machine = Machine::new(layout.mem_len, CortexA53::cost_model());
            machine.write_mem_i8(layout.addr_a as usize, &pa.data);
            machine.write_mem_i8(layout.addr_b as usize, &pb.data);
            machine.run(&prog);

            // Gather the interpreted C and compare with the functional
            // driver (which includes unpadding).
            let functional = gemm(&scheme, &a, &b, m, k, n);
            for ti in 0..pa.tiles() {
                for tj in 0..pb.tiles() {
                    let base = layout.addr_c as usize + (ti * pb.tiles() + tj) * NA * NB * 4;
                    let tile = machine.read_mem_i32(base, NA * NB);
                    for col in 0..NB {
                        let j = tj * NB + col;
                        if j >= n {
                            continue;
                        }
                        for r in 0..NA {
                            let i = ti * NA + r;
                            if i >= m {
                                continue;
                            }
                            assert_eq!(
                                tile[col * NA + r],
                                functional.c[i * n + j],
                                "{bits} tile ({ti},{tj}) elem ({r},{col})"
                            );
                        }
                    }
                }
            }

            // Interpreter counters must equal the analytic gemm stage.
            let analytic = schedule_gemm(&scheme, m, k, n);
            let gemm_stage = analytic
                .stages
                .iter()
                .find(|s| s.name == "gemm")
                .unwrap();
            assert_eq!(machine.stats().counts, gemm_stage.counts, "{bits} counts");
        }
    }
}
