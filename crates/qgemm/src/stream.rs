//! Self-describing kernel instruction streams for static verification.
//!
//! The emitters in [`crate::micro`], [`crate::narrow`], [`crate::sdot`] and
//! [`crate::emit_gemm`] produce bare instruction vectors against
//! caller-chosen addresses. A [`KernelStream`] bundles one such program with
//! the *contract* needed to reason about it without running it: where the
//! packed A/B operands live and what element type they hold, and where the
//! i32 output goes. The `lowbit-verify` crate consumes these descriptors —
//! attaching operand *value* ranges per bit width — to prove saturation
//! safety and register-allocation discipline for every emitted variant.

use crate::emit_gemm::emit_gemm;
use crate::micro::{emit_tile, emit_tile_ncnn, TILE_LEN};
use crate::narrow::{emit_tile_narrow, NA8, NARROW_TILE_LEN};
use crate::pack::{pack_a, pack_b, NA, NB, NCNN_NA};
use crate::scheme::{Scheme, SchemeKind};
use crate::sdot::{emit_tile_sdot, KQ, SDOT_NA};
use neon_sim::inst::Inst;
use neon_sim::meta::{ElemWidth, MemSpan};

/// A memory region holding one packed operand: its byte span and the lane
/// element type the kernel loads from it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OperandRegion {
    /// Byte extent of the packed operand.
    pub span: MemSpan,
    /// Element type of the packed data (`B` for i8 operands, `H` for the
    /// pre-widened ncnn baseline).
    pub elem: ElemWidth,
}

/// One emitted kernel program plus the memory contract it was emitted
/// against.
#[derive(Clone, Debug)]
pub struct KernelStream {
    /// Human-readable identifier (`"smlal16x4"`, `"gemm 21x40x9"`, …).
    pub name: String,
    /// The instruction stream.
    pub prog: Vec<Inst>,
    /// Packed A (weights) region.
    pub a: OperandRegion,
    /// Packed B (activations) region.
    pub b: OperandRegion,
    /// i32 output region (the only legal store target).
    pub c: MemSpan,
    /// K-loop depth the program was emitted for.
    pub k: usize,
}

impl KernelStream {
    /// Total simulator memory the stream requires.
    pub fn mem_len(&self) -> usize {
        self.c.end() as usize
    }
}

fn i8_region(start: u32, len: u32) -> OperandRegion {
    OperandRegion { span: MemSpan::new(start, len), elem: ElemWidth::B }
}

/// The 16x4 micro-tile of Alg. 1 (SMLAL or MLA scheme per `scheme.kind()`),
/// emitted at the canonical layout: A at 0 (`k * 16` i8), B after it
/// (`k * 4` i8), C 16-byte-aligned after B.
pub fn tile_stream_wide(scheme: &Scheme, k: usize) -> KernelStream {
    assert_ne!(scheme.kind(), SchemeKind::Ncnn16, "use tile_stream_ncnn");
    let a_len = (k * NA) as u32;
    let b_len = (k * NB) as u32;
    let addr_c = (a_len + b_len).next_multiple_of(16);
    let kind = match scheme.kind() {
        SchemeKind::Smlal8 => "smlal",
        SchemeKind::Mla => "mla",
        SchemeKind::Ncnn16 => unreachable!(),
    };
    KernelStream {
        name: format!("{kind}16x4 k={k} r={}", scheme.ratio()),
        prog: emit_tile(scheme, k, 0, a_len, addr_c),
        a: i8_region(0, a_len),
        b: i8_region(a_len, b_len),
        c: MemSpan::new(addr_c, (TILE_LEN * 4) as u32),
        k,
    }
}

/// The spill-free narrow 8x4 tile (SMLAL-only).
pub fn tile_stream_narrow(scheme: &Scheme, k: usize) -> KernelStream {
    assert_eq!(scheme.kind(), SchemeKind::Smlal8, "narrow tile is SMLAL-only");
    let a_len = (k * NA8) as u32;
    let b_len = (k * NB) as u32;
    let addr_c = (a_len + b_len).next_multiple_of(16);
    KernelStream {
        name: format!("narrow8x4 k={k} r={}", scheme.ratio()),
        prog: emit_tile_narrow(scheme, k, 0, a_len, addr_c),
        a: i8_region(0, a_len),
        b: i8_region(a_len, b_len),
        c: MemSpan::new(addr_c, (NARROW_TILE_LEN * 4) as u32),
        k,
    }
}

/// The ARMv8.2 `SDOT` 16x4 tile (no drains; operands quad-packed to
/// `k_pad = ⌈k/4⌉·4`).
pub fn tile_stream_sdot(k: usize) -> KernelStream {
    let k_pad = k.div_ceil(KQ) * KQ;
    let a_len = (k_pad * SDOT_NA) as u32;
    let b_len = (k_pad * NB) as u32;
    let addr_c = (a_len + b_len).next_multiple_of(16);
    KernelStream {
        name: format!("sdot16x4 k={k}"),
        prog: emit_tile_sdot(k, 0, a_len, addr_c),
        a: i8_region(0, a_len),
        b: i8_region(a_len, b_len),
        c: MemSpan::new(addr_c, (SDOT_NA * NB * 4) as u32),
        k,
    }
}

/// The ncnn-like 8x4 baseline on pre-widened i16 operands (accumulates
/// straight into i32 — the stream the drain schemes are measured against).
pub fn tile_stream_ncnn(k: usize) -> KernelStream {
    let a_len = (k * NCNN_NA * 2) as u32;
    let b_len = (k * NB * 2) as u32;
    let addr_c = (a_len + b_len).next_multiple_of(16);
    KernelStream {
        name: format!("ncnn8x4 k={k}"),
        prog: emit_tile_ncnn(k, 0, a_len, addr_c),
        a: OperandRegion { span: MemSpan::new(0, a_len), elem: ElemWidth::H },
        b: OperandRegion { span: MemSpan::new(a_len, b_len), elem: ElemWidth::H },
        c: MemSpan::new(addr_c, (NCNN_NA * NB * 4) as u32),
        k,
    }
}

/// A whole multi-tile GEMM program over an `m x k x n` problem, stitched by
/// [`emit_gemm`] across the full `(⌈m/16⌉ x ⌈n/4⌉)` tile grid. Operand
/// *contents* are irrelevant to the static analysis, so the packed matrices
/// are built from zeros purely to size the layout.
pub fn gemm_stream(scheme: &Scheme, m: usize, k: usize, n: usize) -> KernelStream {
    let pa = pack_a(&vec![0i8; m * k], m, k);
    let pb = pack_b(&vec![0i8; k * n], k, n);
    let (prog, layout) = emit_gemm(scheme, &pa, &pb);
    let c_len = (pa.tiles() * pb.tiles() * NA * NB * 4) as u32;
    KernelStream {
        name: format!("gemm {m}x{k}x{n} r={}", scheme.ratio()),
        prog,
        a: i8_region(layout.addr_a, pa.data.len() as u32),
        b: i8_region(layout.addr_b, pb.data.len() as u32),
        c: MemSpan::new(layout.addr_c, c_len),
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowbit_tensor::BitWidth;

    #[test]
    fn regions_are_disjoint_and_cover_all_accesses() {
        let streams = [
            tile_stream_wide(&Scheme::for_bits(BitWidth::W4), 7),
            tile_stream_wide(&Scheme::for_bits(BitWidth::W2), 33),
            tile_stream_narrow(&Scheme::for_bits(BitWidth::W8), 5),
            tile_stream_sdot(10),
            tile_stream_ncnn(6),
            gemm_stream(&Scheme::for_bits(BitWidth::W8), 21, 9, 9),
        ];
        for s in &streams {
            assert!(s.a.span.end() <= s.b.span.start, "{}: A/B disjoint", s.name);
            assert!(s.b.span.end() <= s.c.start, "{}: B/C disjoint", s.name);
            for inst in &s.prog {
                if let Some(acc) = inst.mem_access() {
                    let inside = s.a.span.contains(acc.addr, acc.bytes)
                        || s.b.span.contains(acc.addr, acc.bytes)
                        || s.c.contains(acc.addr, acc.bytes);
                    assert!(inside, "{}: {inst} escapes the declared regions", s.name);
                }
            }
        }
    }

    #[test]
    fn stream_k_round_trips_the_mac_count() {
        let s = tile_stream_wide(&Scheme::for_bits(BitWidth::W8), 11);
        let macs = s
            .prog
            .iter()
            .filter(|i| matches!(i, Inst::Smlal8 { .. } | Inst::Smull8 { .. }))
            .count();
        assert_eq!(macs, 8 * s.k);
    }
}
